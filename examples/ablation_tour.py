#!/usr/bin/env python
"""Ablation tour: what each Amoeba component buys (paper §VII-C/D).

Runs the same diurnal scenario under full Amoeba, Amoeba-NoM (no PCA
weight calibration) and Amoeba-NoP (no container prewarming) and prints
the trade-offs each ablation exposes.

Run:  python examples/ablation_tour.py [benchmark]
"""

import sys

from repro.experiments import default_scenario, run_amoeba, run_nameko


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "float"
    scenario = default_scenario(name, day=3600.0, seed=0)
    nameko = run_nameko(scenario)
    nameko_usage = nameko.foreground(scenario).usage

    print(f"scenario: {name!r}, one compressed day, background + ambient tenants\n")
    print(f"{'variant':<12} {'violations':>11} {'cpu vs nameko':>14} "
          f"{'mem vs nameko':>14} {'switches':>9}")
    for variant in ("full", "nom", "nop"):
        run = run_amoeba(scenario, variant=variant)
        fg = run.foreground(scenario)
        cpu, mem = fg.usage.normalized_to(nameko_usage)
        label = {"full": "amoeba", "nom": "amoeba-NoM", "nop": "amoeba-NoP"}[variant]
        print(f"{label:<12} {fg.metrics.violation_fraction:>10.2%} {cpu:>13.2%} "
              f"{mem:>13.2%} {len(fg.switch_events):>9}")

    print("""
reading the table:
 * amoeba      — meets QoS and saves the most resources.
 * amoeba-NoM  — still safe, but the pessimistic 'degradations accumulate'
                 assumption (weights fixed at 1) under-estimates the
                 serverless capacity, switches in late, and burns more
                 IaaS time (Fig. 14).
 * amoeba-NoP  — without the prewarm module every serverless query pays a
                 cold start; resource usage looks fine but a large share
                 of queries blow their QoS target (Fig. 16).
""")


if __name__ == "__main__":
    main()
