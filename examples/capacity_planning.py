#!/usr/bin/env python
"""Capacity planning with the queueing core (§II / Fig. 3 style analysis).

Uses the library's building blocks the way a platform operator would:

* size just-enough IaaS rentals for a target peak (M/M/N + self-contention),
* compare the serverless ceiling for the same resources,
* sweep QoS targets to see how the required rental grows.

Run:  python examples/capacity_planning.py
"""

from repro.core.meters import expected_platform_overhead
from repro.core.queueing import max_arrival_rate, min_servers
from repro.iaas.sizing import size_service
from repro.serverless.config import ServerlessConfig
from repro.workloads import benchmark, benchmark_names


def main() -> None:
    cfg = ServerlessConfig()
    peaks = {"float": 30.0, "matmul": 12.0, "linpack": 10.0, "dd": 14.0, "cloud_stor": 12.0}

    print("=== just-enough rentals and serverless ceilings ===")
    print(f"{'benchmark':<11} {'VMs':>4} {'slots':>6} {'cores':>6} "
          f"{'sls ceiling (same slots)':>25} {'ratio':>6}")
    for name in benchmark_names():
        spec = benchmark(name)
        sizing = size_service(spec, peaks[name])
        mu0 = 1.0 / (spec.exec_time + expected_platform_overhead(spec, cfg))
        ceiling = max_arrival_rate(mu0, sizing.workers, spec.qos_target)
        print(f"{name:<11} {sizing.vm_count:>4} {sizing.workers:>6} "
              f"{sizing.rented_cores:>6.0f} {ceiling:>22.1f} qps "
              f"{ceiling / peaks[name]:>6.2f}")

    print("\n=== QoS sensitivity: containers needed for 10 qps ===")
    spec = benchmark("matmul")
    mu0 = 1.0 / (spec.exec_time + expected_platform_overhead(spec, cfg))
    print(f"{'QoS (s)':>8} {'containers (Eq. 5)':>20}")
    for qos_factor in (1.5, 2.0, 3.0, 4.0, 6.0):
        qos = spec.exec_time * qos_factor
        try:
            n = min_servers(10.0, mu0, qos)
            print(f"{qos:>8.2f} {n:>20}")
        except ValueError:
            print(f"{qos:>8.2f} {'unattainable':>20}")

    print("\ntighter QoS targets cost disproportionately more capacity —")
    print("the effect behind float's low IaaS utilization in Fig. 2")


if __name__ == "__main__":
    main()
