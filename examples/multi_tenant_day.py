#!/usr/bin/env python
"""A full multi-tenant evaluation day: Amoeba vs. Nameko vs. OpenWhisk.

Reproduces the paper's §VII setup for one benchmark: the foreground
service with a diurnal load, the three low-peak background services
(``bg_float``/``bg_dd``/``bg_cloud_stor``) and time-varying ambient
tenant pressure on the shared serverless node.  Prints the Fig. 10/11
quantities for the three systems.

Run:  python examples/multi_tenant_day.py [benchmark]
"""

import sys

from repro.experiments import default_scenario, run_amoeba, run_nameko, run_openwhisk


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "dd"
    scenario = default_scenario(name, day=2400.0, seed=1)
    print(f"scenario: foreground {name!r} (peak {scenario.trace.peak_rate:.0f} qps, "
          f"serverless container cap {scenario.limit}), "
          f"{len(scenario.background)} background services, ambient tenants on\n")

    runs = {
        "amoeba": run_amoeba(scenario),
        "nameko": run_nameko(scenario),
        "openwhisk": run_openwhisk(scenario),
    }
    qos = scenario.foreground.qos_target
    nameko_usage = runs["nameko"].foreground(scenario).usage

    print(f"{'system':<10} {'p95/QoS':>8} {'violations':>11} {'cores':>7} {'mem MB':>8} "
          f"{'cpu vs nameko':>14}")
    for system, run in runs.items():
        fg = run.foreground(scenario)
        p95 = fg.metrics.latency_percentile(95) / qos
        cpu_ratio, _ = fg.usage.normalized_to(nameko_usage)
        print(f"{system:<10} {p95:>8.3f} {fg.metrics.violation_fraction:>10.2%} "
              f"{fg.usage.mean_cores:>7.2f} {fg.usage.mean_memory_mb:>8.0f} "
              f"{cpu_ratio:>13.2%}")

    fg = runs["amoeba"].foreground(scenario)
    print("\nAmoeba's switches (time, target, load):")
    for t, mode, load in fg.switch_events:
        print(f"  t={t:7.1f}s  -> {mode:<10}  at {load:5.1f} qps")

    print("\nbackground services under Amoeba (the co-tenant guard protects them):")
    for bg_spec, _trace, _limit in scenario.background:
        bg = runs["amoeba"].services[bg_spec.name]
        print(f"  {bg_spec.name:<14} p95/QoS {bg.metrics.latency_percentile(95) / bg_spec.qos_target:6.3f} "
              f"violations {bg.metrics.violation_fraction:.2%}")


if __name__ == "__main__":
    main()
