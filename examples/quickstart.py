#!/usr/bin/env python
"""Quickstart: put one microservice under Amoeba management.

Deploys the ``float`` FunctionBench benchmark with a compressed diurnal
day, lets Amoeba switch it between a just-enough IaaS rental and the
shared serverless platform, and prints the QoS / resource outcome against
the pure-IaaS alternative.

Run:  python examples/quickstart.py
"""

from repro.core import AmoebaRuntime
from repro.workloads import DiurnalTrace, benchmark

DAY = 1800.0  # one diurnal cycle compressed into 30 simulated minutes


def main() -> None:
    runtime = AmoebaRuntime(seed=42)

    # the service: peak 25 qps in the evening, overnight low ~30% of peak
    spec = benchmark("float")
    trace = DiurnalTrace(peak_rate=25.0, day=DAY, seed=7)
    service = runtime.add_service(spec, trace, limit=5)

    print(f"managing {spec.name!r}: QoS = {spec.qos_target * 1000:.0f} ms (95%-ile), "
          f"peak {trace.peak_rate:.0f} qps")
    print(f"IaaS rental sized just-enough: {service.iaas.sizing.vm_count} VMs, "
          f"{service.iaas.sizing.workers} worker slots "
          f"({service.iaas.sizing.rented_cores:.0f} cores)")
    print(f"controller sample period (Eq. 8, clamped): {service.controller.period:.0f} s\n")

    runtime.run(until=DAY)

    m = service.metrics
    print(f"completed queries : {m.completed}")
    print(f"95%-ile latency   : {m.latency_percentile(95) * 1000:.1f} ms "
          f"(target {spec.qos_target * 1000:.0f} ms)")
    print(f"QoS violations    : {m.violation_fraction * 100:.2f} %")
    print(f"served by         : {m.served_by}")

    print("\ndeploy-mode switches:")
    for t, mode, load in service.engine.switch_events:
        print(f"  t={t:7.1f}s  -> {mode.value:<10}  at load {load:5.1f} qps")

    usage = runtime.service_usage(spec.name)
    rented = service.iaas.sizing.rented_cores
    rented_mem = service.iaas.sizing.rented_memory_mb
    print(f"\nmean occupation   : {usage.mean_cores:.2f} cores, "
          f"{usage.mean_memory_mb:.0f} MB")
    print(f"pure IaaS holds   : {rented:.0f} cores, {rented_mem:.0f} MB all day")
    print(f"reduction         : CPU {100 * (1 - usage.mean_cores / rented):.1f} %, "
          f"memory {100 * (1 - usage.mean_memory_mb / rented_mem):.1f} %")
    print(f"meter overhead    : {runtime.meter_overhead() * 100:.2f} % of the node")


if __name__ == "__main__":
    main()
