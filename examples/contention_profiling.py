#!/usr/bin/env python
"""Profiling walkthrough: meter curves, pressure inversion, surfaces, μ.

Shows the §IV-B/§VI machinery in isolation:

1. profile the three contention meters (Fig. 8 curves),
2. invert a live meter observation into a pressure estimate,
3. build a microservice's latency surfaces (Fig. 9),
4. combine everything into the Eq. 6 μ and the Eq. 5 admissible load.

Run:  python examples/contention_profiling.py
"""

from repro.cluster.resource_model import DemandVector
from repro.core.config import AmoebaConfig
from repro.core.meters import AXIS_METERS, profile_meter
from repro.core.monitor import ContentionMonitor
from repro.core.mu_model import NOM_WEIGHTS, mu_value
from repro.core.queueing import max_arrival_rate
from repro.core.surfaces import build_surface_set
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.workloads import benchmark


def main() -> None:
    # 1. Fig. 8: each meter's latency-vs-pressure curve
    print("=== meter profiles (Fig. 8) ===")
    for name in AXIS_METERS:
        prof = profile_meter(name, points=5)
        pts = ", ".join(
            f"p={p:.2f}:{lat * 1000:.1f}ms" for p, lat in zip(prof.pressures, prof.latencies)
        )
        print(f"{name:<10} {pts}")

    # 2. live measurement: run the monitor on a platform with hidden
    #    background pressure and watch it quantify that pressure
    print("\n=== live pressure quantification ===")
    env = Environment()
    rng = RngRegistry(seed=3)
    platform = ServerlessPlatform(env, rng)
    monitor = ContentionMonitor(env, platform, AmoebaConfig(), rng)
    monitor.start()
    caps = platform.machine.capacity
    hidden = (0.55, 0.30, 0.10)
    platform.machine.inject_background(
        DemandVector(cpu=hidden[0] * caps[0], io_mbps=hidden[1] * caps[1], net_mbps=hidden[2] * caps[2])
    )
    env.run(until=90.0)
    measured = monitor.pressure()
    for axis, h, m in zip(("cpu", "io", "net"), hidden, measured):
        print(f"{axis:<4} hidden pressure {h:.2f}  ->  meters report {m:.2f}")

    # 3. Fig. 9: the dd benchmark's latency surfaces
    print("\n=== latency surfaces for 'dd' (Fig. 9) ===")
    spec = benchmark("dd")
    surfaces = build_surface_set(spec, load_max=20.0)
    for axis, label in enumerate(("cpu", "io", "net")):
        row = ", ".join(
            f"P={p:.1f}:{surfaces.surfaces[axis].predict(p, 8.0) * 1000:.0f}ms"
            for p in (0.0, 0.5, 1.0, 1.5)
        )
        print(f"{label:<4} at 8 qps: {row}")

    # 4. Eq. 6 + Eq. 5: from pressure to an admissible load
    print("\n=== from pressure to the switch decision ===")
    load = 8.0
    axis_lat = surfaces.axis_latencies(measured, load)
    calibrated = mu_value("dd", surfaces.solo_latency, axis_lat, (0.9, 0.8, 0.2),
                          surfaces.alpha)
    pessimistic = mu_value("dd", surfaces.solo_latency, axis_lat, NOM_WEIGHTS,
                           surfaces.alpha)
    for label, est in (("calibrated", calibrated), ("NoM (w=1)", pessimistic)):
        lam = max_arrival_rate(est.mu, n=6, qos=spec.qos_target)
        print(f"{label:<11} mu={est.mu:5.2f}/s  predicted latency "
              f"{est.predicted_latency * 1000:5.1f} ms  ->  lambda(mu) = {lam:5.2f} qps")
    print("\nthe pessimistic variant admits less load -> switches to serverless later")


if __name__ == "__main__":
    main()
