"""Cascade-determinism gates: the graph family replays bit-for-bit.

Three claims (DESIGN.md §13):

* a chain with a mid-chain brownout — retries, give-ups, backpressure
  sheds and all — is ``float.hex``-identical across runs;
* worker count is invisible: ``run_many`` over graph requests merges in
  submission order, so ``workers=2`` reproduces serial bit-for-bit;
* a single-node DAG with deadline propagation off *is* the flat
  scenario: same RNG stream names, same construction order, so the
  latency stream is bit-identical to ``run_amoeba`` on the equivalent
  flat scenario.
"""

import pytest

from repro.experiments.dag import dag_scenario
from repro.experiments.executor import RunRequest, run_many
from repro.experiments.graphrun import run_graph
from repro.experiments.runner import run_amoeba
from repro.experiments.scenarios import Scenario, sized_reservoir
from repro.graph import GraphScenario, chain_topology
from repro.workloads import ConstantTrace, benchmark


def _graph_hexes(result):
    assert result.graph is not None
    return [x.hex() for x in result.graph.latencies]


def _node_hexes(result, name):
    return [x.hex() for x in result.services[name].metrics.latencies.values()]


class TestCascadeDeterminism:
    @pytest.mark.parametrize("seed", [0, 7])
    def test_brownout_cascade_replays_hex_identically(self, seed):
        scenario = dag_scenario(3, seed=seed, day=60.0)
        a, b = run_graph(scenario), run_graph(scenario)
        assert _graph_hexes(a) == _graph_hexes(b)
        assert a.graph.retries == b.graph.retries
        assert a.graph.backpressure_sheds == b.graph.backpressure_sheds
        assert a.graph.failed_by_node == b.graph.failed_by_node
        for node in a.services:
            assert _node_hexes(a, node) == _node_hexes(b, node)

    def test_worker_count_is_invisible_to_graph_batches(self):
        requests = [
            RunRequest(system="graph", scenario=dag_scenario(3, day=60.0)),
            RunRequest(system="graph", scenario=dag_scenario(3, day=60.0, resilient=False)),
        ]
        serial = run_many(requests, workers=1, cache=False)
        fanned = run_many(requests, workers=2, cache=False)
        for a, b in zip(serial, fanned):
            assert _graph_hexes(a) == _graph_hexes(b)
            assert a.graph.retries == b.graph.retries

    def test_cascade_machinery_actually_engages(self):
        # the brownout must provoke retries, give-ups and backpressure —
        # a cascade test against a quiet graph would prove nothing
        result = run_graph(dag_scenario(4, day=60.0))
        g = result.graph
        assert g.retries["attempted"] > 0
        assert g.retries["exhausted"] + g.retries["deadline_abandoned"] > 0
        assert g.total_backpressure_sheds > 0
        assert g.failed > 0 and g.completed > 0

    def test_cascade_dies_at_its_origin_edge(self):
        # a browned-out node sheds at its *ingress* edge; nothing past it
        # ever sees the doomed request, so edges downstream of the
        # brownout stay shed-free — the cascade dies where it starts
        scenario = dag_scenario(4, day=60.0)
        result = run_graph(scenario)
        g = result.graph
        mid = scenario.brownout.node
        into_mid = sum(c for k, c in g.backpressure_sheds.items() if k.endswith(f"->{mid}"))
        assert into_mid > 0
        downstream = [k for k in g.backpressure_sheds if k.startswith(f"{mid}->")]
        assert all(g.backpressure_sheds[k] == 0 for k in downstream)


class TestSingleNodeFlatIdentity:
    def test_single_node_dag_is_bit_identical_to_the_flat_scenario(self):
        day, rate, limit = 120.0, 3.0, 8
        trace = ConstantTrace(rate)
        reservoir = sized_reservoir(trace, day)
        graph = GraphScenario(
            name="single-node-identity",
            topology=chain_topology(1, "float"),
            trace=trace,
            e2e_target=benchmark("float").qos_target,
            duration=day,
            seed=5,
            retry=None,
            propagate_deadlines=False,
            iaas_peak_rate=rate,
            reservoir=reservoir,
            limits=(limit,),
        )
        flat = Scenario(
            foreground=benchmark("float"),
            trace=trace,
            limit=limit,
            background=(),
            duration=day,
            seed=5,
            iaas_peak_rate=rate,
            reservoir=reservoir,
        )
        g = run_graph(graph)
        a = run_amoeba(flat)
        assert _node_hexes(g, "float") == _node_hexes(a, "float")
        # the orchestrator's own accounting agrees with the service metrics
        assert g.graph.completed == g.services["float"].metrics.completed
        assert g.graph.failed == 0 and g.graph.total_backpressure_sheds == 0
