"""Topology validation and the deterministic seeded builders."""

import pytest

from repro.graph import (
    GraphEdge,
    GraphNode,
    GraphTopology,
    chain_topology,
    edge_network_cost,
    fanout_topology,
    layered_topology,
)


def _n(*names):
    return tuple(GraphNode(name, "matmul") for name in names)


class TestValidation:
    def test_empty_topology_rejected(self):
        with pytest.raises(ValueError, match="at least one node"):
            GraphTopology(nodes=(), edges=())

    def test_duplicate_node_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate node names"):
            GraphTopology(nodes=_n("a", "a"), edges=())

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(ValueError, match="unknown node"):
            GraphTopology(nodes=_n("a"), edges=(GraphEdge("a", "ghost"),))

    def test_duplicate_edge_rejected(self):
        with pytest.raises(ValueError, match="duplicate edge"):
            GraphTopology(
                nodes=_n("a", "b"), edges=(GraphEdge("a", "b"), GraphEdge("a", "b", 0.01))
            )

    def test_self_edge_rejected(self):
        with pytest.raises(ValueError, match="self-edge"):
            GraphEdge("a", "a")

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            GraphTopology(
                nodes=_n("a", "b", "c"),
                edges=(GraphEdge("a", "b"), GraphEdge("b", "c"), GraphEdge("c", "b")),
            )

    def test_multiple_roots_rejected(self):
        with pytest.raises(ValueError, match="exactly one root"):
            GraphTopology(nodes=_n("a", "b", "c"), edges=(GraphEdge("a", "c"),))

    def test_unreachable_node_rejected(self):
        # b -> c hangs off to the side; a is the only root but c's parent
        # chain never connects back to it
        with pytest.raises(ValueError, match="exactly one root|unreachable"):
            GraphTopology(
                nodes=_n("a", "b", "c"),
                edges=(GraphEdge("b", "c"),),
            )

    def test_negative_network_cost_rejected(self):
        with pytest.raises(ValueError, match="network_s"):
            GraphEdge("a", "b", network_s=-0.001)

    def test_bad_exec_scale_rejected(self):
        with pytest.raises(ValueError, match="exec_scale"):
            GraphNode("a", "matmul", exec_scale=0.0)


class TestStructure:
    def test_chain_shape(self):
        topo = chain_topology(4, "matmul")
        assert [n.name for n in topo.nodes] == ["matmul", "matmul_1", "matmul_2", "matmul_3"]
        assert topo.root == "matmul"
        assert topo.sinks() == ("matmul_3",)
        assert topo.topo_order() == ("matmul", "matmul_1", "matmul_2", "matmul_3")

    def test_single_node_chain_keeps_bare_benchmark_name(self):
        # index 0 keeps the bare name so a 1-node DAG reuses the flat
        # scenario's RNG stream names (the bit-identity gate's premise)
        topo = chain_topology(1, "float")
        assert topo.nodes[0].name == "float"
        assert topo.edges == ()

    def test_fanout_joins_at_single_sink(self):
        topo = fanout_topology(3, "matmul")
        assert topo.root == "matmul"
        assert topo.sinks() == ("matmul_join",)
        assert len(topo.parents("matmul_join")) == 3
        assert len(topo.edges) == 6

    def test_node_lookup(self):
        topo = chain_topology(2)
        assert topo.node("matmul_1").benchmark == "matmul"
        with pytest.raises(KeyError):
            topo.node("ghost")

    def test_describe_mentions_size(self):
        assert "4 nodes" in chain_topology(4).describe()


class TestDeterminism:
    def test_edge_cost_is_a_pure_function_of_seed_and_edge(self):
        a = edge_network_cost(7, 0, 1)
        b = edge_network_cost(7, 0, 1)
        assert a.hex() == b.hex()
        assert edge_network_cost(7, 1, 2) != a
        assert edge_network_cost(8, 0, 1) != a

    def test_edge_costs_do_not_depend_on_draw_order(self):
        # draw edge (2,3) first in one ordering, last in another
        first = [edge_network_cost(3, i, i + 1) for i in (2, 0, 1)]
        second = [edge_network_cost(3, i, i + 1) for i in (0, 1, 2)]
        assert first[0].hex() == second[2].hex()

    def test_seeded_builders_are_reproducible(self):
        assert chain_topology(4, seed=5) == chain_topology(4, seed=5)
        assert fanout_topology(3, seed=5) == fanout_topology(3, seed=5)
        assert layered_topology(5, depth=4, width=2) == layered_topology(5, depth=4, width=2)
        assert layered_topology(5, depth=4, width=2) != layered_topology(6, depth=4, width=2)

    def test_layered_topology_is_a_valid_single_rooted_dag(self):
        topo = layered_topology(11, depth=5, width=3)
        assert topo.root == topo.topo_order()[0]
        assert topo.sinks() == (topo.topo_order()[-1],)
