"""RetryPolicy: the pure give-up function behind every retry decision."""

import pytest

from repro.graph import RetryPolicy


def test_validation():
    with pytest.raises(ValueError, match="max_attempts"):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError, match="backoff_s"):
        RetryPolicy(backoff_s=-0.1)


def test_none_policy_never_retries():
    policy = RetryPolicy.none()
    assert policy.max_attempts == 1
    assert policy.give_up_reason(1, remaining=10.0, attempt_cost=0.1) == "exhausted"


def test_exhausted_at_the_attempt_cap():
    policy = RetryPolicy.budgeted(max_attempts=3)
    assert policy.give_up_reason(2, remaining=10.0, attempt_cost=0.1) is None
    assert policy.give_up_reason(3, remaining=10.0, attempt_cost=0.1) == "exhausted"


def test_deadline_aware_gives_up_when_budget_cannot_cover_an_attempt():
    policy = RetryPolicy.budgeted(max_attempts=5, backoff_s=0.1)
    # after 1 attempt the retry waits 0.1s; 0.5s remaining covers a 0.3s
    # attempt, 0.35s remaining does not
    assert policy.give_up_reason(1, remaining=0.5, attempt_cost=0.3) is None
    assert policy.give_up_reason(1, remaining=0.35, attempt_cost=0.3) == "deadline_abandoned"


def test_deadline_blind_client_only_stops_at_its_absolute_deadline():
    naive = RetryPolicy.storm()
    # a budgeted client would refuse this (0.2s left cannot cover a 0.3s
    # attempt); the naive client retries anyway, and only stops once the
    # deadline itself has passed (remaining below the backoff wait)
    assert naive.give_up_reason(1, remaining=0.2, attempt_cost=0.3) is None
    assert naive.give_up_reason(1, remaining=0.0, attempt_cost=0.3) == "deadline_abandoned"


def test_no_deadline_means_only_the_cap_stops_retries():
    policy = RetryPolicy.budgeted(max_attempts=4)
    assert policy.give_up_reason(3, remaining=None, attempt_cost=99.0) is None
    assert policy.give_up_reason(4, remaining=None, attempt_cost=99.0) == "exhausted"


def test_give_up_reasons_are_telemetry_kinds():
    from repro.telemetry import RETRY_KINDS

    assert "exhausted" in RETRY_KINDS and "deadline_abandoned" in RETRY_KINDS
