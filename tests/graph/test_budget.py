"""Deadline-budget math: reservations, upstream costs, per-node targets."""

import pytest

from repro.graph import (
    GraphEdge,
    GraphNode,
    GraphTopology,
    chain_topology,
    critical_path_cost,
    downstream_reservation,
    node_costs,
    node_qos_targets,
    upstream_cost,
)
from repro.graph.budget import QOS_FLOOR_FACTOR
from repro.workloads import benchmark


def test_chain_reservation_telescopes():
    topo = chain_topology(3, "matmul", network_s=0.01)
    costs = node_costs(topo)
    exec_t = benchmark("matmul").exec_time
    assert all(c == exec_t for c in costs.values())
    res = downstream_reservation(topo, costs)
    assert res["matmul_2"] == 0.0
    assert res["matmul_1"] == pytest.approx(0.01 + exec_t)
    assert res["matmul"] == pytest.approx(2 * (0.01 + exec_t))


def test_upstream_cost_mirrors_reservation_on_a_chain():
    topo = chain_topology(3, "matmul", network_s=0.01)
    up = upstream_cost(topo)
    res = downstream_reservation(topo)
    assert up["matmul"] == 0.0
    assert up["matmul_2"] == pytest.approx(res["matmul"])


def test_critical_path_takes_the_slowest_branch():
    # root fans out to a fast and a slow branch joining at the sink
    nodes = (
        GraphNode("r", "float"),
        GraphNode("fast", "float"),
        GraphNode("slow", "matmul"),
        GraphNode("s", "float"),
    )
    edges = (
        GraphEdge("r", "fast", 0.001),
        GraphEdge("r", "slow", 0.001),
        GraphEdge("fast", "s", 0.001),
        GraphEdge("slow", "s", 0.001),
    )
    topo = GraphTopology(nodes=nodes, edges=edges)
    costs = node_costs(topo)
    expected = costs["r"] + 0.001 + costs["slow"] + 0.001 + costs["s"]
    assert critical_path_cost(topo) == pytest.approx(expected)


def test_qos_targets_share_the_budget_along_the_critical_path():
    topo = chain_topology(4, "matmul", network_s=0.0)
    exec_t = benchmark("matmul").exec_time
    generous = node_qos_targets(topo, e2e_target=40 * exec_t)
    # equal costs on a chain -> equal shares of T
    assert all(t == pytest.approx(10 * exec_t) for t in generous.values())


def test_qos_targets_clamp_to_the_floor_for_infeasible_budgets():
    topo = chain_topology(4, "matmul")
    exec_t = benchmark("matmul").exec_time
    tight = node_qos_targets(topo, e2e_target=1e-3)
    assert all(t == pytest.approx(QOS_FLOOR_FACTOR * exec_t) for t in tight.values())


def test_qos_targets_reject_nonpositive_budget():
    with pytest.raises(ValueError, match="e2e_target"):
        node_qos_targets(chain_topology(2), 0.0)
