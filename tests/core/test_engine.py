"""Hybrid execution engine: routing, canaries, the switch protocol."""

import itertools

import pytest

from repro.core.config import AmoebaConfig
from repro.core.engine import DeployMode, HybridExecutionEngine
from repro.iaas.service import IaaSService, ServiceState
from repro.iaas.sizing import size_service
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query

QIDS = itertools.count()


def make_engine(config=None, initial=DeployMode.IAAS, seed=6):
    env = Environment()
    rng = RngRegistry(seed=seed)
    config = config if config is not None else AmoebaConfig(min_dwell=0.0)
    spec = benchmark("float")
    metrics = ServiceMetrics("float", spec.qos_target)
    sizing = size_service(spec, 30.0)
    iaas = IaaSService(env, spec, sizing, rng, metrics=metrics)
    if initial is DeployMode.IAAS:
        iaas.deploy(instant=True)
    serverless = ServerlessPlatform(env, rng)
    serverless.register(spec, metrics=metrics, limit=8)
    engine = HybridExecutionEngine(
        env, spec, iaas, serverless, metrics, config, rng, initial_mode=initial
    )
    return env, engine, metrics


def send(env, engine, n=1):
    qs = []
    for _ in range(n):
        q = Query(qid=next(QIDS), service="float", t_submit=env.now)
        engine.route(q)
        qs.append(q)
    return qs


class TestRouting:
    def test_iaas_mode_serves_on_iaas(self):
        env, engine, metrics = make_engine(config=AmoebaConfig(min_dwell=0.0, canary_fraction=0.0))
        qs = send(env, engine, 5)
        env.run(until=10.0)
        assert all(q.served_by == "iaas" for q in qs)

    def test_serverless_mode_serves_on_serverless(self):
        env, engine, metrics = make_engine(initial=DeployMode.SERVERLESS)
        qs = send(env, engine, 3)
        env.run(until=30.0)
        assert all(q.served_by == "serverless" for q in qs)

    def test_canaries_shadow_to_serverless(self):
        cfg = AmoebaConfig(min_dwell=0.0, canary_fraction=0.5)
        env, engine, metrics = make_engine(config=cfg)
        send(env, engine, 60)
        env.run(until=30.0)
        assert len(metrics.canary_latencies) > 5  # ~half shadowed
        assert metrics.completed == 60  # canaries not in user QoS

    def test_no_canaries_when_disabled(self):
        cfg = AmoebaConfig(min_dwell=0.0, canary_fraction=0.0)
        env, engine, metrics = make_engine(config=cfg)
        send(env, engine, 40)
        env.run(until=30.0)
        assert len(metrics.canary_latencies) == 0


class TestSwitchToServerless:
    def test_prewarm_then_flip_then_release(self):
        env, engine, _ = make_engine()
        accepted = engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        assert accepted
        assert engine.mode is DeployMode.IAAS  # not flipped yet
        env.run(until=30.0)
        assert engine.mode is DeployMode.SERVERLESS
        # Eq. 7: 10 qps x 0.3 s QoS = 3 containers + headroom
        assert engine.serverless.warm_count("float") >= 3
        assert engine.iaas.state is ServiceState.STOPPED  # drained + released

    def test_flip_happens_only_after_ack(self):
        env, engine, _ = make_engine()
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=0.5)  # cold start not done yet
        assert engine.mode is DeployMode.IAAS
        env.run(until=30.0)
        assert engine.mode is DeployMode.SERVERLESS

    def test_nop_flips_immediately(self):
        cfg = AmoebaConfig(min_dwell=0.0).variant_nop()
        env, engine, _ = make_engine(config=cfg)
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=0.2)
        assert engine.mode is DeployMode.SERVERLESS
        assert engine.serverless.warm_count("float") == 0  # nothing prewarmed

    def test_switch_to_same_mode_refused(self):
        env, engine, _ = make_engine()
        assert not engine.request_switch(DeployMode.IAAS, load=5.0)

    def test_switch_while_switching_refused(self):
        env, engine, _ = make_engine()
        assert engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        assert not engine.request_switch(DeployMode.SERVERLESS, load=10.0)

    def test_dwell_time_blocks_rapid_flip(self):
        cfg = AmoebaConfig(min_dwell=300.0)
        env, engine, _ = make_engine(config=cfg)
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=30.0)
        assert engine.mode is DeployMode.SERVERLESS
        assert not engine.request_switch(DeployMode.IAAS, load=20.0)  # dwell
        env.run(until=400.0)
        assert engine.request_switch(DeployMode.IAAS, load=20.0)


class TestSwitchToIaaS:
    def test_boot_before_flip(self):
        env, engine, _ = make_engine(initial=DeployMode.SERVERLESS)
        engine.request_switch(DeployMode.IAAS, load=20.0)
        env.run(until=2.0)
        assert engine.mode is DeployMode.SERVERLESS  # VMs still booting
        env.run(until=90.0)
        assert engine.mode is DeployMode.IAAS
        assert engine.iaas.state is ServiceState.RUNNING

    def test_round_trip(self):
        env, engine, _ = make_engine()
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=60.0)
        engine.request_switch(DeployMode.IAAS, load=20.0)
        env.run(until=200.0)
        assert engine.mode is DeployMode.IAAS
        qs = send(env, engine, 2)
        env.run(until=210.0)
        assert all(q.served_by == "iaas" for q in qs)


class TestTimelines:
    def test_mode_timeline_records_switches(self):
        env, engine, _ = make_engine()
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=60.0)
        assert [m for _, m in engine.mode_timeline] == [
            DeployMode.IAAS,
            DeployMode.SERVERLESS,
        ]
        assert len(engine.switch_events) == 1
        t, target, load = engine.switch_events[0]
        assert target is DeployMode.SERVERLESS and load == 10.0

    def test_mode_at(self):
        env, engine, _ = make_engine()
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=60.0)
        flip_t = engine.mode_timeline[1][0]
        assert engine.mode_at(flip_t - 0.01) is DeployMode.IAAS
        assert engine.mode_at(flip_t + 0.01) is DeployMode.SERVERLESS

    def test_serverless_time_fraction(self):
        env, engine, _ = make_engine()
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=100.0)
        frac = engine.serverless_time_fraction(100.0)
        flip_t = engine.mode_timeline[1][0]
        assert frac == pytest.approx((100.0 - flip_t) / 100.0, rel=1e-6)
        assert engine.serverless_time_fraction(0.0) == 0.0
