"""Flash-crowd surge detection and the emergency preemption switch."""

import pytest

from repro.cluster import SpotSpec
from repro.core.config import AmoebaConfig
from repro.core.engine import DeployMode
from repro.core.runtime import AmoebaRuntime
from repro.faults import FaultPlan
from repro.workloads.functionbench import benchmark
from repro.workloads.traces import ConstantTrace, StepTrace

FAST = AmoebaConfig(
    min_sample_period=10.0,
    max_sample_period=10.0,
    min_dwell=30.0,
)


def spike_trace(high=20.0, t_up=300.0, t_down=None):
    """A low base with one rectangular flash crowd (optionally ending)."""
    steps = [(0.0, 4.0), (t_up, high)]
    if t_down is not None:
        steps.append((t_down, 4.0))
    trace = StepTrace(steps)
    trace.peak_rate = 30.0  # size the IaaS side generously
    return trace


class TestConfigKnobs:
    def test_surge_validation(self):
        with pytest.raises(ValueError):
            AmoebaConfig(surge_factor=1.0)
        with pytest.raises(ValueError):
            AmoebaConfig(surge_ewma_alpha=0.0)
        with pytest.raises(ValueError):
            AmoebaConfig(surge_ewma_alpha=1.5)
        with pytest.raises(ValueError):
            AmoebaConfig(surge_hold_periods=0)
        with pytest.raises(ValueError):
            AmoebaConfig(surge_headroom=-1)


class TestSurgeDetection:
    def test_steady_load_never_trips(self):
        rt = AmoebaRuntime(seed=7, config=FAST)
        svc = rt.add_service(benchmark("float"), ConstantTrace(5.0), limit=6)
        rt.run(until=600.0)
        assert svc.controller.surge_periods == 0
        assert all(not d.surge for d in svc.controller.decisions)

    def test_flash_crowd_trips_the_detector(self):
        rt = AmoebaRuntime(seed=7, config=FAST)
        svc = rt.add_service(benchmark("float"), spike_trace(), limit=6)
        rt.run(until=600.0)
        assert svc.controller.surge_periods >= 1
        surged = [d for d in svc.controller.decisions if d.surge]
        assert surged and all(d.time > 300.0 for d in surged)
        # tripped samples stay out of the EWMA, so a multi-period crowd
        # keeps reading as a surge instead of normalising itself away
        assert len(surged) >= 3

    def test_surge_window_lapses_after_the_crowd_ends(self):
        rt = AmoebaRuntime(seed=7, config=FAST)
        svc = rt.add_service(
            benchmark("float"), spike_trace(t_up=300.0, t_down=360.0), limit=6
        )
        rt.run(until=300.0)
        assert not svc.engine.in_surge
        rt.run(until=340.0)
        assert svc.engine.in_surge
        # crowd over: no more trips, the hold window expires
        rt.run(until=600.0)
        assert not svc.engine.in_surge

    def test_detection_is_deterministic(self):
        def run():
            rt = AmoebaRuntime(seed=7, config=FAST)
            svc = rt.add_service(benchmark("float"), spike_trace(), limit=6)
            rt.run(until=600.0)
            return [(d.time, d.surge) for d in svc.controller.decisions]

        assert run() == run()


def make_pinned_runtime(limit, rate, spot=True, dwell=600.0):
    """A runtime whose controller never acts (first decision at t=3600)."""
    cfg = AmoebaConfig(min_sample_period=3600.0, max_sample_period=3600.0, min_dwell=dwell)
    rt = AmoebaRuntime(
        seed=7, config=cfg, spot=SpotSpec(fraction=0.5) if spot else None
    )
    svc = rt.add_service(benchmark("float"), ConstantTrace(rate), limit=limit)
    rt.run(until=60.0)
    assert svc.engine.mode is DeployMode.IAAS
    return rt, svc


class TestEmergencyPreemptionSwitch:
    def test_engine_is_wired_to_the_iaas_notice_hook(self):
        rt, svc = make_pinned_runtime(limit=6, rate=3.0)
        assert svc.iaas.on_preemption == svc.engine.handle_preemption

    def test_notice_waives_dwell_and_switches_to_serverless(self):
        rt, svc = make_pinned_runtime(limit=6, rate=3.0)
        svc.engine.last_switch_time = rt.env.now  # dwell freshly armed
        assert not svc.engine.can_switch()
        svc.engine.handle_preemption(120.0)
        assert svc.engine.preemption_switches == 1
        rt.run(until=600.0)
        assert svc.engine.mode is DeployMode.SERVERLESS

    def test_infeasible_serverless_refuses_the_emergency_switch(self):
        # the container ceiling cannot hold the offered load: stay on
        # IaaS and let the drain protocol handle the reclamation
        rt, svc = make_pinned_runtime(limit=2, rate=25.0)
        svc.engine.handle_preemption(120.0)
        assert svc.engine.preemption_switches == 0
        assert svc.engine.mode is DeployMode.IAAS

    def test_notice_is_a_noop_when_already_serverless(self):
        rt, svc = make_pinned_runtime(limit=6, rate=3.0)
        svc.engine.handle_preemption(120.0)
        rt.run(until=600.0)
        assert svc.engine.mode is DeployMode.SERVERLESS
        svc.engine.handle_preemption(120.0)
        assert svc.engine.preemption_switches == 1  # the first one only

    def test_full_path_graceful_episode_under_management(self):
        # end to end: watcher -> notice -> drain -> replacement, with the
        # serverless ceiling too small for an emergency escape
        cfg = AmoebaConfig(min_sample_period=3600.0, max_sample_period=3600.0)
        rt = AmoebaRuntime(
            seed=7,
            config=cfg,
            faults=FaultPlan(vm_preemption_prob=1.0, preemption_check_interval_s=30.0),
            spot=SpotSpec(fraction=0.5, notice_s=120.0, graceful=True),
        )
        svc = rt.add_service(benchmark("float"), ConstantTrace(25.0), limit=2)
        rt.run(until=600.0)
        assert svc.engine.mode is DeployMode.IAAS
        assert svc.metrics.preemptions["noticed"] == 1
        assert svc.metrics.preemptions["replaced"] == 1
        assert svc.metrics.preemptions["killed_inflight"] == 0
