"""The always-on kernel invariant monitor."""

import pickle

import pytest

from repro.core.invariants import InvariantMonitor, InvariantViolation
from repro.core.runtime import AmoebaRuntime
from repro.sim.environment import Environment
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.traces import ConstantTrace


def make_monitor(**kw):
    env = Environment()
    return env, InvariantMonitor(env, **kw)


def make_metrics(name="svc"):
    return ServiceMetrics(name, 1.0)


class TestConstruction:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            InvariantMonitor(env, check_interval=0.0)
        with pytest.raises(ValueError):
            InvariantMonitor(env, check_interval=60.0, wedge_window=30.0)

    def test_duplicate_register_rejected(self):
        env, mon = make_monitor()
        mon.register("svc", make_metrics(), lambda: 0)
        with pytest.raises(ValueError):
            mon.register("svc", make_metrics(), lambda: 0)

    def test_checks_run_periodically(self):
        env, mon = make_monitor(check_interval=10.0)
        mon.register("svc", make_metrics(), lambda: 0)
        env.run(until=105.0)
        assert mon.checks == 10


class TestViolations:
    def test_terminals_exceeding_arrivals_is_conservation(self):
        env, mon = make_monitor()
        m = make_metrics()
        m.completed = 3  # no arrivals recorded
        mon.register("svc", m, lambda: 0)
        with pytest.raises(InvariantViolation) as exc:
            mon.check_now()
        assert exc.value.invariant == "conservation"
        assert exc.value.service == "svc"

    def test_negative_census(self):
        env, mon = make_monitor()
        mon.register("svc", make_metrics(), lambda: -1)
        with pytest.raises(InvariantViolation) as exc:
            mon.check_now()
        assert exc.value.invariant == "census"

    def test_clock_monotonicity(self):
        env, mon = make_monitor()
        mon._last_now = 100.0  # as if a check had run in the "future"
        with pytest.raises(InvariantViolation) as exc:
            mon.check_now()
        assert exc.value.invariant == "clock"

    def test_wedged_service_trips_liveness(self):
        env, mon = make_monitor(check_interval=60.0, wedge_window=120.0)
        m = make_metrics()
        m.record_arrival(0.0)
        mon.register("svc", m, lambda: 1)  # one query, forever in flight
        with pytest.raises(InvariantViolation) as exc:
            env.run(until=1000.0)
        assert exc.value.invariant == "liveness"

    def test_progress_resets_the_wedge_clock(self):
        env, mon = make_monitor(check_interval=60.0, wedge_window=120.0)
        m = make_metrics()
        mon.register("svc", m, lambda: 1)

        def churn():
            while True:
                yield env.timeout(50.0)
                m.record_arrival(env.now)
                m.completed += 1

        env.process(churn())
        env.run(until=1000.0)  # no violation: terminals keep advancing
        assert mon.checks > 10

    def test_horizon_requires_exact_conservation(self):
        env, mon = make_monitor()
        m = make_metrics()
        m.record_arrival(0.0)
        m.record_arrival(0.0)
        m.completed = 1
        mon.register("svc", m, lambda: 0)  # one arrival unaccounted for
        with pytest.raises(InvariantViolation) as exc:
            mon.check_horizon()
        assert exc.value.invariant == "conservation"
        assert "at horizon" in str(exc.value)

    def test_horizon_passes_when_books_balance(self):
        env, mon = make_monitor()
        m = make_metrics()
        m.record_arrival(0.0)
        m.record_arrival(0.0)
        m.completed = 1
        mon.register("svc", m, lambda: 1)  # the second arrival is in flight
        mon.check_horizon()


class TestViolationPickling:
    def test_fields_survive_the_process_pool_boundary(self):
        exc = InvariantViolation("books off", invariant="conservation", service="svc")
        back = pickle.loads(pickle.dumps(exc))
        assert isinstance(back, InvariantViolation)
        assert str(back) == "books off"
        assert back.invariant == "conservation"
        assert back.service == "svc"


class TestRuntimeIntegration:
    def test_monitor_rides_along_every_run(self):
        rt = AmoebaRuntime(seed=7)
        rt.add_service(benchmark("float"), ConstantTrace(5.0), limit=6)
        rt.run(until=600.0)  # run() would raise on any violation
        assert rt.invariants.checks >= 9

    def test_background_services_are_watched_too(self):
        rt = AmoebaRuntime(seed=7)
        rt.add_service(benchmark("float"), ConstantTrace(5.0), limit=6)
        rt.add_background(benchmark("dd"), ConstantTrace(2.0))
        rt.run(until=300.0)
        assert set(rt.invariants._watches) == {"float", "dd"}
