"""Contention meters: profiles, inversion, measured-vs-analytic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.meters import (
    AXIS_METERS,
    METER_SPECS,
    MeterProfile,
    analytic_meter_latency,
    expected_platform_overhead,
    meter_axis_index,
    profile_meter,
    profile_meter_measured,
)
from repro.serverless.config import ServerlessConfig


class TestMeterSpecs:
    def test_three_meters_one_per_axis(self):
        assert len(METER_SPECS) == 3
        assert meter_axis_index("meter_cpu") == 0
        assert meter_axis_index("meter_io") == 1
        assert meter_axis_index("meter_net") == 2

    def test_unknown_meter_raises(self):
        with pytest.raises(KeyError):
            meter_axis_index("meter_gpu")

    def test_meters_are_one_hot_sensitive(self):
        """Each meter reacts to exactly its own axis (that is the design)."""
        for name in AXIS_METERS:
            axis = meter_axis_index(name)
            sens = METER_SPECS[name].sensitivity.as_tuple()
            assert sens[axis] == 1.0
            assert all(s == 0.0 for i, s in enumerate(sens) if i != axis)

    def test_meters_are_tiny(self):
        for spec in METER_SPECS.values():
            assert spec.exec_time <= 0.15


class TestOverhead:
    def test_expected_overhead_components(self):
        cfg = ServerlessConfig()
        spec = METER_SPECS["meter_cpu"]
        alpha = expected_platform_overhead(spec, cfg)
        assert alpha > cfg.proc_overhead_median  # proc + load + post
        assert alpha < 0.1


class TestProfiles:
    def test_analytic_profile_monotone(self):
        for name in AXIS_METERS:
            prof = profile_meter(name)
            assert np.all(np.diff(prof.latencies) >= 0)
            assert prof.latencies[-1] > prof.latencies[0]

    def test_profile_validation(self):
        with pytest.raises(ValueError):
            MeterProfile("m", 0, np.array([0.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            MeterProfile("m", 0, np.array([0.0, 0.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            MeterProfile("m", 0, np.array([0.0, 1.0]), np.array([2.0, 1.0]))

    def test_latency_interpolates(self):
        prof = MeterProfile("m", 0, np.array([0.0, 1.0]), np.array([0.1, 0.3]))
        assert prof.latency(0.5) == pytest.approx(0.2)
        assert prof.latency(-1.0) == pytest.approx(0.1)  # clamped
        assert prof.latency(5.0) == pytest.approx(0.3)

    def test_invert_round_trip_on_grid(self):
        prof = profile_meter("meter_cpu")
        for p in (0.0, 0.4, 0.8, 1.2):
            lat = prof.latency(p)
            assert prof.invert(lat) == pytest.approx(p, abs=0.02)

    @given(st.floats(0.0, 1.6))
    @settings(max_examples=100, deadline=None)
    def test_invert_is_inverse_everywhere(self, p):
        prof = profile_meter("meter_io")
        assert prof.invert(prof.latency(p)) == pytest.approx(p, abs=0.03)

    def test_invert_clamps(self):
        prof = profile_meter("meter_cpu")
        assert prof.invert(0.0) == prof.pressures[0]
        assert prof.invert(100.0) == prof.pressures[-1]

    def test_analytic_latency_validation(self):
        from repro.cluster.resource_model import ContentionConfig

        with pytest.raises(ValueError):
            analytic_meter_latency(
                METER_SPECS["meter_cpu"], 0.5, 3, ContentionConfig(), ServerlessConfig()
            )


class TestMeasuredProfile:
    def test_measured_matches_analytic(self):
        """The simulated profiling run reproduces the closed form."""
        measured = profile_meter_measured(
            "meter_cpu", points=4, queries_per_point=40, pressure_max=1.2, seed=3
        )
        analytic = profile_meter("meter_cpu", pressure_max=1.2)
        for p, lat in zip(measured.pressures, measured.latencies):
            assert lat == pytest.approx(analytic.latency(float(p)), rel=0.15)

    def test_measured_profile_monotone(self):
        measured = profile_meter_measured(
            "meter_net", points=4, queries_per_point=30, pressure_max=1.2, seed=5
        )
        assert np.all(np.diff(measured.latencies) >= 0)
