"""AmoebaConfig validation and variants."""

import pytest

from repro.core.config import AmoebaConfig


def test_defaults_valid():
    cfg = AmoebaConfig()
    assert cfg.use_pca and cfg.prewarm
    assert cfg.r_ile == 0.95  # the paper's QoS percentile


def test_variant_nom():
    cfg = AmoebaConfig().variant_nom()
    assert not cfg.use_pca
    assert cfg.prewarm  # NoM keeps prewarming


def test_variant_nop():
    cfg = AmoebaConfig().variant_nop()
    assert not cfg.prewarm
    assert cfg.use_pca  # NoP keeps the monitor


@pytest.mark.parametrize(
    "kwargs",
    [
        {"r_ile": 0.0},
        {"r_ile": 1.0},
        {"allowed_error": 1.0},
        {"switch_in_margin": 0.95, "switch_out_margin": 0.9},
        {"min_sample_period": 0.0},
        {"max_sample_period": 1.0, "min_sample_period": 10.0},
        {"canary_fraction": 0.9},
        {"meter_qps": 0.0},
        {"meter_window": 0},
        {"pca_min_rows": 2},
        {"pca_window": 5, "pca_min_rows": 12},
        {"pca_variance_coverage": 0.0},
        {"min_dwell": -1.0},
        {"prewarm_headroom": -1},
        {"surface_pressure_points": 1},
        {"surface_pressure_max": 0.0},
        {"discriminant": "magic"},
        {"naive_rho_max": 1.0},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ValueError):
        AmoebaConfig(**kwargs)


def test_hysteresis_ordering_enforced():
    cfg = AmoebaConfig(switch_in_margin=0.6, switch_out_margin=0.95)
    assert cfg.switch_in_margin < cfg.switch_out_margin
