"""The contention-aware deployment controller."""

import math

import pytest

from repro.core.config import AmoebaConfig
from repro.core.engine import DeployMode
from repro.core.runtime import AmoebaRuntime
from repro.faults import FaultPlan
from repro.workloads.functionbench import benchmark
from repro.workloads.traces import ConstantTrace, StepTrace


def make_runtime(config=None, seed=7):
    return AmoebaRuntime(seed=seed, config=config)


FAST = AmoebaConfig(
    min_sample_period=10.0,
    max_sample_period=10.0,
    min_dwell=30.0,
)


class TestDecisionLoop:
    def test_decisions_are_logged_periodically(self):
        rt = make_runtime(FAST)
        svc = rt.add_service(benchmark("float"), ConstantTrace(5.0), limit=6)
        rt.run(until=120.0)
        d = svc.controller.decisions
        assert len(d) == pytest.approx(12, abs=2)
        assert all(dec.lambda_max >= 0 for dec in d)
        assert svc.controller.period == 10.0

    def test_low_load_switches_to_serverless(self):
        rt = make_runtime(FAST)
        svc = rt.add_service(benchmark("float"), ConstantTrace(3.0), limit=6)
        rt.run(until=300.0)
        assert svc.engine.mode is DeployMode.SERVERLESS
        assert any(d.switched for d in svc.controller.decisions)

    def test_overload_switches_back_to_iaas(self):
        # load above any serverless ceiling with limit=2
        rt = make_runtime(FAST)
        trace = StepTrace([(0.0, 2.0), (300.0, 25.0)])
        trace.peak_rate = 30.0  # size the IaaS side generously
        svc = rt.add_service(benchmark("float"), trace, limit=2)
        rt.run(until=300.0)
        assert svc.engine.mode is DeployMode.SERVERLESS
        rt.run(until=900.0)
        assert svc.engine.mode is DeployMode.IAAS
        directions = [d for _, d, _ in svc.engine.switch_events]
        assert directions[-1] == DeployMode.IAAS

    def test_eq8_period_respected(self):
        rt = make_runtime()  # default config: clamp [15, 120]
        svc = rt.add_service(benchmark("float"), ConstantTrace(3.0), limit=6)
        # float: (1.4 - 0.3 + 0.08)/(0.9*0.3) = 4.37 -> clamped to 15
        assert svc.controller.period == pytest.approx(15.0)

    def test_slack_qos_uses_min_period(self):
        rt = make_runtime()
        svc = rt.add_service(benchmark("linpack"), ConstantTrace(2.0), limit=6)
        # linpack QoS 2.4 > cold start: Eq. 8 gives ~0 -> min period
        assert svc.controller.period == pytest.approx(15.0)

    def test_lambda_max_series_shape(self):
        rt = make_runtime(FAST)
        svc = rt.add_service(benchmark("float"), ConstantTrace(4.0), limit=6)
        rt.run(until=100.0)
        t, lm = svc.controller.lambda_max_series()
        assert len(t) == len(lm) == len(svc.controller.decisions)
        assert (lm > 0).all()

    def test_switch_loads_logged(self):
        rt = make_runtime(FAST)
        svc = rt.add_service(benchmark("float"), ConstantTrace(3.0), limit=6)
        rt.run(until=300.0)
        switches = svc.controller.switch_loads()
        assert switches
        assert switches[0][1] == "to_serverless"


class TestGuard:
    def test_guard_blocks_when_tenant_would_violate(self):
        rt = make_runtime(FAST)
        # a guard that always refuses
        svc = rt.add_service(benchmark("float"), ConstantTrace(3.0), limit=6)
        svc.controller.guard = lambda load, s: False
        rt.run(until=300.0)
        assert svc.engine.mode is DeployMode.IAAS
        assert any(d.guard_blocked for d in svc.controller.decisions)

    def test_guard_disabled_allows_switch(self):
        rt = make_runtime(FAST)
        svc = rt.add_service(
            benchmark("float"), ConstantTrace(3.0), guard_enabled=False, limit=6
        )
        rt.run(until=300.0)
        assert svc.engine.mode is DeployMode.SERVERLESS
        assert not any(d.guard_blocked for d in svc.controller.decisions)

    def test_switch_in_is_safe_accounts_for_tenants(self):
        rt = make_runtime(FAST)
        # matmul is strongly CPU-sensitive: a CPU-heavy switch-in hurts it
        rt.add_background(benchmark("matmul"), ConstantTrace(2.0), limit=6)
        rt.add_service(benchmark("float"), ConstantTrace(3.0), limit=6)
        rt.run(until=60.0)
        # a reasonable switch is safe; an absurd projected load is not
        assert rt.switch_in_is_safe("float", load=1.0, service_time=0.1)
        assert not rt.switch_in_is_safe("float", load=5000.0, service_time=1.0)


class TestSafeMode:
    STALE_CFG = AmoebaConfig(
        min_sample_period=10.0,
        max_sample_period=10.0,
        min_dwell=30.0,
        telemetry_stale_periods=2.0,
    )

    def test_dark_meters_pin_iaas(self):
        # every meter loop iteration starts an effectively-infinite
        # outage, so telemetry is stale from the first staleness budget on
        plan = FaultPlan(meter_outage_prob=1.0, meter_outage_duration_s=1e6)
        rt = AmoebaRuntime(seed=7, config=self.STALE_CFG, faults=plan)
        svc = rt.add_service(benchmark("float"), ConstantTrace(3.0), limit=6)
        rt.run(until=300.0)
        # the same load/config without the outage switches to serverless
        # (TestDecisionLoop); with dark meters the service stays pinned
        assert svc.engine.mode is DeployMode.IAAS
        assert svc.controller.safe_mode_periods > 0
        safes = [d for d in svc.controller.decisions if d.safe_mode]
        assert safes
        assert all(d.lambda_max == 0.0 for d in safes)
        assert all(math.isnan(d.mu) for d in safes)

    def test_late_outage_switches_back_out_of_serverless(self):
        # wire an inert (zero-rate) injector, then script a total meter
        # blackout once the service has already switched to serverless
        rt = AmoebaRuntime(seed=7, config=self.STALE_CFG, faults=FaultPlan())
        svc = rt.add_service(benchmark("float"), ConstantTrace(3.0), limit=6)
        rt.run(until=300.0)
        assert svc.engine.mode is DeployMode.SERVERLESS  # healthy so far
        assert svc.controller.safe_mode_periods == 0
        assert rt.faults is not None
        rt.faults.meter_outage = lambda meter: 1e6
        rt.run(until=600.0)
        assert svc.engine.mode is DeployMode.IAAS
        safes = [d for d in svc.controller.decisions if d.safe_mode]
        assert any(d.switched and d.switch_target is DeployMode.IAAS for d in safes)


class TestNaiveDiscriminant:
    def test_utilization_rule_used_when_configured(self):
        cfg = AmoebaConfig(
            min_sample_period=10.0,
            max_sample_period=10.0,
            min_dwell=30.0,
            discriminant="utilization",
            naive_rho_max=0.7,
        )
        rt = make_runtime(cfg)
        svc = rt.add_service(benchmark("float"), ConstantTrace(4.0), limit=6)
        rt.run(until=60.0)
        d = svc.controller.decisions[-1]
        # the naive rule: lambda_max = rho_max * n * mu exactly
        n_avail = rt.serverless.n_max("float")
        assert d.lambda_max == pytest.approx(0.7 * n_avail * d.mu, rel=1e-6)
