"""Eq. 6 μ estimation and its NoM variant."""

import pytest

from repro.core.mu_model import NOM_WEIGHTS, mu_value, predicted_latency


class TestPredictedLatency:
    def test_no_degradation_is_solo_plus_alpha(self):
        lat = predicted_latency(0.1, [0.1, 0.1, 0.1], [1, 1, 1], alpha=0.02)
        assert lat == pytest.approx(0.12)

    def test_weights_scale_degradations(self):
        # only axis 0 degraded by 0.1
        lat = predicted_latency(0.1, [0.2, 0.1, 0.1], [0.5, 1, 1], alpha=0.0)
        assert lat == pytest.approx(0.1 + 0.05)

    def test_nom_accumulates_all_axes(self):
        axis = [0.2, 0.15, 0.12]
        nom = predicted_latency(0.1, axis, NOM_WEIGHTS, alpha=0.0)
        assert nom == pytest.approx(0.1 + 0.1 + 0.05 + 0.02)

    def test_nom_never_below_calibrated_with_subunit_weights(self):
        axis = [0.25, 0.18, 0.13]
        calibrated = predicted_latency(0.1, axis, [0.9, 0.3, 0.1], alpha=0.01)
        nom = predicted_latency(0.1, axis, NOM_WEIGHTS, alpha=0.01)
        assert nom >= calibrated

    def test_floor_at_solo_plus_alpha(self):
        # a hostile bias cannot predict faster-than-solo
        lat = predicted_latency(0.1, [0.1, 0.1, 0.1], [1, 1, 1], alpha=0.02, bias=-5.0)
        assert lat == pytest.approx(0.12)

    def test_negative_degradations_clipped(self):
        # surfaces can dip below solo from interpolation noise
        lat = predicted_latency(0.1, [0.05, 0.1, 0.1], [1, 1, 1], alpha=0.0)
        assert lat == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            predicted_latency(0.0, [0.1, 0.1, 0.1], [1, 1, 1], alpha=0.0)
        with pytest.raises(ValueError):
            predicted_latency(0.1, [0.1, 0.1, 0.1], [1, 1, 1], alpha=-0.1)
        with pytest.raises(ValueError):
            predicted_latency(0.1, [0.1, 0.1], [1, 1, 1], alpha=0.0)


class TestMuValue:
    def test_mu_is_reciprocal(self):
        est = mu_value("s", 0.1, [0.15, 0.1, 0.1], [1, 1, 1], alpha=0.02)
        assert est.mu == pytest.approx(1.0 / est.predicted_latency)
        assert est.predicted_latency == pytest.approx(0.1 + 0.05 + 0.02)

    def test_carries_inputs(self):
        est = mu_value("svc", 0.1, [0.2, 0.1, 0.1], [0.5, 1.0, 1.0], alpha=0.01, bias=0.002)
        assert est.service == "svc"
        assert est.weights == (0.5, 1.0, 1.0)
        assert est.bias == pytest.approx(0.002)
        assert est.solo_latency == 0.1
        assert est.alpha == 0.01

    def test_more_contention_less_mu(self):
        lo = mu_value("s", 0.1, [0.12, 0.1, 0.1], [1, 1, 1], alpha=0.01)
        hi = mu_value("s", 0.1, [0.30, 0.1, 0.1], [1, 1, 1], alpha=0.01)
        assert hi.mu < lo.mu
