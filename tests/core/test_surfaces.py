"""Latency surfaces: fixed point, interpolation, measured-vs-analytic."""

import numpy as np
import pytest

from repro.cluster.resource_model import ContentionConfig
from repro.cluster.spec import NodeSpec
from repro.core.surfaces import (
    LatencySurface,
    SurfaceSet,
    build_surface_set,
    measured_surface,
    service_time_fixed_point,
)
from repro.workloads.functionbench import benchmark

NODE = NodeSpec(name="t")
CAPS = (NODE.cores, NODE.disk_mbps, NODE.net_mbps)
CFG = ContentionConfig()


class TestFixedPoint:
    def test_zero_load_zero_pressure_is_exec_time(self):
        spec = benchmark("float")
        s = service_time_fixed_point(spec, (0.0, 0.0, 0.0), 0.0, CAPS, CFG)
        assert s == pytest.approx(spec.exec_time)

    def test_grows_with_external_pressure(self):
        spec = benchmark("float")
        vals = [
            service_time_fixed_point(spec, (p, 0.0, 0.0), 0.0, CAPS, CFG)
            for p in (0.0, 0.5, 1.0, 1.5)
        ]
        assert vals == sorted(vals)
        assert vals[-1] > vals[0]

    def test_grows_with_own_load(self):
        spec = benchmark("matmul")
        vals = [
            service_time_fixed_point(spec, (0.0, 0.0, 0.0), v, CAPS, CFG)
            for v in (0.0, 10.0, 40.0, 80.0)
        ]
        assert vals == sorted(vals)

    def test_insensitive_axis_ignored(self):
        spec = benchmark("float")  # io sensitivity 0.05, tiny
        base = service_time_fixed_point(spec, (0.0, 0.0, 0.0), 0.0, CAPS, CFG)
        with_io = service_time_fixed_point(spec, (0.0, 1.0, 0.0), 0.0, CAPS, CFG)
        assert with_io < base * 1.05

    def test_converges_at_heavy_load(self):
        spec = benchmark("matmul")
        s = service_time_fixed_point(spec, (1.5, 0.0, 0.0), 100.0, CAPS, CFG)
        assert np.isfinite(s)
        assert s > spec.exec_time

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError):
            service_time_fixed_point(benchmark("float"), (0, 0, 0), -1.0, CAPS, CFG)


class TestLatencySurface:
    def surface(self):
        p = np.array([0.0, 1.0])
        v = np.array([0.0, 10.0])
        z = np.array([[1.0, 2.0], [3.0, 4.0]])
        return LatencySurface("s", 0, p, v, z)

    def test_exact_on_grid_nodes(self):
        s = self.surface()
        assert s.predict(0.0, 0.0) == 1.0
        assert s.predict(1.0, 0.0) == 3.0
        assert s.predict(0.0, 10.0) == 2.0
        assert s.predict(1.0, 10.0) == 4.0

    def test_bilinear_midpoint(self):
        assert self.surface().predict(0.5, 5.0) == pytest.approx(2.5)

    def test_clamped_outside_grid(self):
        s = self.surface()
        assert s.predict(-1.0, -5.0) == 1.0
        assert s.predict(9.0, 99.0) == 4.0

    def test_validation(self):
        p = np.array([0.0, 1.0])
        v = np.array([0.0, 10.0])
        with pytest.raises(ValueError):
            LatencySurface("s", 0, p, v, np.ones((3, 2)))
        with pytest.raises(ValueError):
            LatencySurface("s", 0, p[::-1], v, np.ones((2, 2)))
        with pytest.raises(ValueError):
            LatencySurface("s", 0, p, v, np.zeros((2, 2)))


class TestSurfaceSet:
    def test_build_produces_three_axes(self):
        ss = build_surface_set(benchmark("dd"))
        assert len(ss.surfaces) == 3
        assert ss.solo_latency == benchmark("dd").exec_time
        assert ss.alpha > 0

    def test_axis_latencies_reflect_sensitivity(self):
        ss = build_surface_set(benchmark("dd"))  # io-heavy
        L = ss.axis_latencies((1.2, 1.2, 1.2), 5.0)
        assert L[1] > L[0]  # io degradation dominates for dd
        assert L[1] > L[2]

    def test_axis_latencies_at_zero(self):
        ss = build_surface_set(benchmark("float"))
        L = ss.axis_latencies((0.0, 0.0, 0.0), 0.0)
        assert np.allclose(L, benchmark("float").exec_time, rtol=1e-6)

    def test_wrong_axis_order_rejected(self):
        ss = build_surface_set(benchmark("float"))
        with pytest.raises(ValueError):
            SurfaceSet(
                service="x",
                surfaces=(ss.surfaces[1], ss.surfaces[0], ss.surfaces[2]),
                solo_latency=1.0,
                alpha=0.0,
            )

    def test_monotone_in_pressure(self):
        ss = build_surface_set(benchmark("matmul"))
        vals = [ss.surfaces[0].predict(p, 5.0) for p in (0.0, 0.4, 0.8, 1.2, 1.6)]
        assert vals == sorted(vals)


class TestMeasuredSurface:
    def test_measured_close_to_analytic(self):
        """Mini-simulation profiling agrees with the closed-form surface."""
        spec = benchmark("float")
        surf = measured_surface(
            spec, axis=0, pressures=(0.0, 1.0), loads=(0.0, 4.0), duration=60.0, seed=2
        )
        analytic = build_surface_set(spec)
        for i, p in enumerate(surf.pressures):
            for j, v in enumerate(surf.loads):
                expected = analytic.surfaces[0].predict(float(p), float(v))
                assert float(surf.values[i, j]) == pytest.approx(expected, rel=0.2)
