"""Property-based engine invariants under random switch/load interleavings."""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import AmoebaConfig
from repro.core.engine import DeployMode, HybridExecutionEngine
from repro.iaas.service import IaaSService, ServiceState
from repro.iaas.sizing import size_service
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query

actions = st.lists(
    st.one_of(
        st.tuples(st.just("queries"), st.integers(1, 3)),
        st.tuples(st.just("to_serverless"), st.floats(1.0, 20.0)),
        st.tuples(st.just("to_iaas"), st.floats(1.0, 20.0)),
        st.tuples(st.just("advance"), st.floats(1.0, 60.0)),
    ),
    min_size=3,
    max_size=20,
)


@given(actions)
@settings(max_examples=25, deadline=None)
def test_engine_never_loses_queries_or_resources(script):
    env = Environment()
    rng = RngRegistry(seed=99)
    config = AmoebaConfig(min_dwell=0.0, canary_fraction=0.0)
    spec = benchmark("float")
    metrics = ServiceMetrics("float", spec.qos_target)
    iaas = IaaSService(env, spec, size_service(spec, 30.0), rng, metrics=metrics)
    iaas.deploy(instant=True)
    serverless = ServerlessPlatform(env, rng)
    serverless.register(spec, metrics=metrics, limit=8)
    engine = HybridExecutionEngine(env, spec, iaas, serverless, metrics, config, rng)
    qids = itertools.count()
    submitted = 0

    for kind, amount in script:
        if kind == "queries":
            for _ in range(int(amount)):
                engine.route(Query(qid=next(qids), service="float", t_submit=env.now))
                submitted += 1
        elif kind == "to_serverless":
            engine.request_switch(DeployMode.SERVERLESS, float(amount))
        elif kind == "to_iaas":
            engine.request_switch(DeployMode.IAAS, float(amount))
        else:
            env.run(until=env.now + float(amount))
        # timeline timestamps are monotone and start with the initial mode
        times = [t for t, _m in engine.mode_timeline]
        assert times == sorted(times)

    # let everything drain (including an in-flight switch)
    env.run(until=env.now + 600.0)
    assert not engine.switching
    # every routed query completed exactly once
    assert metrics.completed == submitted
    # resource hygiene: whichever side is inactive holds nothing
    if engine.mode is DeployMode.SERVERLESS:
        assert iaas.state in (ServiceState.STOPPED, ServiceState.RUNNING)
        if iaas.state is ServiceState.STOPPED:
            assert iaas.ledger.current_cores == 0.0
    else:
        assert iaas.state is ServiceState.RUNNING
        assert iaas.ledger.current_cores == iaas.sizing.rented_cores
    # the serverless pool never leaks container memory forever
    assert serverless.pool.state("float").n_busy == 0
