"""Eq. 7 prewarm sizing."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.prewarm import prewarm_count


def test_eq7_examples():
    # V=10 qps, QoS 0.3 s -> 3 containers sustain 10/s at QoS pace
    assert prewarm_count(10.0, 0.3) == 3
    assert prewarm_count(8.0, 1.6) == 13


def test_minimum_one_container():
    assert prewarm_count(0.0, 1.0) == 1
    assert prewarm_count(0.001, 1.0) == 1


def test_headroom_added():
    assert prewarm_count(10.0, 0.3, headroom=2) == 5


def test_cap_applied():
    assert prewarm_count(100.0, 1.0, n_cap=8) == 8


@given(st.floats(0.01, 200.0), st.floats(0.05, 5.0))
@settings(max_examples=200, deadline=None)
def test_eq7_inequality_holds(load, qos):
    """Paper Eq. 7: (n-1)/QoS < V <= n/QoS."""
    n = prewarm_count(load, qos)
    assert load <= n / qos + 1e-9
    if n > 1:
        assert (n - 1) / qos < load + 1e-9


def test_validation():
    with pytest.raises(ValueError):
        prewarm_count(-1.0, 1.0)
    with pytest.raises(ValueError):
        prewarm_count(1.0, 0.0)
    with pytest.raises(ValueError):
        prewarm_count(1.0, 1.0, headroom=-1)
    with pytest.raises(ValueError):
        prewarm_count(1.0, 1.0, n_cap=0)


def test_exact_multiple_boundary():
    # V*QoS exactly integral: Eq. 7's upper branch, n = V*QoS
    assert prewarm_count(10.0, 0.5) == math.ceil(5.0) == 5
