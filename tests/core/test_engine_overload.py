"""Engine x overload: brownout pinning, abort evidence, shed-aware prewarm."""

from repro.core.config import AmoebaConfig
from repro.core.engine import DeployMode, HybridExecutionEngine
from repro.core.prewarm import prewarm_count
from repro.faults import FaultInjector, FaultPlan
from repro.iaas.service import IaaSService
from repro.iaas.sizing import size_service
from repro.overload import OverloadGovernor, OverloadPolicy
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark


def make_engine(policy=None, config=None, plan=None, seed=6, limit=16):
    env = Environment()
    rng = RngRegistry(seed=seed)
    faults = FaultInjector(plan, rng) if plan is not None else None
    config = config if config is not None else AmoebaConfig(min_dwell=0.0)
    spec = benchmark("float")
    metrics = ServiceMetrics("float", spec.qos_target)
    gov = None
    if policy is not None:
        gov = OverloadGovernor(
            policy, qos_target=spec.qos_target, mu_serverless=5.0, mu_iaas=5.0
        )
    iaas = IaaSService(env, spec, size_service(spec, 30.0), rng, metrics=metrics, faults=faults)
    iaas.deploy(instant=True)
    serverless = ServerlessPlatform(env, rng, faults=faults)
    serverless.register(spec, metrics=metrics, limit=limit, overload=gov)
    engine = HybridExecutionEngine(
        env, spec, iaas, serverless, metrics, config, rng,
        initial_mode=DeployMode.IAAS, overload=gov,
    )
    return env, engine, gov


BREAKER_POLICY = OverloadPolicy(
    breaker_min_samples=1, breaker_threshold=1.0, breaker_dwell_s=30.0
)


class TestBrownout:
    def test_open_breaker_suppresses_switches(self):
        env, engine, gov = make_engine(policy=BREAKER_POLICY)
        gov.note_rejection("shed", env.now)  # trips the 1-sample breaker
        assert engine.in_brownout()
        assert not engine.can_switch()
        assert not engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        assert engine.mode is DeployMode.IAAS
        assert not engine.switch_events

    def test_switching_resumes_after_the_dwell(self):
        env, engine, gov = make_engine(policy=BREAKER_POLICY)
        gov.note_rejection("shed", env.now)
        env.run(until=40.0)  # past the 30 s dwell: breaker half-opens
        assert not engine.in_brownout()
        assert engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=120.0)
        assert engine.mode is DeployMode.SERVERLESS

    def test_no_governor_means_no_brownout(self):
        env, engine, gov = make_engine(policy=None)
        assert gov is None
        assert not engine.in_brownout()
        assert engine.can_switch()


class TestAbortEvidence:
    def test_aborted_switch_is_weighted_breaker_evidence(self):
        policy = OverloadPolicy(
            switch_abort_weight=4, breaker_min_samples=4, breaker_threshold=1.0
        )
        env, engine, gov = make_engine(
            policy=policy,
            config=AmoebaConfig(min_dwell=0.0, switch_ack_timeout=5.0),
            plan=FaultPlan(prewarm_ack_loss_prob=1.0),
        )
        assert engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=30.0)
        assert len(engine.switch_aborts) == 1
        # one abort carried enough weight to trip the breaker outright
        assert gov.breaker is not None and gov.breaker.trips == 1
        assert engine.in_brownout()


class TestShedAwarePrewarm:
    def _prewarm_pledges(self, gov_shed_times):
        policy = OverloadPolicy(breaker_enabled=False)
        env, engine, gov = make_engine(policy=policy)
        for t in gov_shed_times:
            gov.note_rejection("shed", t)
        assert engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=0.01)  # bootstrap the switch leg; cold starts pledge
        fs = engine.serverless.pool.state("float")
        return fs.warm_or_warming

    def test_prewarm_provisions_for_shed_traffic_too(self):
        headroom = AmoebaConfig().prewarm_headroom
        # Eq. 7 for the surviving 10 q/s load alone...
        assert self._prewarm_pledges([]) == prewarm_count(10.0, 0.3, headroom)
        # ...but 600 sheds in the last 60 s is another 10 q/s of demand
        assert self._prewarm_pledges([0.0] * 600) == prewarm_count(20.0, 0.3, headroom)

    def test_disabled_policy_ignores_shed_history(self):
        policy = OverloadPolicy.disabled()
        env, engine, gov = make_engine(policy=policy)
        assert engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=0.01)
        fs = engine.serverless.pool.state("float")
        assert fs.warm_or_warming == prewarm_count(10.0, 0.3, AmoebaConfig().prewarm_headroom)
