"""M/M/N math (paper Eqs. 1-5): closed forms, inverses, the discriminant."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queueing import (
    discriminant_lambda,
    erlang_c,
    erlang_pi0,
    erlang_pin,
    max_arrival_rate,
    mean_wait,
    min_servers,
    qos_satisfied,
    sojourn_quantile,
    wait_cdf,
    wait_quantile,
)


def brute_pi0(n, rho):
    a = n * rho
    total = sum(a**k / math.factorial(k) for k in range(n))
    total += a**n / (math.factorial(n) * (1 - rho))
    return 1.0 / total


class TestStationaryDistribution:
    @pytest.mark.parametrize("n,rho", [(1, 0.5), (2, 0.3), (5, 0.9), (10, 0.7), (40, 0.95)])
    def test_pi0_matches_brute_force(self, n, rho):
        assert erlang_pi0(n, rho) == pytest.approx(brute_pi0(n, rho), rel=1e-10)

    def test_pi0_large_n_no_overflow(self):
        val = erlang_pi0(500, 0.9)
        assert 0.0 < val < 1.0

    def test_pi0_empty_system(self):
        assert erlang_pi0(3, 0.0) == 1.0

    def test_pin_matches_brute_force(self):
        n, rho = 4, 0.6
        a = n * rho
        expected = a**n / math.factorial(n) * brute_pi0(n, rho)
        assert erlang_pin(n, rho) == pytest.approx(expected, rel=1e-10)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_pi0(0, 0.5)
        with pytest.raises(ValueError):
            erlang_pi0(3, 1.0)
        with pytest.raises(ValueError):
            erlang_pi0(3, -0.1)


class TestErlangC:
    def test_single_server_is_rho(self):
        # M/M/1: P{wait} = rho
        assert erlang_c(1, 0.6) == pytest.approx(0.6, rel=1e-10)

    def test_known_value(self):
        # classic Erlang-C table: n=5, offered a=4 (rho=0.8) -> ~0.5541
        assert erlang_c(5, 0.8) == pytest.approx(0.5541, abs=2e-4)

    def test_increasing_in_rho(self):
        vals = [erlang_c(4, r) for r in (0.2, 0.5, 0.8, 0.95)]
        assert vals == sorted(vals)

    def test_decreasing_in_n_at_fixed_rho(self):
        # more servers at the same utilization -> less waiting
        assert erlang_c(10, 0.8) < erlang_c(2, 0.8)


class TestWaitDistribution:
    def test_cdf_at_zero_is_no_wait_probability(self):
        lam, mu, n = 3.0, 1.0, 5
        rho = lam / (n * mu)
        assert wait_cdf(0.0, lam, mu, n) == pytest.approx(1.0 - erlang_c(n, rho))

    def test_cdf_monotone_and_limits(self):
        lam, mu, n = 4.0, 1.0, 5
        ts = np.linspace(0, 20, 50)
        vals = [wait_cdf(float(t), lam, mu, n) for t in ts]
        assert all(b >= a for a, b in zip(vals, vals[1:]))
        assert vals[-1] > 0.999
        assert wait_cdf(-1.0, lam, mu, n) == 0.0

    def test_cdf_no_load(self):
        assert wait_cdf(0.5, 0.0, 1.0, 3) == 1.0

    @given(
        st.floats(0.55, 0.99),
        st.integers(1, 30),
        st.floats(0.2, 5.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_quantile_inverts_cdf(self, r, n, mu):
        lam = 0.8 * n * mu
        w = wait_quantile(r, lam, mu, n)
        if w > 0:
            assert wait_cdf(w, lam, mu, n) == pytest.approx(r, rel=1e-6)
        else:
            assert wait_cdf(0.0, lam, mu, n) >= r - 1e-9

    def test_quantile_zero_when_mostly_idle(self):
        # almost empty system: the 95th percentile arrival does not wait
        assert wait_quantile(0.95, 0.1, 1.0, 10) == 0.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            wait_quantile(1.0, 1.0, 1.0, 2)
        with pytest.raises(ValueError):
            wait_quantile(0.95, 1.0, 0.0, 2)

    def test_mean_wait_mm1(self):
        # M/M/1: E[W] = rho / (mu - lam)
        lam, mu = 0.6, 1.0
        assert mean_wait(lam, mu, 1) == pytest.approx(0.6 / 0.4)

    def test_mean_wait_against_simulation(self):
        """M/M/3 queueing delay measured on the actual simulator."""
        from repro.sim.environment import Environment
        from repro.sim.resources import Resource
        from repro.sim.rng import RngRegistry

        lam, mu, n = 2.4, 1.0, 3
        env = Environment()
        rng = RngRegistry(seed=8)
        servers = Resource(env, capacity=n)
        waits = []

        def customer(env):
            t0 = env.now
            req = servers.request()
            yield req
            waits.append(env.now - t0)
            yield env.timeout(rng.exponential("svc", 1.0 / mu))
            servers.release(req)

        def arrivals(env):
            while True:
                yield env.timeout(rng.exponential("arr", 1.0 / lam))
                env.process(customer(env))

        env.process(arrivals(env))
        env.run(until=20000.0)
        assert np.mean(waits) == pytest.approx(mean_wait(lam, mu, n), rel=0.1)


class TestDiscriminant:
    def test_qos_satisfied_boundaries(self):
        assert qos_satisfied(0.0, 1.0, 1, qos=2.0)
        assert not qos_satisfied(5.0, 1.0, 3, qos=2.0)  # unstable
        with pytest.raises(ValueError):
            qos_satisfied(1.0, 1.0, 1, qos=0.0)

    def test_max_arrival_rate_is_the_threshold(self):
        mu, n, qos = 2.0, 4, 1.5
        lam = max_arrival_rate(mu, n, qos)
        assert 0.0 < lam < n * mu
        assert qos_satisfied(lam * 0.999, mu, n, qos)
        assert not qos_satisfied(lam * 1.01, mu, n, qos)

    def test_max_arrival_rate_zero_when_qos_unreachable(self):
        assert max_arrival_rate(1.0, 4, qos=0.5) == 0.0  # 1/mu = 1 > 0.5

    def test_max_arrival_rate_monotone_in_n(self):
        vals = [max_arrival_rate(2.0, n, 1.5) for n in (1, 2, 4, 8, 16)]
        assert vals == sorted(vals)

    def test_max_arrival_rate_monotone_in_qos(self):
        vals = [max_arrival_rate(2.0, 4, q) for q in (0.6, 1.0, 2.0, 5.0)]
        assert vals == sorted(vals)

    @pytest.mark.parametrize(
        "mu,n,qos,r",
        [
            (2.0, 4, 1.5, 0.95),
            (8.0, 5, 0.3, 0.95),
            (1.0, 10, 2.5, 0.9),
            (0.5, 3, 6.0, 0.99),
        ],
    )
    def test_eq5_fixed_point_agrees_with_bisection(self, mu, n, qos, r):
        """Paper Eq. 5 and the operational bisection find the same λ."""
        a = discriminant_lambda(mu, n, qos, r)
        b = max_arrival_rate(mu, n, qos, r)
        assert a == pytest.approx(b, rel=2e-3)

    def test_discriminant_validates_inputs(self):
        with pytest.raises(ValueError):
            discriminant_lambda(0.0, 4, 1.0)
        with pytest.raises(ValueError):
            max_arrival_rate(1.0, 0, 1.0)

    def test_discriminant_prediction_holds_in_simulation(self):
        """λ just under λ(μ) meets the QoS on a queueing simulation.

        Eq. 5 budgets the *mean* service time (T_D − 1/μ), which presumes
        near-deterministic per-query runtimes — true of the FunctionBench
        kernels the paper (and our platform model, lognormal with small
        sigma) uses.  The M/M/N wait bound is then conservative (M/D/N
        waits are shorter), so the prediction must hold end-to-end.
        """
        from repro.sim.environment import Environment
        from repro.sim.resources import Resource
        from repro.sim.rng import RngRegistry

        mu, n, qos, r = 2.0, 4, 1.5, 0.95
        lam = 0.95 * max_arrival_rate(mu, n, qos, r)
        env = Environment()
        rng = RngRegistry(seed=21)
        servers = Resource(env, capacity=n)
        sojourns = []

        def customer(env):
            t0 = env.now
            req = servers.request()
            yield req
            yield env.timeout(rng.lognormal_around("svc", 1.0 / mu, 0.12))
            servers.release(req)
            sojourns.append(env.now - t0)

        def arrivals(env):
            while True:
                yield env.timeout(rng.exponential("arr", 1.0 / lam))
                env.process(customer(env))

        env.process(arrivals(env))
        env.run(until=30000.0)
        assert float(np.percentile(sojourns, 95)) <= qos


class TestMinServers:
    def test_returns_smallest_feasible(self):
        lam, mu, qos = 10.0, 2.0, 1.5
        n = min_servers(lam, mu, qos)
        assert qos_satisfied(lam, mu, n, qos)
        assert n == 1 or not qos_satisfied(lam, mu, n - 1, qos)

    def test_zero_load_needs_one(self):
        assert min_servers(0.0, 1.0, 2.0) == 1

    def test_unattainable_qos_raises(self):
        with pytest.raises(ValueError):
            min_servers(1.0, 1.0, qos=0.5)

    def test_cap_exceeded_raises(self):
        with pytest.raises(ValueError):
            min_servers(1000.0, 1.0, qos=1.5, n_cap=10)

    def test_validation(self):
        with pytest.raises(ValueError):
            min_servers(-1.0, 1.0, 2.0)
