"""The Allen–Cunneen G/G/N extension to the Eq. 5 discriminant."""

import numpy as np
import pytest

from repro.core.queueing import (
    max_arrival_rate,
    max_arrival_rate_gg,
    qos_satisfied_gg,
    wait_quantile,
    wait_quantile_gg,
)

# long queueing simulations: excluded from the quick tier
pytestmark = pytest.mark.slow


def test_mm_n_recovered_with_exponential_service():
    # C_a^2 = C_s^2 = 1 -> factor 1: plain M/M/N
    assert wait_quantile_gg(0.95, 4.0, 1.0, 6, ca2=1.0, cs2=1.0) == pytest.approx(
        wait_quantile(0.95, 4.0, 1.0, 6)
    )


def test_md_n_halves_the_wait():
    # deterministic service: (1 + 0)/2 = half the M/M/N wait
    assert wait_quantile_gg(0.95, 4.0, 1.0, 6, cs2=0.0) == pytest.approx(
        0.5 * wait_quantile(0.95, 4.0, 1.0, 6)
    )


def test_corrected_backend_admits_more_load():
    mmn = max_arrival_rate(2.0, 4, 1.0)
    mdn = max_arrival_rate_gg(2.0, 4, 1.0, cs2=0.0)
    assert mdn > mmn


def test_qos_satisfied_gg_boundary():
    mu, n, qos = 2.0, 4, 1.0
    lam = max_arrival_rate_gg(mu, n, qos, cs2=0.0)
    assert qos_satisfied_gg(lam * 0.999, mu, n, qos, cs2=0.0)
    assert not qos_satisfied_gg(lam * 1.01, mu, n, qos, cs2=0.0)


def test_validation():
    with pytest.raises(ValueError):
        wait_quantile_gg(0.95, 1.0, 1.0, 2, ca2=-1.0)
    with pytest.raises(ValueError):
        qos_satisfied_gg(1.0, 1.0, 2, qos=0.0)
    with pytest.raises(ValueError):
        max_arrival_rate_gg(0.0, 2, 1.0)


def test_mdn_matches_near_deterministic_simulation():
    """The corrected quantile tracks an M/D/N-ish simulation closely,
    where plain M/M/N over-estimates."""
    from repro.sim.environment import Environment
    from repro.sim.resources import Resource
    from repro.sim.rng import RngRegistry

    lam, mu, n = 6.5, 2.0, 4  # rho ~0.81
    env = Environment()
    rng = RngRegistry(seed=33)
    servers = Resource(env, capacity=n)
    waits = []

    def customer(env):
        t0 = env.now
        req = servers.request()
        yield req
        waits.append(env.now - t0)
        yield env.timeout(rng.lognormal_around("svc", 1.0 / mu, 0.05))
        servers.release(req)

    def arrivals(env):
        while True:
            yield env.timeout(rng.exponential("arr", 1.0 / lam))
            env.process(customer(env))

    env.process(arrivals(env))
    env.run(until=40000.0)
    sim_q95 = float(np.percentile(waits, 95))
    mmn_q95 = wait_quantile(0.95, lam, mu, n)
    mdn_q95 = wait_quantile_gg(0.95, lam, mu, n, cs2=0.0)
    # M/M/N overshoots near-deterministic reality; the correction is closer
    assert abs(mdn_q95 - sim_q95) < abs(mmn_q95 - sim_q95)


class TestGGLargeN:
    """The controller's mdn discriminant at fleet-scale container counts."""

    @pytest.mark.parametrize("n", [700, 2000, 100_000])
    def test_max_arrival_rate_gg_finite_at_scale(self, n):
        lam = max_arrival_rate_gg(1.0, n, qos=1.5, cs2=0.0)
        assert 0.0 < lam < n * 1.0
        assert qos_satisfied_gg(lam * 0.999, 1.0, n, 1.5, cs2=0.0)

    def test_gg_ceiling_at_least_mmn_ceiling(self):
        # deterministic service halves the predicted wait, so the
        # admissible rate can only go up
        for n in (700, 2000):
            assert max_arrival_rate_gg(1.0, n, 1.5, cs2=0.0) >= max_arrival_rate(1.0, n, 1.5)
