"""AmoebaRuntime end-to-end wiring."""

import pytest

from repro.core.config import AmoebaConfig
from repro.core.engine import DeployMode
from repro.core.runtime import AmoebaRuntime
from repro.workloads.functionbench import benchmark
from repro.workloads.traces import ConstantTrace, DiurnalTrace

FAST = AmoebaConfig(min_sample_period=10.0, max_sample_period=10.0, min_dwell=30.0)


def test_monitor_started_with_meters():
    rt = AmoebaRuntime(seed=1)
    assert set(rt.serverless.pool.registered()) == {"meter_cpu", "meter_io", "meter_net"}


def test_add_service_wires_everything():
    rt = AmoebaRuntime(seed=1, config=FAST)
    svc = rt.add_service(benchmark("float"), ConstantTrace(5.0))
    assert svc.engine.mode is DeployMode.IAAS
    assert svc.iaas.state.value == "running"
    assert "float" in rt.serverless.pool.registered()
    assert rt.monitor.surfaces("float").service == "float"


def test_duplicate_service_rejected():
    rt = AmoebaRuntime(seed=1)
    rt.add_service(benchmark("float"), ConstantTrace(5.0))
    with pytest.raises(ValueError):
        rt.add_service(benchmark("float"), ConstantTrace(5.0))
    with pytest.raises(ValueError):
        rt.add_background(benchmark("float"), ConstantTrace(1.0))


def test_background_always_serverless():
    rt = AmoebaRuntime(seed=1, config=FAST)
    bg = rt.add_background(benchmark("dd"), ConstantTrace(2.0))
    rt.run(until=120.0)
    assert bg.metrics.completed > 100
    assert rt.serverless.pool.state("dd").completions == bg.metrics.completed


def test_service_usage_combines_both_sides():
    rt = AmoebaRuntime(seed=2, config=FAST)
    svc = rt.add_service(benchmark("float"), ConstantTrace(4.0), limit=6)
    rt.run(until=400.0)
    usage = rt.service_usage("float")
    iaas = svc.iaas.ledger.snapshot()
    sls = rt.serverless.function_ledger("float").snapshot()
    assert usage.cpu_core_seconds == pytest.approx(
        iaas.cpu_core_seconds + sls.cpu_core_seconds
    )
    # switched to serverless at low load: both sides saw some usage
    assert iaas.cpu_core_seconds > 0
    assert sls.cpu_core_seconds > 0


def test_meter_overhead_reported():
    rt = AmoebaRuntime(seed=1)
    rt.run(until=200.0)
    total = rt.meter_overhead()
    per_meter = rt.monitor.meter_overheads()
    assert total == pytest.approx(sum(per_meter.values()))
    assert 0.0 < total < 0.02


def test_nop_config_disables_warm_reuse():
    rt = AmoebaRuntime(seed=1, config=FAST.variant_nop())
    rt.add_service(benchmark("float"), ConstantTrace(3.0), limit=6)
    fs = rt.serverless.pool.state("float")
    assert fs.keep_alive == 0.0


def test_full_diurnal_run_meets_qos():
    """The headline claim on one compressed day: QoS met, resources saved."""
    rt = AmoebaRuntime(seed=3)
    trace = DiurnalTrace(peak_rate=20.0, day=1800.0, seed=5)
    svc = rt.add_service(benchmark("float"), trace, limit=5)
    rt.run(until=1800.0)
    m = svc.metrics
    assert m.completed > 5000
    assert m.latency_percentile(95) <= svc.spec.qos_target
    usage = rt.service_usage("float")
    # strictly less than holding the whole rental all day
    full_rental = svc.iaas.sizing.rented_cores
    assert usage.mean_cores < full_rental


def test_deterministic_given_seed():
    def run_once():
        rt = AmoebaRuntime(seed=11, config=FAST)
        svc = rt.add_service(benchmark("float"), ConstantTrace(5.0), limit=6)
        rt.run(until=200.0)
        return (
            svc.metrics.completed,
            svc.metrics.latency_percentile(95),
            len(svc.engine.switch_events),
        )

    assert run_once() == run_once()
