"""Graceful degradation in the switch protocol: aborts, watchdogs, reapers.

The acceptance bar: under lost acks, failed boots, stuck drains or plain
bugs inside a switch leg, the engine never wedges — every aborted switch
clears ``switching``, logs itself in ``switch_aborts``, re-enters dwell,
and the service can still switch successfully later.
"""

import itertools
from dataclasses import replace

import pytest

from repro.core.config import AmoebaConfig
from repro.core.engine import DeployMode, HybridExecutionEngine
from repro.faults import FaultInjector, FaultPlan
from repro.iaas.service import IaaSService, ServiceState
from repro.iaas.sizing import size_service
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark

QIDS = itertools.count()


def make_engine(config=None, initial=DeployMode.IAAS, plan=None, seed=6):
    env = Environment()
    rng = RngRegistry(seed=seed)
    faults = FaultInjector(plan, rng) if plan is not None else None
    config = config if config is not None else AmoebaConfig(min_dwell=0.0)
    spec = benchmark("float")
    metrics = ServiceMetrics("float", spec.qos_target)
    iaas = IaaSService(
        env, spec, size_service(spec, 30.0), rng, metrics=metrics, faults=faults
    )
    if initial is DeployMode.IAAS:
        iaas.deploy(instant=True)
    serverless = ServerlessPlatform(env, rng, faults=faults)
    serverless.register(spec, metrics=metrics, limit=8)
    engine = HybridExecutionEngine(
        env, spec, iaas, serverless, metrics, config, rng, initial_mode=initial
    )
    return env, engine, faults


class TestAckLoss:
    CFG = AmoebaConfig(min_dwell=0.0, switch_ack_timeout=5.0)

    def test_lost_ack_aborts_and_clears_switching(self):
        env, engine, faults = make_engine(
            config=self.CFG, plan=FaultPlan(prewarm_ack_loss_prob=1.0)
        )
        assert engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=30.0)
        assert engine.mode is DeployMode.IAAS  # rolled back
        assert not engine.switching
        ((t, target, reason),) = engine.switch_aborts
        assert target is DeployMode.SERVERLESS
        assert reason == "prewarm ack deadline"
        assert t == pytest.approx(5.0)
        assert engine.last_switch_time == pytest.approx(t)  # dwell re-entered
        assert faults.stats.prewarm_acks_lost == 1

    def test_switch_succeeds_after_an_abort(self):
        env, engine, faults = make_engine(
            config=self.CFG, plan=FaultPlan(prewarm_ack_loss_prob=1.0)
        )
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=30.0)
        assert engine.mode is DeployMode.IAAS
        # the ack path heals; the same engine must still be able to switch
        engine.serverless.faults = None
        assert engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=90.0)
        assert engine.mode is DeployMode.SERVERLESS
        assert not engine.switching
        assert len(engine.switch_aborts) == 1

    def test_delayed_ack_within_deadline_still_flips(self):
        cfg = AmoebaConfig(min_dwell=0.0, switch_ack_timeout=60.0)
        plan = FaultPlan(prewarm_ack_delay_prob=1.0, prewarm_ack_delay_s=10.0)
        env, engine, faults = make_engine(config=cfg, plan=plan)
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=90.0)
        assert engine.mode is DeployMode.SERVERLESS
        assert engine.switch_aborts == []
        assert faults.stats.prewarm_acks_delayed == 1


class TestBootFailure:
    def test_failed_boot_aborts_via_guard_then_recovers(self):
        cfg = AmoebaConfig(min_dwell=0.0, switch_boot_timeout=500.0)
        plan = FaultPlan(vm_boot_failure_prob=1.0, max_boot_retries=0)
        env, engine, faults = make_engine(
            config=cfg, initial=DeployMode.SERVERLESS, plan=plan
        )
        assert engine.request_switch(DeployMode.IAAS, load=20.0)
        env.run(until=200.0)
        assert engine.mode is DeployMode.SERVERLESS
        assert not engine.switching
        assert engine.iaas.state is ServiceState.STOPPED  # rolled back
        ((_, target, reason),) = engine.switch_aborts
        assert target is DeployMode.IAAS
        assert "VMBootFailed" in reason
        # hypervisor heals: the switch-out must now succeed
        engine.iaas.faults = None
        assert engine.request_switch(DeployMode.IAAS, load=20.0)
        env.run(until=500.0)
        assert engine.mode is DeployMode.IAAS
        assert engine.iaas.state is ServiceState.RUNNING

    def test_boot_deadline_abort_reaps_the_late_rental(self):
        cfg = AmoebaConfig(min_dwell=0.0, switch_boot_timeout=30.0)
        plan = FaultPlan(vm_boot_delay_prob=1.0, vm_boot_delay_s=200.0)
        env, engine, _ = make_engine(
            config=cfg, initial=DeployMode.SERVERLESS, plan=plan
        )
        engine.request_switch(DeployMode.IAAS, load=20.0)
        env.run(until=100.0)
        assert engine.mode is DeployMode.SERVERLESS
        assert not engine.switching
        assert engine.switch_aborts[-1][2] == "vm boot deadline"
        # the straggling boot lands after the abort; the reaper undeploys
        # the unwanted rental instead of letting it bill forever
        env.run(until=500.0)
        assert engine.iaas.state is ServiceState.STOPPED

    def test_rejoined_boot_after_deadline_abort(self):
        # first switch aborts on the boot deadline, second re-joins the
        # same in-flight boot instead of raising on a second deploy()
        cfg = AmoebaConfig(min_dwell=0.0, switch_boot_timeout=30.0)
        plan = FaultPlan(vm_boot_delay_prob=1.0, vm_boot_delay_s=100.0)
        env, engine, _ = make_engine(
            config=cfg, initial=DeployMode.SERVERLESS, plan=plan
        )
        engine.request_switch(DeployMode.IAAS, load=20.0)
        env.run(until=40.0)
        assert engine.switch_aborts  # deadline abort happened
        assert engine.iaas.state is ServiceState.BOOTING
        # retry with a patient deadline: deploy() would raise in BOOTING,
        # so a successful flip proves the in-flight boot was re-joined
        engine.config = replace(cfg, switch_boot_timeout=500.0)
        assert engine.request_switch(DeployMode.IAAS, load=20.0)
        env.run(until=400.0)
        assert engine.mode is DeployMode.IAAS
        assert engine.iaas.state is ServiceState.RUNNING


class TestDrainWatchdog:
    def test_flip_back_while_draining_force_releases_after_timeout(self):
        cfg = AmoebaConfig(min_dwell=0.0, drain_timeout=20.0)
        env, engine, _ = make_engine(config=cfg)
        engine.iaas.in_flight += 1  # a query that will never finish
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=60.0)
        assert engine.mode is DeployMode.SERVERLESS
        assert engine.iaas.state is ServiceState.DRAINING  # stuck drain
        assert engine.request_switch(DeployMode.IAAS, load=20.0)
        env.run(until=300.0)
        assert engine.mode is DeployMode.IAAS
        assert engine.iaas.state is ServiceState.RUNNING
        assert engine.drain_force_releases == 1
        assert engine._drain_event is None
        assert engine.switch_aborts == []  # delayed, not aborted

    def test_drain_finishing_in_time_cancels_the_watchdog(self):
        cfg = AmoebaConfig(min_dwell=0.0, drain_timeout=50.0)
        env, engine, _ = make_engine(config=cfg)
        engine.iaas.in_flight += 1
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=60.0)
        assert engine.iaas.state is ServiceState.DRAINING
        engine.request_switch(DeployMode.IAAS, load=20.0)

        def finish():
            engine.iaas.in_flight -= 1
            engine.iaas._maybe_release()

        env.schedule_callback(5.0, finish)
        env.run(until=300.0)
        assert engine.mode is DeployMode.IAAS
        assert engine.drain_force_releases == 0


class TestGuard:
    def test_exception_in_switch_body_clears_switching(self):
        env, engine, _ = make_engine()

        def boom(load):
            raise RuntimeError("kaboom")
            yield  # pragma: no cover

        engine._switch_to_serverless = boom
        assert engine.request_switch(DeployMode.SERVERLESS, load=5.0)
        env.run(until=1.0)
        assert not engine.switching
        assert engine.mode is DeployMode.IAAS
        assert engine.switch_aborts[-1][2] == "RuntimeError: kaboom"

    def test_body_exiting_without_flip_is_aborted(self):
        env, engine, _ = make_engine()

        def bail(load):
            yield engine.env.timeout(1.0)
            # returns without flipping and without aborting

        engine._switch_to_serverless = bail
        engine.request_switch(DeployMode.SERVERLESS, load=5.0)
        env.run(until=5.0)
        assert not engine.switching
        assert engine.switch_aborts[-1][2] == "switch process exited without flipping"


class TestTimelineQueries:
    def test_mode_at_bisect_semantics(self):
        env, engine, _ = make_engine()
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=60.0)
        flip_t = engine.mode_timeline[1][0]
        assert engine.mode_at(-1.0) is DeployMode.IAAS  # before t0
        assert engine.mode_at(0.0) is DeployMode.IAAS
        assert engine.mode_at(flip_t) is DeployMode.SERVERLESS  # inclusive
        assert engine.mode_at(flip_t + 1e-9) is DeployMode.SERVERLESS
        assert engine.mode_at(1e9) is DeployMode.SERVERLESS

    def test_serverless_fraction_with_t_end_inside_serverless_interval(self):
        env, engine, _ = make_engine()
        engine.request_switch(DeployMode.SERVERLESS, load=10.0)
        env.run(until=60.0)
        engine.request_switch(DeployMode.IAAS, load=20.0)
        env.run(until=400.0)
        t_in = engine.mode_timeline[1][0]  # -> serverless
        t_out = engine.mode_timeline[2][0]  # -> iaas
        t_end = 0.5 * (t_in + t_out)  # strictly inside the serverless span
        assert t_in < t_end < t_out
        frac = engine.serverless_time_fraction(t_end)
        assert frac == pytest.approx((t_end - t_in) / t_end, rel=1e-9)
        # and past the flip-back the serverless span stops accruing
        full = engine.serverless_time_fraction(400.0)
        assert full == pytest.approx((t_out - t_in) / 400.0, rel=1e-9)
