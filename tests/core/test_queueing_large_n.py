"""Large-N regression for the log-space Eq. 1–5 rewrite.

The original ``erlang_pi0`` accumulated the Eq. 1 normalization in linear
space; the terms a^k/k! peak near e^a, so π₀ underflowed to exactly 0.0
for N ≳ 700 and ``erlang_pin``/``erlang_c``/``wait_quantile`` then raised
``ValueError: math domain error``.  These tests pin the fix two ways:

* against a 60+-digit ``decimal.Decimal`` evaluation of the exact Eq. 1
  sums (the "mpmath-grade" reference — mpmath itself is not available in
  the CI container), to ≥10 significant digits;
* against the numerically stable Erlang-B recurrence
  B₀ = 1, B_k = a·B_{k−1}/(k + a·B_{k−1}),  C = B_N/(1 − ρ(1 − B_N)),
  a fully independent float-only derivation of Erlang-C.

Both reference paths are immune to the underflow the bug family hits.
"""

from __future__ import annotations

import math
from decimal import Decimal, getcontext

import pytest

from repro.core.queueing import (
    discriminant_lambda,
    erlang_c,
    erlang_pi0,
    erlang_pin,
    log_erlang_c,
    log_erlang_pi0,
    log_erlang_pin,
    max_arrival_rate,
    min_servers,
    qos_satisfied,
    wait_cdf,
    wait_quantile,
)

getcontext().prec = 60


def decimal_eq1(n: int, rho: float) -> tuple[Decimal, Decimal]:
    """(S, t_N) for Eq. 1 at 60 digits: S the normalization, t_N = a^N/N!.

    ``rho`` is converted with ``Decimal(float)`` so the reference evaluates
    the *same binary* utilization the production code sees.
    """
    rho_d = Decimal(rho)
    a = n * rho_d
    term = Decimal(1)
    total = Decimal(1)
    for k in range(1, n):
        term *= a / k
        total += term
    term *= a / n  # now a^n/n!
    total += term / (1 - rho_d)
    return total, term


def decimal_pin(n: int, rho: float) -> Decimal:
    total, t_n = decimal_eq1(n, rho)
    return t_n / total


def decimal_erlang_c(n: int, rho: float) -> Decimal:
    return decimal_pin(n, rho) / (1 - Decimal(rho))


def decimal_wait_quantile(r: float, lam: float, mu: float, n: int) -> Decimal:
    """Closed-form W_r = ln(P{W>0}/(1−r)) / (Nμ(1−ρ)) at 60 digits."""
    rho = Decimal(lam) / (n * Decimal(mu))
    pw = decimal_pin(n, float(rho)) / (1 - rho)
    tail = 1 - Decimal(r)
    if pw <= tail:
        return Decimal(0)
    return (pw / tail).ln() / (n * Decimal(mu) * (1 - rho))


def erlang_c_via_b(n: int, rho: float) -> float:
    """Independent float reference: Erlang-B recurrence then B→C."""
    a = n * rho
    b = 1.0
    for k in range(1, n + 1):
        b = a * b / (k + a * b)
    return b / (1.0 - rho * (1.0 - b))


# ---------------------------------------------------------------------------
# the confirmed-crashing calls from the issue
# ---------------------------------------------------------------------------


class TestIssueRepros:
    def test_erlang_pin_1000_finite(self):
        val = erlang_pin(1000, 0.95)
        assert math.isfinite(val) and val > 0.0

    def test_erlang_pin_2000_matches_decimal_to_10_digits(self):
        got = erlang_pin(2000, 0.95)
        ref = float(decimal_pin(2000, 0.95))
        assert math.isfinite(got)
        assert got == pytest.approx(ref, rel=1e-10)

    def test_wait_quantile_fleet_scale_finite(self):
        # lam=1900, mu=1, n=2000: rho=0.95 but P{W>0} ≈ 0.0134 < 0.05,
        # so the true 95th-percentile wait is exactly zero — the bug was
        # that this raised instead of returning it.
        got = wait_quantile(0.95, 1900.0, 1.0, 2000)
        assert got == 0.0
        assert float(decimal_wait_quantile(0.95, 1900.0, 1.0, 2000)) == 0.0

    def test_wait_quantile_fleet_scale_positive_branch(self):
        # push utilization high enough that the r-ile arrival does wait
        got = wait_quantile(0.95, 1990.0, 1.0, 2000)
        ref = float(decimal_wait_quantile(0.95, 1990.0, 1.0, 2000))
        assert got > 0.0
        assert got == pytest.approx(ref, rel=1e-10)


# ---------------------------------------------------------------------------
# N = 1 … 10⁵ sweeps against both references
# ---------------------------------------------------------------------------

SWEEP = [
    (1, 0.6),
    (3, 0.9),
    (10, 0.5),
    (70, 0.85),
    (500, 0.9),
    (699, 0.95),
    (701, 0.95),  # first N past the old underflow cliff
    (1000, 0.8),
    (2000, 0.95),
    (5000, 0.99),
]


class TestDecimalReference:
    @pytest.mark.parametrize("n,rho", SWEEP)
    def test_pin_10_digits(self, n, rho):
        assert erlang_pin(n, rho) == pytest.approx(float(decimal_pin(n, rho)), rel=1e-10)

    @pytest.mark.parametrize("n,rho", SWEEP)
    def test_erlang_c_10_digits(self, n, rho):
        assert erlang_c(n, rho) == pytest.approx(float(decimal_erlang_c(n, rho)), rel=1e-10)

    @pytest.mark.parametrize("n,rho", SWEEP)
    def test_pi0_log_matches_decimal(self, n, rho):
        total, _ = decimal_eq1(n, rho)
        log_ref = -float(total.ln())
        assert log_erlang_pi0(n, rho) == pytest.approx(log_ref, rel=1e-12, abs=1e-10)

    @pytest.mark.slow
    def test_n_100000_pin_10_digits(self):
        n, rho = 100_000, 0.95
        got = erlang_pin(n, rho)
        ref = float(decimal_pin(n, rho))
        assert math.isfinite(got) and got > 0.0
        assert got == pytest.approx(ref, rel=1e-10)


class TestErlangBReference:
    @pytest.mark.parametrize(
        "n,rho",
        SWEEP + [(20_000, 0.97), (100_000, 0.95), (100_000, 0.999)],
    )
    def test_erlang_c_matches_b_recurrence(self, n, rho):
        got = erlang_c(n, rho)
        ref = erlang_c_via_b(n, rho)
        # the recurrence accumulates its own rounding over N steps; 1e-8
        # relative is well inside both paths' error budgets
        assert got == pytest.approx(ref, rel=1e-8)


# ---------------------------------------------------------------------------
# log-space primitives and downstream Eqs. 4–5 at scale
# ---------------------------------------------------------------------------


class TestLogSpacePrimitives:
    def test_log_pi0_finite_where_pi0_underflows(self):
        # pi0 ≈ e^-92000 at this size: the float is genuinely 0.0 but the
        # log form must stay finite and usable
        n, rho = 100_000, 0.95
        assert erlang_pi0(n, rho) == 0.0
        lp0 = log_erlang_pi0(n, rho)
        assert math.isfinite(lp0) and lp0 < -80_000

    def test_log_pin_consistency(self):
        for n, rho in SWEEP:
            assert math.exp(log_erlang_pin(n, rho)) == pytest.approx(
                erlang_pin(n, rho), rel=1e-12
            )

    def test_log_erlang_c_rho_zero_raises(self):
        with pytest.raises(ValueError):
            log_erlang_pin(5, 0.0)
        with pytest.raises(ValueError):
            log_erlang_c(5, 0.0)

    def test_wait_cdf_large_n_monotone(self):
        lam, mu, n = 99_000.0, 1.0, 100_000
        vals = [wait_cdf(t, lam, mu, n) for t in (0.0, 1e-4, 1e-3, 1e-2, 1.0)]
        assert all(0.0 <= v <= 1.0 for v in vals)
        assert vals == sorted(vals)
        assert vals[0] == pytest.approx(1.0 - erlang_c(n, lam / (n * mu)))

    def test_quantile_inverts_cdf_large_n(self):
        lam, mu, n = 1990.0, 1.0, 2000
        w = wait_quantile(0.95, lam, mu, n)
        assert w > 0.0
        assert wait_cdf(w, lam, mu, n) == pytest.approx(0.95, rel=1e-9)


class TestDiscriminantLargeN:
    @pytest.mark.parametrize("n", [700, 2000, 5000])
    def test_eq5_agrees_with_bisection(self, n):
        """The fixed-point and the bisection answer must still coincide
        past the old underflow cliff (the masked `pin <= 0` branch used to
        fake 'no queueing' here)."""
        mu, qos = 1.0, 1.5
        a = discriminant_lambda(mu, n, qos)
        b = max_arrival_rate(mu, n, qos)
        assert a == pytest.approx(b, rel=2e-3)
        assert 0.0 < b < n * mu

    def test_near_saturation_bisection_bound_evaluates(self):
        # the bisection probes lam = n*mu*(1 - 1e-12); that evaluation
        # must not raise even at fleet scale
        n, mu = 100_000, 1.0
        lam = n * mu * (1.0 - 1e-12)
        assert isinstance(qos_satisfied(lam, mu, n, qos=10.0), bool)

    def test_qos_satisfied_large_n(self):
        assert qos_satisfied(1900.0, 1.0, 2000, qos=1.5)
        assert not qos_satisfied(1999.999, 1.0, 2000, qos=1.001)


class TestMinServersBisection:
    @pytest.mark.parametrize("lam", [10.0, 333.0, 1900.0, 3500.0])
    def test_smallest_feasible_at_scale(self, lam):
        mu, qos = 1.0, 1.5
        n = min_servers(lam, mu, qos)
        assert qos_satisfied(lam, mu, n, qos)
        assert n == 1 or not qos_satisfied(lam, mu, n - 1, qos)

    def test_matches_linear_scan_small(self):
        mu, qos, r = 2.0, 1.5, 0.95
        for lam_tenths in range(1, 80, 3):
            lam = lam_tenths / 10.0
            n = min_servers(lam, mu, qos, r)
            brute = next(
                k for k in range(1, 200) if lam < k * mu and qos_satisfied(lam, mu, k, qos, r)
            )
            assert n == brute

    def test_cap_still_raises(self):
        with pytest.raises(ValueError):
            min_servers(1000.0, 1.0, qos=1.5, n_cap=10)
