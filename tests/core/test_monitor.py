"""The multi-resource contention monitor: Eq. 8, PCR, live metering."""

import numpy as np
import pytest

from repro.cluster.resource_model import DemandVector
from repro.core.config import AmoebaConfig
from repro.core.monitor import ContentionMonitor, pcr_fit, sample_period
from repro.core.surfaces import build_surface_set
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.functionbench import benchmark


class TestSamplePeriod:
    def test_eq8_formula(self):
        # T > (cold - QoS + exec) / ((1-e) QoS)
        t = sample_period(cold_start=1.4, qos_target=0.3, exec_time=0.08, allowed_error=0.1)
        assert t == pytest.approx((1.4 - 0.3 + 0.08) / (0.9 * 0.3))

    def test_slack_qos_needs_no_minimum(self):
        assert sample_period(1.0, qos_target=2.0, exec_time=0.5, allowed_error=0.1) == 0.0

    def test_smaller_error_means_more_frequent_sampling(self):
        # paper SVI-B: "If the allowed error is small, Amoeba has to
        # sample the contention on the serverless platform more frequently"
        t_small_e = sample_period(1.4, 0.3, 0.08, allowed_error=0.05)
        t_large_e = sample_period(1.4, 0.3, 0.08, allowed_error=0.3)
        assert t_small_e < t_large_e

    def test_validation(self):
        with pytest.raises(ValueError):
            sample_period(-1.0, 1.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            sample_period(1.0, 0.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            sample_period(1.0, 1.0, 0.1, 1.0)


class TestPCR:
    def test_recovers_true_weights(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(200, 3))
        true_w = np.array([0.8, 0.3, 0.1])
        y = X @ true_w + rng.normal(0, 0.01, 200)
        w, bias = pcr_fit(X, y, variance_coverage=0.999)
        assert np.allclose(w, true_w, atol=0.05)
        assert abs(bias) < 0.05

    def test_collinear_predictors_stay_stable(self):
        """The PCA step is what keeps correlated axes from exploding."""
        rng = np.random.default_rng(1)
        base = rng.uniform(0, 1, 60)
        X = np.column_stack([base, base * 1.001 + 1e-6 * rng.normal(size=60), base * 0.999])
        y = 1.5 * base
        w, _ = pcr_fit(X, y, variance_coverage=0.9)
        assert np.all(w >= 0.0)
        assert np.all(w <= 3.0)
        # combined effect close to the truth even though individual
        # coefficients are unidentifiable
        pred = X @ w
        assert np.corrcoef(pred, y)[0, 1] > 0.99

    def test_negative_weights_clipped(self):
        rng = np.random.default_rng(2)
        X = rng.uniform(0, 1, size=(100, 3))
        y = -2.0 * X[:, 0]
        w, _ = pcr_fit(X, y)
        assert np.all(w >= 0.0)

    def test_zero_variance_neutral_fit(self):
        X = np.ones((20, 3))
        y = np.full(20, 0.5)
        w, bias = pcr_fit(X, y)
        assert np.allclose(w, 0.0)
        assert bias == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            pcr_fit(np.ones((1, 3)), np.ones(1))
        with pytest.raises(ValueError):
            pcr_fit(np.ones((5, 3)), np.ones(4))
        with pytest.raises(ValueError):
            pcr_fit(np.ones((5, 3)), np.ones(5), variance_coverage=0.0)


def make_monitor(env=None, config=None):
    env = env if env is not None else Environment()
    rng = RngRegistry(seed=3)
    platform = ServerlessPlatform(env, rng)
    config = config if config is not None else AmoebaConfig()
    monitor = ContentionMonitor(env, platform, config, rng)
    return env, platform, monitor


class TestMonitorLive:
    def test_start_registers_meters(self):
        env, platform, monitor = make_monitor()
        monitor.start()
        assert set(platform.pool.registered()) == {"meter_cpu", "meter_io", "meter_net"}
        with pytest.raises(RuntimeError):
            monitor.start()

    def test_pressure_zero_on_idle_platform(self):
        env, platform, monitor = make_monitor()
        monitor.start()
        env.run(until=60.0)
        p = monitor.pressure()
        assert all(abs(x) < 0.1 for x in p)

    def test_pressure_tracks_injected_background(self):
        env, platform, monitor = make_monitor()
        monitor.start()
        caps = platform.machine.capacity
        platform.machine.inject_background(DemandVector(cpu=0.8 * caps[0]))
        env.run(until=120.0)
        p = monitor.pressure()
        assert p[0] == pytest.approx(0.8, abs=0.15)
        assert p[1] < 0.2 and p[2] < 0.2  # other axes stay quiet

    def test_pressure_tracks_io_axis(self):
        env, platform, monitor = make_monitor()
        monitor.start()
        caps = platform.machine.capacity
        platform.machine.inject_background(DemandVector(io_mbps=0.6 * caps[1]))
        env.run(until=120.0)
        p = monitor.pressure()
        assert p[1] == pytest.approx(0.6, abs=0.15)
        assert p[0] < 0.2

    def test_meter_overhead_small(self):
        env, platform, monitor = make_monitor()
        monitor.start()
        env.run(until=300.0)
        assert 0.0 < monitor.meter_cpu_overhead() < 0.02  # paper: ~1%

    def test_feedback_and_refit(self):
        env, platform, monitor = make_monitor()
        monitor.start()
        spec = benchmark("float")
        monitor.register_service("float", build_surface_set(spec))
        env.run(until=30.0)
        for i in range(20):
            monitor.add_feedback("float", load=5.0, observed_latency=0.1 + 0.001 * i)
        assert monitor.feedback_count("float") == 20
        assert monitor.refit_count("float") > 0
        w, bias = monitor.weights("float")
        assert w.shape == (3,)

    def test_nom_mode_keeps_unit_weights(self):
        env, platform, monitor = make_monitor(config=AmoebaConfig().variant_nom())
        monitor.start()
        monitor.register_service("float", build_surface_set(benchmark("float")))
        for _ in range(30):
            monitor.add_feedback("float", load=5.0, observed_latency=0.2)
        w, bias = monitor.weights("float")
        assert np.allclose(w, 1.0)
        assert bias == 0.0
        assert monitor.refit_count("float") == 0

    def test_duplicate_service_rejected(self):
        env, platform, monitor = make_monitor()
        ss = build_surface_set(benchmark("float"))
        monitor.register_service("float", ss)
        with pytest.raises(ValueError):
            monitor.register_service("float", ss)

    def test_unknown_service_raises(self):
        env, platform, monitor = make_monitor()
        with pytest.raises(KeyError):
            monitor.weights("ghost")

    def test_feedback_validation(self):
        env, platform, monitor = make_monitor()
        monitor.register_service("float", build_surface_set(benchmark("float")))
        with pytest.raises(ValueError):
            monitor.add_feedback("float", load=1.0, observed_latency=0.0)
