"""Just-enough IaaS sizing."""

import pytest

from repro.cluster.resource_model import ContentionConfig
from repro.iaas.sizing import SizingResult, effective_service_time, size_service
from repro.iaas.vm import VMFlavor
from repro.workloads.functionbench import benchmark, benchmark_names


def test_sizing_result_properties():
    r = size_service(benchmark("float"), peak_rate=30.0)
    assert r.rented_cores == r.vm_count * r.flavor.cores
    assert r.rented_memory_mb == r.vm_count * r.flavor.memory_mb
    assert r.workers >= 1 and r.vm_count >= 1


def test_validation():
    with pytest.raises(ValueError):
        size_service(benchmark("float"), peak_rate=0.0)
    with pytest.raises(ValueError):
        size_service(benchmark("float"), peak_rate=1.0, qos_margin=0.0)


def test_higher_peak_needs_no_fewer_resources():
    lo = size_service(benchmark("matmul"), peak_rate=5.0)
    hi = size_service(benchmark("matmul"), peak_rate=20.0)
    assert hi.rented_cores >= lo.rented_cores
    assert hi.workers >= lo.workers


def test_all_benchmarks_sizable_at_default_peaks():
    from repro.experiments.scenarios import PEAK_RATES

    for name in benchmark_names():
        r = size_service(benchmark(name), peak_rate=PEAK_RATES[name])
        assert r.vm_count <= 10  # sane scale


def test_bandwidth_bound_services_rent_more_cores_than_they_use():
    """cloud_stor rents for NIC bandwidth, not CPU (Fig. 2's story)."""
    spec = benchmark("cloud_stor")
    r = size_service(spec, peak_rate=12.0)
    peak_cpu_demand = 12.0 * spec.exec_time * spec.demand.cpu
    assert r.rented_cores > 3 * peak_cpu_demand


def test_effective_service_time_grows_with_workers():
    spec = benchmark("matmul")
    cfg = ContentionConfig()
    f = VMFlavor()
    s1 = effective_service_time(spec, workers=2, vm_count=1, flavor=f, contention=cfg)
    s2 = effective_service_time(spec, workers=4, vm_count=1, flavor=f, contention=cfg)
    assert s2 > s1 > spec.exec_time


def test_effective_service_time_validation():
    with pytest.raises(ValueError):
        effective_service_time(
            benchmark("float"), workers=0, vm_count=1, flavor=VMFlavor(), contention=ContentionConfig()
        )


def test_unsizable_raises():
    spec = benchmark("float").with_qos(0.0809)  # nearly no headroom over exec
    with pytest.raises(ValueError):
        size_service(spec, peak_rate=500.0, max_vms=2)


def test_sized_deployment_meets_qos_in_simulation():
    """The sizing promise, checked end-to-end at peak load."""
    from repro.iaas.platform import IaaSPlatform
    from repro.sim.environment import Environment
    from repro.sim.rng import RngRegistry
    from repro.telemetry import ServiceMetrics
    from repro.workloads.loadgen import LoadGenerator
    from repro.workloads.traces import ConstantTrace

    spec = benchmark("float")
    env = Environment()
    rng = RngRegistry(seed=2)
    platform = IaaSPlatform(env, rng)
    metrics = ServiceMetrics("float", spec.qos_target)
    platform.deploy(spec, peak_rate=30.0, metrics=metrics)
    LoadGenerator(env, "float", ConstantTrace(30.0), platform.invoke, rng)
    env.run(until=200.0)
    assert metrics.completed > 4000
    assert metrics.latency_percentile(95) <= spec.qos_target


def test_fleet_scale_sizing_survives_large_n():
    """Sizing at hundreds of qps walks worker counts into the hundreds.

    Before the log-space Eq. 1 rewrite the inner qos_satisfied probe
    could hit the pi0 underflow (ValueError: math domain error) once n
    crossed ~700; this pins the large-N path end to end.
    """
    spec = benchmark("float")
    sizing = size_service(spec, peak_rate=500.0, max_vms=512)
    n, k = sizing.workers, sizing.vm_count
    assert n >= 1 and k >= 1
    # the chosen rental really is QoS-feasible at peak
    from repro.core.queueing import qos_satisfied

    s_eff = effective_service_time(spec, n, k, sizing.flavor, ContentionConfig())
    assert qos_satisfied(500.0, 1.0 / s_eff, n, spec.qos_target * 0.90)
