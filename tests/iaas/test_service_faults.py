"""IaaS service under fault injection: boot retries, failures, force release."""

import pytest

from repro.faults import FaultInjector, FaultPlan, VMBootFailed
from repro.iaas.service import IaaSService, ServiceState
from repro.iaas.sizing import size_service
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark


def make_service(plan=None, seed=6):
    env = Environment()
    rng = RngRegistry(seed=seed)
    faults = FaultInjector(plan, rng) if plan is not None else None
    spec = benchmark("float")
    metrics = ServiceMetrics("float", spec.qos_target)
    svc = IaaSService(
        env, spec, size_service(spec, 30.0), rng, metrics=metrics, faults=faults
    )
    return env, svc, faults


def script(faults, method, results):
    it = iter(results)
    setattr(faults, method, lambda service: next(it, False))


class TestBootFaults:
    def test_failed_boot_retries_then_runs(self):
        env, svc, faults = make_service(FaultPlan(vm_boot_failure_prob=0.5))
        script(faults, "vm_boot_fails", [True, False])
        ready = svc.deploy()
        env.run(until=300.0)
        assert ready.processed and ready.ok
        assert svc.state is ServiceState.RUNNING
        assert svc.boot_ready is None

    def test_exhausted_boot_fails_ready_and_rolls_back(self):
        plan = FaultPlan(vm_boot_failure_prob=1.0, max_boot_retries=1)
        env, svc, faults = make_service(plan)
        ready = svc.deploy()
        failures = []
        assert ready.callbacks is not None
        ready.callbacks.append(lambda ev: failures.append(ev.value) or ev.defuse())
        env.run(until=600.0)
        assert failures and isinstance(failures[0], VMBootFailed)
        assert svc.state is ServiceState.STOPPED
        assert svc.boot_ready is None
        assert faults.stats.vm_boots_abandoned == 1
        # the rollback leaves the service deployable again
        script(faults, "vm_boot_fails", [False])
        ready2 = svc.deploy()
        env.run(until=1200.0)
        assert ready2.processed and ready2.ok
        assert svc.state is ServiceState.RUNNING

    def test_boot_delay_stretches_the_attempt(self):
        def ready_time(plan):
            env, svc, _ = make_service(plan, seed=12)
            ready = svc.deploy()
            times = []
            assert ready.callbacks is not None
            ready.callbacks.append(lambda ev: times.append(env.now))
            env.run(until=600.0)
            assert times, "boot never completed"
            return times[0]

        plain = ready_time(FaultPlan())
        # same seed, same vmboot draw; the fault adds exactly the delay
        delayed = ready_time(FaultPlan(vm_boot_delay_prob=1.0, vm_boot_delay_s=50.0))
        assert delayed == pytest.approx(plain + 50.0)


class TestForceRelease:
    def test_force_release_frees_a_stuck_drain(self):
        env, svc, _ = make_service()
        svc.deploy(instant=True)
        svc.in_flight += 1  # a query that never finishes
        drained = svc.undeploy()
        env.run(until=50.0)
        assert svc.state is ServiceState.DRAINING
        assert not drained.triggered
        svc.force_release()
        assert svc.state is ServiceState.STOPPED
        env.run(until=60.0)
        assert drained.processed
        # the straggler finishing later must not double-release the ledger
        svc.in_flight -= 1
        svc._maybe_release()
        assert svc.state is ServiceState.STOPPED

    def test_force_release_is_noop_unless_draining(self):
        env, svc, _ = make_service()
        svc.force_release()  # STOPPED: nothing to do
        assert svc.state is ServiceState.STOPPED
        svc.deploy(instant=True)
        svc.force_release()  # RUNNING: not a drain, untouched
        assert svc.state is ServiceState.RUNNING
