"""IaaS service lifecycle and serving."""

import pytest

from repro.iaas.platform import IaaSPlatform
from repro.iaas.service import IaaSService, ServiceState
from repro.iaas.sizing import size_service
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query


def make_service(env, rng, name="float", peak=30.0, metrics=None):
    spec = benchmark(name)
    sizing = size_service(spec, peak)
    return IaaSService(env, spec, sizing, rng, metrics=metrics)


def query(env, n=0):
    return Query(qid=n, service="float", t_submit=env.now)


class TestLifecycle:
    def test_instant_deploy(self, env, rng):
        svc = make_service(env, rng)
        ready = svc.deploy(instant=True)
        assert ready.triggered
        assert svc.state is ServiceState.RUNNING
        assert svc.ledger.current_cores == svc.sizing.rented_cores

    def test_boot_delay(self, env, rng):
        svc = make_service(env, rng)
        ready = svc.deploy()
        assert svc.state is ServiceState.BOOTING
        env.run(until=ready)
        assert env.now > 10.0  # VM boot takes tens of seconds
        assert svc.state is ServiceState.RUNNING

    def test_double_deploy_raises(self, env, rng):
        svc = make_service(env, rng)
        svc.deploy(instant=True)
        with pytest.raises(RuntimeError):
            svc.deploy()

    def test_undeploy_releases_resources(self, env, rng):
        svc = make_service(env, rng)
        svc.deploy(instant=True)
        done = svc.undeploy()
        assert done.triggered  # nothing in flight
        assert svc.state is ServiceState.STOPPED
        assert svc.ledger.current_cores == 0.0

    def test_undeploy_waits_for_drain(self, env, rng):
        svc = make_service(env, rng)
        svc.deploy(instant=True)
        svc.invoke(query(env))
        done = svc.undeploy()
        assert not done.triggered
        assert svc.state is ServiceState.DRAINING
        env.run(until=done)
        assert svc.state is ServiceState.STOPPED
        assert svc.completions == 1

    def test_undeploy_while_stopped_raises(self, env, rng):
        svc = make_service(env, rng)
        with pytest.raises(RuntimeError):
            svc.undeploy()

    def test_redeploy_after_drain(self, env, rng):
        svc = make_service(env, rng)
        svc.deploy(instant=True)
        env.run(until=svc.undeploy())
        ready = svc.deploy(instant=True)
        assert ready.triggered
        assert svc.state is ServiceState.RUNNING


class TestServing:
    def test_invoke_while_stopped_raises(self, env, rng):
        svc = make_service(env, rng)
        with pytest.raises(RuntimeError):
            svc.invoke(query(env))

    def test_query_served_and_recorded(self, env, rng):
        metrics = ServiceMetrics("float", benchmark("float").qos_target)
        svc = make_service(env, rng, metrics=metrics)
        svc.deploy(instant=True)
        q = query(env)
        svc.invoke(q)
        env.run(until=5.0)
        assert q.served_by == "iaas"
        assert q.latency < 0.2
        assert metrics.completed == 1

    def test_worker_slots_queue_excess(self, env, rng):
        svc = make_service(env, rng)
        svc.deploy(instant=True)
        n = svc.sizing.workers
        qs = [query(env, i) for i in range(3 * n)]
        for q in qs:
            svc.invoke(q)
        env.run(until=30.0)
        waits = [q.breakdown["queue"] for q in qs]
        assert max(waits) > 0.0  # someone queued
        assert all(q.t_complete is not None for q in qs)

    def test_draining_serves_inflight_only(self, env, rng):
        svc = make_service(env, rng)
        svc.deploy(instant=True)
        svc.invoke(query(env))
        svc.undeploy()
        # new invocations during draining are allowed (engine routes away)
        svc.invoke(query(env, 1))
        env.run(until=10.0)
        assert svc.completions == 2
        assert svc.state is ServiceState.STOPPED


class TestUtilization:
    def test_mean_cpu_utilization_positive_under_load(self, env, rng):
        svc = make_service(env, rng)
        svc.deploy(instant=True)
        for i in range(20):
            svc.invoke(query(env, i))
        env.run(until=10.0)
        assert 0.0 < svc.mean_cpu_utilization() < 1.0

    def test_platform_deploy_and_route(self, env, rng):
        platform = IaaSPlatform(env, rng)
        metrics = ServiceMetrics("float", benchmark("float").qos_target)
        platform.deploy(benchmark("float"), peak_rate=30.0, metrics=metrics)
        platform.invoke(query(env))
        env.run(until=5.0)
        assert metrics.completed == 1
        with pytest.raises(KeyError):
            platform.service("ghost")
        with pytest.raises(ValueError):
            platform.deploy(benchmark("float"), peak_rate=30.0)
