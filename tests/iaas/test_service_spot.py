"""Spot-backed IaaS rentals: billing split, reclamation episodes, drain vs kill."""

import pytest

from repro.cluster import SpotSpec
from repro.faults import FaultInjector, FaultPlan
from repro.iaas.service import IaaSService, ServiceState
from repro.iaas.sizing import size_service
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query


def make_spot_service(
    spot=None,
    plan=None,
    seed=6,
    name="float",
    peak=30.0,
):
    env = Environment()
    rng = RngRegistry(seed=seed)
    faults = FaultInjector(plan, rng) if plan is not None else None
    spec = benchmark(name)
    metrics = ServiceMetrics(name, spec.qos_target)
    svc = IaaSService(
        env, spec, size_service(spec, peak), rng, metrics=metrics, faults=faults, spot=spot
    )
    return env, svc, metrics


def drive(env, svc, ready, n, gap=0.1, start=0.0):
    """After ``ready``, submit ``n`` queries every ``gap`` s, from ``start``."""

    def _gen():
        yield ready
        if start > 0:
            yield env.timeout(start)
        for i in range(n):
            svc.invoke(Query(qid=i, service=svc.spec.name, t_submit=env.now))
            if gap > 0:
                yield env.timeout(gap)

    env.process(_gen())


class TestSpotSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpotSpec(fraction=1.5)
        with pytest.raises(ValueError):
            SpotSpec(fraction=-0.1)
        with pytest.raises(ValueError):
            SpotSpec(notice_s=-1.0)

    def test_no_spot_leaves_state_inert(self):
        env, svc, _ = make_spot_service()
        assert svc.spot is None
        assert svc.spot_ledger is None
        assert svc.spot_cores == 0.0

    def test_zero_fraction_is_treated_as_no_spot(self):
        env, svc, _ = make_spot_service(spot=SpotSpec(fraction=0.0))
        assert svc.spot is None
        assert svc.spot_ledger is None


class TestBillingSplit:
    def test_spot_share_bills_on_its_own_ledger(self):
        env, svc, _ = make_spot_service(spot=SpotSpec(fraction=0.5))
        svc.deploy()
        env.run(until=120.0)
        assert svc.state is ServiceState.RUNNING
        assert svc.spot_ledger is not None
        assert svc.spot_ledger.current_cores == pytest.approx(0.5 * svc.sizing.rented_cores)
        assert svc.ledger.current_cores == pytest.approx(0.5 * svc.sizing.rented_cores)

    def test_undeploy_releases_both_ledgers(self):
        env, svc, _ = make_spot_service(spot=SpotSpec(fraction=0.5))
        svc.deploy()
        env.run(until=120.0)
        svc.undeploy()
        env.run(until=240.0)
        assert svc.spot_ledger is not None
        assert svc.spot_ledger.current_cores == 0.0
        assert svc.ledger.current_cores == 0.0


class TestZeroProbIsInert:
    def test_no_faults_means_no_watch_and_no_preemption(self):
        env, svc, metrics = make_spot_service(spot=SpotSpec(fraction=0.5))
        ready = svc.deploy()
        drive(env, svc, ready, 50)
        env.run(until=600.0)
        assert not svc.preempted
        assert metrics.total_preemption_events == 0

    def test_spot_rental_with_zero_prob_is_bit_identical_to_on_demand(self):
        def run(spot, plan):
            env, svc, metrics = make_spot_service(spot=spot, plan=plan)
            ready = svc.deploy()
            drive(env, svc, ready, 100)
            env.run(until=600.0)
            return [x.hex() for x in metrics.latencies.values()]

        plain = run(None, None)
        spotted = run(SpotSpec(fraction=0.5), FaultPlan(vm_preemption_prob=0.0))
        assert spotted == plain


class TestGracefulReclamation:
    PLAN = FaultPlan(vm_preemption_prob=1.0, preemption_check_interval_s=5.0)

    def test_graceful_episode_drains_without_killing(self):
        env, svc, metrics = make_spot_service(
            spot=SpotSpec(fraction=0.5, notice_s=120.0, graceful=True), plan=self.PLAN
        )
        ready = svc.deploy()
        drive(env, svc, ready, 400, gap=0.5)
        env.run(until=600.0)
        assert svc.preempted and svc.replaced
        assert metrics.preemptions["noticed"] == 1
        assert metrics.preemptions["drained"] == 1
        assert metrics.preemptions["killed_inflight"] == 0
        assert metrics.preemptions["replaced"] == 1
        assert metrics.drops.get("preempted", 0) == 0
        assert metrics.failed == 0
        # conservation: everything submitted either completed or is in flight
        assert metrics.completed + svc.in_flight == metrics.load.total

    def test_notice_fires_the_preemption_hook(self):
        env, svc, _ = make_spot_service(
            spot=SpotSpec(fraction=0.5, notice_s=90.0, graceful=True), plan=self.PLAN
        )
        seen = []
        svc.on_preemption = seen.append
        svc.deploy()
        env.run(until=300.0)
        assert seen == [90.0]

    def test_one_episode_per_run(self):
        env, svc, metrics = make_spot_service(
            spot=SpotSpec(fraction=0.5, notice_s=30.0, graceful=True), plan=self.PLAN
        )
        ready = svc.deploy()
        drive(env, svc, ready, 400, gap=0.5)
        env.run(until=1200.0)
        # prob=1.0 at a 5s cadence would re-preempt every check otherwise
        assert metrics.preemptions["noticed"] == 1
        assert metrics.preemptions["replaced"] == 1


class TestHardKill:
    PLAN = FaultPlan(vm_preemption_prob=1.0, preemption_check_interval_s=5.0)

    def test_hard_kill_drops_inflight_with_preempted_reason(self):
        env, svc, metrics = make_spot_service(
            spot=SpotSpec(fraction=0.5, graceful=False), plan=self.PLAN
        )
        ready = svc.deploy()
        # saturate the workers just before the first preemption check
        drive(env, svc, ready, 4 * svc.sizing.workers, gap=0.0, start=4.9)
        env.run(until=600.0)
        assert svc.preempted and svc.replaced
        assert metrics.preemptions["noticed"] == 0
        assert metrics.preemptions["drained"] == 0
        assert metrics.preemptions["killed_inflight"] >= 1
        assert metrics.preemptions["replaced"] == 1
        assert metrics.drops["preempted"] == metrics.preemptions["killed_inflight"]
        assert metrics.failed == metrics.preemptions["killed_inflight"]
        # conservation holds even through the kills
        assert metrics.completed + metrics.failed + svc.in_flight == metrics.load.total

    def test_hook_reports_zero_notice(self):
        env, svc, _ = make_spot_service(
            spot=SpotSpec(fraction=0.5, graceful=False), plan=self.PLAN
        )
        seen = []
        svc.on_preemption = seen.append
        svc.deploy()
        env.run(until=300.0)
        assert seen == [0.0]


class TestDeterminism:
    def test_same_seed_same_episode(self):
        def run(seed):
            env, svc, metrics = make_spot_service(
                spot=SpotSpec(fraction=0.5, graceful=False),
                plan=FaultPlan(vm_preemption_prob=0.5, preemption_check_interval_s=10.0),
                seed=seed,
            )
            ready = svc.deploy()
            drive(env, svc, ready, 300, gap=0.5)
            env.run(until=600.0)
            return (
                dict(metrics.preemptions),
                [x.hex() for x in metrics.latencies.values()],
            )

        a_counters, a_lat = run(13)
        b_counters, b_lat = run(13)
        c_counters, c_lat = run(14)
        assert a_counters == b_counters
        assert a_lat == b_lat
        assert (a_counters, a_lat) != (c_counters, c_lat)
