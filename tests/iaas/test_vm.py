"""VM flavors."""

import pytest

from repro.cluster.spec import NodeSpec
from repro.iaas.vm import DEFAULT_FLAVOR, VMFlavor


def test_default_flavor():
    assert DEFAULT_FLAVOR.cores == 4.0
    assert DEFAULT_FLAVOR.memory_mb == 8192.0


def test_validation():
    with pytest.raises(ValueError):
        VMFlavor(cores=0.0)
    with pytest.raises(ValueError):
        VMFlavor(boot_median=0.0)
    with pytest.raises(ValueError):
        VMFlavor(boot_sigma=-0.1)


def test_slice_of_is_proportional():
    node = NodeSpec(cores=40, memory_mb=40960.0, disk_mbps=2000.0, net_mbps=4000.0)
    f = VMFlavor.slice_of(node, cores=4.0)
    assert f.memory_mb == pytest.approx(4096.0)
    assert f.io_mbps == pytest.approx(200.0)
    assert f.net_mbps == pytest.approx(400.0)


def test_slice_of_validation():
    node = NodeSpec()
    with pytest.raises(ValueError):
        VMFlavor.slice_of(node, cores=0.0)
    with pytest.raises(ValueError):
        VMFlavor.slice_of(node, cores=node.cores + 1)
