"""Overload protection at IaaS dispatch: admission, worker-queue shedding."""

import itertools

from repro.iaas.service import IaaSService
from repro.iaas.sizing import RPC_OVERHEAD, size_service
from repro.overload import OverloadGovernor, OverloadPolicy
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query

QIDS = itertools.count()


def make_service(policy=None, rate=30.0, seed=4):
    env = Environment()
    spec = benchmark("float")
    metrics = ServiceMetrics(spec.name, spec.qos_target)
    gov = None
    if policy is not None:
        mu = 1.0 / (spec.exec_time + RPC_OVERHEAD)
        gov = OverloadGovernor(
            policy, qos_target=spec.qos_target, mu_serverless=mu, mu_iaas=mu
        )
    svc = IaaSService(
        env, spec, size_service(spec, rate), RngRegistry(seed=seed),
        metrics=metrics, overload=gov,
    )
    svc.deploy(instant=True)
    return env, svc, metrics, gov


def submit(env, svc, n=1):
    out = []
    for _ in range(n):
        q = Query(qid=next(QIDS), service=svc.spec.name, t_submit=env.now)
        svc.invoke(q)
        out.append(q)
    return out


class TestAdmission:
    def test_full_worker_queue_rejects_at_dispatch(self):
        policy = OverloadPolicy(
            max_queue_depth=2, admission_control=False,
            shed_expired=False, breaker_enabled=False,
        )
        env, svc, metrics, gov = make_service(policy)
        submit(env, svc, n=12)
        env.run(until=0.05)  # burst now queued on the worker slots
        late = submit(env, svc, n=3)
        assert svc.rejected == 3
        assert metrics.drops["admission"] == 3
        assert gov.rejections["admission"] == 3
        for q in late:
            assert q.failed and q.served_by == "iaas"

    def test_predicted_qos_miss_rejects_at_dispatch(self):
        policy = OverloadPolicy(shed_expired=False, breaker_enabled=False)
        env, svc, metrics, gov = make_service(policy)
        submit(env, svc, n=40)
        env.run(until=0.05)
        submit(env, svc, n=5)
        assert metrics.drops["admission"] >= 1
        # admitted in-flight work is unaffected by the rejections
        env.run(until=60.0)
        assert metrics.completed > 0
        assert svc.in_flight == 0

    def test_no_policy_admits_everything(self):
        env, svc, metrics, _ = make_service(policy=None)
        submit(env, svc, n=30)
        env.run(until=60.0)
        assert svc.rejected == 0
        assert metrics.completed == 30


class TestShedding:
    def test_expired_queue_wait_sheds_and_frees_the_worker(self):
        policy = OverloadPolicy(
            admission_control=False, breaker_enabled=False, queue_wait_budget=0.5
        )
        env, svc, metrics, gov = make_service(policy)
        queries = submit(env, svc, n=60)  # ~0.08 s exec vs a 0.15 s budget
        env.run(until=60.0)
        assert svc.shed >= 1
        assert metrics.drops["shed"] == svc.shed
        assert gov.rejections["shed"] == svc.shed
        shed = [q for q in queries if q.failed]
        assert len(shed) == svc.shed
        for q in shed:
            assert q.breakdown["queue"] > policy.wait_budget(svc.spec.qos_target)
        # every shed slot was reused: the service fully drained
        assert svc.in_flight == 0
        assert metrics.completed == 60 - svc.shed

    def test_disabled_policy_sheds_nothing(self):
        env, svc, metrics, _ = make_service(OverloadPolicy.disabled())
        submit(env, svc, n=60)
        env.run(until=60.0)
        assert svc.shed == 0 and svc.rejected == 0
        assert metrics.completed == 60


class TestQueueDepthObservability:
    def test_depth_timeline_and_exact_peak_are_sampled(self):
        env, svc, metrics, _ = make_service(policy=None)
        submit(env, svc, n=30)
        env.run(until=60.0)
        times, values = svc.queue_depth.times(), svc.queue_depth.values()
        assert len(times) == len(values) > 0
        assert svc.peak_queue_depth >= max(int(v) for v in values)
        assert svc.peak_queue_depth >= 1
