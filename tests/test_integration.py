"""Cross-module integration scenarios.

These exercise end-to-end behaviours no single module owns: burst
reaction, guard protection under a hostile foreground, NoP's cold-start
economics, the canary feedback loop, and cross-system determinism.
"""

import numpy as np
import pytest

from repro.core.config import AmoebaConfig
from repro.core.engine import DeployMode
from repro.core.runtime import AmoebaRuntime
from repro.workloads.functionbench import benchmark
from repro.workloads.traces import BurstTrace, ConstantTrace, DiurnalTrace

# cross-module end-to-end scenarios: excluded from the quick tier
pytestmark = pytest.mark.slow


FAST = AmoebaConfig(min_sample_period=10.0, max_sample_period=10.0, min_dwell=60.0)


class TestBurstReaction:
    def test_burst_forces_switch_out_and_recovery(self):
        """SII-E challenge 3: capture load change, switch quickly."""
        base = ConstantTrace(3.0)
        trace = BurstTrace(base, [(400.0, 500.0, 22.0)])  # 3 -> 25 qps burst
        rt = AmoebaRuntime(seed=5, config=FAST)
        svc = rt.add_service(benchmark("float"), trace, limit=3)
        rt.run(until=1500.0)
        directions = [d.value for _t, d, _l in svc.engine.switch_events]
        # in at low load, out during the burst, back in after it
        assert "serverless" in directions
        assert "iaas" in directions
        assert svc.engine.mode is DeployMode.SERVERLESS  # recovered
        # QoS held throughout (the IaaS rental absorbs the burst)
        assert svc.metrics.latency_percentile(95) <= svc.spec.qos_target

    def test_switch_out_happens_during_burst_window(self):
        trace = BurstTrace(ConstantTrace(3.0), [(400.0, 500.0, 22.0)])
        rt = AmoebaRuntime(seed=5, config=FAST)
        svc = rt.add_service(benchmark("float"), trace, limit=3)
        rt.run(until=1500.0)
        out_times = [t for t, d, _l in svc.engine.switch_events if d is DeployMode.IAAS]
        assert out_times
        assert 400.0 <= out_times[0] <= 950.0


class TestGuardProtection:
    def test_hostile_foreground_blocked_by_guard(self):
        """A CPU-hungry foreground must not be switched onto a platform
        whose CPU-bound tenant is already near its QoS."""
        rt = AmoebaRuntime(seed=9, config=FAST)
        # matmul tenant at substantial load on the shared platform
        rt.add_background(benchmark("matmul"), ConstantTrace(8.0), limit=8)
        # hostile foreground: CPU-heavy, would add a lot of pressure
        hostile = benchmark("linpack")
        svc = rt.add_service(hostile, ConstantTrace(8.0), limit=12)
        rt.run(until=600.0)
        blocked = [d for d in svc.controller.decisions if d.guard_blocked]
        allowed = [d for d in svc.controller.decisions if d.switched]
        # either the guard blocked at least once, or the discriminant
        # itself already refused — but never both zero AND switched in
        if svc.engine.mode is DeployMode.SERVERLESS:
            # if it did switch, the background tenant must still be fine
            bg = rt.background["matmul"].metrics
            assert bg.latency_percentile(95) <= benchmark("matmul").qos_target * 1.1
        else:
            assert blocked or not allowed


class TestCanaryFeedback:
    def test_canaries_feed_pca_while_on_iaas(self):
        cfg = AmoebaConfig(
            min_sample_period=10.0,
            max_sample_period=10.0,
            min_dwell=10000.0,  # pin the service on IaaS
            canary_fraction=0.1,
        )
        rt = AmoebaRuntime(seed=4, config=cfg)
        svc = rt.add_service(benchmark("float"), ConstantTrace(10.0), limit=4)
        svc.controller.guard = lambda load, s: False  # never switch in
        rt.run(until=900.0)
        assert svc.engine.mode is DeployMode.IAAS
        assert rt.monitor.feedback_count("float") > 10
        assert rt.monitor.refit_count("float") > 0
        # canaries really executed on the serverless side
        assert rt.serverless.pool.state("float").completions > 20


class TestNoPEconomics:
    def test_nop_pays_cold_start_per_query_on_serverless(self):
        cfg = FAST.variant_nop()
        rt = AmoebaRuntime(seed=6, config=cfg)
        svc = rt.add_service(benchmark("matmul"), ConstantTrace(2.0), limit=8)
        rt.run(until=900.0)
        fs = rt.serverless.pool.state("matmul")
        if svc.engine.mode is DeployMode.SERVERLESS and fs.completions > 20:
            # nearly every completion needed its own cold start
            assert fs.cold_starts >= 0.9 * fs.completions

    def test_full_amoeba_reuses_containers(self):
        rt = AmoebaRuntime(seed=6, config=FAST)
        rt.add_service(benchmark("matmul"), ConstantTrace(2.0), limit=8)
        rt.run(until=900.0)
        fs = rt.serverless.pool.state("matmul")
        assert fs.completions > 20
        assert fs.cold_starts < 0.3 * fs.completions


class TestDeterminismAcrossSubsystems:
    def test_full_runtime_bitwise_repeatable(self):
        def run():
            rt = AmoebaRuntime(seed=77, config=FAST)
            rt.add_background(benchmark("dd"), ConstantTrace(2.0), limit=6)
            svc = rt.add_service(
                benchmark("float"), DiurnalTrace(peak_rate=15.0, day=600.0, seed=3), limit=4
            )
            rt.run(until=600.0)
            return (
                svc.metrics.completed,
                round(svc.metrics.latency_percentile(95), 12),
                tuple(round(t, 9) for t, _d, _l in svc.engine.switch_events),
                round(rt.service_usage("float").cpu_core_seconds, 9),
            )

        assert run() == run()


class TestOpenLoopOverload:
    def test_queue_grows_when_capacity_exceeded(self):
        """Open-loop arrivals above n_max*mu back up — the failure mode
        the discriminant exists to predict."""
        from repro.serverless.platform import ServerlessPlatform
        from repro.sim.environment import Environment
        from repro.sim.rng import RngRegistry
        from repro.telemetry import ServiceMetrics
        from repro.workloads.loadgen import LoadGenerator

        env = Environment()
        rng = RngRegistry(seed=2)
        platform = ServerlessPlatform(env, rng)
        spec = benchmark("matmul")
        metrics = ServiceMetrics("matmul", spec.qos_target)
        platform.register(spec, metrics=metrics, limit=2)  # capacity ~5 qps
        LoadGenerator(env, "matmul", ConstantTrace(10.0), platform.invoke, rng)
        env.run(until=300.0)
        assert platform.queue_length("matmul") > 50
        assert metrics.violation_fraction > 0.5
