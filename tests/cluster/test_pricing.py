"""Maintainer-cost extension."""

import pytest

from repro.cluster.accounting import UsageSample
from repro.cluster.pricing import CostBreakdown, PricingModel


class TestPricingModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            PricingModel(iaas_core_hour=-1.0)
        with pytest.raises(ValueError):
            PricingModel(serverless_gb_second=-1.0)

    def test_iaas_cost(self):
        p = PricingModel(iaas_core_hour=0.05, iaas_gb_hour=0.01)
        # 2 cores + 4 GB for one hour
        usage = UsageSample(
            cpu_core_seconds=2 * 3600.0,
            memory_mb_seconds=4 * 1024.0 * 3600.0,
            duration=3600.0,
        )
        assert p.iaas_cost(usage) == pytest.approx(2 * 0.05 + 4 * 0.01)

    def test_serverless_cost(self):
        p = PricingModel(serverless_gb_second=2e-5, serverless_per_million=0.2)
        # 1M invocations of 0.5 s at 256 MB = 125k GB-s
        cost = p.serverless_cost(1_000_000, 0.5, 256.0)
        assert cost == pytest.approx(125_000 * 2e-5 + 0.2)

    def test_serverless_cost_validation(self):
        p = PricingModel()
        with pytest.raises(ValueError):
            p.serverless_cost(-1, 0.5, 256.0)
        with pytest.raises(ValueError):
            p.serverless_cost(1, 0.5, 0.0)

    def test_idle_rental_still_billed(self):
        """The paper's core economic point: IaaS bills idle time."""
        p = PricingModel()
        idle_rental = UsageSample(8 * 3600.0, 16 * 1024.0 * 3600.0, 3600.0)
        few_invocations = p.serverless_cost(1000, 0.2, 256.0)
        assert p.iaas_cost(idle_rental) > 100 * few_invocations


class TestCostBreakdown:
    def test_total(self):
        c = CostBreakdown(system="x", iaas_dollars=1.0, serverless_dollars=0.5)
        assert c.total == 1.5

    def test_normalized(self):
        a = CostBreakdown("a", 1.0, 0.0)
        b = CostBreakdown("b", 2.0, 2.0)
        assert a.normalized_to(b) == pytest.approx(0.25)
        with pytest.raises(ValueError):
            a.normalized_to(CostBreakdown("z", 0.0, 0.0))


class TestServiceResultCost:
    def test_amoeba_cost_has_both_components(self):
        from repro.experiments.runner import run_amoeba
        from repro.experiments.scenarios import default_scenario

        scenario = default_scenario("float", day=600.0, seed=4)
        run = run_amoeba(scenario)
        bill = run.foreground(scenario).cost()
        assert bill.iaas_dollars > 0  # started on IaaS
        assert bill.serverless_dollars > 0  # switched at low load
