"""Usage ledger integration and UsageSample arithmetic."""

import pytest

from repro.cluster.accounting import UsageLedger, UsageSample


def test_acquire_release_integral(env):
    ledger = UsageLedger(env, "t")

    def proc(env):
        ledger.acquire(4.0, 1024.0)
        yield env.timeout(10.0)
        ledger.release(4.0, 1024.0)
        yield env.timeout(10.0)

    env.process(proc(env))
    env.run()
    snap = ledger.snapshot()
    assert snap.cpu_core_seconds == pytest.approx(40.0)
    assert snap.memory_mb_seconds == pytest.approx(10240.0)
    assert snap.duration == pytest.approx(20.0)
    assert snap.mean_cores == pytest.approx(2.0)
    assert snap.mean_memory_mb == pytest.approx(512.0)


def test_nested_acquires_stack(env):
    ledger = UsageLedger(env, "t")
    ledger.acquire(1.0, 100.0)
    ledger.acquire(2.0, 200.0)
    assert ledger.current_cores == 3.0
    assert ledger.current_memory_mb == 300.0
    ledger.release(1.0, 100.0)
    assert ledger.current_cores == 2.0


def test_negative_amount_rejected(env):
    ledger = UsageLedger(env, "t")
    with pytest.raises(ValueError):
        ledger.acquire(-1.0, 0.0)
    with pytest.raises(ValueError):
        ledger.release(0.0, -1.0)


def test_over_release_raises(env):
    ledger = UsageLedger(env, "t")
    ledger.acquire(1.0, 100.0)
    with pytest.raises(RuntimeError):
        ledger.release(2.0, 100.0)


def test_timeline_records(env):
    ledger = UsageLedger(env, "t", timeline_interval=0.0)

    def proc(env):
        ledger.acquire(1.0, 10.0)
        yield env.timeout(5.0)
        ledger.release(1.0, 10.0)

    env.process(proc(env))
    env.run()
    assert len(ledger.cpu_timeline) == 2
    assert ledger.cpu_timeline.values()[0] == 1.0
    assert ledger.cpu_timeline.values()[1] == 0.0


def test_usage_sample_normalized_to():
    a = UsageSample(cpu_core_seconds=10.0, memory_mb_seconds=100.0, duration=10.0)
    b = UsageSample(cpu_core_seconds=40.0, memory_mb_seconds=200.0, duration=10.0)
    cpu, mem = a.normalized_to(b)
    assert cpu == pytest.approx(0.25)
    assert mem == pytest.approx(0.5)


def test_usage_sample_normalize_zero_baseline():
    a = UsageSample(1.0, 1.0, 1.0)
    z = UsageSample(0.0, 0.0, 1.0)
    with pytest.raises(ValueError):
        a.normalized_to(z)


def test_usage_sample_add():
    a = UsageSample(10.0, 100.0, 10.0)
    b = UsageSample(5.0, 50.0, 10.0)
    c = a + b
    assert c.cpu_core_seconds == 15.0
    assert c.memory_mb_seconds == 150.0
    assert c.duration == 10.0


def test_empty_duration_means_zero():
    s = UsageSample(0.0, 0.0, 0.0)
    assert s.mean_cores == 0.0
    assert s.mean_memory_mb == 0.0
