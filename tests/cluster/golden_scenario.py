"""Seeded golden scenario for the contention engine's determinism guarantee.

This module defines ONE fixed workload on one :class:`MachineModel` and a
driver that returns every query's measured latency.  The expected values
in ``tests/cluster/test_resource_model_golden.py`` were generated from the
pre-rework O(N)-reschedule engine; the single-timer engine must reproduce
them **bit for bit** (compared via ``float.hex``), which is what lets the
scheduling rework claim to be a pure performance change.

The scenario is deliberately nasty for a completion scheduler:

* arrivals overlap heavily (mean gap ~0.08 s vs. mean work ~0.45 s), so
  most completions are rescheduled many times mid-flight;
* demands push pressure through the convex knee, so rates really change;
* a background co-tenant pulses on and off, forcing rebalances that are
  not tied to any arrival or completion;
* two sensitivity classes run side by side, so rates differ per query and
  the "earliest finisher" ordering is non-trivial.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.resource_model import DemandVector, MachineModel, SensitivityVector
from repro.sim.environment import Environment

#: (queries, background pulses) — sized so the run finishes in ~10 ms
N_QUERIES = 60
SEED = 20260806


def run_golden_scenario(seed: int = SEED) -> list[float]:
    """Run the pinned scenario; returns per-query latencies in arrival order.

    ``seed`` defaults to the pinned golden seed; the end-to-end determinism
    tests rerun the same scenario under other seeds in fresh environments.
    """
    rng = np.random.default_rng(seed)
    env = Environment()
    machine = MachineModel(env, cores=8.0, io_mbps=400.0, net_mbps=400.0)
    sens_a = SensitivityVector(cpu=1.0, io=0.6, net=0.0)
    sens_b = SensitivityVector(cpu=0.4, io=1.2, net=0.3)
    latencies: list[float] = [0.0] * N_QUERIES

    gaps = rng.exponential(0.08, N_QUERIES)
    works = rng.uniform(0.05, 0.85, N_QUERIES)
    cpus = rng.uniform(0.2, 2.0, N_QUERIES)
    ios = rng.uniform(0.0, 120.0, N_QUERIES)
    kinds = rng.integers(0, 2, N_QUERIES)

    def submit(env, idx, work, demand, sens):
        latencies[idx] = yield machine.execute(work, demand, sens)

    def feeder(env):
        for i in range(N_QUERIES):
            yield env.timeout(gaps[i])
            demand = DemandVector(cpu=cpus[i], memory_mb=64.0, io_mbps=ios[i])
            env.process(submit(env, i, works[i], demand, sens_a if kinds[i] else sens_b))

    def co_tenant(env):
        # pulsing background pressure: rebalances decoupled from arrivals
        for k in range(6):
            yield env.timeout(0.31)
            remove = machine.inject_background(DemandVector(cpu=3.0, io_mbps=150.0))
            yield env.timeout(0.17)
            remove()

    env.process(feeder(env))
    env.process(co_tenant(env))
    env.run()
    assert machine.active_count == 0
    return latencies


if __name__ == "__main__":
    for lat in run_golden_scenario():
        print(lat.hex())
