"""Golden determinism test: the engine's per-query latencies, pinned.

The expected values were captured from the pre-rework contention engine
(per-execution completion callbacks with generation guards) by running
``python tests/cluster/golden_scenario.py``.  The single-timer engine must
reproduce every latency **bit for bit** — ``float.hex`` equality, not
``approx`` — which is what makes the scheduling rework a pure performance
change.  If an intentional engine change ever breaks this, regenerate the
constants with that same command and say so loudly in the commit message.
"""

from tests.cluster.golden_scenario import N_QUERIES, run_golden_scenario

#: float.hex() of every query's latency, in arrival order
EXPECTED_HEX = [
    "0x1.085c8b36bb9c4p-2", "0x1.259e4f756beb6p-3", "0x1.5dbc37955ab90p-4",
    "0x1.95daed02d397ap-2", "0x1.1498111acdd02p-1", "0x1.d098a47324acdp-2",
    "0x1.05db1cf80e3d2p+0", "0x1.a817a50270a32p-1", "0x1.33de7ad8dab40p-1",
    "0x1.5f2cad612c45ep-2", "0x1.a8bf5cfc1340fp-1", "0x1.c6fb4c07f9fbfp-1",
    "0x1.86d9ed3bea852p-2", "0x1.bd3a9f67f4f08p-2", "0x1.b4f5b6844074ep-1",
    "0x1.674e7069e05c5p+3", "0x1.cc89d2c439c28p-2", "0x1.d6f00b5234820p-3",
    "0x1.5c75b455fe939p+3", "0x1.37d421ad8ec47p+4", "0x1.146daf4cde06dp+0",
    "0x1.dad89ef525baap+3", "0x1.793170d682d9dp+3", "0x1.902fb7e0faf16p+3",
    "0x1.2c80720b62780p+4", "0x1.cfd2cf4652b48p+2", "0x1.338cf2ae8438ap+4",
    "0x1.36f4b6dfd6580p+4", "0x1.bca38e55e8e9cp+1", "0x1.72e8f4f291fb0p+3",
    "0x1.d2b56ea507dcep+2", "0x1.17173c1a769bdp+3", "0x1.6a5caa9e3b6dcp+3",
    "0x1.2fdf95c9a240cp+4", "0x1.2ba888ed7511ap+4", "0x1.02c4d70cf37f3p+2",
    "0x1.07d180cdb1fd0p+4", "0x1.248491df325f2p+4", "0x1.29c4f84ff1cbap+4",
    "0x1.c5077a6f3d7b6p+2", "0x1.700ca10bbecf7p+3", "0x1.2f0f9dfb4022bp+1",
    "0x1.90a915394b0bap+3", "0x1.0e08b9ec39686p+4", "0x1.ba773515dc3e6p+2",
    "0x1.a135704ed8113p+2", "0x1.7940eec1f61bcp+3", "0x1.febee4201b4abp+3",
    "0x1.2084415932948p+4", "0x1.1d8165d5cea43p+4", "0x1.10f1e25ca1190p+4",
    "0x1.1722184c5cb81p+4", "0x1.1021e12136ad9p+4", "0x1.9645c8abcc1f7p+3",
    "0x1.1709060f723e3p+2", "0x1.05dda189c6956p+3", "0x1.112cbf0229df0p+4",
    "0x1.11af5dd90a208p+4", "0x1.0e7099e09f308p+3", "0x1.10aca31b9d76ap+2",
]


def test_scenario_size_matches_pin():
    assert len(EXPECTED_HEX) == N_QUERIES


def test_latencies_bit_identical_to_pre_rework_engine():
    got = [lat.hex() for lat in run_golden_scenario()]
    assert got == EXPECTED_HEX
