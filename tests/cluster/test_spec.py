"""Table II constants and spec validation."""

import pytest

from repro.cluster.spec import CLUSTER_TABLE_II, ClusterSpec, NodeSpec


def test_table_ii_values():
    node = CLUSTER_TABLE_II.serverless_node
    assert node.cores == 40
    assert node.memory_mb == 256 * 1024.0
    assert node.net_mbps == pytest.approx(3125.0)  # 25,000 Mb/s NIC
    assert CLUSTER_TABLE_II.container_memory_mb == 256.0


def test_three_nodes():
    c = CLUSTER_TABLE_II
    assert c.iaas_node.name == "iaas"
    assert c.serverless_node.name == "serverless"
    assert c.driver_node.name == "driver"


def test_max_containers_by_memory():
    assert CLUSTER_TABLE_II.max_containers_by_memory == 1024


def test_node_validation():
    with pytest.raises(ValueError):
        NodeSpec(cores=0)
    with pytest.raises(ValueError):
        NodeSpec(memory_mb=-1)
    with pytest.raises(ValueError):
        NodeSpec(disk_mbps=0)
    with pytest.raises(ValueError):
        NodeSpec(net_mbps=0)


def test_cluster_validation():
    with pytest.raises(ValueError):
        ClusterSpec(container_memory_mb=0)
    with pytest.raises(ValueError):
        ClusterSpec(container_memory_mb=1e9)
