"""The multi-resource contention engine: slowdown shape and progress."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resource_model import (
    ContentionConfig,
    DemandVector,
    MachineModel,
    SensitivityVector,
)

pressures_st = st.tuples(
    st.floats(0.0, 2.5), st.floats(0.0, 2.5), st.floats(0.0, 2.5)
)


class TestVectors:
    def test_demand_validation(self):
        with pytest.raises(ValueError):
            DemandVector(cpu=-1.0)
        with pytest.raises(ValueError):
            DemandVector(io_mbps=-0.1)

    def test_demand_scaled(self):
        d = DemandVector(cpu=2.0, memory_mb=100.0, io_mbps=10.0, net_mbps=4.0)
        s = d.scaled(0.5)
        assert s.cpu == 1.0 and s.memory_mb == 50.0 and s.io_mbps == 5.0 and s.net_mbps == 2.0
        with pytest.raises(ValueError):
            d.scaled(-1.0)

    def test_sensitivity_validation(self):
        with pytest.raises(ValueError):
            SensitivityVector(cpu=-0.1)
        with pytest.raises(ValueError):
            SensitivityVector(io=6.0)

    def test_sensitivity_tuple(self):
        s = SensitivityVector(cpu=1.0, io=0.5, net=0.2)
        assert s.as_tuple() == (1.0, 0.5, 0.2)


class TestContentionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ContentionConfig(linear=-1.0)
        with pytest.raises(ValueError):
            ContentionConfig(overlap=1.5)
        with pytest.raises(ValueError):
            ContentionConfig(knee=0.0)
        with pytest.raises(ValueError):
            ContentionConfig(pressure_cap=0.5)

    def test_g_zero_at_zero(self):
        assert ContentionConfig().g(0.0) == 0.0

    def test_g_convex_past_knee(self):
        cfg = ContentionConfig()
        below = cfg.g(cfg.knee) - cfg.g(cfg.knee - 0.1)
        above = cfg.g(cfg.knee + 0.2) - cfg.g(cfg.knee + 0.1)
        assert above > below

    def test_g_capped(self):
        cfg = ContentionConfig()
        assert cfg.g(cfg.pressure_cap) == cfg.g(cfg.pressure_cap + 10.0)

    def test_slowdown_one_when_unloaded(self):
        cfg = ContentionConfig()
        s = SensitivityVector(cpu=1.0, io=1.0, net=1.0)
        assert cfg.slowdown(s, (0.0, 0.0, 0.0)) == pytest.approx(1.0)

    def test_single_axis_is_exact(self):
        """With pressure on one axis only, overlap has nothing to hide."""
        cfg = ContentionConfig()
        s = SensitivityVector(cpu=1.2, io=0.0, net=0.0)
        expected = 1.0 + 1.2 * cfg.g(0.9)
        assert cfg.slowdown(s, (0.9, 0.0, 0.0)) == pytest.approx(expected)

    @given(pressures_st)
    @settings(max_examples=200, deadline=None)
    def test_subadditive_between_max_and_sum(self, p):
        """Paper SII-E: degradation is not the simple accumulation."""
        cfg = ContentionConfig()
        s = SensitivityVector(cpu=1.0, io=0.8, net=0.6)
        d = [s.as_tuple()[i] * cfg.g(p[i]) for i in range(3)]
        slow = cfg.slowdown(s, p)
        assert slow >= 1.0 + max(d) - 1e-12
        assert slow <= 1.0 + sum(d) + 1e-12

    @given(pressures_st, pressures_st)
    @settings(max_examples=200, deadline=None)
    def test_monotone_in_pressure(self, p1, p2):
        cfg = ContentionConfig()
        s = SensitivityVector(cpu=1.0, io=1.0, net=1.0)
        lo = tuple(min(a, b) for a, b in zip(p1, p2))
        hi = tuple(max(a, b) for a, b in zip(p1, p2))
        assert cfg.slowdown(s, hi) >= cfg.slowdown(s, lo) - 1e-12

    def test_insensitive_service_immune(self):
        cfg = ContentionConfig()
        s = SensitivityVector(cpu=0.0, io=0.0, net=0.0)
        assert cfg.slowdown(s, (2.0, 2.0, 2.0)) == pytest.approx(1.0)


def make_machine(env, cores=8.0, io=400.0, net=400.0, **cfg):
    return MachineModel(env, cores=cores, io_mbps=io, net_mbps=net, config=ContentionConfig(**cfg))


CPU1 = DemandVector(cpu=1.0, memory_mb=256.0)
SENS_CPU = SensitivityVector(cpu=1.0, io=0.0, net=0.0)


class TestMachineModel:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            MachineModel(env, cores=0, io_mbps=1, net_mbps=1)

    def test_solo_execution_takes_its_work(self, env):
        m = make_machine(env, linear=0.0)  # no sub-saturation interference
        done = m.execute(2.0, CPU1, SENS_CPU)
        env.run(until=done)
        assert env.now == pytest.approx(2.0)
        assert done.value == pytest.approx(2.0)

    def test_work_must_be_positive(self, env):
        m = make_machine(env)
        with pytest.raises(ValueError):
            m.execute(0.0, CPU1, SENS_CPU)

    def test_pressures_reflect_active_demand(self, env):
        m = make_machine(env, cores=4.0)
        m.execute(10.0, DemandVector(cpu=2.0, io_mbps=100.0), SENS_CPU)
        p = m.pressures()
        assert p[0] == pytest.approx(0.5)
        assert p[1] == pytest.approx(0.25)
        assert m.active_count == 1

    def test_contention_stretches_execution(self, env):
        # 10 one-core jobs on 8 cores: pressure 1.25, all slowed equally
        m = make_machine(env)
        events = [m.execute(1.0, CPU1, SENS_CPU) for _ in range(10)]
        env.run()
        cfg = m.config
        expected = 1.0 * cfg.slowdown(SENS_CPU, (10.0 / 8.0, 0.0, 0.0))
        assert env.now == pytest.approx(expected, rel=1e-6)
        assert all(e.value == pytest.approx(expected, rel=1e-6) for e in events)

    def test_mid_flight_arrival_slows_existing_job(self, env):
        m = make_machine(env, cores=1.0, linear=1.0, quad=0.0, overlap=0.0)

        def spoiler(env):
            yield env.timeout(0.5)
            m.execute(10.0, CPU1, SENS_CPU)

        env.process(spoiler(env))
        done = m.execute(1.0, CPU1, SENS_CPU)
        env.run(until=done)
        # first half runs at slowdown 1+1*1=2? no: alone pressure=1 -> slowdown 2
        # 0.5s of wall completes 0.25 work; then two jobs: pressure 2 -> slowdown 3
        # remaining 0.75 work takes 2.25s -> total 2.75
        assert env.now == pytest.approx(2.75, rel=1e-6)

    def test_departure_speeds_up_remaining_job(self, env):
        m = make_machine(env, cores=1.0, linear=1.0, quad=0.0, overlap=0.0)
        short = m.execute(0.5, CPU1, SENS_CPU)
        long = m.execute(2.0, CPU1, SENS_CPU)
        env.run(until=long)
        # both at pressure 2 (slowdown 3) until short finishes at t=1.5
        # (0.5 work); long then has 1.5 work left alone (slowdown 2) -> 3.0s
        assert env.now == pytest.approx(4.5, rel=1e-6)

    def test_memory_tracked(self, env):
        m = make_machine(env)
        m.execute(1.0, DemandVector(cpu=0.5, memory_mb=512.0), SENS_CPU)
        assert m.memory_in_use_mb == pytest.approx(512.0)
        env.run()
        assert m.memory_in_use_mb == pytest.approx(0.0)

    def test_inject_background_pressures_and_removal(self, env):
        m = make_machine(env, cores=4.0)
        remove = m.inject_background(DemandVector(cpu=2.0))
        assert m.pressures()[0] == pytest.approx(0.5)
        remove()
        assert m.pressures()[0] == pytest.approx(0.0)
        with pytest.raises(RuntimeError):
            remove()

    def test_background_slows_execution(self, env):
        m = make_machine(env, cores=1.0, linear=1.0, quad=0.0, overlap=0.0)
        m.inject_background(DemandVector(cpu=1.0))
        done = m.execute(1.0, CPU1, SENS_CPU)
        env.run(until=done)
        # pressure 2 (background 1 + own 1) -> slowdown 3
        assert env.now == pytest.approx(3.0, rel=1e-6)

    def test_accounting_taps_integrate(self, env):
        m = make_machine(env, linear=0.0)
        m.execute(2.0, DemandVector(cpu=3.0), SENS_CPU)
        env.run()
        assert m.cpu_in_use.integral(env.now) == pytest.approx(6.0)

    def test_many_jobs_all_complete(self, env):
        m = make_machine(env)
        events = [m.execute(0.1 + 0.01 * i, CPU1, SENS_CPU) for i in range(50)]
        env.run()
        assert all(e.processed for e in events)
        assert m.active_count == 0
        assert m.pressures() == (0.0, 0.0, 0.0)

    def test_slowdown_for_hypothetical(self, env):
        m = make_machine(env, cores=4.0)
        m.inject_background(DemandVector(cpu=4.0))
        assert m.slowdown_for(SENS_CPU) > 1.0
        assert m.slowdown_for(SensitivityVector(cpu=0, io=0, net=0)) == pytest.approx(1.0)

    def test_on_pressure_change_hook(self, env):
        m = make_machine(env)
        seen = []
        m.on_pressure_change = lambda t, p: seen.append((t, p))
        done = m.execute(1.0, CPU1, SENS_CPU)
        env.run(until=done)
        assert len(seen) >= 2  # start + finish
        assert seen[0][1][0] > 0.0
        assert seen[-1][1][0] == pytest.approx(0.0)
