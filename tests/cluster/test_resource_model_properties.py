"""Property-based conservation laws for the contention engine.

The progress-based rescheduling in MachineModel is the most intricate
piece of the substrate: every arrival/departure rebalances every running
execution.  These hypothesis tests check the laws any such engine must
obey, over randomized workloads:

* **work conservation** — each execution's integrated progress equals the
  work requested, regardless of how often it was rescheduled;
* **slowdown lower bound** — no execution finishes faster than its solo
  time;
* **bounded stretch** — the measured duration never exceeds work × the
  worst instantaneous slowdown that occurred while it ran;
* **clean teardown** — after everything finishes, demand totals and
  memory return exactly to zero.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.resource_model import (
    ContentionConfig,
    DemandVector,
    MachineModel,
    SensitivityVector,
)
from repro.sim.environment import Environment

# randomized job sets: (start delay, work, cpu demand, io demand)
jobs_strategy = st.lists(
    st.tuples(
        st.floats(0.0, 2.0),
        st.floats(0.05, 1.5),
        st.floats(0.1, 2.0),
        st.floats(0.0, 300.0),
    ),
    min_size=1,
    max_size=12,
)


@given(jobs_strategy)
@settings(max_examples=60, deadline=None)
def test_work_conservation_and_bounds(jobs):
    env = Environment()
    cfg = ContentionConfig()
    machine = MachineModel(env, cores=4.0, io_mbps=500.0, net_mbps=500.0, config=cfg)
    sens = SensitivityVector(cpu=1.0, io=0.8, net=0.0)
    results = []
    worst_slowdown = [1.0]

    def track(_t, pressures):
        worst_slowdown[0] = max(worst_slowdown[0], cfg.slowdown(sens, pressures))

    machine.on_pressure_change = track

    def submit(env, delay, work, cpu, io):
        yield env.timeout(delay)
        t0 = env.now
        demand = DemandVector(cpu=cpu, memory_mb=64.0, io_mbps=io)
        duration = yield machine.execute(work, demand, sens)
        results.append((work, t0, env.now, duration))

    for delay, work, cpu, io in jobs:
        env.process(submit(env, delay, work, cpu, io))
    env.run()

    assert len(results) == len(jobs)
    for work, t0, t1, duration in results:
        # the event's reported duration matches wall time
        assert duration == (t1 - t0) or math.isclose(duration, t1 - t0, rel_tol=1e-9)
        # never faster than solo, never slower than the worst slowdown seen
        assert duration >= work * (1.0 - 1e-6)
        assert duration <= work * worst_slowdown[0] * (1.0 + 1e-6)
    # teardown: all demand and memory fully returned
    assert machine.active_count == 0
    assert machine.pressures() == (0.0, 0.0, 0.0)
    assert machine.memory_in_use_mb == 0.0


@given(jobs_strategy, st.floats(0.1, 1.5), st.floats(0.5, 4.0))
@settings(max_examples=40, deadline=None)
def test_background_injection_never_breaks_completion(jobs, bg_pressure, bg_lifetime):
    """Random standing background comes and goes; everything still finishes."""
    env = Environment()
    machine = MachineModel(env, cores=4.0, io_mbps=500.0, net_mbps=500.0)
    sens = SensitivityVector(cpu=1.0)
    done = []

    def submit(env, delay, work, cpu, io):
        yield env.timeout(delay)
        demand = DemandVector(cpu=cpu, io_mbps=io)
        yield machine.execute(work, demand, sens)
        done.append(1)

    def background(env):
        yield env.timeout(0.5)
        remove = machine.inject_background(
            DemandVector(cpu=bg_pressure * 4.0, io_mbps=bg_pressure * 500.0)
        )
        yield env.timeout(bg_lifetime)
        remove()

    for delay, work, cpu, io in jobs:
        env.process(submit(env, delay, work, cpu, io))
    env.process(background(env))
    env.run()
    assert len(done) == len(jobs)
    assert machine.pressures() == (0.0, 0.0, 0.0)


@given(
    st.floats(0.0, 2.5),
    st.floats(0.0, 2.5),
    st.floats(0.0, 2.5),
    st.floats(0.0, 1.0),
)
@settings(max_examples=150, deadline=None)
def test_overlap_interpolates_between_max_and_sum(p0, p1, p2, overlap):
    """overlap=0 is plain accumulation; overlap=1 hides behind the max."""
    cfg = ContentionConfig(overlap=overlap)
    sens = SensitivityVector(cpu=1.0, io=0.7, net=0.4)
    d = [sens.as_tuple()[i] * cfg.g((p0, p1, p2)[i]) for i in range(3)]
    slow = cfg.slowdown(sens, (p0, p1, p2))
    expected = 1.0 + max(d) + (1.0 - overlap) * (sum(d) - max(d))
    assert math.isclose(slow, expected, rel_tol=1e-12)


@given(
    jobs_strategy,
    st.lists(
        # reschedule storm: (wait before injecting, pulse width, strength)
        st.tuples(st.floats(0.01, 0.4), st.floats(0.01, 0.5), st.floats(0.2, 1.2)),
        min_size=1,
        max_size=10,
    ),
)
@settings(max_examples=40, deadline=None)
def test_midflight_reschedule_storm(jobs, pulses):
    """A barrage of set changes mid-flight must not corrupt any execution.

    Every background pulse cancels and re-arms the machine's completion
    timer while work is in flight; this is the path where the old engine
    piled up stale callbacks and where banking errors would show up as
    conservation violations.
    """
    env = Environment()
    cfg = ContentionConfig()
    machine = MachineModel(env, cores=4.0, io_mbps=500.0, net_mbps=500.0, config=cfg)
    sens = SensitivityVector(cpu=1.0, io=0.8, net=0.0)
    results = []
    worst_slowdown = [1.0]

    def track(_t, pressures):
        worst_slowdown[0] = max(worst_slowdown[0], cfg.slowdown(sens, pressures))

    machine.on_pressure_change = track

    def submit(env, delay, work, cpu, io):
        yield env.timeout(delay)
        t0 = env.now
        duration = yield machine.execute(
            work, DemandVector(cpu=cpu, memory_mb=32.0, io_mbps=io), sens
        )
        results.append((work, t0, env.now, duration))

    def storm(env):
        for gap, width, strength in pulses:
            yield env.timeout(gap)
            remove = machine.inject_background(
                DemandVector(cpu=strength * 4.0, io_mbps=strength * 250.0)
            )
            yield env.timeout(width)
            remove()

    for delay, work, cpu, io in jobs:
        env.process(submit(env, delay, work, cpu, io))
    env.process(storm(env))
    env.run()

    assert len(results) == len(jobs)
    for work, t0, t1, duration in results:
        assert duration == (t1 - t0) or math.isclose(duration, t1 - t0, rel_tol=1e-9)
        assert duration >= work * (1.0 - 1e-6)
        assert duration <= work * worst_slowdown[0] * (1.0 + 1e-6)
    # the single timer cannot have fired more often than it was armed, and
    # every query completed exactly once
    assert machine.completed == len(jobs)
    assert machine.active_count == 0
    assert machine.pressures() == (0.0, 0.0, 0.0)
    assert machine.memory_in_use_mb == 0.0
    # heap hygiene: after the run drains, no dead entries linger
    assert env.live_size == 0
