"""The runnable examples stay runnable.

Only the fast examples run here (the heavier multi-system tours are
exercised by the benchmark suite through the same code paths).
"""

import runpy
import sys
from pathlib import Path

import pytest

# runs the example scripts end to end: excluded from the quick tier
pytestmark = pytest.mark.slow


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    argv = sys.argv
    sys.argv = [name]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = argv
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "completed queries" in out
    assert "deploy-mode switches" in out
    assert "reduction" in out


def test_contention_profiling(capsys):
    out = run_example("contention_profiling.py", capsys)
    assert "meter profiles" in out
    assert "hidden pressure" in out
    assert "lambda(mu)" in out


def test_capacity_planning(capsys):
    out = run_example("capacity_planning.py", capsys)
    assert "just-enough rentals" in out
    assert "containers needed" in out
