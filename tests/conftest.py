"""Shared fixtures for the test suite."""

import pytest

from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry


@pytest.fixture
def env() -> Environment:
    """A fresh simulation environment."""
    return Environment()


@pytest.fixture
def rng() -> RngRegistry:
    """A deterministic randomness registry."""
    return RngRegistry(seed=1234)
