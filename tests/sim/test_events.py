"""Event primitive semantics."""

import pytest

from repro.sim.environment import Environment
from repro.sim.events import AllOf, AnyOf, Event, EventAlreadyTriggered, Timeout


def test_event_starts_pending(env):
    ev = env.event()
    assert not ev.triggered
    assert not ev.processed


def test_value_unavailable_before_trigger(env):
    ev = env.event()
    with pytest.raises(AttributeError):
        _ = ev.value


def test_succeed_carries_value(env):
    ev = env.event()
    ev.succeed(42)
    assert ev.triggered
    assert ev.value == 42
    env.run()
    assert ev.processed


def test_succeed_twice_raises(env):
    ev = env.event()
    ev.succeed()
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()


def test_fail_then_succeed_raises(env):
    ev = env.event()
    ev.fail(RuntimeError("boom"))
    ev.defuse()
    with pytest.raises(EventAlreadyTriggered):
        ev.succeed()


def test_fail_requires_exception(env):
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")  # type: ignore[arg-type]


def test_unhandled_failure_escapes_run(env):
    ev = env.event()
    ev.fail(ValueError("unhandled"))
    with pytest.raises(ValueError, match="unhandled"):
        env.run()


def test_defused_failure_does_not_escape(env):
    ev = env.event()
    ev.fail(ValueError("handled"))
    ev.defuse()
    env.run()  # no raise
    assert not ev.ok


def test_timeout_fires_at_delay(env):
    t = env.timeout(5.0, value="hello")
    env.run()
    assert env.now == 5.0
    assert t.value == "hello"


def test_timeout_negative_delay_rejected(env):
    with pytest.raises(ValueError):
        Timeout(env, -1.0)


def test_timeouts_fire_in_order(env):
    order = []
    for delay in (3.0, 1.0, 2.0):
        ev = env.timeout(delay, value=delay)
        assert ev.callbacks is not None
        ev.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == [1.0, 2.0, 3.0]


def test_same_time_events_fifo(env):
    order = []
    for i in range(5):
        ev = env.timeout(1.0, value=i)
        assert ev.callbacks is not None
        ev.callbacks.append(lambda e: order.append(e.value))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_all_of_waits_for_all(env):
    a, b = env.timeout(1.0, "a"), env.timeout(3.0, "b")
    cond = AllOf(env, [a, b])
    env.run(until=cond)
    assert env.now == 3.0
    assert set(cond.value.values()) == {"a", "b"}


def test_any_of_fires_on_first(env):
    a, b = env.timeout(1.0, "a"), env.timeout(3.0, "b")
    cond = AnyOf(env, [a, b])
    env.run(until=cond)
    assert env.now == 1.0
    assert list(cond.value.values()) == ["a"]


def test_empty_all_of_fires_immediately(env):
    cond = AllOf(env, [])
    assert cond.triggered
    assert cond.value == {}


def test_all_of_propagates_failure(env):
    good = env.timeout(1.0)
    bad = env.event()
    bad.fail(RuntimeError("child failed"))
    cond = AllOf(env, [good, bad])
    cond.defuse()
    env.run()
    assert not cond.ok
    assert isinstance(cond.value, RuntimeError)


def test_condition_rejects_foreign_events(env):
    other = Environment()
    foreign = other.timeout(1.0)
    with pytest.raises(ValueError):
        AllOf(env, [env.timeout(1.0), foreign])


def test_all_of_with_already_processed_children(env):
    a = env.timeout(1.0, "a")
    env.run()
    b = env.timeout(1.0, "b")
    cond = AllOf(env, [a, b])
    env.run(until=cond)
    assert set(cond.value.values()) == {"a", "b"}


def test_trigger_copies_state(env):
    src = env.event()
    dst = env.event()
    src.succeed("payload")
    dst.trigger(src)
    assert dst.triggered
    assert dst.value == "payload"


# -- cancellation ---------------------------------------------------------


def test_cancel_scheduled_timeout_never_fires(env):
    fired = []
    early = env.timeout(1.0)
    assert early.callbacks is not None
    early.callbacks.append(lambda e: fired.append("early"))
    late = env.timeout(5.0)
    assert late.callbacks is not None
    late.callbacks.append(lambda e: fired.append("late"))
    late.cancel()
    env.run()
    assert fired == ["early"]
    # the clock never advanced to the cancelled event's timestamp
    assert env.now == 1.0
    assert late.cancelled


def test_cancel_is_idempotent(env):
    ev = env.timeout(1.0)
    ev.cancel()
    ev.cancel()  # no-op, no error
    assert ev.cancelled
    env.timeout(2.0)
    env.run()
    assert env.now == 2.0


def test_cancel_pending_event_is_an_error(env):
    ev = env.event()  # never triggered: nothing scheduled to revoke
    with pytest.raises(RuntimeError, match="cannot cancel"):
        ev.cancel()


def test_cancel_processed_event_is_an_error(env):
    ev = env.timeout(1.0)
    env.run()
    assert ev.processed
    with pytest.raises(RuntimeError, match="cannot cancel"):
        ev.cancel()


def test_cancelled_schedule_callback_does_not_run(env):
    hits = []
    cb = env.schedule_callback(1.0, lambda: hits.append(env.now))
    cb.cancel()
    env.timeout(3.0)
    env.run()
    assert hits == []
    assert env.now == 3.0
