"""Environment scheduling semantics."""

import math

import pytest

from repro.sim.environment import EmptySchedule, Environment


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0
    env.timeout(5.0)
    env.run()
    assert env.now == 105.0


def test_run_until_time_stops_exactly(env):
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_does_not_process_later_events(env):
    fired = []
    ev = env.timeout(5.0)
    assert ev.callbacks is not None
    ev.callbacks.append(lambda e: fired.append(env.now))
    env.run(until=5.0)
    # the stop event has priority below event processing at t=5
    assert fired == []
    env.run()
    assert fired == [5.0]


def test_horizon_excludes_events_at_the_horizon_itself(env):
    # run(until=T) schedules its stop event at priority -1, below even
    # URGENT (priority 0) bookkeeping: NO event with timestamp exactly T
    # runs before the horizon stops the clock, regardless of priority
    fired = []
    normal = env.timeout(5.0)
    assert normal.callbacks is not None
    normal.callbacks.append(lambda e: fired.append("normal"))
    urgent = env.event()
    urgent.succeed("u", delay=5.0, priority=0)
    assert urgent.callbacks is not None
    urgent.callbacks.append(lambda e: fired.append("urgent"))
    env.run(until=5.0)
    assert env.now == 5.0
    assert fired == []
    # resuming processes them, URGENT first
    env.run()
    assert fired == ["urgent", "normal"]


def test_run_until_past_raises(env):
    env.timeout(10.0)
    env.run(until=8.0)
    with pytest.raises(ValueError):
        env.run(until=3.0)


def test_run_until_event_returns_value(env):
    ev = env.timeout(2.5, value="done")
    assert env.run(until=ev) == "done"
    assert env.now == 2.5


def test_run_until_already_processed_event(env):
    ev = env.timeout(1.0, value=7)
    env.run()
    assert env.run(until=ev) == 7


def test_run_until_event_that_never_fires(env):
    pending = env.event()
    env.timeout(1.0)
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=pending)


def test_run_drains_heap(env):
    env.timeout(1.0)
    env.timeout(2.0)
    env.run()
    assert env.peek() == math.inf


def test_step_empty_raises(env):
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_returns_next_time(env):
    env.timeout(3.0)
    env.timeout(1.5)
    assert env.peek() == 1.5


def test_schedule_callback_runs_fn(env):
    hits = []
    env.schedule_callback(2.0, lambda: hits.append(env.now))
    env.run()
    assert hits == [2.0]


def test_clock_is_monotone_across_events(env):
    seen = []

    def proc(env):
        for _ in range(10):
            yield env.timeout(0.1)
            seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == sorted(seen)
    assert len(seen) == 10


# -- lazy discard of cancelled entries ------------------------------------


def test_peek_skips_cancelled_head(env):
    first = env.timeout(1.0)
    env.timeout(2.0)
    first.cancel()
    assert env.peek() == 2.0


def test_step_skips_cancelled_and_empty_heap_raises(env):
    only = env.timeout(1.0)
    only.cancel()
    with pytest.raises(EmptySchedule):
        env.step()
    assert env.now == 0.0  # the clock never moved


def test_live_size_excludes_cancelled_entries(env):
    evs = [env.timeout(float(i + 1)) for i in range(10)]
    assert env.live_size == 10
    for ev in evs[:4]:
        ev.cancel()
    assert env.live_size == 6
    assert env.heap_size >= env.live_size


def test_compaction_bounds_heap_size(env):
    # cancel far more than _COMPACT_MIN entries while keeping them the
    # minority-turned-majority of the heap: compaction must kick in and
    # physically shrink the heap, not just mark entries dead
    evs = [env.timeout(float(i + 1)) for i in range(500)]
    for ev in evs[:400]:
        ev.cancel()
    assert env.heap_size < 500
    assert env.live_size == 100
    env.run()
    assert env.now == 500.0  # survivors all fired at their original times


def test_scheduled_total_is_monotone(env):
    base = env.scheduled_total
    env.timeout(1.0)
    ev = env.timeout(2.0)
    assert env.scheduled_total == base + 2
    ev.cancel()  # cancellation does not un-count the insertion
    assert env.scheduled_total == base + 2
