"""Environment scheduling semantics."""

import math

import pytest

from repro.sim.environment import EmptySchedule, Environment


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=100.0)
    assert env.now == 100.0
    env.timeout(5.0)
    env.run()
    assert env.now == 105.0


def test_run_until_time_stops_exactly(env):
    env.timeout(10.0)
    env.run(until=4.0)
    assert env.now == 4.0


def test_run_until_time_does_not_process_later_events(env):
    fired = []
    ev = env.timeout(5.0)
    assert ev.callbacks is not None
    ev.callbacks.append(lambda e: fired.append(env.now))
    env.run(until=5.0)
    # the stop event has priority below event processing at t=5
    assert fired == []
    env.run()
    assert fired == [5.0]


def test_run_until_past_raises(env):
    env.timeout(10.0)
    env.run(until=8.0)
    with pytest.raises(ValueError):
        env.run(until=3.0)


def test_run_until_event_returns_value(env):
    ev = env.timeout(2.5, value="done")
    assert env.run(until=ev) == "done"
    assert env.now == 2.5


def test_run_until_already_processed_event(env):
    ev = env.timeout(1.0, value=7)
    env.run()
    assert env.run(until=ev) == 7


def test_run_until_event_that_never_fires(env):
    pending = env.event()
    env.timeout(1.0)
    with pytest.raises(RuntimeError, match="ran out of events"):
        env.run(until=pending)


def test_run_drains_heap(env):
    env.timeout(1.0)
    env.timeout(2.0)
    env.run()
    assert env.peek() == math.inf


def test_step_empty_raises(env):
    with pytest.raises(EmptySchedule):
        env.step()


def test_peek_returns_next_time(env):
    env.timeout(3.0)
    env.timeout(1.5)
    assert env.peek() == 1.5


def test_schedule_callback_runs_fn(env):
    hits = []
    env.schedule_callback(2.0, lambda: hits.append(env.now))
    env.run()
    assert hits == [2.0]


def test_clock_is_monotone_across_events(env):
    seen = []

    def proc(env):
        for _ in range(10):
            yield env.timeout(0.1)
            seen.append(env.now)

    env.process(proc(env))
    env.run()
    assert seen == sorted(seen)
    assert len(seen) == 10
