"""Resource / PriorityResource / Store semantics."""

import pytest

from repro.sim.resources import PriorityResource, Resource, Store


def test_resource_capacity_validation(env):
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_grants_up_to_capacity(env):
    res = Resource(env, capacity=2)
    r1, r2, r3 = res.request(), res.request(), res.request()
    assert r1.triggered and r2.triggered
    assert not r3.triggered
    assert res.count == 2
    assert res.queue_length == 1


def test_resource_fifo_order(env):
    res = Resource(env, capacity=1)
    order = []

    def worker(env, i):
        req = res.request()
        yield req
        order.append(i)
        yield env.timeout(1.0)
        res.release(req)

    for i in range(4):
        env.process(worker(env, i))
    env.run()
    assert order == [0, 1, 2, 3]


def test_release_queued_request_cancels_it(env):
    res = Resource(env, capacity=1)
    held = res.request()
    queued = res.request()
    res.release(queued)  # cancel while still queued
    assert res.queue_length == 0
    res.release(held)
    assert res.count == 0


def test_release_unknown_request_raises(env):
    res = Resource(env, capacity=1)
    other = Resource(env, capacity=1)
    req = other.request()
    with pytest.raises(RuntimeError):
        res.release(req)


def test_resize_grants_waiters(env):
    res = Resource(env, capacity=1)
    res.request()
    waiting = res.request()
    assert not waiting.triggered
    res.resize(2)
    assert waiting.triggered


def test_priority_resource_orders_waiters(env):
    res = PriorityResource(env, capacity=1)
    held = res.request(priority=0)
    low = res.request(priority=5)
    high = res.request(priority=1)
    res.release(held)
    assert high.triggered
    assert not low.triggered


def test_priority_resource_fifo_within_level(env):
    res = PriorityResource(env, capacity=1)
    held = res.request()
    first = res.request(priority=1)
    second = res.request(priority=1)
    res.release(held)
    assert first.triggered and not second.triggered


def test_priority_release_queued_request(env):
    res = PriorityResource(env, capacity=1)
    held = res.request()
    queued = res.request(priority=2)
    res.release(queued)
    assert res.queue_length == 0
    res.release(held)


def test_store_put_get_fifo(env):
    store = Store(env)
    store.put("a")
    store.put("b")
    g1, g2 = store.get(), store.get()
    assert g1.value == "a"
    assert g2.value == "b"


def test_store_get_blocks_until_put(env):
    store = Store(env)
    got = []

    def consumer(env):
        item = yield store.get()
        got.append((env.now, item))

    env.process(consumer(env))

    def producer(env):
        yield env.timeout(5.0)
        yield store.put("late")

    env.process(producer(env))
    env.run()
    assert got == [(5.0, "late")]


def test_store_capacity_blocks_put(env):
    store = Store(env, capacity=1)
    p1 = store.put("x")
    p2 = store.put("y")
    assert p1.triggered
    assert not p2.triggered
    g = store.get()
    assert g.value == "x"
    assert p2.triggered  # slot freed


def test_store_capacity_validation(env):
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_cancel_get(env):
    store = Store(env)
    g = store.get()
    assert store.cancel_get(g)
    assert not store.cancel_get(g)  # already removed
    store.put("x")
    assert not g.triggered  # cancelled getter never fires
    assert len(store) == 1


def test_store_items_snapshot(env):
    store = Store(env)
    for i in range(3):
        store.put(i)
    assert store.items == (0, 1, 2)
