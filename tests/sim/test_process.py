"""Process semantics: sequencing, completion, interrupts, errors."""

import pytest

from repro.sim.events import Interrupt
from repro.sim.process import Process


def test_process_runs_to_completion(env):
    log = []

    def proc(env):
        yield env.timeout(1.0)
        log.append(env.now)
        yield env.timeout(2.0)
        log.append(env.now)
        return "finished"

    p = env.process(proc(env))
    result = env.run(until=p)
    assert log == [1.0, 3.0]
    assert result == "finished"
    assert not p.is_alive


def test_process_requires_generator(env):
    with pytest.raises(TypeError):
        Process(env, lambda: None)  # type: ignore[arg-type]


def test_process_receives_event_value(env):
    got = []

    def proc(env):
        v = yield env.timeout(1.0, value="payload")
        got.append(v)

    env.process(proc(env))
    env.run()
    assert got == ["payload"]


def test_processes_wait_on_each_other(env):
    def child(env):
        yield env.timeout(2.0)
        return 21

    def parent(env):
        v = yield env.process(child(env))
        return v * 2

    p = env.process(parent(env))
    assert env.run(until=p) == 42


def test_yield_non_event_raises(env):
    def proc(env):
        yield 42  # not an event

    env.process(proc(env))
    with pytest.raises(TypeError, match="may only yield events"):
        env.run()


def test_process_exception_propagates_to_waiter(env):
    def child(env):
        yield env.timeout(1.0)
        raise ValueError("child died")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(parent(env))
    assert env.run(until=p) == "caught child died"


def test_unwaited_process_exception_escapes(env):
    def proc(env):
        yield env.timeout(1.0)
        raise RuntimeError("nobody listening")

    env.process(proc(env))
    with pytest.raises(RuntimeError, match="nobody listening"):
        env.run()


def test_interrupt_wakes_sleeping_process(env):
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    p = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(3.0)
        p.interrupt("wake up")

    env.process(interrupter(env))
    env.run()
    assert log == [(3.0, "wake up")]


def test_interrupt_finished_process_raises(env):
    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError, match="finished"):
        p.interrupt()


def test_interrupted_process_can_continue(env):
    log = []

    def worker(env):
        try:
            yield env.timeout(50.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    p = env.process(worker(env))
    env.schedule_callback(5.0, lambda: p.interrupt())
    env.run()
    assert log == [6.0]


def test_waiting_on_already_processed_event(env):
    def proc(env):
        t = env.timeout(1.0, value="early")
        yield env.timeout(3.0)
        v = yield t  # t fired long ago
        return v

    p = env.process(proc(env))
    assert env.run(until=p) == "early"
    assert env.now == 3.0


def test_two_processes_interleave(env):
    log = []

    def ping(env):
        for _ in range(3):
            yield env.timeout(2.0)
            log.append(("ping", env.now))

    def pong(env):
        yield env.timeout(1.0)
        for _ in range(3):
            yield env.timeout(2.0)
            log.append(("pong", env.now))

    env.process(ping(env))
    env.process(pong(env))
    env.run()
    assert log == [
        ("ping", 2.0),
        ("pong", 3.0),
        ("ping", 4.0),
        ("pong", 5.0),
        ("ping", 6.0),
        ("pong", 7.0),
    ]
