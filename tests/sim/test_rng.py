"""Determinism and independence of named RNG substreams."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry


def test_same_seed_same_stream():
    a = RngRegistry(seed=7).stream("x").random(10)
    b = RngRegistry(seed=7).stream("x").random(10)
    assert np.array_equal(a, b)


def test_different_names_differ():
    reg = RngRegistry(seed=7)
    a = reg.stream("x").random(10)
    b = reg.stream("y").random(10)
    assert not np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random(10)
    b = RngRegistry(seed=2).stream("x").random(10)
    assert not np.array_equal(a, b)


def test_stream_identity_is_creation_order_independent():
    r1 = RngRegistry(seed=5)
    r1.stream("a")
    v1 = r1.stream("b").random(5)
    r2 = RngRegistry(seed=5)
    v2 = r2.stream("b").random(5)  # "a" never created here
    assert np.array_equal(v1, v2)


def test_stream_cached():
    reg = RngRegistry(seed=3)
    assert reg.stream("s") is reg.stream("s")


def test_negative_seed_rejected():
    with pytest.raises(ValueError):
        RngRegistry(seed=-1)


def test_exponential_mean():
    reg = RngRegistry(seed=11)
    xs = [reg.exponential("e", 2.0) for _ in range(20000)]
    assert abs(np.mean(xs) - 2.0) < 0.05


def test_exponential_validation():
    with pytest.raises(ValueError):
        RngRegistry(seed=0).exponential("e", 0.0)


def test_lognormal_median():
    reg = RngRegistry(seed=13)
    xs = [reg.lognormal_around("l", 3.0, 0.3) for _ in range(20001)]
    assert abs(np.median(xs) - 3.0) < 0.1


def test_lognormal_validation():
    with pytest.raises(ValueError):
        RngRegistry(seed=0).lognormal_around("l", -1.0, 0.1)


def test_uniform_bounds():
    reg = RngRegistry(seed=17)
    xs = [reg.uniform("u", 2.0, 5.0) for _ in range(1000)]
    assert min(xs) >= 2.0 and max(xs) < 5.0


def test_uniform_validation():
    with pytest.raises(ValueError):
        RngRegistry(seed=0).uniform("u", 5.0, 2.0)


def test_fork_is_deterministic_and_independent():
    a1 = RngRegistry(seed=9).fork("salt").stream("x").random(5)
    a2 = RngRegistry(seed=9).fork("salt").stream("x").random(5)
    b = RngRegistry(seed=9).fork("other").stream("x").random(5)
    parent = RngRegistry(seed=9).stream("x").random(5)
    assert np.array_equal(a1, a2)
    assert not np.array_equal(a1, b)
    assert not np.array_equal(a1, parent)
