"""Statistics helpers: correctness against NumPy and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import (
    Histogram,
    OnlineStats,
    P2Quantile,
    ReservoirSample,
    TimeSeries,
    TimeWeightedStats,
)

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestOnlineStats:
    def test_empty(self):
        s = OnlineStats()
        assert s.n == 0
        assert math.isnan(s.mean)
        assert math.isnan(s.variance)

    def test_matches_numpy(self):
        data = np.random.default_rng(0).normal(5, 2, size=1000)
        s = OnlineStats()
        s.extend(data)
        assert s.n == 1000
        assert s.mean == pytest.approx(np.mean(data))
        assert s.variance == pytest.approx(np.var(data, ddof=1))
        assert s.std == pytest.approx(np.std(data, ddof=1))
        assert s.min == data.min() and s.max == data.max()

    def test_single_observation(self):
        s = OnlineStats()
        s.add(3.0)
        assert s.mean == 3.0
        assert math.isnan(s.variance)

    @given(st.lists(finite_floats, min_size=1, max_size=60), st.lists(finite_floats, min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_combined(self, xs, ys):
        a, b, c = OnlineStats(), OnlineStats(), OnlineStats()
        a.extend(xs)
        b.extend(ys)
        c.extend(xs + ys)
        merged = a.merge(b)
        assert merged.n == c.n
        assert merged.mean == pytest.approx(c.mean, rel=1e-6, abs=1e-6)
        if c.n > 1 and not math.isnan(c.variance):
            assert merged.variance == pytest.approx(c.variance, rel=1e-6, abs=1e-5)

    def test_merge_with_empty(self):
        a, b = OnlineStats(), OnlineStats()
        a.extend([1.0, 2.0])
        m = a.merge(b)
        assert m.n == 2 and m.mean == 1.5


class TestP2Quantile:
    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_small_samples_exactish(self):
        q = P2Quantile(0.5)
        for x in (5.0, 1.0, 3.0):
            q.add(x)
        assert 1.0 <= q.value <= 5.0

    @pytest.mark.parametrize("quantile", [0.5, 0.9, 0.95, 0.99])
    def test_tracks_known_distribution(self, quantile):
        rng = np.random.default_rng(42)
        data = rng.exponential(1.0, size=50000)
        est = P2Quantile(quantile)
        for x in data:
            est.add(float(x))
        exact = float(np.quantile(data, quantile))
        assert est.value == pytest.approx(exact, rel=0.06)

    def test_bounded_memory(self):
        est = P2Quantile(0.95)
        for x in range(100000):
            est.add(float(x % 977))
        assert len(est._heights) == 5


class TestReservoirSample:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)

    def test_keeps_everything_under_capacity(self):
        r = ReservoirSample(100)
        for x in range(50):
            r.add(float(x))
        assert sorted(r.values()) == [float(x) for x in range(50)]

    def test_bounded_at_capacity(self):
        r = ReservoirSample(64, rng=np.random.default_rng(0))
        for x in range(10000):
            r.add(float(x))
        assert r.values().size == 64
        assert r.n == 10000

    def test_sample_is_representative(self):
        r = ReservoirSample(2000, rng=np.random.default_rng(1))
        for x in range(100000):
            r.add(float(x))
        assert abs(r.percentile(50) - 50000) < 6000

    def test_percentile_empty_nan(self):
        assert math.isnan(ReservoirSample(10).percentile(50))

    def test_cdf_monotone(self):
        r = ReservoirSample(500, rng=np.random.default_rng(2))
        for x in np.random.default_rng(3).normal(0, 1, 2000):
            r.add(float(x))
        grid = np.linspace(-3, 3, 50)
        f = r.cdf(grid)
        assert np.all(np.diff(f) >= 0)
        assert f[0] >= 0.0 and f[-1] <= 1.0


class TestHistogram:
    def test_validation(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 10)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)

    def test_binning(self):
        h = Histogram(0.0, 10.0, 10)
        for x in (0.5, 1.5, 1.7, 9.99):
            h.add(x)
        assert h.counts[0] == 1
        assert h.counts[1] == 2
        assert h.counts[9] == 1

    def test_overflow_underflow(self):
        h = Histogram(0.0, 1.0, 4)
        h.add(-0.1)
        h.add(1.0)  # hi edge is exclusive
        h.add(5.0)
        assert h.underflow == 1
        assert h.overflow == 2
        assert h.n == 3

    def test_edges(self):
        h = Histogram(0.0, 1.0, 4)
        assert np.allclose(h.edges(), [0.0, 0.25, 0.5, 0.75, 1.0])

    def test_top_edge_rounding_clamps_to_last_bin(self):
        # (hi - lo) / bins is inexact here, so int((x - lo) / width) lands
        # on the phantom bin ``bins`` for x just below hi (this raised
        # IndexError before the clamp)
        h = Histogram(0.0, 3.3, 6)
        x = math.nextafter(3.3, 0.0)
        assert x < h.hi
        h.add(x)
        assert h.overflow == 0
        assert h.counts[5] == 1
        assert h.n == 1


class TestTimeWeightedStats:
    def test_constant_signal(self):
        tw = TimeWeightedStats(t0=0.0, initial=3.0)
        assert tw.integral(10.0) == pytest.approx(30.0)
        assert tw.mean(10.0) == pytest.approx(3.0)

    def test_step_signal(self):
        tw = TimeWeightedStats()
        tw.set(2.0, 4.0)  # 0 until t=2, then 4
        assert tw.integral(5.0) == pytest.approx(12.0)
        assert tw.mean(5.0) == pytest.approx(12.0 / 5.0)
        assert tw.max == 4.0 and tw.min == 0.0

    def test_adjust(self):
        tw = TimeWeightedStats()
        tw.adjust(1.0, 2.0)
        tw.adjust(2.0, -1.0)
        assert tw.level == pytest.approx(1.0)
        assert tw.integral(3.0) == pytest.approx(0 + 2.0 * 1.0 + 1.0 * 1.0)

    def test_time_going_backwards_raises(self):
        tw = TimeWeightedStats()
        tw.set(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.set(4.0, 2.0)
        with pytest.raises(ValueError):
            tw.integral(4.0)

    def test_empty_interval_mean_nan(self):
        assert math.isnan(TimeWeightedStats().mean(0.0))

    @given(st.lists(st.tuples(st.floats(0.01, 10.0), finite_floats), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_integral_matches_manual(self, steps):
        tw = TimeWeightedStats()
        t = 0.0
        manual = 0.0
        level = 0.0
        for dt, v in steps:
            manual += level * dt
            t += dt
            tw.set(t, v)
            level = v
        manual += level * 1.0
        assert tw.integral(t + 1.0) == pytest.approx(manual, rel=1e-9, abs=1e-6)


class TestTimeSeries:
    def test_records_everything_without_decimation(self):
        ts = TimeSeries()
        for i in range(10):
            ts.record(float(i), float(i * i))
        assert len(ts) == 10

    def test_decimation_keeps_latest(self):
        ts = TimeSeries(min_interval=1.0)
        ts.record(0.0, 1.0)
        ts.record(0.5, 2.0)  # within window: overwrites value
        ts.record(2.0, 3.0)
        assert len(ts) == 2
        assert ts.values()[0] == 2.0

    def test_decimated_sample_keeps_consistent_timestamp(self):
        # the in-window rewrite must replace the (t, v) pair together —
        # it used to keep the stale timestamp with the new value
        ts = TimeSeries(min_interval=1.0)
        ts.record(0.0, 1.0)
        ts.record(0.5, 2.0)
        assert ts.times()[-1] == 0.5
        assert ts.values()[-1] == 2.0

    def test_decimation_window_does_not_slide(self):
        # rewriting the newest sample's timestamp must not move the
        # decimation grid: the window stays anchored at the first
        # accepted sample's time
        ts = TimeSeries(min_interval=1.0)
        ts.record(0.0, 1.0)
        ts.record(0.9, 2.0)  # in-window rewrite
        ts.record(1.5, 3.0)  # 1.5s past the anchor at 0.0: new sample
        assert list(ts.times()) == [0.9, 1.5]
        assert list(ts.values()) == [2.0, 3.0]

    def test_resample_zero_order_hold(self):
        ts = TimeSeries()
        ts.record(1.0, 10.0)
        ts.record(3.0, 20.0)
        out = ts.resample([0.0, 1.0, 2.0, 3.5])
        assert math.isnan(out[0])
        assert out[1] == 10.0 and out[2] == 10.0 and out[3] == 20.0

    def test_resample_empty(self):
        out = TimeSeries().resample([1.0, 2.0])
        assert np.all(np.isnan(out))
