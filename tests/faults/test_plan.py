"""FaultPlan: validation, scaling, the provably-inert zero plan."""

from dataclasses import FrozenInstanceError

import pytest

from repro.faults import FaultPlan


class TestValidation:
    def test_defaults_are_inert(self):
        assert not FaultPlan().any_faults

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(container_crash_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(vm_boot_failure_prob=-0.1)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(vm_boot_delay_s=-1.0)

    def test_negative_retry_budget_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(max_query_retries=-1)

    def test_plan_is_frozen(self):
        with pytest.raises(FrozenInstanceError):
            FaultPlan().container_crash_prob = 0.5  # type: ignore[misc]


class TestScaling:
    def test_scaled_multiplies_probabilities(self):
        plan = FaultPlan(container_crash_prob=0.2, meter_drop_prob=0.1)
        half = plan.scaled(0.5)
        assert half.container_crash_prob == pytest.approx(0.1)
        assert half.meter_drop_prob == pytest.approx(0.05)

    def test_scaled_clamps_to_one(self):
        doubled = FaultPlan(prewarm_ack_loss_prob=0.6).scaled(3.0)
        assert doubled.prewarm_ack_loss_prob == 1.0

    def test_scaled_zero_is_inert(self):
        plan = FaultPlan(container_crash_prob=0.5, vm_boot_failure_prob=0.5)
        assert not plan.scaled(0.0).any_faults

    def test_scaled_leaves_degradation_policy_unchanged(self):
        plan = FaultPlan(
            container_crash_prob=0.5, max_query_retries=7, retry_backoff_s=1.5
        )
        doubled = plan.scaled(2.0)
        assert doubled.max_query_retries == 7
        assert doubled.retry_backoff_s == 1.5
        assert doubled.container_crash_prob == 1.0

    def test_negative_factor_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().scaled(-1.0)


class TestPreemptionFields:
    def test_zero_preemption_is_inert(self):
        assert FaultPlan(vm_preemption_prob=0.0).vm_preemption_prob == 0.0
        assert not FaultPlan(vm_preemption_prob=0.0).any_faults

    def test_preemption_prob_counts_as_a_fault(self):
        assert FaultPlan(vm_preemption_prob=0.2).any_faults

    def test_preemption_prob_scales(self):
        plan = FaultPlan(vm_preemption_prob=0.4, preemption_check_interval_s=15.0)
        half = plan.scaled(0.5)
        assert half.vm_preemption_prob == pytest.approx(0.2)
        # the check cadence is policy, not a probability: scaling keeps it
        assert half.preemption_check_interval_s == 15.0

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(vm_preemption_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(preemption_check_interval_s=-1.0)


def test_describe_lists_only_active_rates():
    assert FaultPlan().describe() == "faults(none)"
    text = FaultPlan(container_crash_prob=0.25).describe()
    assert "container_crash_prob=0.25" in text
    assert "vm_boot" not in text
