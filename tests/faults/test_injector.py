"""FaultInjector: named streams, zero-draw inertness, ack filtering."""

from repro.faults import FaultInjector, FaultPlan
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry


def make(plan=None, seed=3):
    rng = RngRegistry(seed=seed)
    return FaultInjector(plan if plan is not None else FaultPlan(), rng), rng


class TestZeroPlan:
    def test_zero_plan_makes_no_draws_and_no_streams(self):
        inj, rng = make()
        assert not inj.cold_start_fails("svc")
        assert not inj.container_crashes("svc")
        assert inj.vm_boot_delay("svc") == 0.0
        assert not inj.vm_boot_fails("svc")
        assert inj.meter_outage("m") == 0.0
        assert not inj.meter_sample_dropped("m")
        # the determinism contract: a zero plan is invisible to the RNG
        assert rng._streams == {}
        assert inj.stats.total_injected == 0

    def test_zero_plan_passes_ack_through_untouched(self):
        env = Environment()
        inj, rng = make()
        ack = env.event()
        assert inj.filter_prewarm_ack("svc", ack, env) is ack
        assert rng._streams == {}


class TestDeterminism:
    def test_same_seed_same_decision_sequence(self):
        plan = FaultPlan(container_crash_prob=0.3)
        a, _ = make(plan, seed=11)
        b, _ = make(plan, seed=11)
        seq_a = [a.container_crashes("svc") for _ in range(200)]
        seq_b = [b.container_crashes("svc") for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_streams_are_named_per_fault_class_and_service(self):
        inj, rng = make(FaultPlan(container_crash_prob=0.3, cold_start_failure_prob=0.3))
        inj.container_crashes("a")
        inj.container_crashes("b")
        inj.cold_start_fails("a")
        assert set(rng._streams) == {
            "faults/crash/a",
            "faults/crash/b",
            "faults/coldstart/a",
        }


class TestCounters:
    def test_counters_track_injections(self):
        plan = FaultPlan(container_crash_prob=1.0, cold_start_failure_prob=1.0)
        inj, _ = make(plan)
        assert inj.container_crashes("svc")
        assert inj.cold_start_fails("svc")
        assert inj.stats.container_crashes == 1
        assert inj.stats.cold_start_failures == 1
        assert inj.stats.total_injected == 2
        assert inj.stats.as_dict()["container_crashes"] == 1

    def test_certain_boot_delay_returns_plan_duration(self):
        inj, _ = make(FaultPlan(vm_boot_delay_prob=1.0, vm_boot_delay_s=17.0))
        assert inj.vm_boot_delay("svc") == 17.0
        assert inj.stats.vm_boot_delays == 1

    def test_certain_meter_outage_returns_plan_duration(self):
        inj, _ = make(FaultPlan(meter_outage_prob=1.0, meter_outage_duration_s=45.0))
        assert inj.meter_outage("cpu-meter") == 45.0
        assert inj.stats.meter_outages == 1


class TestPreemption:
    def test_zero_prob_makes_no_draws(self):
        inj, rng = make()
        assert not inj.vm_preempted("svc")
        assert rng._streams == {}
        assert inj.stats.vm_preemptions == 0

    def test_certain_preemption_counts_and_uses_named_stream(self):
        inj, rng = make(FaultPlan(vm_preemption_prob=1.0))
        assert inj.vm_preempted("svc")
        assert inj.stats.vm_preemptions == 1
        assert set(rng._streams) == {"faults/preemption/svc"}

    def test_same_seed_same_preemption_sequence(self):
        plan = FaultPlan(vm_preemption_prob=0.3)
        a, _ = make(plan, seed=21)
        b, _ = make(plan, seed=21)
        seq_a = [a.vm_preempted("svc") for _ in range(200)]
        seq_b = [b.vm_preempted("svc") for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)


class TestAckFilter:
    def test_lost_ack_never_fires(self):
        env = Environment()
        inj, _ = make(FaultPlan(prewarm_ack_loss_prob=1.0))
        ack = env.timeout(1.0, value=4)
        seen = inj.filter_prewarm_ack("svc", ack, env)
        assert seen is not ack
        env.run(until=100.0)
        assert ack.processed  # the warming itself still happened
        assert not seen.triggered
        assert inj.stats.prewarm_acks_lost == 1

    def test_delayed_ack_relays_value_late(self):
        env = Environment()
        inj, _ = make(FaultPlan(prewarm_ack_delay_prob=1.0, prewarm_ack_delay_s=5.0))
        ack = env.timeout(1.0, value=4)
        seen = inj.filter_prewarm_ack("svc", ack, env)
        env.run(until=3.0)
        # the relay is armed (triggered) but fires only after the delay
        assert ack.processed and not seen.processed
        env.run(until=10.0)
        assert seen.processed
        assert seen.value == 4
        assert inj.stats.prewarm_acks_delayed == 1

    def test_delay_applies_to_already_processed_ack(self):
        env = Environment()
        inj, _ = make(FaultPlan(prewarm_ack_delay_prob=1.0, prewarm_ack_delay_s=5.0))
        ack = env.timeout(1.0, value=9)
        env.run(until=2.0)
        seen = inj.filter_prewarm_ack("svc", ack, env)
        assert not seen.processed
        env.run(until=10.0)
        assert seen.processed and seen.value == 9
