"""Shared per-service telemetry."""

import math

import pytest

from repro.telemetry import LoadEstimator, ServiceMetrics
from repro.workloads.loadgen import Query


def make_query(lat, canary=False, cold=0.0, queue=0.0, served_by="serverless"):
    q = Query(qid=0, service="s", t_submit=0.0, canary=canary)
    q.t_complete = lat
    q.breakdown = {"cold": cold, "queue": queue, "exec": lat - cold - queue}
    q.served_by = served_by
    return q


class TestLoadEstimator:
    def test_validation(self):
        with pytest.raises(ValueError):
            LoadEstimator(window=0.0)

    def test_rate_before_any_arrival(self):
        assert LoadEstimator().rate(10.0) == 0.0

    def test_steady_rate(self):
        est = LoadEstimator(window=10.0)
        for i in range(200):
            est.record(i * 0.5)  # 2 qps for 100 s
        assert est.rate(100.0) == pytest.approx(2.0, rel=0.1)

    def test_window_evicts_old(self):
        est = LoadEstimator(window=10.0)
        for i in range(100):
            est.record(float(i) * 0.1)  # burst in [0, 10)
        assert est.rate(50.0) == 0.0

    def test_early_rate_uses_elapsed_span(self):
        est = LoadEstimator(window=60.0)
        est.record(0.0)
        est.record(1.0)
        # only 2 s elapsed: rate ~1 qps, not 2/60
        assert est.rate(2.0) == pytest.approx(1.0)

    def test_total_counts_everything(self):
        est = LoadEstimator(window=1.0)
        for i in range(50):
            est.record(float(i))
        assert est.total == 50


class TestServiceMetrics:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceMetrics("s", qos_target=0.0)

    def test_violation_accounting(self):
        m = ServiceMetrics("s", qos_target=1.0)
        m.record_completion(make_query(0.5))
        m.record_completion(make_query(2.0))
        m.record_completion(make_query(0.9))
        assert m.completed == 3
        assert m.violations == 1
        assert m.violation_fraction == pytest.approx(1 / 3)

    def test_canaries_not_counted_in_qos(self):
        m = ServiceMetrics("s", qos_target=1.0)
        m.record_completion(make_query(5.0, canary=True))
        assert m.completed == 0
        assert m.violation_fraction == 0.0
        assert m.mean_canary_latency() == pytest.approx(5.0)

    def test_canary_feedback_excludes_cold_and_queue(self):
        m = ServiceMetrics("s", qos_target=1.0)
        m.record_completion(make_query(3.0, canary=True, cold=1.5, queue=1.0))
        assert m.mean_canary_latency() == pytest.approx(0.5)

    def test_recent_excludes_cold_and_queue_but_latencies_do_not(self):
        m = ServiceMetrics("s", qos_target=1.0)
        m.record_completion(make_query(3.0, cold=1.5, queue=1.0))
        assert list(m.recent) == [pytest.approx(0.5)]
        assert m.latencies.values()[0] == pytest.approx(3.0)

    def test_mean_canary_nan_when_empty(self):
        assert math.isnan(ServiceMetrics("s", 1.0).mean_canary_latency())

    def test_breakdown_fractions(self):
        m = ServiceMetrics("s", qos_target=10.0)
        q = make_query(1.0)
        q.breakdown = {"proc": 0.1, "exec": 0.8, "post": 0.1}
        m.record_completion(q)
        f = m.breakdown_fractions()
        assert f["proc"] == pytest.approx(0.1)
        assert f["exec"] == pytest.approx(0.8)
        assert sum(f.values()) == pytest.approx(1.0)

    def test_breakdown_fractions_empty(self):
        f = ServiceMetrics("s", 1.0).breakdown_fractions()
        assert all(v == 0.0 for v in f.values())

    def test_served_by_counts(self):
        m = ServiceMetrics("s", qos_target=10.0)
        m.record_completion(make_query(1.0, served_by="iaas"))
        m.record_completion(make_query(1.0, served_by="serverless"))
        m.record_completion(make_query(1.0, served_by="iaas"))
        assert m.served_by == {"iaas": 2, "serverless": 1}

    def test_p95_estimates_agree(self):
        m = ServiceMetrics("s", qos_target=100.0)
        for i in range(2000):
            m.record_completion(make_query(float(i % 100) / 100.0))
        assert m.p95_estimate == pytest.approx(m.latency_percentile(95), rel=0.1)

    def test_arrival_recording(self):
        m = ServiceMetrics("s", qos_target=1.0)
        m.record_arrival(0.0)
        m.record_arrival(1.0, canary=True)  # excluded from load
        assert m.load.total == 1


class TestLatencyPercentileHonesty:
    """Both sides of the reservoir capacity boundary, explicitly.

    ``latency_percentile`` is exact only while every completion is still
    in the reservoir; past capacity it becomes a deterministic seeded
    subsample estimate.  QoS gates (experiments/metrics.py) read
    ``latency_sample_exact`` to know which regime they are in.
    """

    def test_exact_below_capacity(self):
        m = ServiceMetrics("s", qos_target=100.0, reservoir=500)
        lats = [float(i) for i in range(400)]
        for lat in lats:
            m.record_completion(make_query(lat))
        assert m.latency_sample_exact
        assert m.latency_sample_coverage == (400, 500)
        import numpy as np

        assert m.latency_percentile(95) == pytest.approx(float(np.percentile(lats, 95)))

    def test_exact_at_capacity_boundary(self):
        m = ServiceMetrics("s", qos_target=100.0, reservoir=100)
        for i in range(100):
            m.record_completion(make_query(float(i)))
        assert m.latency_sample_exact  # n == capacity: still exhaustive
        m.record_completion(make_query(100.0))
        assert not m.latency_sample_exact  # one past: now a subsample
        assert m.latency_sample_coverage == (101, 100)

    def test_estimate_past_capacity_is_deterministic(self):
        def run():
            m = ServiceMetrics("s", qos_target=100.0, reservoir=50)
            for i in range(5000):
                m.record_completion(make_query(float(i % 1000)))
            return m.latency_percentile(95)

        a, b = run(), run()
        assert not math.isnan(a)
        assert a.hex() == b.hex()  # seeded reservoir: bit-identical reruns

    def test_sized_reservoir_keeps_gate_exact(self):
        # the fleet family sizes reservoirs from expected completions so
        # the QoS gate never silently degrades
        m = ServiceMetrics("s", qos_target=100.0, reservoir=10_000)
        for i in range(6000):
            m.record_completion(make_query(float(i)))
        assert m.latency_sample_exact
