"""Figure regenerators: smoke tests on reduced parameters.

Full-fidelity regeneration lives in benchmarks/; these tests only verify
that each regenerator runs, produces the right row structure, and that
the cheap ones land in the paper's qualitative ranges.
"""

import pytest

from repro.experiments import figures as F
from repro.workloads.functionbench import benchmark_names

# figure-scale simulations: excluded from the quick tier
pytestmark = pytest.mark.slow



class TestTables:
    def test_table2(self):
        r = F.table2_setup()
        assert r.figure == "Table II"
        assert any("cores per node" in str(row[0]) for row in r.rows)
        assert "40" in r.text()

    def test_table3(self):
        r = F.table3_benchmarks()
        assert [row[0] for row in r.rows] == list(benchmark_names())
        assert len(r.headers) == len(r.rows[0])


class TestInvestigationFigures:
    def test_fig2_shape(self):
        r = F.fig2_iaas_utilization(day=600.0, windows=12)
        assert [row[0] for row in r.rows] == list(benchmark_names())
        for _name, lo, avg, hi in r.rows:
            assert 0.0 <= lo <= avg <= hi <= 1.0
        # the paper's headline: IaaS average utilization is low
        averages = [row[2] for row in r.rows]
        assert max(averages) < 0.8

    def test_fig4_overheads_in_band(self):
        r = F.fig4_latency_breakdown(duration=120.0)
        for row in r.rows:
            overhead = row[5]
            assert 0.05 < overhead < 0.5  # paper: 10-45%
        # fractions sum to 1
        for row in r.rows:
            assert sum(row[1:5]) == pytest.approx(1.0, abs=1e-6)

    def test_fig8_curves(self):
        r = F.fig8_meter_curves(points=3, queries_per_point=20)
        meters = {row[0] for row in r.rows}
        assert meters == {"meter_cpu", "meter_io", "meter_net"}
        for name in meters:
            prof = r.extras[name]["measured"]
            assert prof.latencies[-1] >= prof.latencies[0]

    def test_fig9_surfaces(self):
        r = F.fig9_latency_surfaces(
            service="dd", pressures=(0.0, 1.0), load_fractions=(0.0, 0.3), duration=40.0
        )
        axes = {row[1] for row in r.rows}
        assert axes == {"cpu", "io", "net"}
        # dd is io-bound: pressure on the io axis hurts more than net
        io_rows = [row for row in r.rows if row[1] == "io" and row[2] == 1.0]
        net_rows = [row for row in r.rows if row[1] == "net" and row[2] == 1.0]
        assert io_rows[0][4] > net_rows[0][4]


class TestEvaluationFigures:
    """One tiny shared run exercises the cached triple-run machinery."""

    DAY = 900.0

    def test_run_triple_caches(self):
        sc1, res1 = F.run_triple("float", day=self.DAY, seed=1, systems=("nameko",))
        sc2, res2 = F.run_triple("float", day=self.DAY, seed=1, systems=("nameko",))
        assert res1["nameko"] is res2["nameko"]
        with pytest.raises(ValueError):
            F.run_triple("float", day=self.DAY, seed=1, systems=("bogus",))

    def test_fig12_switch_timeline(self):
        r = F.fig12_switch_timeline(services=("float",), day=self.DAY, seed=1)
        assert "float" in r.extras
        timeline = r.extras["float"]["mode_timeline"]
        assert timeline[0][1] == "iaas"
        grid, load = r.extras["float"]["load_grid"]
        assert len(grid) == len(load)

    def test_fig13_usage_timeline(self):
        r = F.fig13_usage_timeline(services=("float",), day=self.DAY, seed=1, points=40)
        cpu = r.extras["float"]["cpu"]
        assert cpu.shape == (40,)
        assert cpu.max() > 0

    def test_sec7e_meter_overhead(self):
        r = F.sec7e_meter_overhead(day=self.DAY, seed=1)
        total_row = [row for row in r.rows if row[0] == "total"][0]
        assert 0.0 < total_row[1] < 0.05
