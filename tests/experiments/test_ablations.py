"""Ablation study smoke tests (reduced days; full runs live in benchmarks/)."""

import pytest

from repro.experiments.ablations import (
    ablate_discriminant,
    ablate_guard,
    ablate_keep_alive,
    ablate_sample_period,
)

# whole-day ablation sweeps: excluded from the quick tier
pytestmark = pytest.mark.slow

DAY = 900.0


def test_ablate_guard_structure():
    r = ablate_guard(name="float", day=DAY, seed=2)
    labels = [row[0] for row in r.rows]
    assert labels == ["guard on", "guard off"]
    for row in r.rows:
        assert 0.0 <= row[1] <= 1.0  # fg violation fraction
        assert 0.0 <= row[2] <= 1.0  # worst bg violation fraction


def test_ablate_sample_period_structure():
    r = ablate_sample_period(name="float", day=DAY, seed=2)
    rows = {row[0]: row for row in r.rows}
    assert set(rows) == {"Eq. 8 period", "3 s period"}
    for row in r.rows:
        assert row[2] > 0  # mean cores


def test_ablate_discriminant_structure():
    r = ablate_discriminant(name="float", day=DAY, seed=2)
    labels = [row[0] for row in r.rows]
    assert labels[0] == "Eq. 5 (M/M/N)"
    assert len(labels) == 3


def test_ablate_keep_alive_tradeoff():
    r = ablate_keep_alive(name="float", day=DAY, seed=2)
    keep_alives = [row[0] for row in r.rows]
    assert keep_alives == sorted(keep_alives)
    mem = [row[2] for row in r.rows]
    cold = [row[3] for row in r.rows]
    # the trade-off: more memory held, fewer cold starts per query
    assert mem[-1] >= mem[0]
    assert cold[-1] <= cold[0]
