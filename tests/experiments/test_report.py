"""Table rendering."""

import pytest

from repro.experiments.report import FigureResult, render_table


def test_render_alignment():
    text = render_table(["name", "value"], [["a", 1.0], ["longer", 2.5]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("name")
    assert "------" in lines[1]
    assert lines[2].split() == ["a", "1.000"]
    assert lines[3].split() == ["longer", "2.500"]


def test_render_with_title():
    text = render_table(["a"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_render_floatfmt():
    text = render_table(["x"], [[3.14159]], floatfmt=".1f")
    assert "3.1" in text and "3.14" not in text


def test_render_mixed_types():
    text = render_table(["a", "b", "c"], [["s", 2, True]])
    assert "s" in text and "2" in text and "True" in text


def test_row_width_mismatch_raises():
    with pytest.raises(ValueError):
        render_table(["a", "b"], [["only one"]])


def test_figure_result_text_includes_notes():
    fr = FigureResult(
        figure="Fig. X",
        title="demo",
        headers=["k"],
        rows=[["v"]],
        notes="a note",
    )
    text = fr.text()
    assert text.startswith("Fig. X: demo")
    assert text.endswith("a note")


def test_figure_result_extras_roundtrip():
    fr = FigureResult("F", "t", ["h"], [[1]], extras={"arr": [1, 2, 3]})
    assert fr.extras["arr"] == [1, 2, 3]
