"""The content-addressed run cache: keys, invalidation, and defensive reads.

The fingerprint must distinguish exactly the inputs the simulation
distinguishes (scenario content, seed, config fields, code salt) and
nothing else — two separately constructed but content-equal requests
share one entry.  Reads never trust the disk: corrupt and mismatched
entries are discarded as misses.
"""

from dataclasses import replace

import pytest

from repro.core.config import AmoebaConfig
from repro.experiments.cache import (
    CACHE_ENV_VAR,
    DEFAULT_CACHE_ROOT,
    FingerprintError,
    RunCache,
    code_salt,
    fingerprint,
)
from repro.experiments.executor import RunRequest
from repro.experiments.runner import run_nameko
from repro.experiments.scenarios import default_scenario


def _request(day=90.0, seed=0, **kwargs):
    return RunRequest(
        system="amoeba", scenario=default_scenario("float", day=day, seed=seed), **kwargs
    )


class TestFingerprint:
    def test_content_equal_requests_share_a_key(self):
        # two separately built scenarios with the same parameters: the
        # noise tables inside the traces are seeded, so content matches
        assert fingerprint(_request()) == fingerprint(_request())

    def test_seed_changes_the_key(self):
        assert fingerprint(_request(seed=0)) != fingerprint(_request(seed=1))

    def test_scenario_parameter_changes_the_key(self):
        assert fingerprint(_request(day=90.0)) != fingerprint(_request(day=120.0))

    def test_config_field_changes_the_key(self):
        base = _request(config=AmoebaConfig())
        tweaked = _request(config=replace(AmoebaConfig(), min_dwell=45.0))
        assert fingerprint(base) != fingerprint(tweaked)

    def test_variant_and_guard_change_the_key(self):
        keys = {
            fingerprint(_request()),
            fingerprint(_request(variant="nom")),
            fingerprint(_request(guard=False)),
        }
        assert len(keys) == 3

    def test_salt_changes_the_key(self):
        request = _request()
        assert fingerprint(request, salt="a") != fingerprint(request, salt="b")

    def test_non_data_payload_is_rejected(self):
        with pytest.raises(FingerprintError):
            fingerprint({"callback": lambda: None})

    def test_code_salt_is_stable_within_a_process(self):
        assert code_salt() == code_salt()
        assert len(code_salt()) == 64


class TestRunCache:
    @pytest.fixture
    def cache(self, tmp_path):
        # fixed salt: these tests exercise cache mechanics, not code-salt
        # invalidation (covered below by salt-mismatch misses)
        return RunCache(tmp_path / "cache", salt="test-salt")

    @pytest.fixture(scope="class")
    def result(self):
        scenario = default_scenario("float", day=90.0, seed=0)
        return run_nameko(scenario)

    def test_round_trip_hit(self, cache, result):
        request = _request()
        assert cache.get(request) is None
        cache.put(request, result)
        again = RunCache(cache.root, salt="test-salt")
        hit = again.get(request)
        assert hit is not None and again.hits == 1
        ours = result.services["float"].metrics.latencies.values()
        theirs = hit.services["float"].metrics.latencies.values()
        assert [x.hex() for x in ours] == [x.hex() for x in theirs]

    def test_salt_mismatch_is_a_miss(self, cache, result):
        request = _request()
        cache.put(request, result)
        other = RunCache(cache.root, salt="other-salt")
        assert other.get(request) is None and other.misses == 1

    def test_corrupt_entry_is_discarded(self, cache, result):
        request = _request()
        cache.put(request, result)
        path = cache._path(cache.key(request))
        path.write_bytes(b"not a pickle")
        assert cache.get(request) is None
        assert cache.discarded == 1 and not path.exists()

    def test_key_mismatched_entry_is_discarded(self, cache, result):
        import pickle

        request = _request()
        cache.put(request, result)
        path = cache._path(cache.key(request))
        payload = pickle.loads(path.read_bytes())
        payload["key"] = "0" * 64  # entry claims to be someone else
        path.write_bytes(pickle.dumps(payload))
        assert cache.get(request) is None and cache.discarded == 1

    def test_len_counts_entries(self, cache, result):
        assert len(cache) == 0
        cache.put(_request(seed=0), result)
        cache.put(_request(seed=1), result)
        assert len(cache) == 2


class TestFromEnv:
    def test_unset_and_off_disable(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV_VAR, raising=False)
        assert RunCache.from_env() is None
        for off in ("0", "off", "no", "false", ""):
            monkeypatch.setenv(CACHE_ENV_VAR, off)
            assert RunCache.from_env() is None

    def test_on_uses_the_default_root(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "1")
        cache = RunCache.from_env()
        assert cache is not None and cache.root == DEFAULT_CACHE_ROOT

    def test_path_value_is_a_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "runs"))
        cache = RunCache.from_env()
        assert cache is not None and cache.root == tmp_path / "runs"
