"""Figure export and ASCII rendering."""

import json

import numpy as np
import pytest

from repro.experiments.export import (
    ascii_mode_timeline,
    ascii_series,
    figure_to_csv,
    figure_to_json,
)
from repro.experiments.report import FigureResult


def sample_figure():
    return FigureResult(
        figure="Fig. T",
        title="test",
        headers=["name", "value"],
        rows=[["a", 1.5], ["b", 2.5]],
        notes="note",
        extras={"array": np.array([1.0, 2.0]), "nested": {"x": np.float64(3.0)}},
    )


class TestCsv:
    def test_roundtrip(self, tmp_path):
        path = figure_to_csv(sample_figure(), tmp_path / "fig.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.5"
        assert len(lines) == 3


class TestJson:
    def test_serializes_numpy_extras(self, tmp_path):
        path = figure_to_json(sample_figure(), tmp_path / "fig.json")
        payload = json.loads(path.read_text())
        assert payload["figure"] == "Fig. T"
        assert payload["extras"]["array"] == [1.0, 2.0]
        assert payload["extras"]["nested"]["x"] == 3.0

    def test_unserializable_extras_become_repr(self, tmp_path):
        fig = sample_figure()
        fig.extras["obj"] = object()
        path = figure_to_json(fig, tmp_path / "fig.json")
        payload = json.loads(path.read_text())
        assert payload["extras"]["obj"].startswith("<object")


class TestAsciiSeries:
    def test_shape(self):
        grid = np.linspace(0, 100, 50)
        values = np.sin(grid / 10) + 1.5
        art = ascii_series(grid, values, width=40, height=8, label="demo")
        lines = art.splitlines()
        assert lines[0] == "demo"
        assert len(lines) == 1 + 8 + 1  # label + height + time axis
        assert any("*" in line for line in lines)

    def test_extremes_on_border_rows(self):
        grid = [0.0, 1.0, 2.0]
        values = [0.0, 10.0, 0.0]
        art = ascii_series(grid, values, width=30, height=5)
        lines = art.splitlines()
        assert "*" in lines[0]  # the max hits the top row
        assert "*" in lines[-2]  # the min hits the bottom row

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_series([0.0], [1.0])
        with pytest.raises(ValueError):
            ascii_series([0, 1], [1, 2], width=5)


class TestAsciiModeTimeline:
    def test_renders_modes(self):
        timeline = [(0.0, "iaas"), (50.0, "serverless")]
        strip = ascii_mode_timeline(timeline, duration=100.0, width=20)
        body = strip.split("|")[1]  # between the pipes, before the legend
        assert body.count("▆") == 10
        assert body.count("░") == 10

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_mode_timeline([], 100.0)
        with pytest.raises(ValueError):
            ascii_mode_timeline([(0.0, "iaas")], 0.0)
