"""Multi-service portfolio extension."""

import pytest

from repro.core.config import AmoebaConfig
from repro.experiments.portfolio import replace_peak, run_portfolio
from repro.workloads.traces import DiurnalTrace

# multi-service portfolio days: excluded from the quick tier
pytestmark = pytest.mark.slow



def test_replace_peak_scales_only_the_peak():
    base = DiurnalTrace(peak_rate=10.0, day=1800.0, phase=100.0)
    scaled = replace_peak(base, 0.5)
    assert scaled.peak_rate == 5.0
    assert scaled.day == base.day
    assert scaled.phase == base.phase


def test_two_service_portfolio_shares_one_platform():
    rt, traces = run_portfolio(
        day=900.0,
        seed=3,
        names=("float", "dd"),
        config=AmoebaConfig(min_sample_period=10.0, max_sample_period=10.0, min_dwell=60.0),
    )
    assert set(traces) == {"float", "dd"}
    assert set(rt.services) == {"float", "dd"}
    # both are registered on the same serverless pool, beside the meters
    registered = set(rt.serverless.pool.registered())
    assert {"float", "dd"}.issubset(registered)
    for name, svc in rt.services.items():
        assert svc.metrics.completed > 200, name
        assert svc.metrics.latency_percentile(95) <= svc.spec.qos_target * 1.1, name


def test_portfolio_phases_staggered():
    _rt, traces = run_portfolio(day=900.0, seed=3, names=("float", "matmul", "dd"))
    phases = {t.phase for t in traces.values()}
    assert len(phases) == 3
