"""Overload end-to-end: the bit-identity gate and the acceptance scenario.

Quick-tier forms of the PR's acceptance criteria:

* a run with ``OverloadPolicy.disabled()`` wired in is float.hex-identical
  to a run with no overload layer at all;
* an overload scenario (offered load well beyond Eq. 5 capacity, chaos
  faults on) with the policy enabled keeps admitted-query p95 inside the
  QoS target, keeps queue depths bounded, surfaces the breaker lifecycle
  in telemetry, and never wedges.
"""

from dataclasses import replace

import pytest

from repro.experiments.overload import overload_sweep
from repro.experiments.runner import run_amoeba
from repro.experiments.scenarios import default_scenario, overload_scenario
from repro.overload import OverloadPolicy


def _latency_hex(result, name="matmul"):
    return [x.hex() for x in result.services[name].metrics.latencies.values()]


class TestDisabledPolicyBitIdentity:
    def test_disabled_policy_is_bit_identical_to_no_overload_layer(self):
        base = default_scenario("matmul", day=600.0, seed=0)
        plain = run_amoeba(base)
        wired = run_amoeba(replace(base, overload=OverloadPolicy.disabled()))
        assert plain.overload is None
        assert wired.overload is not None and not wired.overload.policy_enabled
        assert _latency_hex(wired) == _latency_hex(plain)
        m_plain = plain.services["matmul"].metrics
        m_wired = wired.services["matmul"].metrics
        assert m_wired.completed == m_plain.completed
        assert m_wired.violations == m_plain.violations

    def test_disabled_policy_makes_no_decisions(self):
        base = default_scenario("matmul", day=600.0, seed=0)
        wired = run_amoeba(replace(base, overload=OverloadPolicy.disabled()))
        ov = wired.overload
        assert all(count == 0 for count in ov.drops.values())
        assert ov.total_rejections == 0
        assert ov.breaker_state == "disabled"
        assert ov.breaker_transitions == ()


class TestOverloadScenario:
    def test_lambda_factor_scales_the_offered_load_only(self):
        nominal = overload_scenario("matmul", lambda_factor=1.0, day=600.0)
        doubled = overload_scenario("matmul", lambda_factor=2.0, day=600.0)
        assert doubled.trace.peak_rate == pytest.approx(2 * nominal.trace.peak_rate)
        # rental sizing and container caps stay nominal: the excess is
        # genuinely excess, not pre-provisioned away
        assert doubled.iaas_peak_rate == nominal.iaas_peak_rate
        assert doubled.faults is not None

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            overload_scenario("matmul", lambda_factor=0.0)

    def test_acceptance_overload_run_holds_qos_and_shows_the_breaker(self):
        policy = OverloadPolicy()
        scenario = overload_scenario(
            "matmul", lambda_factor=2.5, policy=policy, day=600.0, seed=0
        )
        result = run_amoeba(scenario)  # returning at all is the no-wedge bar
        metrics = result.services["matmul"].metrics
        ov = result.overload
        assert ov is not None and ov.policy_enabled
        # enough pressure that protection actually engaged
        assert sum(ov.drops.values()) > 0
        assert metrics.completed > 0
        # admitted queries stay inside QoS under 2.5x offered load + faults
        assert metrics.latency_percentile(95) <= metrics.qos_target
        # queue depths bounded by the policy on both platforms
        assert 0 < ov.peak_queue_depth_serverless <= policy.max_queue_depth
        assert 0 < ov.peak_queue_depth_iaas <= policy.max_queue_depth
        # the breaker's full lifecycle is visible in telemetry
        assert ov.breaker_trips + ov.breaker_reopens > 0
        assert ov.breaker_half_opens > 0
        assert ov.breaker_state in ("closed", "open", "half_open")
        states = [state for _, state in ov.breaker_transitions]
        assert "open" in states and "half_open" in states
        times = [t for t, _ in ov.breaker_transitions]
        assert times == sorted(times)
        # per-platform queue-depth timelines exported for the report
        fg = result.services["matmul"]
        assert len(fg.queue_depth_timelines) == 2
        for t, v in fg.queue_depth_timelines:
            assert len(t) == len(v) > 0


@pytest.mark.slow
class TestOverloadSweep:
    def test_sweep_reports_on_off_pairs_per_factor(self):
        fig = overload_sweep("matmul", day=600.0, seed=0, factors=(1.0, 2.5))
        assert fig.headers[0] == "factor"
        assert len(fig.rows) == 2
        calm, stormy = fig.rows
        # protection engages harder as the factor grows
        idx = fig.headers.index("shed_frac")
        assert stormy[idx] >= calm[idx]
        p95_on = fig.headers.index("p95_on")
        viol_on = fig.headers.index("viol_on")
        assert stormy[viol_on] <= 0.05
        # the unprotected baseline degrades past the protected run
        assert stormy[fig.headers.index("viol_off")] >= stormy[viol_on]
        assert stormy[p95_on] > 0.0

    def test_empty_factor_list_rejected(self):
        with pytest.raises(ValueError):
            overload_sweep(factors=())
