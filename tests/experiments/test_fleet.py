"""Fleet generator + fleet sweep: determinism, normalization, validation.

Quick-tier pieces cover the generator's contracts (pure config-time
code); the sweep and analytic-validation tests run real simulations and
sit in the slow tier with the other full-system runs.
"""

import math

import pytest

from repro.core.meters import expected_platform_overhead
from repro.core.queueing import sojourn_quantile
from repro.experiments.fleet import (
    FLEET_DAY,
    analytic_service_prediction,
    fleet_scenarios,
    fleet_sweep,
    generate_fleet,
)
from repro.experiments.runner import run_openwhisk
from repro.experiments.scenarios import Scenario
from repro.serverless.config import ServerlessConfig
from repro.workloads.fleet import fleet_daily_queries
from repro.workloads.functionbench import benchmark_names
from repro.workloads.traces import ConstantTrace


def _fingerprint(fleet):
    """Everything that defines a fleet, as hex-exact floats."""
    return [
        (
            s.index,
            s.family,
            s.spec.name,
            s.spec.exec_time.hex(),
            s.spec.qos_target.hex(),
            s.trace.peak_rate.hex(),
            s.trace.phase.hex(),
            s.trace.low_fraction.hex(),
            s.trace.morning_fraction.hex(),
            s.trace.noise_sigma.hex(),
            s.limit,
            s.mean_rate.hex(),
        )
        for s in fleet
    ]


class TestGenerateFleet:
    def test_same_seed_is_identical(self):
        a = generate_fleet(20, daily_queries=1e6, day=600.0, seed=5)
        b = generate_fleet(20, daily_queries=1e6, day=600.0, seed=5)
        assert _fingerprint(a) == _fingerprint(b)

    def test_different_seed_differs(self):
        a = generate_fleet(20, daily_queries=1e6, day=600.0, seed=5)
        b = generate_fleet(20, daily_queries=1e6, day=600.0, seed=6)
        assert _fingerprint(a) != _fingerprint(b)

    def test_aggregate_normalization(self):
        for services, daily in ((10, 2e5), (50, 1e6), (120, 5e6)):
            fleet = generate_fleet(services, daily_queries=daily, day=600.0, seed=1)
            assert fleet_daily_queries(fleet) == pytest.approx(daily, rel=1e-9)

    def test_family_mix_cycles_all_benchmarks(self):
        fleet = generate_fleet(10, daily_queries=1e6, day=600.0, seed=0)
        assert {s.family for s in fleet} == set(benchmark_names())
        # renamed per member: no registry collisions across the fleet
        names = [s.spec.name for s in fleet]
        assert len(set(names)) == len(names)

    def test_heterogeneity(self):
        fleet = generate_fleet(25, daily_queries=1e6, day=600.0, seed=2)
        floats = [s for s in fleet if s.family == "float"]
        assert len({s.spec.exec_time for s in floats}) == len(floats)
        assert len({s.trace.phase for s in fleet}) == len(fleet)

    def test_drawn_params_are_prefix_stable(self):
        small = generate_fleet(10, daily_queries=1e6, day=600.0, seed=3)
        large = generate_fleet(30, daily_queries=1e6, day=600.0, seed=3)
        for a, b in zip(small, large):
            # per-(seed, index) streams: everything but the shared
            # normalization scale survives a fleet-size change
            assert a.spec.exec_time == b.spec.exec_time
            assert a.trace.phase == b.trace.phase
            assert a.trace.noise_sigma == b.trace.noise_sigma
            ratio = b.trace.peak_rate / a.trace.peak_rate
            ratio0 = large[0].trace.peak_rate / small[0].trace.peak_rate
            assert ratio == pytest.approx(ratio0, rel=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_fleet(0)
        with pytest.raises(ValueError):
            generate_fleet(5, daily_queries=0.0)
        with pytest.raises(ValueError):
            generate_fleet(5, day=-1.0)

    def test_analytic_prediction_consistent_with_queueing(self):
        fleet = generate_fleet(5, daily_queries=1e6, day=600.0, seed=4)
        cfg = ServerlessConfig()
        for svc in fleet:
            rho, p95 = analytic_service_prediction(svc, cfg)
            mu0 = 1.0 / (svc.spec.exec_time + expected_platform_overhead(svc.spec, cfg))
            assert rho == pytest.approx(svc.mean_rate / (svc.limit * mu0))
            if rho < 1.0:
                assert p95 == sojourn_quantile(0.95, svc.mean_rate, mu0, svc.limit)
                assert math.isfinite(p95)


class TestFleetScenarios:
    def test_scenarios_are_independent_and_seed_spread(self):
        pairs = fleet_scenarios(services=8, daily_queries=5e5, day=300.0, seed=0)
        assert len(pairs) == 8
        seeds = {scenario.seed for _, scenario in pairs}
        assert len(seeds) == 8
        for svc, scenario in pairs:
            assert scenario.foreground is svc.spec
            assert scenario.background == ()
            assert scenario.ambient == ()
            assert scenario.reservoir is not None and scenario.reservoir >= 20_000

    def test_default_day(self):
        assert FLEET_DAY == 600.0


# everything below runs real simulations (slow tier)
_SWEEP_KW = dict(services=6, daily_queries=3e5, day=150.0)


@pytest.mark.slow
class TestFleetSweep:
    def test_sweep_deterministic_same_seed(self):
        a = fleet_sweep(seed=9, workers=1, cache=False, **_SWEEP_KW)
        b = fleet_sweep(seed=9, workers=1, cache=False, **_SWEEP_KW)
        assert _hexes(a) == _hexes(b)

    def test_sweep_differs_across_seeds(self):
        a = fleet_sweep(seed=9, workers=1, cache=False, **_SWEEP_KW)
        b = fleet_sweep(seed=10, workers=1, cache=False, **_SWEEP_KW)
        assert _hexes(a) != _hexes(b)

    def test_serial_vs_parallel_identical(self):
        serial = fleet_sweep(seed=9, workers=1, cache=False, **_SWEEP_KW)
        parallel = fleet_sweep(seed=9, workers=3, cache=False, **_SWEEP_KW)
        assert _hexes(serial) == _hexes(parallel)

    def test_report_shape(self):
        fig = fleet_sweep(seed=9, workers=1, cache=False, **_SWEEP_KW)
        assert fig.figure == "fleet"
        assert len(fig.extras["per_service"]) == _SWEEP_KW["services"]
        families = {row[0] for row in fig.rows}
        assert families <= set(benchmark_names())
        for row in fig.rows:
            completed = row[3]
            assert completed > 0
        assert fig.extras["total_completed"] == sum(r[3] for r in fig.rows)


def _hexes(figure):
    return [
        [x.hex() if isinstance(x, float) else x for x in row]
        for row in figure.extras["per_service"]
    ]


@pytest.mark.slow
class TestAnalyticValidation:
    """Quiescent constant-rate slice vs. the Eq. 1–4 references.

    A fleet member held at a constant sub-ceiling rate on the pure
    serverless platform is (up to lognormal service-time shape and the
    cold-start transient) an M/M/N queue with μ₀ = 1/(exec + α) and
    N = limit — the regime where the log-space queueing math must agree
    with the simulator, not just with itself.
    """

    def _run_quiescent(self, svc, rate, duration=1500.0, seed=11):
        scenario = Scenario(
            foreground=svc.spec,
            trace=ConstantTrace(rate),
            limit=svc.limit,
            background=(),
            duration=duration,
            seed=seed,
            reservoir=max(20_000, int(3 * rate * duration)),
        )
        result = run_openwhisk(scenario)
        return result.services[svc.spec.name], scenario

    def test_utilization_matches_rho(self):
        fleet = generate_fleet(10, daily_queries=2e6, day=600.0, seed=1)
        svc = max(fleet, key=lambda s: s.limit)
        cfg = ServerlessConfig()
        mu0 = 1.0 / (svc.spec.exec_time + expected_platform_overhead(svc.spec, cfg))
        rate = 0.6 * svc.limit * mu0
        sr, scenario = self._run_quiescent(svc, rate)
        rho = rate / (svc.limit * mu0)
        observed = sr.serverless_busy_seconds / (scenario.duration * svc.limit)
        assert observed == pytest.approx(rho, rel=0.12)

    def test_p95_matches_analytic_sojourn(self):
        fleet = generate_fleet(10, daily_queries=2e6, day=600.0, seed=1)
        svc = max(fleet, key=lambda s: s.limit)
        cfg = ServerlessConfig()
        mu0 = 1.0 / (svc.spec.exec_time + expected_platform_overhead(svc.spec, cfg))
        rate = 0.6 * svc.limit * mu0
        sr, _ = self._run_quiescent(svc, rate)
        assert sr.metrics.latency_sample_exact
        assert sr.metrics.completed >= 500
        observed = sr.metrics.latency_percentile(95.0)
        predicted = sojourn_quantile(0.95, rate, mu0, svc.limit)
        # lognormal exec jitter (cs² < 1) makes M/M/N conservative on the
        # wait tail; the sojourn body still tracks 1/μ₀ closely
        assert 0.6 * predicted <= observed <= 1.25 * predicted
