"""The spot sweep: zero-preemption inertness, the storm gate, the frontier."""

from dataclasses import replace

import pytest

from repro.cluster import SpotSpec
from repro.core import InvariantViolation
from repro.experiments import executor
from repro.experiments.dag import dag_scenario
from repro.experiments.executor import RunRequest, run_many
from repro.experiments.fleet import fleet_scenarios
from repro.experiments.runner import run_amoeba
from repro.experiments.scenarios import (
    chaos_scenario,
    default_scenario,
    overload_scenario,
    spot_scenario,
)
from repro.experiments.spot import (
    GRACEFUL_VIOLATION_BOUND,
    HARDKILL_VIOLATION_FLOOR,
    preemption_comparison,
    spot_comparison_scenario,
    spot_sweep,
)
from repro.faults import FaultPlan
from repro.overload import OverloadPolicy


def _latency_hex(result, name="matmul"):
    return [x.hex() for x in result.services[name].metrics.latencies.values()]


def _row_hexes(figure):
    return [[x.hex() if isinstance(x, float) else x for x in row] for row in figure.rows]


class TestZeroPreemptionIdentity:
    """Spot capacity with a zero-preemption plan is invisible to the sim.

    The quick-tier form of the check.sh bit-identity gate: attaching the
    new spot/fault fields at probability 0.0 to every scenario family
    leaves the latency stream ``float.hex``-identical.
    """

    def test_default_scenario(self):
        sc = default_scenario("matmul", day=600.0, seed=3)
        plain = run_amoeba(sc)
        spotted = run_amoeba(
            replace(sc, spot=SpotSpec(fraction=0.5), faults=FaultPlan())
        )
        assert spotted.faults is not None and spotted.faults.total_injected == 0
        assert _latency_hex(spotted) == _latency_hex(plain)

    def test_chaos_scenario_with_nonzero_other_faults(self):
        sc = chaos_scenario("matmul", fault_scale=1.0, day=600.0, seed=3)
        assert sc.faults is not None and sc.faults.vm_preemption_prob == 0.0
        plain = run_amoeba(sc)
        spotted = run_amoeba(replace(sc, spot=SpotSpec(fraction=0.5)))
        assert _latency_hex(spotted) == _latency_hex(plain)

    def test_overload_scenario(self):
        sc = overload_scenario("matmul", policy=OverloadPolicy(), day=600.0, seed=3)
        plain = run_amoeba(sc)
        spotted = run_amoeba(replace(sc, spot=SpotSpec(fraction=0.5)))
        assert _latency_hex(spotted) == _latency_hex(plain)
        assert plain.overload is not None and spotted.overload is not None
        assert spotted.overload.preemptions == plain.overload.preemptions
        assert spotted.overload.preemptions["noticed"] == 0

    def test_fleet_member_scenario(self):
        _, sc = fleet_scenarios(services=1, day=300.0, seed=0)[0]
        plain = run_amoeba(sc)
        spotted = run_amoeba(
            replace(sc, spot=SpotSpec(fraction=0.5), faults=FaultPlan())
        )
        name = sc.foreground.name
        assert _latency_hex(spotted, name) == _latency_hex(plain, name)

    def test_dag_scenario(self):
        sc = dag_scenario(2, seed=0, day=45.0)
        assert sc.faults is None
        plain, zeroed = run_many(
            [
                RunRequest(system="graph", scenario=sc),
                RunRequest(system="graph", scenario=replace(sc, faults=FaultPlan())),
            ],
            workers=1,
            cache=False,
        )
        assert plain.graph is not None and zeroed.graph is not None
        assert [x.hex() for x in zeroed.graph.latencies] == [
            x.hex() for x in plain.graph.latencies
        ]


class TestStormGate:
    """The drain-vs-hard-kill pair behind the check.sh preemption gate."""

    def test_comparison_scenario_pins_the_iaas_path(self):
        sc = spot_comparison_scenario(graceful=True)
        assert sc.spot is not None and sc.spot.graceful
        assert sc.faults is not None and sc.faults.vm_preemption_prob == 1.0
        assert sc.background == () and sc.ambient == ()
        hard = spot_comparison_scenario(graceful=False)
        assert hard.spot is not None and not hard.spot.graceful

    def test_graceful_beats_hardkill_by_the_gate_margins(self):
        runs = preemption_comparison(cache=False)
        graceful = runs["graceful"].services["matmul"].metrics
        hardkill = runs["hardkill"].services["matmul"].metrics
        assert graceful.violation_fraction_with_failures <= GRACEFUL_VIOLATION_BOUND
        assert hardkill.violation_fraction_with_failures > HARDKILL_VIOLATION_FLOOR
        assert graceful.preemptions["noticed"] == 1
        assert graceful.preemptions["killed_inflight"] == 0
        assert hardkill.preemptions["killed_inflight"] >= 1

    def test_worker_count_matrix_is_hex_invariant(self):
        serial = preemption_comparison(workers=1, cache=False)
        fanned = preemption_comparison(workers=2, cache=False)
        for leg in ("graceful", "hardkill"):
            a = serial[leg].services["matmul"].metrics
            b = fanned[leg].services["matmul"].metrics
            assert [x.hex() for x in a.latencies.values()] == [
                x.hex() for x in b.latencies.values()
            ]
            assert a.preemptions == b.preemptions


class TestSpotSweep:
    def test_frontier_rows_and_worker_invariance(self):
        kw = dict(day=600.0, seed=0, probs=(1.0,), spikes=(0.0,), cache=False)
        serial = spot_sweep(workers=1, **kw)
        fanned = spot_sweep(workers=2, **kw)
        assert _row_hexes(serial) == _row_hexes(fanned)
        assert serial.headers[:3] == ["preempt_p", "spike", "mode"]
        assert [row[2] for row in serial.rows] == ["ondemand", "graceful", "hardkill"]
        by_mode = {row[2]: row for row in serial.rows}
        cols = {h: i for i, h in enumerate(serial.headers)}
        # the on-demand baseline is its own cost denominator
        assert by_mode["ondemand"][cols["savings"]] == 0.0
        assert by_mode["ondemand"][cols["noticed"]] == 0
        # guaranteed reclamation: the graceful leg notices and replaces
        assert by_mode["graceful"][cols["noticed"]] == 1
        assert by_mode["graceful"][cols["replaced"]] == 1
        assert by_mode["graceful"][cols["killed"]] == 0
        assert by_mode["hardkill"][cols["replaced"]] == 1

    def test_empty_grid_rejected(self):
        with pytest.raises(ValueError):
            spot_sweep(probs=(), spikes=(0.0,))
        with pytest.raises(ValueError):
            spot_sweep(probs=(0.5,), spikes=())


class TestExecutorAttribution:
    def test_attributed_message_carries_run_identity(self):
        request = RunRequest(
            system="amoeba", scenario=default_scenario("matmul", day=60.0, seed=9)
        )
        exc = InvariantViolation(
            "books off", invariant="conservation", service="matmul"
        )
        out = executor._attributed(exc, "abcdef0123456789", request)
        text = str(out)
        assert "conservation" in text
        assert "amoeba/" in text and "matmul" in text
        assert "fingerprint abcdef012345" in text
        assert "books off" in text
        assert out.invariant == "conservation" and out.service == "matmul"

    def test_run_many_attributes_a_violating_run(self, monkeypatch):
        def explode(request):
            raise InvariantViolation(
                "arrivals < terminals", invariant="conservation", service="matmul"
            )

        monkeypatch.setattr(executor, "execute_request", explode)
        request = RunRequest(
            system="amoeba", scenario=default_scenario("matmul", day=60.0, seed=9)
        )
        with pytest.raises(InvariantViolation) as caught:
            run_many([request], workers=1, cache=False)
        assert "fingerprint" in str(caught.value)
        assert "amoeba/matmul" in str(caught.value)
        assert caught.value.invariant == "conservation"


def test_cli_spot_target(capsys):
    from repro.experiments.__main__ import main

    assert main(["spot", "--day", "90", "--seed", "0"]) == 0
    out = capsys.readouterr().out
    assert "spot preemption x flash crowds" in out
    assert "ondemand" in out and "graceful" in out and "hardkill" in out
    assert "[spot:" in out
