"""The parallel executor: bit-determinism, dedup, and sweep resume.

The headline contract is that worker count is invisible in the output:
``workers=4`` must reproduce the serial batch ``float.hex``-for-hex,
because results merge in submission order and every run is independently
seeded.  The sweeps' own determinism gates then extend to the parallel
path for free.
"""

import multiprocessing
import os
import pickle
import signal

import pytest

from repro.experiments import executor as executor_module
from repro.experiments.cache import RunCache
from repro.experiments.chaos import chaos_sweep
from repro.experiments.executor import (
    RunRequest,
    configure,
    resolve_workers,
    run_many,
    run_systems,
)
from repro.experiments.overload import overload_sweep
from repro.experiments.runner import run_nameko
from repro.experiments.scenarios import chaos_scenario, default_scenario


def _hexes(result, name="matmul"):
    return [x.hex() for x in result.services[name].metrics.latencies.values()]


def _row_hexes(figure):
    return [
        [x.hex() if isinstance(x, float) else x for x in row] for row in figure.rows
    ]


class TestRunRequest:
    def test_rejects_unknown_system(self):
        scenario = default_scenario("float", day=60.0)
        with pytest.raises(ValueError, match="unknown system"):
            RunRequest(system="knative", scenario=scenario)

    def test_variant_is_amoeba_only(self):
        scenario = default_scenario("float", day=60.0)
        with pytest.raises(ValueError, match="variant only applies"):
            RunRequest(system="nameko", scenario=scenario, variant="nom")

    def test_config_is_amoeba_or_graph_only(self):
        from repro.core import AmoebaConfig

        scenario = default_scenario("float", day=60.0)
        with pytest.raises(ValueError, match="config only applies"):
            RunRequest(system="nameko", scenario=scenario, config=AmoebaConfig())

    def test_graph_system_requires_graph_scenario(self):
        from repro.experiments.dag import dag_scenario

        flat = default_scenario("float", day=60.0)
        with pytest.raises(TypeError, match="GraphScenario"):
            RunRequest(system="graph", scenario=flat)
        with pytest.raises(TypeError, match="flat Scenario"):
            RunRequest(system="amoeba", scenario=dag_scenario(2, day=60.0))

    def test_serverless_config_is_openwhisk_only(self):
        from repro.serverless.config import ServerlessConfig

        scenario = default_scenario("float", day=60.0)
        with pytest.raises(ValueError, match="serverless_config"):
            RunRequest(
                system="amoeba", scenario=scenario, serverless_config=ServerlessConfig()
            )

    def test_requests_are_picklable(self):
        request = RunRequest(
            system="amoeba", scenario=default_scenario("float", day=60.0, seed=3)
        )
        clone = pickle.loads(pickle.dumps(request))
        from repro.experiments.cache import fingerprint

        assert fingerprint(clone) == fingerprint(request)


class TestResolution:
    def test_workers_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        configure(workers=None)
        assert resolve_workers() == 1

    def test_env_and_argument_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "3")
        configure(workers=None)
        assert resolve_workers() == 3
        assert resolve_workers(2) == 2
        configure(workers=5)
        try:
            assert resolve_workers() == 5
        finally:
            configure(workers=None)

    def test_bad_values_raise(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_workers(0)
        monkeypatch.setenv("REPRO_WORKERS", "many")
        configure(workers=None)
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            resolve_workers()


class TestDeterministicMerge:
    def test_parallel_matches_serial_bit_for_bit(self):
        requests = [
            RunRequest(
                system="amoeba",
                scenario=chaos_scenario("matmul", fault_scale=s, day=120.0, seed=0),
            )
            for s in (0.0, 1.0)
        ]
        serial = run_many(requests, workers=1, cache=False)
        parallel = run_many(requests, workers=2, cache=False)
        for a, b in zip(serial, parallel):
            assert _hexes(a) == _hexes(b)

    def test_duplicate_requests_share_one_execution(self, tmp_path):
        cache = RunCache(tmp_path / "c", salt="s")
        request = RunRequest(system="nameko", scenario=default_scenario("float", day=90.0))
        results = run_many([request, request], workers=1, cache=cache)
        assert results[0] is results[1]
        assert cache.stores == 1 and cache.misses == 1

    def test_run_systems_maps_variants(self):
        scenario = default_scenario("float", day=90.0, seed=0)
        results = run_systems(scenario, ("nameko", "nom"), workers=1, cache=False)
        assert set(results) == {"nameko", "nom"}
        with pytest.raises(ValueError, match="unknown system"):
            run_systems(scenario, ("knative",), workers=1, cache=False)


class TestSweepIdentity:
    def test_chaos_sweep_parallel_identity(self):
        kw = dict(name="matmul", day=120.0, seed=0, scales=(0.0, 1.0))
        serial = chaos_sweep(workers=1, cache=False, **kw)
        parallel = chaos_sweep(workers=2, cache=False, **kw)
        assert _row_hexes(serial) == _row_hexes(parallel)

    def test_overload_sweep_parallel_identity(self):
        kw = dict(name="matmul", day=120.0, seed=0, factors=(2.0,))
        serial = overload_sweep(workers=1, cache=False, **kw)
        parallel = overload_sweep(workers=2, cache=False, **kw)
        assert _row_hexes(serial) == _row_hexes(parallel)


class TestCachedSweeps:
    def test_interrupted_sweep_resumes_from_cache(self, tmp_path):
        scales = (0.0, 0.5, 1.0)
        cache = RunCache(tmp_path / "c", salt="s")
        # "interrupted" sweep: only the first two scales finished
        run_many(
            [
                RunRequest(
                    system="amoeba",
                    scenario=chaos_scenario("matmul", fault_scale=s, day=120.0, seed=0),
                )
                for s in scales[:2]
            ],
            workers=1,
            cache=cache,
        )
        assert cache.stores == 2
        resumed = RunCache(tmp_path / "c", salt="s")
        figure = chaos_sweep(
            "matmul", day=120.0, seed=0, scales=scales, workers=1, cache=resumed
        )
        assert resumed.hits == 2 and resumed.stores == 1
        fresh = chaos_sweep("matmul", day=120.0, seed=0, scales=scales, workers=1, cache=False)
        assert _row_hexes(figure) == _row_hexes(fresh)

    def test_warm_rerun_executes_nothing(self, tmp_path):
        cache = RunCache(tmp_path / "c", salt="s")
        request = RunRequest(system="nameko", scenario=default_scenario("float", day=90.0))
        first = run_many([request], workers=1, cache=cache)
        warm = RunCache(tmp_path / "c", salt="s")
        second = run_many([request], workers=1, cache=warm)
        assert warm.hits == 1 and warm.stores == 0
        assert _hexes(first[0], "float") == _hexes(second[0], "float")


#: pid of the pytest process — the killer functions below use it to tell
#: "I am a forked pool worker" (kill) from "I am the inline fallback in
#: the parent" (run normally / raise an attributable error)
_PARENT_PID = os.getpid()

#: sentinel seed marking the one request that murders its worker
_KILLER_SEED = 666

_real_execute = executor_module.execute_request


def _kill_worker_execute(request):
    """SIGKILL the pool worker for the killer request; inline it succeeds."""
    if request.seed == _KILLER_SEED and os.getpid() != _PARENT_PID:
        os.kill(os.getpid(), signal.SIGKILL)
    return _real_execute(request)


def _always_fail_execute(request):
    """The killer request dies in workers and raises inline (a hard failure)."""
    if request.seed == _KILLER_SEED:
        if os.getpid() != _PARENT_PID:
            os.kill(os.getpid(), signal.SIGKILL)
        raise RuntimeError("this request fails everywhere")
    return _real_execute(request)


@pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="killer injection relies on fork inheriting the patched module",
)
class TestWorkerCrash:
    """A dead pool worker must not hang, abort, or corrupt the batch."""

    def _requests(self):
        return [
            RunRequest(
                system="nameko",
                scenario=default_scenario("float", day=30.0, seed=s),
                seed=s,
            )
            for s in (1, _KILLER_SEED, 2)
        ]

    def test_dead_worker_batch_still_completes_bit_identically(self, monkeypatch):
        requests = self._requests()
        serial = run_many(requests, workers=1, cache=False)
        monkeypatch.setattr(executor_module, "execute_request", _kill_worker_execute)
        survived = run_many(requests, workers=2, cache=False)
        assert len(survived) == len(serial)
        for a, b in zip(serial, survived):
            assert _hexes(a, "float") == _hexes(b, "float")

    def test_reliably_crashing_request_surfaces_a_per_request_error(self, monkeypatch):
        requests = self._requests()
        monkeypatch.setattr(executor_module, "execute_request", _always_fail_execute)
        with pytest.raises(RuntimeError, match="kept killing pool workers") as exc_info:
            run_many(requests, workers=2, cache=False)
        # the error names the offending request and chains its inline failure
        assert f"seed {_KILLER_SEED}" in str(exc_info.value)
        assert isinstance(exc_info.value.__cause__, RuntimeError)


class TestResultPickle:
    def test_run_result_round_trips_bit_exactly(self):
        scenario = default_scenario("float", day=90.0, seed=0)
        result = run_nameko(scenario)
        clone = pickle.loads(pickle.dumps(result))
        assert _hexes(clone, "float") == _hexes(result, "float")
        fg, fg2 = result.foreground(scenario), clone.foreground(scenario)
        assert fg.usage.mean_cores.hex() == fg2.usage.mean_cores.hex()
