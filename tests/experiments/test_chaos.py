"""The chaos scenario: determinism gates and the no-wedge guarantee.

The two determinism acceptance criteria live here in quick-tier form
(short compressed days), plus the slow end-to-end no-wedge run:

* a zero-fault chaos config is float.hex-identical to a run with no
  fault layer at all;
* the same seed and the same non-zero plan reproduce the identical run;
* under heavy ack loss + boot failure the runtime keeps switching —
  aborted switches are logged and later switches still complete.
"""

import pytest

from repro.experiments.chaos import chaos_sweep
from repro.experiments.runner import run_amoeba
from repro.experiments.scenarios import (
    DEFAULT_CHAOS_PLAN,
    chaos_scenario,
    default_scenario,
)
from repro.faults import FaultPlan


def _latency_hex(result, name="matmul"):
    return [x.hex() for x in result.services[name].metrics.latencies.values()]


class TestDeterminismGates:
    def test_zero_fault_chaos_is_bit_identical_to_no_fault_layer(self):
        plain = run_amoeba(default_scenario("matmul", day=900.0, seed=0))
        zero = run_amoeba(chaos_scenario("matmul", fault_scale=0.0, day=900.0, seed=0))
        assert plain.faults is None
        assert zero.faults is not None
        assert zero.faults.total_injected == 0
        assert _latency_hex(zero) == _latency_hex(plain)
        m_plain = plain.services["matmul"].metrics
        m_zero = zero.services["matmul"].metrics
        assert m_zero.completed == m_plain.completed
        assert m_zero.violations == m_plain.violations

    def test_same_seed_same_plan_is_reproducible(self):
        a = run_amoeba(chaos_scenario("matmul", fault_scale=1.0, day=900.0, seed=3))
        b = run_amoeba(chaos_scenario("matmul", fault_scale=1.0, day=900.0, seed=3))
        assert a.faults is not None and b.faults is not None
        assert a.faults.injected == b.faults.injected
        assert a.faults.switch_aborts == b.faults.switch_aborts
        assert _latency_hex(a) == _latency_hex(b)

    def test_faulted_run_differs_from_zero_fault_run(self):
        zero = run_amoeba(chaos_scenario("matmul", fault_scale=0.0, day=900.0, seed=3))
        faulted = run_amoeba(chaos_scenario("matmul", fault_scale=1.0, day=900.0, seed=3))
        assert faulted.faults is not None and faulted.faults.total_injected > 0
        assert _latency_hex(faulted) != _latency_hex(zero)


def test_default_chaos_plan_covers_every_fault_class():
    plan = DEFAULT_CHAOS_PLAN
    assert plan.any_faults
    for name in (
        "cold_start_failure_prob",
        "container_crash_prob",
        "vm_boot_failure_prob",
        "vm_boot_delay_prob",
        "meter_drop_prob",
        "meter_outage_prob",
        "prewarm_ack_loss_prob",
        "prewarm_ack_delay_prob",
    ):
        assert getattr(plan, name) > 0.0, name


@pytest.mark.slow
class TestChaosEndToEnd:
    def test_sweep_reports_deltas_against_the_zero_scale(self):
        fig = chaos_sweep("matmul", day=1200.0, seed=0, scales=(0.0, 1.0))
        assert fig.headers[0] == "scale"
        assert len(fig.rows) == 2
        zero, one = fig.rows
        assert zero[0] == 0.0 and zero[1] == 0  # nothing injected at scale 0
        assert zero[-1] == 0.0  # delta against itself
        assert one[1] > 0  # nominal scale injects something

    def test_no_wedge_under_ack_loss_and_boot_failure(self):
        plan = FaultPlan(
            prewarm_ack_loss_prob=0.7,
            vm_boot_failure_prob=0.6,
            max_boot_retries=1,
        )
        scenario = chaos_scenario("matmul", plan=plan, day=2400.0, seed=5)
        result = run_amoeba(scenario)
        fs = result.faults
        assert fs is not None
        # faults of both classes actually struck the switch protocol
        assert fs.switch_aborts, "expected at least one aborted switch"
        for t, target, reason in fs.switch_aborts:
            assert target in ("iaas", "serverless")
            assert reason  # every abort carries its cause
        # ... and yet the engine kept flipping: no permanent wedge
        assert fs.switches_completed >= 1
