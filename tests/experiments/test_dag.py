"""The ``dag`` sweep: scenario construction, the ablation table, the CLI."""

import pytest

from repro.experiments.dag import (
    DEFAULT_DEPTHS,
    E2E_PER_NODE,
    NOMINAL_RATE,
    OVERLOAD_FACTOR,
    dag_scenario,
    dag_sweep,
    storm_comparison,
)
from repro.graph import RetryPolicy


def _row_hexes(figure):
    return [[x.hex() if isinstance(x, float) else x for x in row] for row in figure.rows]


class TestDagScenario:
    def test_resilient_scenario_shape(self):
        s = dag_scenario(4, seed=3, day=90.0)
        assert s.name == "dag-chain4-budgeted"
        assert len(s.topology.nodes) == 4
        assert s.retry == RetryPolicy.budgeted()
        assert s.backpressure and s.propagate_deadlines
        assert s.e2e_target == pytest.approx(E2E_PER_NODE * 4)
        assert s.trace.peak_rate == pytest.approx(NOMINAL_RATE * OVERLOAD_FACTOR)
        assert s.iaas_peak_rate == NOMINAL_RATE
        # the brownout lands on the middle node, middle half of the run
        assert s.brownout.node == "matmul_2"
        assert s.brownout.t_start == pytest.approx(0.25 * 90.0)
        assert s.brownout.t_end == pytest.approx(0.75 * 90.0)

    def test_naive_scenario_disables_the_resilience_stack(self):
        s = dag_scenario(4, resilient=False)
        assert s.name == "dag-chain4-naive"
        assert s.retry == RetryPolicy.storm()
        assert not s.backpressure and not s.propagate_deadlines

    def test_scenarios_fingerprint_distinctly(self):
        from repro.experiments.cache import fingerprint
        from repro.experiments.executor import RunRequest

        a = RunRequest(system="graph", scenario=dag_scenario(2))
        b = RunRequest(system="graph", scenario=dag_scenario(2, resilient=False))
        c = RunRequest(system="graph", scenario=dag_scenario(2, seed=1))
        assert len({fingerprint(r) for r in (a, b, c)}) == 3


class TestDagSweep:
    def test_sweep_rows_and_worker_invariance(self):
        kw = dict(day=45.0, seed=0, depths=(1, 2))
        serial = dag_sweep(workers=1, cache=False, **kw)
        fanned = dag_sweep(workers=2, cache=False, **kw)
        assert _row_hexes(serial) == _row_hexes(fanned)
        assert len(serial.rows) == 4  # two depths x {budgeted, naive}
        assert serial.headers[:2] == ["depth", "retry"]
        assert {row[1] for row in serial.rows} == {"budgeted", "naive"}
        assert set(serial.extras["summaries"]) == {1, 2}

    def test_sweep_rejects_empty_depths(self):
        with pytest.raises(ValueError, match="depth"):
            dag_sweep(depths=())

    def test_default_depths_cover_the_gate_point(self):
        assert 4 in DEFAULT_DEPTHS

    def test_storm_comparison_returns_both_legs(self):
        pair = storm_comparison(depth=2, day=45.0, workers=1, cache=False)
        assert set(pair) == {"budgeted", "naive"}
        assert all(s.offered > 0 for s in pair.values())


def test_cli_dag_target(capsys):
    from repro.experiments.__main__ import main

    assert main(["dag", "--day", "45", "--depth", "2", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "budgeted" in out and "naive" in out and "[dag:" in out
