"""Derived measurement helpers."""

import numpy as np
import pytest

from repro.experiments.metrics import latency_cdf, peak_load_search
from repro.telemetry import ServiceMetrics
from repro.workloads.loadgen import Query


def fake_metrics(latencies, qos=1.0):
    m = ServiceMetrics("s", qos)
    for i, lat in enumerate(latencies):
        q = Query(qid=i, service="s", t_submit=0.0)
        q.t_complete = lat
        m.record_completion(q)
    return m


class TestLatencyCdf:
    def test_normalized_to_qos(self):
        x, f = latency_cdf(np.array([0.5, 1.0, 1.5, 2.0]), qos_target=1.0)
        # F at x=1.0 counts latencies <= QoS
        idx = np.searchsorted(x, 1.0)
        assert f[idx] == pytest.approx(0.5, abs=0.05)

    def test_monotone_between_zero_and_one(self):
        rng = np.random.default_rng(0)
        x, f = latency_cdf(rng.exponential(1.0, 500), qos_target=2.0)
        assert np.all(np.diff(f) >= 0)
        assert f[0] >= 0.0 and f[-1] <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            latency_cdf(np.array([1.0]), qos_target=0.0)


class TestPeakLoadSearch:
    def test_finds_known_threshold(self):
        # synthetic deployment: meets QoS iff rate <= 17.3
        def build_and_run(rate):
            lat = 0.5 if rate <= 17.3 else 2.0
            return fake_metrics([lat] * 100, qos=1.0)

        peak = peak_load_search(build_and_run, qos_target=1.0)
        assert peak == pytest.approx(17.3, rel=0.05)

    def test_zero_when_even_low_rate_fails(self):
        def build_and_run(rate):
            return fake_metrics([5.0] * 100, qos=1.0)

        assert peak_load_search(build_and_run, qos_target=1.0) == 0.0

    def test_hi_cap_respected(self):
        def build_and_run(rate):
            return fake_metrics([0.1] * 100, qos=1.0)

        peak = peak_load_search(build_and_run, qos_target=1.0, hi=64.0)
        assert peak == pytest.approx(64.0, rel=0.05)

    def test_too_few_completions_counts_as_failure(self):
        def build_and_run(rate):
            return fake_metrics([0.1] * 10, qos=1.0)  # < 50 samples

        assert peak_load_search(build_and_run, qos_target=1.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            peak_load_search(lambda r: fake_metrics([1.0]), 1.0, lo=0.0)
