"""Scenario runners: structure of results for all three systems."""

import numpy as np
import pytest

from repro.experiments.runner import run_amoeba, run_nameko, run_openwhisk
from repro.experiments.scenarios import default_scenario

# full-system day runs: excluded from the quick tier
pytestmark = pytest.mark.slow


# one small shared scenario per module: runners are the expensive part
SCENARIO = default_scenario("float", day=900.0, seed=3)


@pytest.fixture(scope="module")
def amoeba_run():
    return run_amoeba(SCENARIO)


@pytest.fixture(scope="module")
def nameko_run():
    return run_nameko(SCENARIO)


@pytest.fixture(scope="module")
def openwhisk_run():
    return run_openwhisk(SCENARIO)


class TestAmoebaRun:
    def test_system_label(self, amoeba_run):
        assert amoeba_run.system == "amoeba"

    def test_foreground_present_with_telemetry(self, amoeba_run):
        fg = amoeba_run.foreground(SCENARIO)
        assert fg.metrics.completed > 1000
        assert fg.usage.cpu_core_seconds > 0
        assert fg.mode_timeline[0][1] == "iaas"  # default start mode

    def test_background_services_present(self, amoeba_run):
        for bg_spec, _t, _l in SCENARIO.background:
            assert bg_spec.name in amoeba_run.services
            assert amoeba_run.services[bg_spec.name].metrics.completed > 0

    def test_meter_overheads_reported(self, amoeba_run):
        assert set(amoeba_run.meter_overheads) == {"meter_cpu", "meter_io", "meter_net"}
        assert amoeba_run.meter_overhead == pytest.approx(
            sum(amoeba_run.meter_overheads.values())
        )

    def test_usage_grids(self, amoeba_run):
        fg = amoeba_run.foreground(SCENARIO)
        grid = np.linspace(0, SCENARIO.duration, 50)
        cpu = fg.cpu_usage_on_grid(grid)
        mem = fg.mem_usage_on_grid(grid)
        assert cpu.shape == mem.shape == (50,)
        assert cpu.max() > 0 and mem.max() > 0

    def test_variants(self):
        nom = run_amoeba(SCENARIO, variant="nom")
        assert nom.system == "amoeba-nom"
        with pytest.raises(ValueError):
            run_amoeba(SCENARIO, variant="bogus")


class TestNamekoRun:
    def test_holds_rental_all_day(self, nameko_run):
        fg = nameko_run.foreground(SCENARIO)
        # constant rental: flat usage timeline
        grid = np.linspace(10, SCENARIO.duration, 20)
        cpu = fg.cpu_usage_on_grid(grid)
        assert np.allclose(cpu, cpu[0])
        assert cpu[0] == fg.usage.mean_cores == pytest.approx(
            fg.usage.cpu_core_seconds / SCENARIO.duration
        )

    def test_meets_qos(self, nameko_run):
        fg = nameko_run.foreground(SCENARIO)
        assert fg.metrics.latency_percentile(95) <= SCENARIO.foreground.qos_target


class TestOpenwhiskRun:
    def test_all_services_serverless(self, openwhisk_run):
        fg = openwhisk_run.foreground(SCENARIO)
        assert fg.metrics.served_by.get("serverless", 0) == fg.metrics.completed
        assert fg.mode_timeline == []  # no engine involved

    def test_uses_fewer_cores_than_nameko(self, openwhisk_run, nameko_run):
        fo = openwhisk_run.foreground(SCENARIO)
        fn = nameko_run.foreground(SCENARIO)
        assert fo.usage.mean_cores < fn.usage.mean_cores


class TestCrossSystem:
    def test_same_arrivals_across_systems(self, amoeba_run, nameko_run, openwhisk_run):
        """All systems replay the identical query stream (same seed)."""
        counts = {
            r.foreground(SCENARIO).metrics.completed
            for r in (amoeba_run, nameko_run, openwhisk_run)
        }
        # completions may differ by in-flight tails, not by more than that
        assert max(counts) - min(counts) < 20

    def test_amoeba_saves_resources_and_meets_qos(self, amoeba_run, nameko_run):
        fa = amoeba_run.foreground(SCENARIO)
        fn = nameko_run.foreground(SCENARIO)
        cpu_ratio, mem_ratio = fa.usage.normalized_to(fn.usage)
        assert cpu_ratio < 1.0
        assert mem_ratio < 1.0
        assert fa.metrics.latency_percentile(95) <= SCENARIO.foreground.qos_target * 1.05
