"""Scenario construction and the concurrency threshold."""

import pytest

from repro.core.meters import expected_platform_overhead
from repro.core.queueing import max_arrival_rate
from repro.experiments.scenarios import (
    PEAK_RATES,
    SERVERLESS_FRACTIONS,
    ambient_pressure_traces,
    background_services,
    concurrency_threshold,
    default_scenario,
)
from repro.serverless.config import ServerlessConfig
from repro.workloads.functionbench import benchmark, benchmark_names


class TestConcurrencyThreshold:
    def test_threshold_reaches_target(self):
        spec = benchmark("float")
        cfg = ServerlessConfig()
        n = concurrency_threshold(spec, 30.0, fraction=0.8, cfg=cfg)
        mu0 = 1.0 / (spec.exec_time + expected_platform_overhead(spec, cfg))
        assert max_arrival_rate(mu0, n, spec.qos_target) >= 0.8 * 30.0
        if n > 1:
            assert max_arrival_rate(mu0, n - 1, spec.qos_target) < 0.8 * 30.0

    def test_higher_fraction_needs_no_fewer_containers(self):
        spec = benchmark("matmul")
        lo = concurrency_threshold(spec, 12.0, fraction=0.6)
        hi = concurrency_threshold(spec, 12.0, fraction=1.2)
        assert hi >= lo

    def test_validation(self):
        with pytest.raises(ValueError):
            concurrency_threshold(benchmark("float"), 0.0)
        with pytest.raises(ValueError):
            concurrency_threshold(benchmark("float"), 10.0, fraction=0.0)


class TestDefaultScenario:
    def test_all_benchmarks_build(self):
        for name in benchmark_names():
            sc = default_scenario(name, day=1800.0)
            assert sc.foreground.name == name
            assert sc.trace.peak_rate == PEAK_RATES[name]
            assert sc.limit >= 1
            assert sc.duration == 1800.0
            assert len(sc.background) == 3
            assert len(sc.ambient) == 3

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            default_scenario("nope")

    def test_fig10_fractions_split_benchmarks(self):
        """float/linpack get ceilings at/above peak; the rest below."""
        assert SERVERLESS_FRACTIONS["float"] >= 0.95
        assert SERVERLESS_FRACTIONS["linpack"] >= 0.9
        for name in ("matmul", "dd", "cloud_stor"):
            assert SERVERLESS_FRACTIONS[name] < 0.9

    def test_without_background(self):
        sc = default_scenario("float", with_background=False)
        assert sc.background == ()
        assert sc.ambient == ()

    def test_mean_ambient_pressures(self):
        sc = default_scenario("float", day=1800.0)
        p = sc.mean_ambient_pressures()
        assert all(0.0 < x < 1.0 for x in p)


class TestBackgroundAndAmbient:
    def test_background_names_prefixed(self):
        bgs = background_services(day=1800.0)
        names = [spec.name for spec, _t, _l in bgs]
        assert names == ["bg_float", "bg_dd", "bg_cloud_stor"]

    def test_background_phases_differ(self):
        bgs = background_services(day=1800.0)
        phases = {trace.phase for _s, trace, _l in bgs}
        assert len(phases) == 3

    def test_ambient_traces_cover_axes(self):
        amb = dict(ambient_pressure_traces(day=1800.0))
        assert set(amb) == {"cpu", "io", "net"}
        for trace in amb.values():
            assert 0.0 < trace.peak_rate < 1.0  # pressures, not qps
