"""The python -m repro.experiments command-line interface."""

import pytest

from repro.experiments.__main__ import TARGETS, main


def test_list_prints_targets(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out.split()
    assert "fig11" in out and "table2" in out
    assert set(out) == set(TARGETS)


def test_unknown_target_errors(capsys):
    assert main(["fig99"]) == 2
    assert "unknown target" in capsys.readouterr().err


def test_table_target_runs(capsys):
    assert main(["table3"]) == 0
    out = capsys.readouterr().out
    assert "float" in out and "cloud_stor" in out
    assert "[table3:" in out


def test_day_and_seed_flags(capsys):
    assert main(["fig2", "--day", "300", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "Fig. 2" in out
