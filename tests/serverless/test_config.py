"""Serverless platform configuration validation."""

import pytest

from repro.serverless.config import ServerlessConfig


def test_defaults_are_valid():
    cfg = ServerlessConfig()
    assert cfg.container_memory_mb == 256.0
    assert 1.0 <= cfg.cold_start_median <= 3.0  # paper SV-A: one to three seconds


def test_max_containers_by_memory():
    cfg = ServerlessConfig(pool_memory_mb=1024.0, container_memory_mb=256.0)
    assert cfg.max_containers_by_memory == 4


def test_pool_must_fit_one_container():
    with pytest.raises(ValueError):
        ServerlessConfig(pool_memory_mb=100.0, container_memory_mb=256.0)


def test_concurrency_limit_validation():
    with pytest.raises(ValueError):
        ServerlessConfig(concurrency_limit=0)


def test_positive_fields_validated():
    with pytest.raises(ValueError):
        ServerlessConfig(cold_start_median=0.0)
    with pytest.raises(ValueError):
        ServerlessConfig(keep_alive=0.0)
    with pytest.raises(ValueError):
        ServerlessConfig(warm_load_mbps=-1.0)


def test_nonnegative_fields_validated():
    with pytest.raises(ValueError):
        ServerlessConfig(idle_cpu=-0.1)
    with pytest.raises(ValueError):
        ServerlessConfig(cold_start_sigma=-0.1)
