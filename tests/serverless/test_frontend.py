"""Front-end behaviour in isolation."""

import pytest

from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query


def make_platform():
    env = Environment()
    platform = ServerlessPlatform(env, RngRegistry(seed=8))
    spec = benchmark("float")
    metrics = ServiceMetrics("float", spec.qos_target)
    platform.register(spec, metrics=metrics)
    return env, platform, metrics


def test_proc_overhead_recorded():
    env, platform, metrics = make_platform()
    q = Query(qid=0, service="float", t_submit=0.0)
    platform.invoke(q)
    env.run(until=30.0)
    assert q.breakdown["proc"] > 0.0
    assert platform.frontend.accepted == 1


def test_arrival_recorded_at_submission_not_completion():
    env, platform, metrics = make_platform()
    platform.invoke(Query(qid=0, service="float", t_submit=0.0))
    # before anything completes, the load estimator already saw it
    assert metrics.load.total == 1
    env.run(until=30.0)
    assert metrics.completed == 1


def test_canary_arrival_excluded_from_load():
    env, platform, metrics = make_platform()
    platform.invoke(Query(qid=0, service="float", t_submit=0.0, canary=True))
    assert metrics.load.total == 0
    env.run(until=30.0)
    assert metrics.completed == 0  # canaries are not user traffic
    assert len(metrics.canary_latencies) == 1


def test_proc_overhead_precedes_queueing():
    """The front-end pays its overhead before the query can be queued."""
    env, platform, metrics = make_platform()
    platform.invoke(Query(qid=0, service="float", t_submit=0.0))
    assert platform.queue_length("float") == 0  # still in the front end
    env.run(until=0.2)
    # by now the proc stage is over and the query reached the pool
    fs = platform.pool.state("float")
    assert fs.total_containers >= 1
