"""Property-based pool invariants (hypothesis).

Random interleavings of submissions, prewarms and time advances must
never break the pool's conservation laws:

* container memory accounting equals 256 MB x live containers,
* per-function containers never exceed the concurrency limit,
* every accepted query eventually completes once arrivals stop,
* completions never exceed submissions.
"""

import itertools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serverless.config import ServerlessConfig
from repro.serverless.container import ContainerState
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query

# action alphabet: (kind, amount)
actions = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.integers(1, 4)),
        st.tuples(st.just("prewarm"), st.integers(0, 5)),
        st.tuples(st.just("advance"), st.floats(0.1, 30.0)),
    ),
    min_size=1,
    max_size=25,
)


@given(actions, st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_pool_conservation_laws(script, limit):
    env = Environment()
    rng = RngRegistry(seed=13)
    cfg = ServerlessConfig(pool_memory_mb=8 * 256.0)  # room for 8 containers
    platform = ServerlessPlatform(env, rng, config=cfg)
    spec = benchmark("float")
    metrics = ServiceMetrics("float", spec.qos_target)
    platform.register(spec, metrics=metrics, limit=limit)
    qid = itertools.count()
    submitted = 0

    def check_invariants():
        fs = platform.pool.state("float")
        live = fs.total_containers
        assert live <= limit
        assert live <= 8  # memory cap
        assert platform.pool.container_memory_in_use == 256.0 * live
        assert fs.completions <= submitted
        for c in fs.idle:
            assert c.state is ContainerState.IDLE

    for kind, amount in script:
        if kind == "submit":
            for _ in range(int(amount)):
                platform.invoke(Query(qid=next(qid), service="float", t_submit=env.now))
                submitted += 1
        elif kind == "prewarm":
            platform.prewarm("float", int(amount))
        else:
            env.run(until=env.now + float(amount))
        check_invariants()

    # drain: with arrivals stopped, everything completes and the pool
    # eventually returns all memory
    env.run(until=env.now + 600.0)
    fs = platform.pool.state("float")
    assert fs.completions == submitted == metrics.completed
    assert platform.queue_length("float") == 0
    assert fs.total_containers == 0  # keep-alive reaped everything
    assert platform.pool.container_memory_in_use == 0.0
