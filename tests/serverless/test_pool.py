"""Container pool: lifecycle, dispatch, memory cap, prewarm, NoP mode."""

import itertools

import pytest

from repro.serverless.config import ServerlessConfig
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query

QIDS = itertools.count()


def make_platform(env=None, **cfg_kwargs):
    env = env if env is not None else Environment()
    rng = RngRegistry(seed=5)
    cfg = ServerlessConfig(**cfg_kwargs)
    return env, ServerlessPlatform(env, rng, config=cfg)


def submit(env, platform, name, n=1):
    out = []
    for _ in range(n):
        q = Query(qid=next(QIDS), service=name, t_submit=env.now)
        platform.invoke(q)
        out.append(q)
    return out


def register(platform, spec, **kw):
    metrics = ServiceMetrics(spec.name, spec.qos_target)
    platform.register(spec, metrics=metrics, **kw)
    return metrics


class TestLifecycle:
    def test_first_query_cold_starts(self):
        env, platform = make_platform()
        spec = benchmark("float")
        register(platform, spec)
        (q,) = submit(env, platform, "float")
        env.run(until=30.0)
        assert q.t_complete is not None
        assert q.breakdown["cold"] > 0.5
        assert platform.pool.state("float").cold_starts == 1

    def test_second_query_reuses_warm_container(self):
        env, platform = make_platform()
        spec = benchmark("float")
        register(platform, spec)
        submit(env, platform, "float")
        env.run(until=10.0)
        (q2,) = submit(env, platform, "float")
        env.run(until=20.0)
        assert q2.breakdown.get("cold", 0.0) == 0.0
        assert platform.pool.state("float").cold_starts == 1

    def test_keep_alive_reaps_idle_container(self):
        env, platform = make_platform(keep_alive=30.0)
        register(platform, benchmark("float"))
        submit(env, platform, "float")
        env.run(until=10.0)
        assert platform.warm_count("float") == 1
        env.run(until=60.0)
        assert platform.warm_count("float") == 0
        assert platform.pool.container_memory_in_use == 0.0

    def test_reuse_rearms_keep_alive(self):
        env, platform = make_platform(keep_alive=30.0)
        register(platform, benchmark("float"))
        submit(env, platform, "float")
        env.run(until=25.0)
        submit(env, platform, "float")  # re-used near end of keep-alive
        env.run(until=40.0)
        assert platform.warm_count("float") == 1  # timer restarted

    def test_zero_keep_alive_retires_after_each_query(self):
        env, platform = make_platform()
        register(platform, benchmark("float"), keep_alive=0.0)
        submit(env, platform, "float", n=3)
        env.run(until=60.0)
        fs = platform.pool.state("float")
        assert fs.completions == 3
        assert fs.cold_starts == 3  # no reuse at all
        assert platform.warm_count("float") == 0

    def test_breakdown_has_all_stages(self):
        env, platform = make_platform()
        register(platform, benchmark("matmul"))
        (q,) = submit(env, platform, "matmul")
        env.run(until=30.0)
        for stage in ("proc", "queue", "cold", "load", "exec", "post"):
            assert stage in q.breakdown
        assert q.served_by == "serverless"
        total = sum(q.breakdown.values())
        assert total == pytest.approx(q.latency, rel=1e-6)


class TestDispatch:
    def test_queue_is_fifo(self):
        # zero front-end jitter so pool-entry order == submission order
        env, platform = make_platform(proc_overhead_sigma=0.0)
        register(platform, benchmark("float"), limit=1)
        qs = submit(env, platform, "float", n=5)
        env.run(until=60.0)
        completions = sorted(qs, key=lambda q: q.t_complete)
        assert [q.qid for q in completions] == [q.qid for q in qs]

    def test_limit_caps_containers(self):
        env, platform = make_platform()
        register(platform, benchmark("float"), limit=2)
        submit(env, platform, "float", n=20)
        env.run(until=2.0)
        assert platform.pool.state("float").total_containers <= 2

    def test_memory_cap_blocks_launch(self):
        env, platform = make_platform(pool_memory_mb=512.0)  # room for 2
        register(platform, benchmark("float"))
        submit(env, platform, "float", n=10)
        env.run(until=2.0)
        assert platform.pool.state("float").total_containers == 2

    def test_all_queries_complete_under_backlog(self):
        env, platform = make_platform()
        register(platform, benchmark("float"), limit=3)
        qs = submit(env, platform, "float", n=30)
        env.run(until=120.0)
        assert all(q.t_complete is not None for q in qs)

    def test_unregistered_function_raises(self):
        env, platform = make_platform()
        with pytest.raises(KeyError):
            submit(env, platform, "ghost")

    def test_double_register_raises(self):
        env, platform = make_platform()
        register(platform, benchmark("float"))
        with pytest.raises(ValueError):
            platform.register(benchmark("float"))


class TestPrewarm:
    def test_prewarm_creates_idle_containers(self):
        env, platform = make_platform()
        register(platform, benchmark("float"))
        ack = platform.prewarm("float", 4)
        env.run(until=ack)
        assert ack.value == 4
        assert platform.warm_count("float") == 4

    def test_prewarm_ack_waits_for_warm(self):
        env, platform = make_platform()
        register(platform, benchmark("float"))
        ack = platform.prewarm("float", 2)
        env.run(until=ack)
        assert env.now > 0.5  # cold start takes ~1.4 s

    def test_prewarmed_queries_skip_cold_start(self):
        env, platform = make_platform()
        m = register(platform, benchmark("float"))
        ack = platform.prewarm("float", 3)
        env.run(until=ack)
        qs = submit(env, platform, "float", n=3)
        env.run(until=env.now + 10.0)
        assert all(q.breakdown.get("cold", 0.0) == 0.0 for q in qs)
        assert m.completed == 3

    def test_prewarm_is_idempotent_on_warm_pool(self):
        env, platform = make_platform()
        register(platform, benchmark("float"))
        env.run(until=platform.prewarm("float", 3))
        ack2 = platform.prewarm("float", 3)
        assert ack2.triggered  # nothing to launch: immediate
        assert platform.pool.state("float").total_containers == 3

    def test_prewarm_capped_by_memory(self):
        env, platform = make_platform(pool_memory_mb=512.0)
        register(platform, benchmark("float"))
        ack = platform.prewarm("float", 10)
        env.run(until=ack)
        assert ack.value == 2

    def test_prewarm_count_validation(self):
        env, platform = make_platform()
        register(platform, benchmark("float"))
        with pytest.raises(ValueError):
            platform.prewarm("float", -1)


class TestNMax:
    def test_n_max_limit_bound(self):
        env, platform = make_platform()
        register(platform, benchmark("float"), limit=7)
        assert platform.n_max("float") == 7

    def test_n_max_memory_bound(self):
        env, platform = make_platform(pool_memory_mb=1024.0)
        register(platform, benchmark("float"), limit=100)
        assert platform.n_max("float") == 4

    def test_n_max_counts_own_containers_as_reusable(self):
        env, platform = make_platform(pool_memory_mb=1024.0)
        register(platform, benchmark("float"), limit=100)
        env.run(until=platform.prewarm("float", 3))
        assert platform.n_max("float") == 4  # own 3 + 1 free


class TestAccounting:
    def test_container_memory_hits_ledger(self):
        env, platform = make_platform(keep_alive=50.0)
        register(platform, benchmark("float"))
        submit(env, platform, "float")
        env.run(until=20.0)
        ledger = platform.function_ledger("float")
        assert ledger.current_memory_mb == pytest.approx(256.0)
        env.run(until=120.0)  # reaped
        assert ledger.current_memory_mb == pytest.approx(0.0)

    def test_execution_cpu_hits_ledger(self):
        env, platform = make_platform()
        register(platform, benchmark("float"))
        submit(env, platform, "float", n=5)
        env.run(until=60.0)
        snap = platform.function_ledger("float").snapshot()
        # 5 queries x ~0.08 s x 1 core, plus idle overhead of up to 5
        # containers (one cold start is pledged per queued query)
        assert 0.3 < snap.cpu_core_seconds < 5.0
