"""Overload protection in the serverless path: admission, shedding, bounds.

Includes the open-loop baseline demanded by the overload acceptance
criteria: lambda >> capacity with the policy disabled must keep the event
heap and per-query state bounded (the backlog is a deque, not heap
entries) and leave every goodput metric well-defined.
"""

import itertools

from repro.overload import OverloadGovernor, OverloadPolicy
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query

QIDS = itertools.count()


def make_platform(seed=5):
    env = Environment()
    platform = ServerlessPlatform(env, RngRegistry(seed=seed))
    return env, platform


def make_governor(policy, spec, mu=5.0):
    return OverloadGovernor(
        policy, qos_target=spec.qos_target, mu_serverless=mu, mu_iaas=mu
    )


def register(platform, spec, policy=None, **kw):
    metrics = ServiceMetrics(spec.name, spec.qos_target)
    gov = make_governor(policy, spec) if policy is not None else None
    platform.register(spec, metrics=metrics, overload=gov, **kw)
    return metrics, gov


def submit(env, platform, name, n=1):
    out = []
    for _ in range(n):
        q = Query(qid=next(QIDS), service=name, t_submit=env.now)
        platform.invoke(q)
        out.append(q)
    return out


class TestAdmission:
    def test_full_queue_rejects_arrivals_at_the_frontend(self):
        policy = OverloadPolicy(
            max_queue_depth=3, admission_control=False,
            shed_expired=False, breaker_enabled=False,
        )
        env, platform = make_platform()
        spec = benchmark("float")
        metrics, gov = register(platform, spec, policy=policy, limit=1)
        submit(env, platform, "float", n=6)
        env.run(until=0.5)  # backlog now sits in the bounded queue
        late = submit(env, platform, "float", n=3)
        assert metrics.drops["admission"] == 3
        assert gov.rejections["admission"] == 3
        for q in late:
            assert q.failed and q.served_by == "serverless"
            assert q.t_complete == env.now

    def test_predicted_qos_miss_rejects_on_arrival(self):
        policy = OverloadPolicy(shed_expired=False, breaker_enabled=False)
        env, platform = make_platform()
        spec = benchmark("float")  # qos 0.3 s; mu=5 -> 0.2 s service time
        metrics, gov = register(platform, spec, policy=policy, limit=1)
        submit(env, platform, "float", n=1)
        env.run(until=0.05)  # the first query is queued on its cold start
        (rejected,) = submit(env, platform, "float", n=1)
        # one queued ahead on a single server: predicted sojourn breaks QoS
        assert rejected.failed
        assert metrics.drops["admission"] == 1

    def test_admitted_queries_still_complete(self):
        policy = OverloadPolicy(breaker_enabled=False)
        env, platform = make_platform()
        metrics, gov = register(platform, benchmark("float"), policy=policy, limit=4)
        # warm containers first: a 1.4 s cold wait can never meet the
        # 0.3 s QoS target, so un-prewarmed queries are (correctly) shed
        platform.prewarm("float", 2)
        env.run(until=10.0)
        submit(env, platform, "float", n=2)
        env.run(until=30.0)
        assert metrics.completed == 2
        assert metrics.drops["admission"] == 0
        assert metrics.drops["shed"] == 0


class TestShedding:
    def test_stale_queue_waits_shed_at_dequeue(self):
        # budget = 0.5 * 0.3 s; a ~1.4 s cold start expires the backlog
        policy = OverloadPolicy(
            admission_control=False, breaker_enabled=False, queue_wait_budget=0.5
        )
        env, platform = make_platform()
        metrics, gov = register(platform, benchmark("float"), policy=policy, limit=1)
        queries = submit(env, platform, "float", n=4)
        env.run(until=30.0)
        assert metrics.drops["shed"] >= 1
        assert gov.rejections["shed"] == metrics.drops["shed"]
        shed = [q for q in queries if q.failed]
        assert shed
        for q in shed:
            assert q.served_by == "serverless"
            assert q.breakdown["queue"] > policy.wait_budget(0.3)

    def test_disabled_policy_never_sheds(self):
        env, platform = make_platform()
        metrics, gov = register(
            platform, benchmark("float"), policy=OverloadPolicy.disabled(), limit=1
        )
        submit(env, platform, "float", n=4)
        env.run(until=60.0)
        assert all(count == 0 for count in metrics.drops.values())
        assert metrics.completed == 4


class TestQueueDepthObservability:
    def test_depth_timeline_and_exact_peak_are_sampled(self):
        env, platform = make_platform()
        spec = benchmark("float")
        metrics = ServiceMetrics(spec.name, spec.qos_target)
        platform.register(spec, metrics=metrics, limit=1)
        submit(env, platform, "float", n=5)
        env.run(until=30.0)
        fs = platform.pool.state("float")
        times, values = fs.queue_depth.times(), fs.queue_depth.values()
        assert len(times) == len(values) > 0
        assert all(v >= 0.0 for v in values)
        # the exact high-water mark never under-reports the timeline
        assert fs.peak_queue_depth >= max(int(v) for v in values)
        assert fs.peak_queue_depth >= 1
        assert values[-1] == 0.0  # drained by the end


class TestOpenLoopOverloadBaseline:
    """lambda >> capacity, no protection: bounded kernel state, sane metrics."""

    RATE = 30  # queries/s against a single ~0.1 s/query container
    SECONDS = 10

    def _flood(self, policy):
        env, platform = make_platform()
        spec = benchmark("float")
        metrics, gov = register(platform, spec, policy=policy, limit=1)
        peak_heap = 0
        for t in range(self.SECONDS):
            env.run(until=float(t))
            submit(env, platform, "float", n=self.RATE)
            peak_heap = max(peak_heap, env.heap_size)
        env.run(until=float(self.SECONDS) + 2.0)
        return env, platform, metrics, peak_heap

    def test_event_heap_stays_bounded_while_the_queue_grows(self):
        env, platform, metrics, peak_heap = self._flood(policy=None)
        offered = self.RATE * self.SECONDS
        backlog = platform.pool.queue_length("float")
        assert backlog > self.RATE  # genuinely overloaded, queue ballooning
        # queued queries are deque entries, not heap entries: the kernel's
        # event heap tracks in-flight work only, far below offered load
        assert peak_heap < offered / 2
        assert env.heap_size < 20

    def test_goodput_metrics_stay_well_defined(self):
        env, platform, metrics, _ = self._flood(policy=None)
        offered = self.RATE * self.SECONDS
        fs = platform.pool.state("float")
        assert metrics.completed > 0
        assert metrics.completed + fs.n_busy + len(fs.queue) == offered
        assert 0.0 <= metrics.violation_fraction <= 1.0
        p95 = metrics.latency_percentile(95)
        assert p95 == p95 and p95 > 0.0  # finite, not NaN
        assert metrics.failed == 0  # nothing dropped without a policy

    def test_disabled_policy_is_the_same_run_as_no_governor(self):
        _, _, plain, _ = self._flood(policy=None)
        _, _, disabled, _ = self._flood(policy=OverloadPolicy.disabled())
        plain_hex = [x.hex() for x in plain.latencies.values()]
        disabled_hex = [x.hex() for x in disabled.latencies.values()]
        assert plain_hex == disabled_hex
