"""Fault injection in the container pool: cold-start retries, crashes, drops."""

import itertools

from repro.faults import FaultInjector, FaultPlan
from repro.serverless.platform import ServerlessPlatform
from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads.functionbench import benchmark
from repro.workloads.loadgen import Query

QIDS = itertools.count()


def make_platform(plan, seed=5):
    env = Environment()
    rng = RngRegistry(seed=seed)
    faults = FaultInjector(plan, rng)
    platform = ServerlessPlatform(env, rng, faults=faults)
    return env, platform, faults


def register(platform, spec, **kw):
    metrics = ServiceMetrics(spec.name, spec.qos_target)
    platform.register(spec, metrics=metrics, **kw)
    return metrics


def submit(env, platform, name, n=1):
    out = []
    for _ in range(n):
        q = Query(qid=next(QIDS), service=name, t_submit=env.now)
        platform.invoke(q)
        out.append(q)
    return out


def script(faults, method, results):
    """Replace one injector hook with a scripted decision sequence."""
    it = iter(results)
    setattr(faults, method, lambda service: next(it, False))


class TestColdStartFaults:
    def test_failed_cold_start_retries_in_place_and_serves(self):
        env, platform, faults = make_platform(FaultPlan(cold_start_failure_prob=0.5))
        script(faults, "cold_start_fails", [True, False])
        register(platform, benchmark("float"))
        (q,) = submit(env, platform, "float")
        env.run(until=60.0)
        assert q.t_complete is not None
        fs = platform.pool.state("float")
        assert fs.cold_starts == 1  # relaunched in place, not re-pledged
        assert fs.n_init == 0

    def test_exhausted_cold_start_abandons_pledge(self):
        plan = FaultPlan(cold_start_failure_prob=1.0, max_cold_start_retries=0)
        env, platform, faults = make_platform(plan)
        register(platform, benchmark("float"))
        ack = platform.prewarm("float", 1)
        env.run(until=60.0)
        # the prewarm ack still resolves (with None from the dead pledge)
        assert ack.processed
        assert faults.stats.cold_starts_abandoned >= 1
        fs = platform.pool.state("float")
        assert fs.n_init == 0
        assert platform.warm_count("float") == 0
        assert platform.pool.container_memory_in_use == 0.0


class TestCrashFaults:
    def test_crashed_query_is_retried_and_completes(self):
        env, platform, faults = make_platform(FaultPlan(container_crash_prob=0.5))
        script(faults, "container_crashes", [True, False])
        metrics = register(platform, benchmark("float"))
        (q,) = submit(env, platform, "float")
        env.run(until=60.0)
        assert q.t_complete is not None and not q.failed
        assert q.attempts == 1
        assert metrics.retries["attempted"] == 1
        assert metrics.total_retries == 1
        assert metrics.completed == 1
        assert faults.stats.query_retries == 1
        assert faults.stats.queries_dropped == 0

    def test_retry_budget_exhausted_drops_the_query(self):
        plan = FaultPlan(container_crash_prob=1.0, max_query_retries=1)
        env, platform, faults = make_platform(plan)
        metrics = register(platform, benchmark("float"))
        (q,) = submit(env, platform, "float")
        env.run(until=120.0)
        assert q.failed
        assert q.attempts == 2  # initial + one retry, both crashed
        assert metrics.retries["attempted"] == 1
        assert metrics.retries["exhausted"] == 1
        assert metrics.failed == 1
        assert metrics.completed == 0  # drops never pollute the latency ledgers
        assert metrics.violation_fraction_with_failures == 1.0
        assert faults.stats.queries_dropped == 1
        fs = platform.pool.state("float")
        assert fs.n_busy == 0

    def test_crashed_container_memory_is_returned(self):
        plan = FaultPlan(container_crash_prob=1.0, max_query_retries=0)
        env, platform, faults = make_platform(plan)
        register(platform, benchmark("float"))
        submit(env, platform, "float")
        env.run(until=120.0)
        # the crashed container was retired; nothing warm survives it
        assert platform.pool.container_memory_in_use == 0.0
        assert platform.warm_count("float") == 0


class TestPoolFaultDeterminism:
    def _run(self, seed):
        plan = FaultPlan(container_crash_prob=0.3, cold_start_failure_prob=0.3)
        env, platform, faults = make_platform(plan, seed=seed)
        metrics = register(platform, benchmark("float"))
        for t in range(40):
            env.run(until=float(t))
            submit(env, platform, "float")
        env.run(until=120.0)
        return metrics, faults.stats

    def test_same_seed_reproduces_fault_sequence(self):
        m1, s1 = self._run(seed=9)
        m2, s2 = self._run(seed=9)
        assert s1.as_dict() == s2.as_dict()
        assert s1.total_injected > 0
        lat1 = [x.hex() for x in m1.latencies.values()]
        lat2 = [x.hex() for x in m2.latencies.values()]
        assert lat1 == lat2
