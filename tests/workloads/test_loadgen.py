"""Open-loop Poisson load generation."""

import numpy as np
import pytest

from repro.sim.environment import Environment
from repro.sim.rng import RngRegistry
from repro.workloads.loadgen import LoadGenerator, Query
from repro.workloads.traces import ConstantTrace, StepTrace


def collect(trace, duration, seed=1):
    env = Environment()
    rng = RngRegistry(seed=seed)
    queries = []
    LoadGenerator(env, "svc", trace, queries.append, rng)
    env.run(until=duration)
    return queries


def test_constant_rate_count():
    qs = collect(ConstantTrace(10.0), 1000.0)
    # Poisson(10000): within 5 sigma
    assert abs(len(qs) - 10000) < 5 * np.sqrt(10000)


def test_queries_are_stamped():
    qs = collect(ConstantTrace(5.0), 50.0)
    assert all(q.service == "svc" for q in qs)
    assert all(not q.canary for q in qs)
    ids = [q.qid for q in qs]
    assert ids == sorted(ids)
    times = [q.t_submit for q in qs]
    assert times == sorted(times)


def test_exponential_interarrivals():
    qs = collect(ConstantTrace(20.0), 2000.0)
    gaps = np.diff([q.t_submit for q in qs])
    assert np.mean(gaps) == pytest.approx(1 / 20.0, rel=0.05)
    # CV of exponential is 1
    assert np.std(gaps) / np.mean(gaps) == pytest.approx(1.0, abs=0.1)


def test_thinning_follows_step_shape():
    trace = StepTrace([(0.0, 2.0), (500.0, 20.0)])
    qs = collect(trace, 1000.0)
    first = sum(1 for q in qs if q.t_submit < 500.0)
    second = len(qs) - first
    assert first == pytest.approx(1000, abs=5 * np.sqrt(1000))
    assert second == pytest.approx(10000, abs=5 * np.sqrt(10000))


def test_zero_rate_generates_nothing():
    qs = collect(ConstantTrace(0.0), 100.0)
    assert qs == []


def test_deterministic_given_seed():
    a = [q.t_submit for q in collect(ConstantTrace(5.0), 100.0, seed=3)]
    b = [q.t_submit for q in collect(ConstantTrace(5.0), 100.0, seed=3)]
    assert a == b


def test_stop_halts_generation():
    env = Environment()
    rng = RngRegistry(seed=1)
    queries = []
    gen = LoadGenerator(env, "svc", ConstantTrace(10.0), queries.append, rng)
    env.run(until=10.0)
    gen.stop()
    count = len(queries)
    env.run(until=100.0)
    assert len(queries) == count
    gen.stop()  # idempotent on a dead process


def test_query_latency_requires_completion():
    q = Query(qid=0, service="s", t_submit=1.0)
    with pytest.raises(RuntimeError):
        _ = q.latency
    q.t_complete = 3.5
    assert q.latency == pytest.approx(2.5)
