"""Ambient tenant pressure injection."""

import pytest

from repro.cluster.resource_model import ContentionConfig, MachineModel
from repro.workloads.ambient import AmbientTenants
from repro.workloads.traces import ConstantTrace, StepTrace


def make_machine(env):
    return MachineModel(env, cores=10.0, io_mbps=1000.0, net_mbps=1000.0, config=ContentionConfig())


def test_constant_pressure_applied(env, rng):
    m = make_machine(env)
    AmbientTenants(env, m, {"cpu": ConstantTrace(0.5)}, rng, interval=5.0, jitter_sigma=0.0)
    env.run(until=1.0)
    assert m.pressures()[0] == pytest.approx(0.5)
    assert m.pressures()[1] == 0.0


def test_pressure_tracks_trace(env, rng):
    m = make_machine(env)
    trace = StepTrace([(0.0, 0.2), (50.0, 0.8)])
    AmbientTenants(env, m, {"io": trace}, rng, interval=10.0, jitter_sigma=0.0)
    env.run(until=5.0)
    assert m.pressures()[1] == pytest.approx(0.2)
    env.run(until=65.0)
    assert m.pressures()[1] == pytest.approx(0.8)


def test_multiple_axes(env, rng):
    m = make_machine(env)
    AmbientTenants(
        env,
        m,
        {"cpu": ConstantTrace(0.3), "net": ConstantTrace(0.6)},
        rng,
        interval=5.0,
        jitter_sigma=0.0,
    )
    env.run(until=1.0)
    p = m.pressures()
    assert p[0] == pytest.approx(0.3)
    assert p[2] == pytest.approx(0.6)


def test_pressures_now_matches_machine(env, rng):
    m = make_machine(env)
    amb = AmbientTenants(env, m, {"cpu": ConstantTrace(0.4)}, rng, interval=5.0, jitter_sigma=0.0)
    env.run(until=1.0)
    assert amb.pressures_now()[0] == pytest.approx(m.pressures()[0])


def test_zero_pressure_injects_nothing(env, rng):
    m = make_machine(env)
    AmbientTenants(env, m, {"cpu": ConstantTrace(0.0)}, rng, interval=5.0, jitter_sigma=0.0)
    env.run(until=20.0)
    assert m.pressures() == (0.0, 0.0, 0.0)


def test_jitter_varies_pressure(env, rng):
    m = make_machine(env)
    AmbientTenants(env, m, {"cpu": ConstantTrace(0.5)}, rng, interval=1.0, jitter_sigma=0.2)
    seen = set()
    for t in range(1, 20):
        env.run(until=float(t) + 0.5)
        seen.add(round(m.pressures()[0], 6))
    assert len(seen) > 5


def test_validation(env, rng):
    m = make_machine(env)
    with pytest.raises(ValueError):
        AmbientTenants(env, m, {"cpu": ConstantTrace(0.5)}, rng, interval=0.0)
    with pytest.raises(ValueError):
        AmbientTenants(env, m, {"gpu": ConstantTrace(0.5)}, rng)
    with pytest.raises(ValueError):
        AmbientTenants(env, m, {"cpu": ConstantTrace(0.5)}, rng, jitter_sigma=-1.0)
