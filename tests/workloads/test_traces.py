"""Load-shape generators."""

import numpy as np
import pytest

from repro.workloads.traces import (
    BurstTrace,
    ConstantTrace,
    DiurnalTrace,
    StepTrace,
)


class TestConstantTrace:
    def test_rate(self):
        t = ConstantTrace(5.0)
        assert t.rate(0) == 5.0
        assert t.rate(1e6) == 5.0
        assert t.peak_rate == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantTrace(-1.0)

    def test_mean_rate(self):
        assert ConstantTrace(3.0).mean_rate(0, 100) == pytest.approx(3.0)


class TestStepTrace:
    def test_steps(self):
        t = StepTrace([(0.0, 1.0), (10.0, 5.0), (20.0, 2.0)])
        assert t.rate(5.0) == 1.0
        assert t.rate(10.0) == 5.0
        assert t.rate(25.0) == 2.0
        assert t.peak_rate == 5.0

    def test_before_first_breakpoint(self):
        t = StepTrace([(10.0, 5.0)])
        assert t.rate(5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepTrace([])
        with pytest.raises(ValueError):
            StepTrace([(10.0, 1.0), (5.0, 2.0)])
        with pytest.raises(ValueError):
            StepTrace([(0.0, -1.0)])


class TestDiurnalTrace:
    def test_bounds(self):
        t = DiurnalTrace(peak_rate=10.0, low_fraction=0.3, seed=1)
        rates = [t.rate(s) for s in np.linspace(0, 86400, 500)]
        assert max(rates) <= 10.0 + 1e-9
        assert min(rates) >= 0.3 * 10.0 * 0.7  # noise can dip below the floor a bit

    def test_peak_reached_near_evening(self):
        t = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0)
        evening = t.rate(18 * 3600.0)
        night = t.rate(3 * 3600.0)
        assert evening > 0.95 * 10.0
        assert night < 0.45 * 10.0

    def test_two_peaks(self):
        t = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0, morning_fraction=0.8)
        morning = t.rate(8.5 * 3600.0)
        midday = t.rate(13 * 3600.0)
        assert morning > midday

    def test_periodic(self):
        t = DiurnalTrace(peak_rate=10.0, seed=4)
        assert t.rate(1000.0) == pytest.approx(t.rate(1000.0 + 86400.0))

    def test_deterministic(self):
        a = DiurnalTrace(peak_rate=10.0, seed=9)
        b = DiurnalTrace(peak_rate=10.0, seed=9)
        assert [a.rate(s) for s in range(0, 86400, 997)] == [
            b.rate(s) for s in range(0, 86400, 997)
        ]

    def test_seed_changes_noise(self):
        a = DiurnalTrace(peak_rate=10.0, seed=1)
        b = DiurnalTrace(peak_rate=10.0, seed=2)
        assert any(a.rate(s) != b.rate(s) for s in range(0, 86400, 3571))

    def test_compressed_day(self):
        t = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0, day=7200.0)
        # 18:00 of a 7200 s day is t = 5400
        assert t.rate(5400.0) > 0.95 * 10.0
        assert t.rate(5400.0 + 7200.0) == pytest.approx(t.rate(5400.0))

    def test_phase_shift(self):
        base = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0)
        shifted = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0, phase=3600.0)
        assert shifted.rate(17 * 3600.0) == pytest.approx(base.rate(18 * 3600.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=0.0)
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=1.0, low_fraction=1.0)
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=1.0, morning_fraction=0.0)
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=1.0, noise_sigma=-0.1)
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=1.0, day=0.0)

    def test_mean_rate_between_low_and_peak(self):
        t = DiurnalTrace(peak_rate=10.0, low_fraction=0.3, seed=1)
        m = t.mean_rate(0, 86400)
        assert 3.0 < m < 10.0


class TestBurstTrace:
    def test_burst_adds_rate(self):
        t = BurstTrace(ConstantTrace(2.0), [(10.0, 5.0, 3.0)])
        assert t.rate(5.0) == 2.0
        assert t.rate(12.0) == 5.0
        assert t.rate(15.0) == 2.0
        assert t.peak_rate == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstTrace(ConstantTrace(1.0), [(0.0, 0.0, 1.0)])
        with pytest.raises(ValueError):
            BurstTrace(ConstantTrace(1.0), [(0.0, 1.0, -1.0)])

    def test_mean_rate_interval_validation(self):
        with pytest.raises(ValueError):
            ConstantTrace(1.0).mean_rate(5.0, 5.0)
