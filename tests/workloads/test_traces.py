"""Load-shape generators."""

import numpy as np
import pytest

from repro.workloads.traces import (
    BurstTrace,
    ConstantTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    StepTrace,
    peak_concurrent_extra,
)


class TestConstantTrace:
    def test_rate(self):
        t = ConstantTrace(5.0)
        assert t.rate(0) == 5.0
        assert t.rate(1e6) == 5.0
        assert t.peak_rate == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantTrace(-1.0)

    def test_mean_rate(self):
        assert ConstantTrace(3.0).mean_rate(0, 100) == pytest.approx(3.0)


class TestStepTrace:
    def test_steps(self):
        t = StepTrace([(0.0, 1.0), (10.0, 5.0), (20.0, 2.0)])
        assert t.rate(5.0) == 1.0
        assert t.rate(10.0) == 5.0
        assert t.rate(25.0) == 2.0
        assert t.peak_rate == 5.0

    def test_before_first_breakpoint(self):
        t = StepTrace([(10.0, 5.0)])
        assert t.rate(5.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepTrace([])
        with pytest.raises(ValueError):
            StepTrace([(10.0, 1.0), (5.0, 2.0)])
        with pytest.raises(ValueError):
            StepTrace([(0.0, -1.0)])


class TestDiurnalTrace:
    def test_bounds(self):
        t = DiurnalTrace(peak_rate=10.0, low_fraction=0.3, seed=1)
        rates = [t.rate(s) for s in np.linspace(0, 86400, 500)]
        assert max(rates) <= 10.0 + 1e-9
        assert min(rates) >= 0.3 * 10.0 * 0.7  # noise can dip below the floor a bit

    def test_peak_reached_near_evening(self):
        t = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0)
        evening = t.rate(18 * 3600.0)
        night = t.rate(3 * 3600.0)
        assert evening > 0.95 * 10.0
        assert night < 0.45 * 10.0

    def test_two_peaks(self):
        t = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0, morning_fraction=0.8)
        morning = t.rate(8.5 * 3600.0)
        midday = t.rate(13 * 3600.0)
        assert morning > midday

    def test_periodic(self):
        t = DiurnalTrace(peak_rate=10.0, seed=4)
        assert t.rate(1000.0) == pytest.approx(t.rate(1000.0 + 86400.0))

    def test_deterministic(self):
        a = DiurnalTrace(peak_rate=10.0, seed=9)
        b = DiurnalTrace(peak_rate=10.0, seed=9)
        assert [a.rate(s) for s in range(0, 86400, 997)] == [
            b.rate(s) for s in range(0, 86400, 997)
        ]

    def test_seed_changes_noise(self):
        a = DiurnalTrace(peak_rate=10.0, seed=1)
        b = DiurnalTrace(peak_rate=10.0, seed=2)
        assert any(a.rate(s) != b.rate(s) for s in range(0, 86400, 3571))

    def test_compressed_day(self):
        t = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0, day=7200.0)
        # 18:00 of a 7200 s day is t = 5400
        assert t.rate(5400.0) > 0.95 * 10.0
        assert t.rate(5400.0 + 7200.0) == pytest.approx(t.rate(5400.0))

    def test_phase_shift(self):
        base = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0)
        shifted = DiurnalTrace(peak_rate=10.0, noise_sigma=0.0, phase=3600.0)
        assert shifted.rate(17 * 3600.0) == pytest.approx(base.rate(18 * 3600.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=0.0)
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=1.0, low_fraction=1.0)
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=1.0, morning_fraction=0.0)
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=1.0, noise_sigma=-0.1)
        with pytest.raises(ValueError):
            DiurnalTrace(peak_rate=1.0, day=0.0)

    def test_mean_rate_between_low_and_peak(self):
        t = DiurnalTrace(peak_rate=10.0, low_fraction=0.3, seed=1)
        m = t.mean_rate(0, 86400)
        assert 3.0 < m < 10.0


class TestBurstTrace:
    def test_burst_adds_rate(self):
        t = BurstTrace(ConstantTrace(2.0), [(10.0, 5.0, 3.0)])
        assert t.rate(5.0) == 2.0
        assert t.rate(12.0) == 5.0
        assert t.rate(15.0) == 2.0
        assert t.peak_rate == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstTrace(ConstantTrace(1.0), [(0.0, 0.0, 1.0)])
        with pytest.raises(ValueError):
            BurstTrace(ConstantTrace(1.0), [(0.0, 1.0, -1.0)])

    def test_mean_rate_interval_validation(self):
        with pytest.raises(ValueError):
            ConstantTrace(1.0).mean_rate(5.0, 5.0)

    def test_overlapping_bursts_stack_in_peak_rate(self):
        # regression: peak_rate used to take the single largest extra,
        # undersizing rentals whenever bursts overlapped
        t = BurstTrace(ConstantTrace(2.0), [(10.0, 20.0, 3.0), (15.0, 10.0, 4.0)])
        assert t.rate(18.0) == 2.0 + 3.0 + 4.0
        assert t.peak_rate == 2.0 + 3.0 + 4.0

    def test_disjoint_bursts_do_not_stack(self):
        t = BurstTrace(ConstantTrace(2.0), [(10.0, 5.0, 3.0), (100.0, 5.0, 4.0)])
        assert t.peak_rate == 2.0 + 4.0

    def test_peak_concurrent_extra_helper(self):
        assert peak_concurrent_extra(()) == 0.0
        # a burst ending exactly where another starts does not stack
        assert peak_concurrent_extra([(0.0, 10.0, 2.0), (10.0, 5.0, 3.0)]) == 3.0
        assert peak_concurrent_extra([(0.0, 10.0, 2.0), (9.0, 5.0, 3.0)]) == 5.0


class TestFlashCrowdTrace:
    def test_spikes_add_rate(self):
        t = FlashCrowdTrace(
            ConstantTrace(2.0), horizon=3600.0, mean_gap_s=300.0, magnitude=6.0, seed=1
        )
        assert t.spikes, "an hour at 300s mean gap should produce spikes"
        start, duration, extra = t.spikes[0]
        assert t.rate(start + 0.5 * duration) == pytest.approx(2.0 + extra)
        assert t.peak_rate >= 2.0 + max(s[2] for s in t.spikes)

    def test_deterministic_per_seed(self):
        kw = dict(horizon=7200.0, mean_gap_s=600.0, magnitude=5.0)
        a = FlashCrowdTrace(ConstantTrace(1.0), seed=9, **kw)
        b = FlashCrowdTrace(ConstantTrace(1.0), seed=9, **kw)
        c = FlashCrowdTrace(ConstantTrace(1.0), seed=10, **kw)
        assert a.spikes == b.spikes
        assert a.spikes != c.spikes

    def test_spike_shapes_are_stream_independent(self):
        # spike k's shape comes from its own (seed, k) stream: shrinking
        # the horizon drops later spikes without perturbing earlier ones
        long = FlashCrowdTrace(
            ConstantTrace(1.0), horizon=7200.0, mean_gap_s=600.0, magnitude=5.0, seed=4
        )
        short = FlashCrowdTrace(
            ConstantTrace(1.0), horizon=1800.0, mean_gap_s=600.0, magnitude=5.0, seed=4
        )
        assert long.spikes[: len(short.spikes)] == short.spikes

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdTrace(ConstantTrace(1.0), horizon=0.0, mean_gap_s=10.0, magnitude=1.0)
        with pytest.raises(ValueError):
            FlashCrowdTrace(ConstantTrace(1.0), horizon=10.0, mean_gap_s=0.0, magnitude=1.0)
        with pytest.raises(ValueError):
            FlashCrowdTrace(ConstantTrace(1.0), horizon=10.0, mean_gap_s=10.0, magnitude=-1.0)
        with pytest.raises(ValueError):
            FlashCrowdTrace(
                ConstantTrace(1.0), horizon=10.0, mean_gap_s=10.0, magnitude=1.0, duration_s=0.0
            )
