"""Table III benchmark specs."""

import pytest

from repro.cluster.resource_model import DemandVector, SensitivityVector
from repro.workloads.functionbench import (
    BENCHMARKS,
    MicroserviceSpec,
    benchmark,
    benchmark_names,
)


def test_all_five_present():
    assert benchmark_names() == ("float", "matmul", "linpack", "dd", "cloud_stor")
    assert set(BENCHMARKS) == set(benchmark_names())


def test_unknown_benchmark_raises():
    with pytest.raises(KeyError):
        benchmark("nope")


def test_table_iii_cpu_ordering():
    """float/matmul/linpack high CPU sensitivity, dd medium, cloud_stor low."""
    cpu = {n: benchmark(n).sensitivity.cpu for n in benchmark_names()}
    for high in ("float", "matmul", "linpack"):
        assert cpu[high] >= 1.0
    assert cpu["float"] > cpu["dd"] > cpu["cloud_stor"]


def test_table_iii_io_ordering():
    """dd high disk IO, cloud_stor medium, CPU trio none."""
    io = {n: benchmark(n).sensitivity.io for n in benchmark_names()}
    assert io["dd"] > io["cloud_stor"] > io["float"]
    assert benchmark("dd").demand.io_mbps > benchmark("cloud_stor").demand.io_mbps


def test_table_iii_network_ordering():
    """only cloud_stor is network-sensitive."""
    net = {n: benchmark(n).sensitivity.net for n in benchmark_names()}
    assert net["cloud_stor"] > 1.0
    for other in ("float", "matmul", "linpack", "dd"):
        assert net[other] < 0.2
    assert benchmark("cloud_stor").demand.net_mbps > 50.0


def test_qos_above_exec_time():
    for name in benchmark_names():
        s = benchmark(name)
        assert s.qos_target > s.exec_time


def test_float_has_tightest_relative_qos():
    """The paper singles float out for its tight QoS target."""
    ratios = {n: benchmark(n).qos_target / benchmark(n).exec_time for n in benchmark_names()}
    assert ratios["float"] == min(ratios.values())


def test_spec_validation_qos():
    with pytest.raises(ValueError, match="does not even cover"):
        MicroserviceSpec(
            name="bad",
            exec_time=1.0,
            exec_sigma=0.1,
            demand=DemandVector(cpu=1.0),
            sensitivity=SensitivityVector(),
            qos_target=0.5,
        )


def test_spec_validation_exec():
    with pytest.raises(ValueError):
        MicroserviceSpec(
            name="bad",
            exec_time=0.0,
            exec_sigma=0.1,
            demand=DemandVector(cpu=1.0),
            sensitivity=SensitivityVector(),
            qos_target=1.0,
        )


def test_with_qos():
    s = benchmark("float").with_qos(9.0)
    assert s.qos_target == 9.0
    assert s.exec_time == benchmark("float").exec_time


def test_scaled():
    s = benchmark("matmul").scaled(2.0)
    assert s.exec_time == pytest.approx(0.7)
    assert s.qos_target == pytest.approx(3.2)
    with pytest.raises(ValueError):
        benchmark("matmul").scaled(0.0)


def test_memory_at_least_container_size():
    for name in benchmark_names():
        assert benchmark(name).memory_mb >= 256.0
