"""SampledTrace: replaying recorded rate curves."""

import numpy as np
import pytest

from repro.workloads.traces import SampledTrace


def test_linear_interpolation():
    t = SampledTrace([0.0, 10.0], [0.0, 10.0])
    assert t.rate(5.0) == pytest.approx(5.0)
    assert t.peak_rate == 10.0


def test_previous_interpolation():
    t = SampledTrace([0.0, 10.0, 20.0], [1.0, 5.0, 2.0], interpolation="previous")
    assert t.rate(9.99) == 1.0
    assert t.rate(10.0) == 5.0


def test_clamped_outside_range():
    t = SampledTrace([10.0, 20.0], [3.0, 7.0])
    assert t.rate(0.0) == 3.0
    assert t.rate(100.0) == 7.0


def test_periodic_repetition():
    t = SampledTrace([0.0, 50.0], [2.0, 8.0], period=100.0)
    assert t.rate(25.0) == pytest.approx(5.0)
    assert t.rate(125.0) == pytest.approx(5.0)  # one period later
    assert t.rate(75.0) == pytest.approx(8.0)  # repetition gap: hold last


def test_scale():
    t = SampledTrace([0.0, 1.0], [1.0, 2.0], scale=10.0)
    assert t.peak_rate == 20.0
    assert t.rate(0.0) == 10.0


def test_from_csv(tmp_path):
    path = tmp_path / "trace.csv"
    path.write_text("# time,qps\n0.0,1.0\n60.0,5.0\n120.0,2.0\n")
    t = SampledTrace.from_csv(path)
    assert t.rate(30.0) == pytest.approx(3.0)
    assert t.peak_rate == 5.0


def test_from_csv_bad_shape(tmp_path):
    path = tmp_path / "bad.csv"
    path.write_text("1.0\n2.0\n")
    with pytest.raises(ValueError):
        SampledTrace.from_csv(path)


def test_validation():
    with pytest.raises(ValueError):
        SampledTrace([0.0], [1.0])
    with pytest.raises(ValueError):
        SampledTrace([0.0, 0.0], [1.0, 1.0])
    with pytest.raises(ValueError):
        SampledTrace([0.0, 1.0], [1.0, -1.0])
    with pytest.raises(ValueError):
        SampledTrace([0.0, 1.0], [1.0, 1.0], interpolation="cubic")
    with pytest.raises(ValueError):
        SampledTrace([0.0, 10.0], [1.0, 1.0], period=5.0)
    with pytest.raises(ValueError):
        SampledTrace([0.0, 1.0], [1.0, 1.0], scale=0.0)


def test_drives_load_generation():
    from repro.sim.environment import Environment
    from repro.sim.rng import RngRegistry
    from repro.workloads.loadgen import LoadGenerator

    env = Environment()
    rng = RngRegistry(seed=1)
    queries = []
    trace = SampledTrace([0.0, 200.0], [20.0, 20.0])
    LoadGenerator(env, "svc", trace, queries.append, rng)
    env.run(until=200.0)
    assert len(queries) == pytest.approx(4000, abs=5 * np.sqrt(4000))
