"""The per-microservice governor: admission verdicts, signals, brownout."""

import pytest

from repro.overload import OverloadGovernor, OverloadPolicy


def make_governor(policy=None, qos=2.0, mu=1.0):
    policy = policy if policy is not None else OverloadPolicy()
    return OverloadGovernor(policy, qos_target=qos, mu_serverless=mu, mu_iaas=mu)


class TestConstruction:
    def test_rejects_bad_rates_and_targets(self):
        with pytest.raises(ValueError):
            make_governor(qos=0.0)
        with pytest.raises(ValueError):
            OverloadGovernor(OverloadPolicy(), 1.0, mu_serverless=0.0, mu_iaas=1.0)

    def test_disabled_policy_builds_no_breaker(self):
        gov = make_governor(OverloadPolicy.disabled())
        assert gov.breaker is None

    def test_breaker_can_be_disabled_independently(self):
        gov = make_governor(OverloadPolicy(breaker_enabled=False))
        assert gov.breaker is None
        assert gov.policy.enabled


class TestAdmission:
    def test_disabled_policy_admits_everything(self):
        gov = make_governor(OverloadPolicy.disabled())
        assert gov.admit_serverless(queued=10**6, busy=0, capacity=0, now=0.0) is None
        assert gov.admit_iaas(queued=10**6, busy=0, capacity=0, now=0.0) is None

    def test_full_queue_is_an_admission_drop(self):
        gov = make_governor(OverloadPolicy(max_queue_depth=4, admission_control=False))
        assert gov.admit_serverless(queued=4, busy=0, capacity=8, now=0.0) == "admission"
        assert gov.admit_serverless(queued=3, busy=0, capacity=8, now=0.0) is None

    def test_predicted_qos_miss_is_an_admission_drop(self):
        gov = make_governor(qos=2.0, mu=1.0)
        # deep backlog: predicted sojourn far beyond the 2 s target
        assert gov.admit_serverless(queued=50, busy=4, capacity=4, now=0.0) == "admission"
        assert gov.admit_serverless(queued=0, busy=0, capacity=4, now=0.0) is None

    def test_zero_capacity_is_an_admission_drop(self):
        gov = make_governor()
        assert gov.admit_serverless(queued=0, busy=0, capacity=0, now=0.0) == "admission"

    def test_brownout_drop_tail_uses_the_breaker_reason(self):
        policy = OverloadPolicy(
            breaker_min_samples=1,
            breaker_threshold=1.0,
            brownout_queue_depth=2,
            admission_control=False,
            max_queue_depth=256,
        )
        gov = make_governor(policy)
        gov.note_rejection("shed", 0.0)  # trips the 1-sample breaker
        assert gov.brownout(0.0)
        assert gov.admit_serverless(queued=2, busy=0, capacity=8, now=0.0) == "breaker"
        # below the tightened depth, brownout still admits
        assert gov.admit_serverless(queued=1, busy=0, capacity=8, now=0.0) is None


class TestShedding:
    def test_budget_comes_from_policy_and_target(self):
        gov = make_governor(OverloadPolicy(queue_wait_budget=0.5), qos=2.0)
        assert not gov.should_shed(0.99)
        assert gov.should_shed(1.01)

    def test_disabled_policy_never_sheds(self):
        gov = make_governor(OverloadPolicy.disabled())
        assert not gov.should_shed(10**6)


class TestSignals:
    def test_rejections_are_counted_by_reason(self):
        gov = make_governor()
        gov.note_rejection("admission", 0.0)
        gov.note_rejection("shed", 1.0)
        gov.note_rejection("shed", 2.0)
        assert gov.rejections == {"admission": 1, "shed": 2, "breaker": 0}
        assert gov.total_rejections == 3

    def test_unknown_reason_raises(self):
        with pytest.raises(ValueError):
            make_governor().note_rejection("crash", 0.0)

    def test_shed_rate_counts_the_trailing_horizon_only(self):
        gov = make_governor()
        for t in range(10):
            gov.note_rejection("shed", float(t))
        assert gov.shed_rate(10.0, horizon=60.0) == pytest.approx(10 / 60.0)
        # the burst has aged out a horizon later
        assert gov.shed_rate(100.0, horizon=60.0) == 0.0

    def test_shed_rate_rejects_bad_horizon(self):
        with pytest.raises(ValueError):
            make_governor().shed_rate(0.0, horizon=0.0)

    def test_switch_abort_is_weighted_breaker_evidence(self):
        policy = OverloadPolicy(
            switch_abort_weight=4, breaker_min_samples=4, breaker_threshold=1.0
        )
        gov = make_governor(policy)
        gov.note_switch_abort(0.0)
        assert gov.breaker is not None and gov.breaker.trips == 1

    def test_zero_weight_decouples_aborts_from_the_breaker(self):
        policy = OverloadPolicy(
            switch_abort_weight=0, breaker_min_samples=1, breaker_threshold=1.0
        )
        gov = make_governor(policy)
        gov.note_switch_abort(0.0)
        assert gov.breaker is not None and gov.breaker.trips == 0

    def test_outcomes_feed_the_breaker(self):
        policy = OverloadPolicy(breaker_min_samples=2, breaker_threshold=1.0)
        gov = make_governor(policy)
        gov.note_outcome(False, 0.0)
        gov.note_outcome(False, 1.0)
        assert gov.brownout(1.0)
