"""OverloadPolicy: validation, the disabled baseline, budget helpers."""

import dataclasses

import pytest

from repro.overload import DROP_REASONS, OverloadPolicy


class TestValidation:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("max_queue_depth", 0),
            ("admission_slack", 0.0),
            ("admission_slack", -1.0),
            ("queue_wait_budget", 0.0),
            ("queue_wait_budget", 1.5),
            ("breaker_window", 0),
            ("breaker_window_s", 0.0),
            ("breaker_min_samples", 0),
            ("breaker_threshold", 0.0),
            ("breaker_threshold", 1.5),
            ("breaker_dwell_s", 0.0),
            ("breaker_halfopen_samples", 0),
            ("switch_abort_weight", -1),
            ("brownout_queue_depth", -1),
        ],
    )
    def test_bad_knob_fails_at_construction(self, field, value):
        with pytest.raises(ValueError):
            OverloadPolicy(**{field: value})

    def test_min_samples_cannot_exceed_window(self):
        with pytest.raises(ValueError):
            OverloadPolicy(breaker_window=8, breaker_min_samples=9)

    def test_default_policy_is_valid_and_frozen(self):
        policy = OverloadPolicy()
        assert policy.enabled
        with pytest.raises(dataclasses.FrozenInstanceError):
            policy.enabled = False


class TestDisabled:
    def test_disabled_turns_every_mechanism_off(self):
        policy = OverloadPolicy.disabled()
        assert not policy.enabled
        assert not policy.admission_control
        assert not policy.shed_expired
        assert not policy.breaker_enabled

    def test_disabled_still_validates(self):
        # the zero policy reuses the same frozen dataclass, knobs intact
        policy = OverloadPolicy.disabled()
        assert policy.max_queue_depth >= 1


class TestHelpers:
    def test_wait_budget_scales_with_qos_target(self):
        policy = OverloadPolicy(queue_wait_budget=0.5)
        assert policy.wait_budget(2.0) == pytest.approx(1.0)

    def test_wait_budget_rejects_bad_target(self):
        with pytest.raises(ValueError):
            OverloadPolicy().wait_budget(0.0)

    def test_with_scale_replaces_fields(self):
        tightened = OverloadPolicy().with_scale(max_queue_depth=8)
        assert tightened.max_queue_depth == 8
        assert tightened.enabled

    def test_drop_reason_family_is_canonical(self):
        assert DROP_REASONS == ("crash", "admission", "shed", "breaker", "preempted")
