"""The circuit breaker: trip, deterministic dwell, half-open probes."""

import pytest

from repro.overload import BreakerState, CircuitBreaker, OverloadPolicy


def make_breaker(**overrides):
    defaults = dict(
        breaker_window=16,
        breaker_window_s=100.0,
        breaker_min_samples=4,
        breaker_threshold=0.5,
        breaker_dwell_s=10.0,
        breaker_halfopen_samples=4,
    )
    defaults.update(overrides)
    return CircuitBreaker(OverloadPolicy(**defaults))


def feed(breaker, now, outcomes):
    for bad in outcomes:
        breaker.record(now, bad=bad)


class TestTrip:
    def test_trips_at_threshold_with_enough_samples(self):
        breaker = make_breaker()
        feed(breaker, 1.0, [True, True, False, True])
        assert breaker.state is BreakerState.OPEN
        assert breaker.trips == 1
        assert breaker.opened_at == 1.0

    def test_no_trip_below_min_samples(self):
        breaker = make_breaker()
        feed(breaker, 1.0, [True, True, True])  # 100% bad but only 3 samples
        assert breaker.state is BreakerState.CLOSED

    def test_no_trip_below_threshold(self):
        breaker = make_breaker()
        feed(breaker, 1.0, [True, False, False, False])
        assert breaker.state is BreakerState.CLOSED

    def test_old_samples_age_out_of_the_window(self):
        breaker = make_breaker(breaker_window_s=5.0)
        feed(breaker, 0.0, [True, True, True])
        # the early badness is stale by the time fresh samples arrive
        feed(breaker, 50.0, [False, False, False, True])
        assert breaker.state is BreakerState.CLOSED

    def test_weighted_outcome_counts_multiply(self):
        breaker = make_breaker()
        breaker.record(1.0, bad=True, weight=4)
        assert breaker.state is BreakerState.OPEN

    def test_nonpositive_weight_is_ignored(self):
        breaker = make_breaker()
        breaker.record(1.0, bad=True, weight=0)
        assert breaker.state is BreakerState.CLOSED


class TestOpen:
    def test_open_ignores_outcomes_until_dwell(self):
        breaker = make_breaker()
        feed(breaker, 1.0, [True] * 4)
        feed(breaker, 5.0, [False] * 50)  # inside the dwell: not evidence
        assert breaker.state is BreakerState.OPEN
        assert breaker.is_open(5.0)

    def test_half_open_edge_is_stamped_at_dwell_expiry(self):
        breaker = make_breaker()
        feed(breaker, 1.0, [True] * 4)
        # consult long after the dwell elapsed; the transition must be
        # stamped at opened_at + dwell (11.0), not at consultation time
        assert not breaker.is_open(40.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert breaker.transitions[-1] == (11.0, "half_open")

    def test_transition_log_is_consultation_order_independent(self):
        early, late = make_breaker(), make_breaker()
        feed(early, 1.0, [True] * 4)
        feed(late, 1.0, [True] * 4)
        early.is_open(11.0)  # polled right at the dwell boundary
        late.is_open(500.0)  # polled much later
        assert early.transitions == late.transitions


class TestHalfOpen:
    def _half_open(self):
        breaker = make_breaker()
        feed(breaker, 1.0, [True] * 4)
        breaker.advance(20.0)
        assert breaker.state is BreakerState.HALF_OPEN
        return breaker

    def test_healthy_probe_batch_closes(self):
        breaker = self._half_open()
        feed(breaker, 20.0, [False] * 4)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.closes == 1
        assert breaker.total_opens == 1

    def test_bad_probe_batch_reopens(self):
        breaker = self._half_open()
        feed(breaker, 20.0, [True, True, False, False])
        assert breaker.state is BreakerState.OPEN
        assert breaker.reopens == 1
        assert breaker.total_opens == 2
        assert breaker.opened_at == 20.0  # dwell restarts from the reopen

    def test_close_resets_the_window_history(self):
        breaker = self._half_open()
        feed(breaker, 20.0, [False] * 4)
        # one bad outcome after closing must not trip on stale history
        breaker.record(21.0, bad=True)
        assert breaker.state is BreakerState.CLOSED

    def test_full_lifecycle_is_recorded_in_order(self):
        breaker = self._half_open()
        feed(breaker, 20.0, [False] * 4)
        assert [state for _, state in breaker.transitions] == [
            "open",
            "half_open",
            "closed",
        ]
        times = [t for t, _ in breaker.transitions]
        assert times == sorted(times)
