"""The M/M/N admission predictor: conditional wait and deadline checks."""

import math

import pytest

from repro.overload import conditional_wait, meets_deadline, predicted_sojourn


class TestConditionalWait:
    def test_empty_queue_with_free_server_waits_nothing(self):
        assert conditional_wait(queued=0, busy=2, servers=4, mu=1.0) == 0.0

    def test_saturated_servers_wait_scales_with_backlog(self):
        # Erlang(k+1, n*mu) mean: (queued + 1) / (n * mu)
        assert conditional_wait(queued=3, busy=4, servers=4, mu=0.5) == pytest.approx(4 / 2.0)

    def test_backlog_predicts_wait_even_below_capacity(self):
        # a nonempty queue means FIFO order delays the new arrival no
        # matter how many servers are nominally free right now
        assert conditional_wait(queued=10, busy=1, servers=8, mu=1.0) > 0.0

    def test_wait_is_monotone_in_backlog(self):
        waits = [conditional_wait(q, 4, 4, 1.0) for q in range(0, 20, 4)]
        assert waits == sorted(waits)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(queued=0, busy=0, servers=0, mu=1.0),
            dict(queued=0, busy=0, servers=1, mu=0.0),
            dict(queued=-1, busy=0, servers=1, mu=1.0),
            dict(queued=0, busy=-1, servers=1, mu=1.0),
        ],
    )
    def test_invalid_inputs_raise(self, kwargs):
        with pytest.raises(ValueError):
            conditional_wait(**kwargs)


class TestPredictedSojourn:
    def test_sojourn_is_wait_plus_service(self):
        wait = conditional_wait(queued=4, busy=2, servers=2, mu=1.0)
        assert predicted_sojourn(queued=4, busy=2, servers=2, mu=1.0) == pytest.approx(
            wait + 1.0
        )


class TestMeetsDeadline:
    def test_idle_system_meets_a_generous_deadline(self):
        assert meets_deadline(queued=0, busy=0, servers=2, mu=1.0, qos_target=2.0)

    def test_deep_backlog_misses_the_deadline(self):
        assert not meets_deadline(queued=100, busy=2, servers=2, mu=1.0, qos_target=2.0)

    def test_slack_tightens_the_verdict(self):
        kwargs = dict(queued=2, busy=2, servers=2, mu=1.0, qos_target=2.5)
        assert meets_deadline(**kwargs, slack=1.0)
        assert not meets_deadline(**kwargs, slack=3.0)

    def test_invalid_target_and_slack_raise(self):
        with pytest.raises(ValueError):
            meets_deadline(0, 0, 1, 1.0, qos_target=0.0)
        with pytest.raises(ValueError):
            meets_deadline(0, 0, 1, 1.0, qos_target=1.0, slack=0.0)


class TestFleetScaleAdmission:
    """Large-N edge cases exposed by the log-space Eq. 1 fix.

    Admission runs in the runtime hot path; at fleet scale it sees
    server counts in the tens of thousands and backlogs in the millions.
    These must stay finite, monotone and try/except-free.
    """

    def test_wait_finite_at_fleet_scale(self):
        w = conditional_wait(queued=1_000_000, busy=100_000, servers=100_000, mu=1.0)
        assert math.isfinite(w)
        assert w == pytest.approx(1_000_001 / 100_000)

    def test_wait_monotone_in_servers_at_scale(self):
        waits = [
            conditional_wait(queued=50_000, busy=n, servers=n, mu=2.0)
            for n in (1_000, 10_000, 100_000)
        ]
        assert waits == sorted(waits, reverse=True)

    def test_meets_deadline_large_n_both_sides(self):
        n = 100_000
        # tiny backlog relative to drain rate: admitted
        assert meets_deadline(queued=100, busy=n, servers=n, mu=1.0, qos_target=1.5)
        # backlog worth ~10 service times: rejected
        assert not meets_deadline(queued=10 * n, busy=n, servers=n, mu=1.0, qos_target=1.5)
