"""Committed-baseline mechanism: load, apply, ratchet, write."""

from __future__ import annotations

import json

import pytest

from repro.analysis.baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import Violation


def v(path="src/m.py", line=1, rule="SIM001"):
    return Violation(path=path, line=line, col=0, rule_id=rule, message="msg")


def entry(path="src/m.py", rule="SIM001", count=1):
    return BaselineEntry(path=path, rule=rule, count=count, justification="accepted")


def test_apply_demotes_up_to_count_in_order():
    violations = [v(line=1), v(line=2), v(line=3)]
    errors, baselined, stale = apply_baseline(violations, {("src/m.py", "SIM001"): entry(count=2)})
    assert [x.line for x in baselined] == [1, 2]
    assert [x.line for x in errors] == [3]
    assert stale == []


def test_unmatched_entries_are_reported_stale():
    errors, baselined, stale = apply_baseline([v()], {("src/m.py", "SIM001"): entry(count=3)})
    assert errors == [] and len(baselined) == 1
    assert len(stale) == 1 and "shrink or delete" in stale[0]


def test_rule_mismatch_is_not_demoted():
    errors, baselined, _ = apply_baseline([v(rule="SIM002")], {("src/m.py", "SIM001"): entry()})
    assert len(errors) == 1 and baselined == []


def test_write_then_load_roundtrip(tmp_path):
    path = tmp_path / "baseline.json"
    count = write_baseline([v(line=1), v(line=2), v(rule="SIM005")], path, "legacy debt")
    assert count == 2  # (path, rule) pairs, not findings
    loaded = load_baseline(path)
    assert loaded[("src/m.py", "SIM001")].count == 2
    assert loaded[("src/m.py", "SIM005")].justification == "legacy debt"


@pytest.mark.parametrize(
    "payload",
    [
        "not json{",
        json.dumps({"version": 99, "entries": []}),
        json.dumps({"version": 1, "entries": [{"path": "p", "rule": "R"}]}),
        json.dumps(
            {"version": 1, "entries": [{"path": "p", "rule": "R", "count": 0, "justification": "j"}]}
        ),
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"path": "p", "rule": "R", "count": 1, "justification": "j"},
                    {"path": "p", "rule": "R", "count": 2, "justification": "j"},
                ],
            }
        ),
    ],
)
def test_malformed_baselines_raise(tmp_path, payload):
    path = tmp_path / "baseline.json"
    path.write_text(payload, encoding="utf-8")
    with pytest.raises(BaselineError):
        load_baseline(path)
