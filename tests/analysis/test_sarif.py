"""SARIF 2.1.0 emission: required schema keys and level mapping."""

from __future__ import annotations

import json

from repro.analysis.engine import ALL_RULES
from repro.analysis.rules import Violation
from repro.analysis.sarif import SARIF_VERSION, to_sarif


def v(rule="SIM001", line=3, col=4):
    return Violation(path="src/repro/core/m.py", line=line, col=col, rule_id=rule, message="msg")


def test_required_log_and_run_keys():
    doc = to_sarif(ALL_RULES, [v()])
    assert doc["$schema"].endswith("sarif-2.1.0.json")
    assert doc["version"] == SARIF_VERSION == "2.1.0"
    (run,) = doc["runs"]
    driver = run["tool"]["driver"]
    assert driver["name"] == "simlint"
    assert {r["id"] for r in driver["rules"]} == {r.id for r in ALL_RULES}
    for descriptor in driver["rules"]:
        assert descriptor["shortDescription"]["text"]
        assert descriptor["fullDescription"]["text"]
    assert "SRCROOT" in run["originalUriBaseIds"]


def test_result_location_shape_and_column_base():
    doc = to_sarif(ALL_RULES, [v(line=3, col=4)])
    (result,) = doc["runs"][0]["results"]
    assert result["ruleId"] == "SIM001"
    assert result["level"] == "error"
    assert result["message"]["text"] == "msg"
    location = result["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/core/m.py"
    assert location["artifactLocation"]["uriBaseId"] == "SRCROOT"
    # SARIF columns are 1-based; Violation.col is 0-based
    assert location["region"] == {"startLine": 3, "startColumn": 5}


def test_level_mapping_and_baseline_state():
    doc = to_sarif(ALL_RULES, [v()], warnings=[v(rule="SIM016")], baselined=[v(rule="ARCH004")])
    results = doc["runs"][0]["results"]
    levels = {r["ruleId"]: r["level"] for r in results}
    assert levels == {"SIM001": "error", "SIM016": "warning", "ARCH004": "note"}
    (baselined,) = [r for r in results if r["ruleId"] == "ARCH004"]
    assert baselined["baselineState"] == "unchanged"


def test_document_is_json_serializable():
    doc = to_sarif(ALL_RULES, [v()], warnings=[v(rule="SIM016")], baselined=[v(rule="SIM002")])
    assert json.loads(json.dumps(doc)) == doc
