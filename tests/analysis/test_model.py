"""Module-table construction: name resolution, import collection, exports."""

from __future__ import annotations

import ast
from pathlib import Path

from repro.analysis.model import ImportRecord, ModuleRecord, collect_imports, module_exports, module_name

FIXTURES = Path(__file__).parent / "fixtures"


def test_module_name_resolves_through_init_chain():
    path = FIXTURES / "arch" / "good" / "repro" / "sim" / "impl.py"
    assert module_name(path) == "repro.sim.impl"


def test_module_name_of_init_is_the_package():
    path = FIXTURES / "arch" / "good" / "repro" / "sim" / "__init__.py"
    assert module_name(path) == "repro.sim"


def test_module_name_outside_a_package_is_none(tmp_path):
    loose = tmp_path / "loose.py"
    loose.write_text("x = 1\n", encoding="utf-8")
    assert module_name(loose) is None


def test_collect_imports_records_toplevel_and_nested():
    source = (
        "import os\n"
        "from repro.sim import api_fn\n"
        "if True:\n"
        "    import json\n"
        "def f():\n"
        "    from repro.core import helpers\n"
    )
    tree = ast.parse(source)
    records = collect_imports(tree, "repro.cluster.nodes", False)
    by_module = {record.module: record for record in records}
    assert by_module["os"].toplevel
    assert by_module["repro.sim"].toplevel
    assert by_module["repro.sim"].names == ("api_fn",)
    # lexically module-scope even though conditionally executed
    assert by_module["json"].toplevel
    # function-level imports are recorded but not top-level
    assert not by_module["repro.core"].toplevel


def test_collect_imports_resolves_relative_levels():
    tree = ast.parse("from . import sibling\nfrom ..other import thing\n")
    records = collect_imports(tree, "repro.sim.impl", False)
    modules = {record.module for record in records}
    assert "repro.sim" in modules
    assert "repro.other" in modules


def test_collect_imports_relative_from_init():
    tree = ast.parse("from .impl import api_fn\n")
    (record,) = collect_imports(tree, "repro.sim", True)
    assert record.module == "repro.sim.impl"
    assert record.names == ("api_fn",)


def test_module_exports_reads_static_all():
    tree = ast.parse("__all__ = ['a', 'b']\n")
    assert module_exports(tree) == ("a", "b")
    assert module_exports(ast.parse("x = 1\n")) is None


def test_records_roundtrip_through_json():
    record = ModuleRecord(
        path="src/repro/sim/impl.py",
        module="repro.sim.impl",
        imports=(ImportRecord("repro.sim", ("api_fn",), 3, 0, True),),
        exports=("api_fn",),
        is_init=False,
    )
    restored = ModuleRecord.from_json(record.path, record.to_json())
    assert restored == record
