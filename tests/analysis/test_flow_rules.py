"""Dataflow rules SIM012-SIM015 over the flow fixture corpus."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.engine import SCOPE_KERNEL, SCOPE_TEST, analyze_source

FLOW = Path(__file__).parent / "fixtures" / "flow"

#: fixtures are analyzed under a virtual kernel path so the path-scoped
#: checks (kernel packages, rng exemption) see sim-kernel territory
KERNEL_PATH = "src/repro/sim/fixture_under_test.py"


def flow_ids(fixture: Path, path: str = KERNEL_PATH):
    analysis = analyze_source(fixture.read_text(encoding="utf-8"), path, scope=SCOPE_KERNEL)
    return {v.rule_id for v in analysis.violations}


@pytest.mark.parametrize(
    ("fixture", "rule"),
    [
        ("sim012_factory_indirection.py", "SIM012"),
        ("sim013_stream_escape.py", "SIM013"),
        ("sim014_set_accumulation.py", "SIM014"),
        ("sim015_env_read.py", "SIM015"),
    ],
)
def test_bad_fixture_fires_its_rule(fixture, rule):
    assert rule in flow_ids(FLOW / "bad" / fixture)


def test_sim013_catches_all_three_escapes():
    source = (FLOW / "bad" / "sim013_stream_escape.py").read_text(encoding="utf-8")
    analysis = analyze_source(source, KERNEL_PATH, scope=SCOPE_KERNEL)
    assert sum(v.rule_id == "SIM013" for v in analysis.violations) == 3


def test_sim015_counts_each_host_read_once():
    source = (FLOW / "bad" / "sim015_env_read.py").read_text(encoding="utf-8")
    analysis = analyze_source(source, KERNEL_PATH, scope=SCOPE_KERNEL)
    assert sum(v.rule_id == "SIM015" for v in analysis.violations) == 3


def test_good_fixture_is_flow_clean():
    ids = flow_ids(FLOW / "good" / "clean_flow.py")
    assert not ids & {"SIM012", "SIM013", "SIM014", "SIM015"}


def test_kernel_rules_do_not_fire_outside_kernel_paths():
    source = (FLOW / "bad" / "sim014_set_accumulation.py").read_text(encoding="utf-8")
    analysis = analyze_source(source, "src/repro/experiments/driver.py", scope=SCOPE_KERNEL)
    assert not any(v.rule_id in ("SIM014", "SIM015") for v in analysis.violations)


def test_sim012_exempt_inside_rng_module():
    source = (FLOW / "bad" / "sim012_factory_indirection.py").read_text(encoding="utf-8")
    analysis = analyze_source(source, "src/repro/sim/rng.py", scope=SCOPE_KERNEL)
    assert not any(v.rule_id == "SIM012" for v in analysis.violations)


def test_test_scope_drops_flow_rules():
    source = (FLOW / "bad" / "sim012_factory_indirection.py").read_text(encoding="utf-8")
    analysis = analyze_source(source, KERNEL_PATH, scope=SCOPE_TEST)
    assert analysis.violations == []


def test_rebinding_clears_the_factory_tag():
    source = "import numpy as np\nmake = np.random.default_rng\nmake = int\nvalue = make(3)\n"
    analysis = analyze_source(source, KERNEL_PATH, scope=SCOPE_KERNEL)
    assert not any(v.rule_id == "SIM012" for v in analysis.violations)
