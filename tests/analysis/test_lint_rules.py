"""Self-test corpus for the sim-kernel linter.

Each SIM rule has one bad fixture that must be flagged (and make the CLI
exit non-zero) and compliant code that must stay clean, including the
path exemptions and the inline ``# simlint: ignore[...]`` escape hatch.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import lint_file, lint_source, main
from repro.analysis.rules import RULES

FIXTURES = Path(__file__).parent / "fixtures"

BAD_FIXTURES = {
    "SIM001": FIXTURES / "bad" / "sim001_wall_clock.py",
    "SIM002": FIXTURES / "bad" / "sim002_stray_rng.py",
    "SIM003": FIXTURES / "bad" / "sim003_time_equality.py",
    "SIM004": FIXTURES / "bad" / "sim004_cancelled_reschedule.py",
    "SIM005": FIXTURES / "bad" / "sim005_mutable_default.py",
    "SIM006": FIXTURES / "bad" / "sim006_bare_except.py",
    "SIM007": FIXTURES / "bad" / "sim007_unfrozen_config.py",
    "SIM008": FIXTURES / "bad" / "sim" / "sim008_missing_annotation.py",
    "SIM009": FIXTURES / "bad" / "sim009_fault_prob_constant.py",
    "SIM010": FIXTURES / "bad" / "serverless" / "sim010_unbounded_queue.py",
    "SIM011": FIXTURES / "bad" / "experiments" / "sim011_closure_submit.py",
    "SIM017": FIXTURES / "bad" / "graph" / "sim017_retry_storm.py",
}

GOOD_FIXTURES = [
    FIXTURES / "good" / "clean_module.py",
    FIXTURES / "good" / "justified_ignores.py",
    FIXTURES / "good" / "fault_plan_probs.py",
    FIXTURES / "good" / "serverless" / "bounded_queues.py",
    FIXTURES / "good" / "experiments" / "picklable_submit.py",
    FIXTURES / "good" / "graph" / "budgeted_retry.py",
    FIXTURES / "allowed" / "experiments" / "__main__.py",
    FIXTURES / "allowed" / "sim" / "rng.py",
]


def test_every_rule_has_a_bad_fixture():
    assert set(BAD_FIXTURES) == {rule.id for rule in RULES}


@pytest.mark.parametrize("rule_id", sorted(BAD_FIXTURES))
def test_bad_fixture_trips_exactly_its_rule(rule_id):
    violations = lint_file(BAD_FIXTURES[rule_id])
    assert violations, f"{rule_id} fixture produced no violations"
    assert {v.rule_id for v in violations} == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(BAD_FIXTURES))
def test_bad_fixture_fails_the_cli(rule_id, capsys):
    assert main([str(BAD_FIXTURES[rule_id])]) == 1
    out = capsys.readouterr().out
    assert rule_id in out


@pytest.mark.parametrize("path", GOOD_FIXTURES, ids=lambda p: p.name)
def test_good_fixture_is_clean(path):
    assert lint_file(path) == []


def test_cli_green_on_good_corpus():
    assert main([str(FIXTURES / "good"), str(FIXTURES / "allowed")]) == 0


def test_violation_render_format():
    (violation,) = lint_file(BAD_FIXTURES["SIM006"])
    rendered = violation.render()
    assert rendered.startswith(str(BAD_FIXTURES["SIM006"]))
    assert ":7:" in rendered and "SIM006" in rendered


def test_blanket_ignore_silences_every_rule():
    source = "def f(x=[]):  # simlint: ignore\n    return x\n"
    assert lint_source(source, "mod.py") == []


def test_targeted_ignore_only_silences_named_rule():
    source = "import time\n\n\ndef f(x=[]):  # simlint: ignore[SIM005]\n    return time.time()\n"
    violations = lint_source(source, "mod.py")
    assert {v.rule_id for v in violations} == {"SIM001"}


def test_ignore_on_other_line_does_not_apply():
    source = "# simlint: ignore[SIM005]\ndef f(x=[]):\n    return x\n"
    assert {v.rule_id for v in lint_source(source, "mod.py")} == {"SIM005"}


def test_reassignment_clears_cancelled_tracking():
    source = (
        "def replan(env, timer):\n"
        "    timer.cancel()\n"
        "    timer = env.timeout(1.0)\n"
        "    timer.succeed(None)\n"
    )
    assert lint_source(source, "mod.py") == []


def test_import_aliases_are_resolved():
    source = (
        "from numpy.random import default_rng\n"
        "from time import perf_counter as pc\n"
        "\n"
        "\n"
        "def f() -> float:\n"
        "    return default_rng().normal() + pc()\n"
    )
    rule_ids = sorted(v.rule_id for v in lint_source(source, "mod.py"))
    assert rule_ids == ["SIM001", "SIM002"]


def test_fault_prob_on_plan_field_is_not_flagged():
    source = (
        "from dataclasses import dataclass\n"
        "\n"
        "\n"
        "@dataclass(frozen=True)\n"
        "class Plan:\n"
        "    crash_prob: float = 0.01\n"
        "\n"
        "\n"
        "def gate(plan: Plan, draw: float) -> bool:\n"
        "    return draw < plan.crash_prob\n"
    )
    assert lint_source(source, "mod.py") == []


def test_local_fault_prob_binding_is_not_flagged():
    source = (
        "def gate(plan, draw: float) -> bool:\n"
        "    crash_prob = plan.crash_prob\n"
        "    return draw < crash_prob\n"
    )
    assert lint_source(source, "mod.py") == []


def test_unbounded_queue_is_path_scoped_to_platform_packages():
    source = "from collections import deque\n\nqueue = deque()\n"
    assert lint_source(source, "src/repro/core/queueing.py") == []
    assert {v.rule_id for v in lint_source(source, "src/repro/iaas/service.py")} == {"SIM010"}


def test_bounded_deque_in_platform_package_is_clean():
    source = "from collections import deque\n\nqueue = deque(maxlen=64)\n"
    assert lint_source(source, "src/repro/iaas/service.py") == []


def test_executor_submission_is_path_scoped_to_experiments():
    source = (
        "def fan_out(pool, requests):\n"
        "    run = lambda r: r\n"
        "    return [pool.submit(run, r) for r in requests]\n"
    )
    assert lint_source(source, "src/repro/workloads/loadgen.py") == []
    assert {v.rule_id for v in lint_source(source, "src/repro/experiments/executor.py")} == {
        "SIM011"
    }


def test_module_level_def_submission_is_clean():
    source = (
        "def execute(request):\n"
        "    return request\n"
        "\n"
        "\n"
        "def fan_out(pool, requests):\n"
        "    return [pool.submit(execute, r) for r in requests]\n"
    )
    assert lint_source(source, "src/repro/experiments/executor.py") == []


def test_retry_loop_rule_is_path_scoped_to_call_path_packages():
    source = (
        "def call(dispatch, request):\n"
        "    while True:\n"
        "        if not dispatch(request):\n"
        "            continue\n"
        "        return True\n"
    )
    assert lint_source(source, "src/repro/workloads/loadgen.py") == []
    assert {v.rule_id for v in lint_source(source, "src/repro/graph/orchestrator.py")} == {
        "SIM017"
    }


def test_budgeted_retry_loop_is_clean():
    source = (
        "def call(dispatch, request, budget: int):\n"
        "    attempts = 0\n"
        "    while True:\n"
        "        attempts += 1\n"
        "        if not dispatch(request) and attempts < budget:\n"
        "            continue\n"
        "        return True\n"
    )
    assert lint_source(source, "src/repro/graph/orchestrator.py") == []


def test_event_loop_without_continue_is_not_a_retry_loop():
    source = (
        "def drain(queue_get):\n"
        "    while True:\n"
        "        item = queue_get()\n"
        "        if item is None:\n"
        "            break\n"
    )
    assert lint_source(source, "src/repro/graph/orchestrator.py") == []


def test_delegation_wrapper_is_not_recursion():
    source = (
        "class Facade:\n"
        "    def invoke(self, name):\n"
        "        return self.pool.invoke(name)\n"
    )
    assert lint_source(source, "src/repro/serverless/platform.py") == []


def test_depth_capped_recursion_is_clean():
    source = (
        "def fan_out(node, depth: int, max_depth: int):\n"
        "    if depth >= max_depth:\n"
        "        return\n"
        "    for child in node.children:\n"
        "        fan_out(child, depth + 1, max_depth)\n"
    )
    assert lint_source(source, "src/repro/graph/orchestrator.py") == []
    uncapped = (
        "def fan_out(node):\n"
        "    for child in node.children:\n"
        "        fan_out(child)\n"
    )
    assert {v.rule_id for v in lint_source(uncapped, "src/repro/graph/orchestrator.py")} == {
        "SIM017"
    }


def test_time_comparison_against_string_is_not_flagged():
    source = "def f(mode_time: str) -> bool:\n    return mode_time == 'iaas'\n"
    assert lint_source(source, "mod.py") == []


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.id in out


def test_cli_missing_path_is_an_error(capsys):
    assert main(["does/not/exist.py"]) == 2


def test_syntax_error_is_a_hard_error(tmp_path, capsys):
    broken = tmp_path / "broken.py"
    broken.write_text("def f(:\n")
    assert main([str(broken)]) == 2


def test_repo_src_tree_is_clean():
    src = Path(__file__).resolve().parents[2] / "src"
    assert main([str(src)]) == 0, "src/ must satisfy every SIM rule (see failures above)"
