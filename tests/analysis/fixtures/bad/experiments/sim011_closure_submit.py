"""SIM011 corpus: unpicklable callables handed to an executor.

A ProcessPoolExecutor pickles its task by qualified name; every form
below dies at submit time on the parallel path while working fine under
the serial (workers=1) fallback — exactly the bug class SIM011 exists to
catch before it ships.
"""

from concurrent.futures import ProcessPoolExecutor


def sweep(requests):
    def run_one(request):
        return request.seed

    scale = 2.0
    run_scaled = lambda request: request.seed * scale  # noqa: E731

    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(run_one, request) for request in requests]
        scaled = list(pool.map(run_scaled, requests))
        inline = pool.submit(lambda: 0)
    return futures, scaled, inline
