"""BAD: bare except swallows kernel control-flow exceptions (SIM006)."""


def drain(env) -> None:
    try:
        env.run()
    except:
        pass
