"""BAD: public kernel function without a return annotation (SIM008).

Lives under a ``sim/`` path segment so the annotation rule applies,
mirroring ``src/repro/sim/``.
"""


def advance(env, delay: float):
    return env.timeout(delay)


class Clock:
    def __init__(self, start: float):
        self.now_value = start
