"""BAD: config dataclass that is not frozen (SIM007)."""

from dataclasses import dataclass


@dataclass
class MeterConfig:
    qps: float = 1.0
    window: int = 30
