"""BAD: constructs RNGs outside sim/rng.py (SIM002)."""

import random

import numpy as np


def jitter() -> float:
    gen = np.random.default_rng()
    return float(gen.normal()) + random.random()
