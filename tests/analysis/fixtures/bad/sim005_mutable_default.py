"""BAD: mutable default argument shared across calls (SIM005)."""


def record(sample: float, history: list = []) -> list:
    history.append(sample)
    return history
