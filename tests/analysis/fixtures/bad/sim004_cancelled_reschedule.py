"""BAD: re-arms / re-schedules an Event after cancelling it (SIM004)."""


def replan(env, timer, completion):
    timer.cancel()
    timer.succeed(None)


def requeue(env, event):
    event.cancel()
    env.schedule(event)
