"""BAD: reads the wall clock inside simulation code (SIM001)."""

import time
from datetime import datetime


def measure_latency() -> float:
    start = time.time()
    time.sleep(0.01)
    stamp = datetime.now()
    _ = stamp
    return time.perf_counter() - start
