"""Deliberately broken: unbounded retry loop + uncapped recursive fan-out."""


def call_with_retries(dispatch, request):
    while True:
        ok = dispatch(request)
        if not ok:
            continue
        return ok


def fan_out(node, dispatch):
    dispatch(node)
    for child in node.children:
        fan_out(child, dispatch)
