"""BAD: fault probability as a module constant in control flow (SIM009)."""

CRASH_PROB = 0.01
ACK_LOSS_RATE: float = 0.15
PREEMPTION_PROB = 0.3
SPIKE_RATE: float = 0.05


def maybe_crash(draw: float) -> bool:
    if draw < CRASH_PROB:
        return True
    return draw < ACK_LOSS_RATE


def maybe_reclaim(draw: float) -> bool:
    if draw < PREEMPTION_PROB:
        return True
    return draw < SPIKE_RATE
