"""BAD: fault probability as a module constant in control flow (SIM009)."""

CRASH_PROB = 0.01
ACK_LOSS_RATE: float = 0.15


def maybe_crash(draw: float) -> bool:
    if draw < CRASH_PROB:
        return True
    return draw < ACK_LOSS_RATE
