"""BAD: unbounded request queues inside a serverless/ package (SIM010).

Every binding here grows without limit under open-loop overload; the
overload layer's bounded-queue invariant requires an explicit depth
bound (or an inline justification) on all of them.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List

pending_invocations: List[int] = []


@dataclass
class FunctionBacklog:
    queue: Deque[int] = field(default_factory=deque)
    waiting: List[int] = field(default_factory=list)


class Dispatcher:
    def __init__(self) -> None:
        self.backlog: Deque[int] = deque()
        self.retry_queue = deque(maxlen=None)
        self.pending = list()
