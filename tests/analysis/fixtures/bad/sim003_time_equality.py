"""BAD: exact equality on simulated-time expressions (SIM003)."""


def is_due(now: float, deadline: float, t_start: float) -> bool:
    if now == deadline:
        return True
    return t_start != 0.0
