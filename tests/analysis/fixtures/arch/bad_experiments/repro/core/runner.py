"""Kernel module importing the experiments driver layer."""


def describe(run: int) -> str:
    from repro.experiments.util import label
    return label(run)
