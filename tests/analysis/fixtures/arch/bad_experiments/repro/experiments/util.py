def label(run: int) -> str:
    return f"run-{run}"
