"""Half of an import cycle with repro.faults."""

from repro.faults import plan


def allocate() -> None:
    plan.schedule()
