"""Other half of the cycle back into repro.cluster."""

from repro.cluster import alloc


def schedule() -> None:
    alloc.allocate()
