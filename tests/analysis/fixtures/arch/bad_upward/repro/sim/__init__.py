"""Kernel package that illegally reaches up the stack."""
