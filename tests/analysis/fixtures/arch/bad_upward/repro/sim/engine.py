"""Upward import: sim is layer 0, core is layer 5."""

from repro.core import helpers


def run() -> None:
    helpers.noop()
