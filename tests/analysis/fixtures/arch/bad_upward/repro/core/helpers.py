def noop() -> None:
    return None
