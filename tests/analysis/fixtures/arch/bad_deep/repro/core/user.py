"""Deep import that bypasses the repro.sim facade."""

from repro.sim.impl import api_fn


def use() -> int:
    return api_fn()
