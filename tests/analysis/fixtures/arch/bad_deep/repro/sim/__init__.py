"""Facade re-exporting the sim kernel's public API."""

from repro.sim.impl import api_fn

__all__ = ["api_fn"]
