def api_fn() -> int:
    return 1
