"""Downward import through the facade: cluster (1) -> sim (0)."""

from repro.sim import api_fn


def capacity() -> int:
    return api_fn()
