"""Downward imports only: core (5) -> cluster (1) -> sim (0)."""

from repro.cluster import nodes
from repro.sim import api_fn


def use() -> int:
    return api_fn() + nodes.capacity()
