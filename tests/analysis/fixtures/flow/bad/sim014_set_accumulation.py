"""Bad: set iteration feeding float accumulation in kernel code (SIM014)."""

import math


def total_latency(samples) -> float:
    pending = set(samples)
    total = 0.0
    for value in pending:
        total += value
    return total


def fsum_over_set(samples) -> float:
    return math.fsum({s * 2.0 for s in samples})
