"""Bad: RNG constructed through a bound factory reference (SIM012)."""

import numpy as np

make_rng = np.random.default_rng


def sample(seed: int) -> float:
    rng = make_rng(seed)
    return float(rng.random())
