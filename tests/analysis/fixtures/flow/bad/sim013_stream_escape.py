"""Bad: RNG / registry stream escaping into module and class state (SIM013)."""

import random

SHARED = random.Random(7)


class Sampler:
    @classmethod
    def install(cls, registry) -> None:
        cls.stream = registry.stream("arrivals")


def leak(registry) -> None:
    global ESCAPED
    ESCAPED = registry.stream("service")
