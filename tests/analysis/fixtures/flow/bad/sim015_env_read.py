"""Bad: host-environment reads inside kernel code (SIM015)."""

import os
import sys


def configured_seed() -> int:
    return int(os.environ.get("REPRO_SEED", "0"))


def cli_override() -> str:
    return sys.argv[1]


def getenv_read() -> str:
    return os.getenv("REPRO_MODE", "strict")
