"""Good: determinism-safe counterparts of the SIM012-SIM015 fixtures."""

import math


def sample(registry) -> float:
    stream = registry.stream("arrivals")
    return float(stream.random())


class Sampler:
    def __init__(self, registry) -> None:
        self.stream = registry.stream("arrivals")


def total_latency(samples) -> float:
    total = 0.0
    for value in sorted(set(samples)):
        total += value
    return total


def fsum_sorted(samples) -> float:
    return math.fsum(sorted({s * 2.0 for s in samples}))


def configured_seed(config) -> int:
    return config.seed
