"""GOOD: compliant counterparts of every bad fixture.

Simulated time flows through the environment, randomness through the
registry, no exact time equality, no rescheduling of cancelled events,
no mutable defaults, no bare except, frozen config dataclass.
"""

from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class RetryConfig:
    attempts: int = 3
    backoff: float = 0.5


def is_due(now: float, deadline: float) -> bool:
    return now >= deadline


def record(sample: float, history: Optional[List[float]] = None) -> List[float]:
    if history is None:
        history = []
    history.append(sample)
    return history


def jitter(registry) -> float:
    return float(registry.stream("jitter").normal())


def replan(env, timer, delay: float):
    timer.cancel()
    timer = env.timeout(delay)
    return timer


def drain(env) -> None:
    try:
        env.run()
    except RuntimeError:
        pass
