"""GOOD: intentional violations silenced by the inline escape hatch."""

import time

import numpy as np


def host_profile() -> float:
    # host-side profiling hook, never inside a simulation
    return time.time()  # simlint: ignore[SIM001]


def scratch_rng() -> float:
    # throwaway generator in a module-level example, explicitly seeded
    gen = np.random.default_rng(7)  # simlint: ignore[SIM002]
    return float(gen.normal())
