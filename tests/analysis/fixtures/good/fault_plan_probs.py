"""GOOD: fault probabilities as plan fields, drawn via a named stream.

The compliant counterpart of the SIM009 fixture: the rates live on a
frozen plan dataclass (class scope, sweepable per run) and the gate
draws from a named registry stream, so the injection sequence is fully
reproducible from the root seed.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class ProbePlan:
    crash_prob: float = 0.0
    ack_loss_prob: float = 0.0
    preemption_prob: float = 0.0
    spike_rate: float = 0.0


def maybe_crash(plan: ProbePlan, registry, service: str) -> bool:
    if plan.crash_prob <= 0.0:
        return False
    return bool(registry.stream(f"faults/crash/{service}").uniform() < plan.crash_prob)


def maybe_reclaim(plan: ProbePlan, registry, service: str) -> bool:
    if plan.preemption_prob <= 0.0:
        return False
    return bool(
        registry.stream(f"faults/preemption/{service}").uniform() < plan.preemption_prob
    )
