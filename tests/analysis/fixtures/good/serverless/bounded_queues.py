"""GOOD: platform queues that satisfy SIM010 in a serverless/ package.

Bounded deques pass outright; an unbounded deque passes only with an
inline justification naming the mechanism that enforces the bound; and
non-queue bindings are out of scope however they are built.
"""

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Tuple


@dataclass
class BoundedBacklog:
    queue: Deque[int] = field(default_factory=lambda: deque(maxlen=256))


class Dispatcher:
    def __init__(self, depth: int) -> None:
        self.backlog: Deque[int] = deque(maxlen=depth)
        self.retry_queue: Deque[int] = deque((), depth)
        # bound enforced at enqueue by OverloadPolicy.max_queue_depth
        self.waiting: Deque[int] = deque()  # simlint: ignore[SIM010]
        self.samples: List[Tuple[float, int]] = []  # not a queue name
