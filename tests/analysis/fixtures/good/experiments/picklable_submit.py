"""SIM011-clean corpus: module-level callables crossing the pool boundary.

``execute`` pickles by qualified name, so submitting it is fine; the
bare builtin ``map`` stays in-process and is exempt; a lambda that never
reaches an executor is ordinary local code.
"""

from concurrent.futures import ProcessPoolExecutor


def execute(request):
    return request


def fan_out(requests, workers):
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [pool.submit(execute, request) for request in requests]
        return [future.result() for future in futures]


def in_process(values):
    # the builtin map never leaves this process: not an executor handoff
    key = lambda v: str(v)  # noqa: E731
    return sorted(map(str, values), key=key)
