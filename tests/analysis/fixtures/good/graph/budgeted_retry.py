"""Compliant call-path code: budgeted retries and depth-capped fan-out."""


def call_with_retries(dispatch, request, max_attempts: int):
    attempts = 0
    while True:
        attempts += 1
        ok = dispatch(request)
        if not ok and attempts < max_attempts:
            continue
        return ok


def fan_out(node, dispatch, depth: int, max_depth: int):
    if depth >= max_depth:
        return
    dispatch(node)
    for child in node.children:
        fan_out(child, dispatch, depth + 1, max_depth)
