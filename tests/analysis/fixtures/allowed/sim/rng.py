"""GOOD: sim/rng.py itself may construct numpy RNGs (SIM002 path exemption)."""

import numpy as np


def make_stream(seed: int) -> np.random.Generator:
    return np.random.default_rng(np.random.SeedSequence(entropy=seed))
