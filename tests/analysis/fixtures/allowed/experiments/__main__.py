"""GOOD: the CLI driver may time the host run (SIM001 path exemption)."""

import time


def timed_run() -> float:
    t0 = time.time()
    return time.time() - t0
