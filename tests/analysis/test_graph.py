"""Import-graph algorithms: SCCs, cycles, topological proof of acyclicity."""

from __future__ import annotations

from repro.analysis.graph import cycles, edge_list, strongly_connected_components, topological_order


def test_sccs_isolate_the_cycle():
    graph = {"a": {"b"}, "b": {"c"}, "c": {"a"}, "d": {"a"}}
    components = strongly_connected_components(graph)
    assert ("a", "b", "c") in components
    assert ("d",) in components


def test_cycles_reports_only_nontrivial_components():
    graph = {"a": {"b"}, "b": {"a"}, "c": set()}
    assert cycles(graph) == [("a", "b")]
    assert cycles({"x": {"y"}, "y": set()}) == []


def test_self_loop_is_a_cycle():
    assert cycles({"a": {"a"}}) == [("a",)]


def test_topological_order_is_dependencies_first():
    graph = {"top": {"mid"}, "mid": {"base"}, "base": set()}
    order = topological_order(graph)
    assert order is not None
    assert order.index("base") < order.index("mid") < order.index("top")


def test_topological_order_none_on_cycle():
    assert topological_order({"a": {"b"}, "b": {"a"}}) is None


def test_deterministic_output():
    graph = {"b": {"a"}, "c": {"a"}, "a": set()}
    assert topological_order(graph) == topological_order(dict(reversed(list(graph.items()))))
    assert edge_list(graph) == [("b", "a"), ("c", "a")]
