"""ARCH layering rules over the fixture trees and the real source tree."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.engine import run_engine
from repro.analysis.rules_arch import LAYERS

FIXTURES = Path(__file__).parent / "fixtures" / "arch"
SRC = Path(__file__).parent.parent.parent / "src"


def arch_findings(tree: str):
    report = run_engine([FIXTURES / tree])
    return [v for v in report.errors if v.rule_id.startswith("ARCH")], report


def test_upward_import_fires_arch001():
    findings, _ = arch_findings("bad_upward")
    assert any(
        v.rule_id == "ARCH001" and "sim" in v.message and "core" in v.message
        for v in findings
    )
    assert all("engine.py" in v.path for v in findings if v.rule_id == "ARCH001")


def test_cycle_fires_arch002_and_breaks_the_proof():
    findings, report = arch_findings("bad_cycle")
    arch002 = [v for v in findings if v.rule_id == "ARCH002"]
    assert len(arch002) == 1  # one finding per cycle, not per edge
    assert "cluster" in arch002[0].message and "faults" in arch002[0].message
    assert report.package_order is None


def test_function_level_experiments_import_fires_arch003():
    findings, _ = arch_findings("bad_experiments")
    arch003 = [v for v in findings if v.rule_id == "ARCH003"]
    assert len(arch003) == 1
    assert "runner.py" in arch003[0].path
    # the import is function-level: ARCH003 still sees it, the
    # toplevel-only layering rule does not double-report it
    assert not any(v.rule_id == "ARCH001" and "runner.py" in v.path for v in findings)


def test_deep_import_bypassing_facade_fires_arch004():
    findings, _ = arch_findings("bad_deep")
    arch004 = [v for v in findings if v.rule_id == "ARCH004"]
    assert len(arch004) == 1
    assert "user.py" in arch004[0].path
    assert "from repro.sim import api_fn" in arch004[0].message
    # the facade itself may deep-import its own package
    assert not any("__init__.py" in v.path for v in arch004)


def test_good_tree_is_clean_with_an_acyclicity_proof():
    findings, report = arch_findings("good")
    assert findings == []
    assert report.errors == []
    order = report.package_order
    assert order is not None
    assert order.index("sim") < order.index("cluster") < order.index("core")


def test_real_source_tree_layering_holds():
    """The repo's own DAG: acyclic, downward, experiments never imported."""
    report = run_engine([SRC])
    arch = [v for v in report.errors if v.rule_id.startswith("ARCH")]
    assert arch == [], [v.render() for v in arch]
    assert report.package_order is not None
    position = {name: i for i, name in enumerate(report.package_order)}
    for src_pkg, dst_pkg in (("core", "sim"), ("experiments", "core"), ("serverless", "sim")):
        assert position[dst_pkg] < position[src_pkg]


def test_every_repo_package_is_registered():
    for name in ("sim", "core", "cluster", "serverless", "iaas", "experiments"):
        assert name in LAYERS
