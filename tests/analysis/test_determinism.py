"""End-to-end determinism: the property every SIM rule exists to protect.

Two runs of the same scenario with the same seed, each in a fresh
:class:`Environment`, must produce per-query latencies that are identical
down to the last bit (``float.hex`` equality, stricter than ``==`` in
intent: it also distinguishes ``-0.0`` and surfaces the exact
representation in failure output).  A different seed must change them —
otherwise the "determinism" would just be insensitivity to the RNG.
"""

from __future__ import annotations

from tests.cluster.golden_scenario import SEED, run_golden_scenario


def test_same_seed_bit_identical_latencies():
    first = [lat.hex() for lat in run_golden_scenario(SEED)]
    second = [lat.hex() for lat in run_golden_scenario(SEED)]
    assert first == second


def test_other_seed_also_self_reproduces():
    alt = SEED + 1
    assert [x.hex() for x in run_golden_scenario(alt)] == [
        x.hex() for x in run_golden_scenario(alt)
    ]


def test_different_seed_changes_latencies():
    base = [lat.hex() for lat in run_golden_scenario(SEED)]
    other = [lat.hex() for lat in run_golden_scenario(SEED + 1)]
    assert base != other
