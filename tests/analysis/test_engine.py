"""Engine behavior: discovery, scopes, suppression spans, SIM016, cache."""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.engine import (
    SCOPE_KERNEL,
    SCOPE_TEST,
    analyze_source,
    iter_python_files,
    run_engine,
)
from repro.analysis.lint import main

FIXTURES = Path(__file__).parent / "fixtures"


# -- discovery ---------------------------------------------------------------


def test_walk_prunes_skip_dirs_and_fixture_corpus(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "ok.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "junk.py").write_text("import time\n", encoding="utf-8")
    (tmp_path / "analysis" / "fixtures").mkdir(parents=True)
    (tmp_path / "analysis" / "fixtures" / "bad.py").write_text("x = 1\n", encoding="utf-8")
    found = [p.name for p, _ in iter_python_files([tmp_path])]
    assert found == ["ok.py"]


def test_walk_demotes_tests_to_test_scope(tmp_path):
    (tmp_path / "src").mkdir()
    (tmp_path / "src" / "mod.py").write_text("x = 1\n", encoding="utf-8")
    (tmp_path / "tests").mkdir()
    (tmp_path / "tests" / "test_mod.py").write_text("x = 1\n", encoding="utf-8")
    scopes = {p.name: scope for p, scope in iter_python_files([tmp_path])}
    assert scopes == {"mod.py": SCOPE_KERNEL, "test_mod.py": SCOPE_TEST}


def test_explicit_file_argument_keeps_kernel_scope(tmp_path):
    target = tmp_path / "tests" / "helper.py"
    target.parent.mkdir()
    target.write_text("x = 1\n", encoding="utf-8")
    ((path, scope),) = list(iter_python_files([target]))
    assert path == target
    assert scope == SCOPE_KERNEL


def test_test_scope_keeps_leak_rules_drops_kernel_conventions(tmp_path):
    tests_dir = tmp_path / "tests"
    tests_dir.mkdir()
    (tests_dir / "test_leaky.py").write_text(
        "import time\n\n\ndef helper(acc=[]):\n    acc.append(time.time())\n    return acc\n",
        encoding="utf-8",
    )
    report = run_engine([tmp_path])
    ids = {v.rule_id for v in report.errors}
    assert "SIM005" in ids  # mutable default leaks across tests
    assert "SIM001" not in ids  # wall-clock reads are fine in tests


# -- suppression spans -------------------------------------------------------


def test_directive_inside_multiline_statement_suppresses(tmp_path):
    source = (
        "import numpy as np\n"
        "\n"
        "rng = np.random.default_rng(\n"
        "    1234  # simlint: ignore[SIM002]\n"
        ")\n"
    )
    analysis = analyze_source(source, "src/repro/sim/mod.py", scope=SCOPE_KERNEL)
    assert not any(v.rule_id == "SIM002" for v in analysis.violations)
    assert analysis.suppressed.get("SIM002") == 1


def test_directive_on_def_line_covers_decorator_findings():
    source = (
        "import numpy as np\n"
        "\n"
        "\n"
        "def register(rng):\n"
        "    def wrap(fn):\n"
        "        return fn\n"
        "    return wrap\n"
        "\n"
        "\n"
        "@register(np.random.default_rng())\n"
        "def f() -> None:  # simlint: ignore[SIM002]\n"
        "    return None\n"
    )
    analysis = analyze_source(source, "src/repro/sim/mod.py", scope=SCOPE_KERNEL)
    assert not any(v.rule_id == "SIM002" for v in analysis.violations)


def test_directive_outside_the_statement_span_does_not_apply():
    source = "# simlint: ignore[SIM005]\n\n\ndef f(x=[]):\n    return x\n"
    analysis = analyze_source(source, "mod.py", scope=SCOPE_KERNEL)
    assert any(v.rule_id == "SIM005" for v in analysis.violations)


def test_directive_on_header_does_not_blanket_the_body():
    source = (
        "import numpy as np\n"
        "\n"
        "\n"
        "def f() -> None:  # simlint: ignore[SIM002]\n"
        "    rng = np.random.default_rng()\n"
        "    return None\n"
    )
    analysis = analyze_source(source, "src/repro/sim/mod.py", scope=SCOPE_KERNEL)
    assert any(v.rule_id == "SIM002" for v in analysis.violations)


# -- SIM016 stale-ignore audit -----------------------------------------------


def test_stale_directive_is_a_warning_by_default(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1  # simlint: ignore[SIM005]\n", encoding="utf-8")
    report = run_engine([tmp_path])
    assert report.errors == []
    assert [v.rule_id for v in report.warnings] == ["SIM016"]


def test_strict_ignores_escalates_stale_directives(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("x = 1  # simlint: ignore\n", encoding="utf-8")
    report = run_engine([tmp_path], strict_ignores=True)
    assert [v.rule_id for v in report.errors] == ["SIM016"]


def test_used_directive_is_not_stale(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f(x=[]):  # simlint: ignore[SIM005]\n    return x\n", encoding="utf-8")
    report = run_engine([tmp_path], strict_ignores=True)
    assert report.errors == []
    assert report.warnings == []


def test_directive_mention_in_docstring_is_not_a_directive(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(
        '"""Silence with ``# simlint: ignore[SIM005]`` on the statement."""\nx = 1\n',
        encoding="utf-8",
    )
    report = run_engine([tmp_path], strict_ignores=True)
    assert report.errors == []


# -- incremental cache -------------------------------------------------------


def _write_tree(tmp_path):
    src = tmp_path / "pkg"
    src.mkdir()
    (src / "clean.py").write_text("x = 1\n", encoding="utf-8")
    (src / "dirty.py").write_text("import time\ntime.time()\n", encoding="utf-8")
    return src


def test_cache_reuses_unchanged_files_and_invalidates_on_edit(tmp_path):
    src = _write_tree(tmp_path)
    cache = tmp_path / "cache.json"

    cold = run_engine([src], cache_path=cache)
    assert cold.files_analyzed == 2 and cold.files_reused == 0
    assert [v.rule_id for v in cold.errors] == ["SIM001"]

    warm = run_engine([src], cache_path=cache)
    assert warm.files_analyzed == 0 and warm.files_reused == 2
    assert [v.render() for v in warm.errors] == [v.render() for v in cold.errors]

    (src / "dirty.py").write_text("import time\n", encoding="utf-8")
    edited = run_engine([src], cache_path=cache)
    assert edited.files_analyzed == 1 and edited.files_reused == 1
    assert edited.errors == []


def test_cache_survives_corruption(tmp_path):
    src = _write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("not json{", encoding="utf-8")
    report = run_engine([src], cache_path=cache)
    assert report.files_analyzed == 2
    assert json.loads(cache.read_text(encoding="utf-8"))["version"] >= 1


def test_parallel_jobs_match_serial_results():
    tree = FIXTURES / "arch" / "bad_cycle"
    serial = run_engine([tree], jobs=1)
    parallel = run_engine([tree], jobs=2)
    assert [v.render() for v in serial.errors] == [v.render() for v in parallel.errors]


# -- CLI ---------------------------------------------------------------------


def test_cli_exit_codes_and_text_output(tmp_path, capsys):
    src = _write_tree(tmp_path)
    assert main([str(src / "clean.py")]) == 0
    assert main([str(src)]) == 1
    captured = capsys.readouterr()
    assert "SIM001" in captured.out
    assert "1 violation found" in captured.err


def test_cli_broken_file_exits_2(tmp_path, capsys):
    bad = tmp_path / "broken.py"
    bad.write_text("def (:\n", encoding="utf-8")
    assert main([str(bad)]) == 2
    assert "cannot parse" in capsys.readouterr().err


def test_cli_baseline_roundtrip(tmp_path, capsys):
    src = _write_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    assert main([str(src), "--write-baseline", str(baseline), "--justification", "legacy"]) == 0
    capsys.readouterr()
    assert main([str(src), "--baseline", str(baseline)]) == 0
    captured = capsys.readouterr()
    assert "baselined:" in captured.out
