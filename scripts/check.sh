#!/usr/bin/env bash
# The single development gate: every PR must pass this locally and in CI.
#
#   1. simlint  — the repo's own AST linter for sim-kernel invariants
#                 (SIM001..SIM009, see DESIGN.md §7).  Always runs; pure
#                 stdlib, so there is no environment where it can't.
#   2. mypy     — strict typing on repro.sim / repro.core /
#                 repro.serverless (config in pyproject.toml).  Skipped
#                 with a warning when mypy is not installed.
#   3. ruff     — baseline style layer (config in pyproject.toml).
#                 Skipped with a warning when ruff is not installed.
#   4. chaos    — zero-fault determinism gate: a chaos scenario with all
#                 fault rates scaled to zero must be float.hex-identical
#                 to a run with no fault layer at all (DESIGN.md §8).
#   5. pytest   — the quick test tier (slow end-to-end benches excluded;
#                 run `pytest` with no -m filter for the full tier).
#
# Usage: scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== simlint: simulation-kernel invariants =="
python -m repro.analysis.lint src

echo "== mypy: strict typing gate =="
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy
else
    echo "warning: mypy not installed; skipping the typing gate" >&2
fi

echo "== ruff: baseline style =="
if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    ruff check src
else
    echo "warning: ruff not installed; skipping the style gate" >&2
fi

echo "== chaos: zero-fault plan is bit-identical to no fault layer =="
python - <<'EOF'
from repro.experiments.runner import run_amoeba
from repro.experiments.scenarios import chaos_scenario, default_scenario

plain = run_amoeba(default_scenario("matmul", day=600.0, seed=0))
zero = run_amoeba(chaos_scenario("matmul", fault_scale=0.0, day=600.0, seed=0))
assert zero.faults is not None and zero.faults.total_injected == 0

def hexes(result):
    return [x.hex() for x in result.services["matmul"].metrics.latencies.values()]

if hexes(zero) != hexes(plain):
    raise SystemExit("zero-fault chaos run diverged from the no-fault-layer baseline")
print("zero-fault chaos run is bit-identical to the baseline")
EOF

echo "== pytest: quick tier =="
python -m pytest -x -q -m "not slow"

echo "== all gates green =="
