#!/usr/bin/env bash
# The single development gate: every PR must pass this locally and in CI.
#
#   1. simlint  — the repo's own whole-program analyzer: sim-kernel
#                 invariants SIM001..SIM017 plus the ARCH001..ARCH004
#                 import-graph layering rules (DESIGN.md §7 and §12)
#                 over src/ + tests/ + benchmarks/, with stale-ignore
#                 auditing (--strict-ignores), the committed baseline
#                 (simlint-baseline.json), a SARIF artifact
#                 (simlint.sarif), and a cold/warm incremental-cache
#                 guard: the warm re-lint must be >= 5x faster than the
#                 cold run.  Always runs; pure stdlib, so there is no
#                 environment where it can't.
#   2. mypy     — strict typing on repro.sim / repro.core /
#                 repro.serverless / repro.overload (config in
#                 pyproject.toml).  Skipped with a warning when mypy is
#                 not installed.
#   3. ruff     — baseline style layer (config in pyproject.toml).
#                 Skipped with a warning when ruff is not installed.
#   4. chaos    — zero-fault determinism gate: a chaos scenario with all
#                 fault rates scaled to zero must be float.hex-identical
#                 to a run with no fault layer at all (DESIGN.md §8).
#   5. overload — two gates on the overload layer (DESIGN.md §9): a
#                 disabled OverloadPolicy must be float.hex-identical to
#                 a run with no overload layer at all, and an enabled
#                 policy under 2.5x offered load + faults must shed,
#                 hold admitted p95 inside QoS, and finish (no wedge).
#   6. executor — parallel-identity gate (DESIGN.md §10): a workers=4
#                 fan-out of a chaos batch must be float.hex-identical
#                 to the workers=1 serial batch.  The chaos/overload
#                 smokes above also route through run_many, so they
#                 exercise whatever REPRO_WORKERS the environment sets
#                 (CI runs the whole gate under REPRO_WORKERS=2).
#   7. queueing — large-N Erlang regression gate: Eq. 1–5 must stay
#                 finite and reference-accurate at N in the thousands
#                 (the log-space rewrite; DESIGN.md §11).
#   8. fleet    — fleet smoke (DESIGN.md §11): a small fleet sweep must
#                 be float.hex-identical across worker counts and every
#                 member must complete queries.
#   9. dag      — call-graph gates (DESIGN.md §13): a single-node DAG
#                 with deadline propagation off must be
#                 float.hex-identical to the equivalent flat scenario;
#                 and the retry-storm gate — at 2.5x overload on a
#                 4-deep chain with a mid-chain brownout, the budgeted
#                 resilience stack must hold the end-to-end violation
#                 fraction under its bound while the naive unbounded
#                 client measurably blows up, with both legs
#                 float.hex-deterministic across worker counts.
#  10. spot     — spot-preemption gates (DESIGN.md §14): attaching spot
#                 capacity with a zero-preemption FaultPlan must leave
#                 the golden scenario float.hex-identical; and the
#                 preemption-storm gate — at spot fraction 0.5 with a
#                 guaranteed reclamation, the graceful drain protocol
#                 must keep QoS violations (drops included) at or under
#                 10% while the no-notice hard kill exceeds 25%, with
#                 both legs float.hex-deterministic across worker
#                 counts.
#  11. pytest   — the quick test tier (slow end-to-end benches excluded;
#                 run `pytest` with no -m filter for the full tier).
#
# Usage: scripts/check.sh
set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== simlint: whole-program invariants + architecture =="
python - <<'EOF'
import tempfile
import time
from pathlib import Path

from repro.analysis.lint import main

TARGETS = ["src", "tests", "benchmarks"]
FLAGS = ["--strict-ignores", "--baseline", "simlint-baseline.json"]

# the gating run: persistent cache (CI restores it), SARIF artifact,
# per-rule summary table
rc = main(
    TARGETS + FLAGS
    + ["--cache", ".simlint_cache.json", "--stats",
       "--format", "sarif", "--output", "simlint.sarif"]
)
if rc != 0:
    raise SystemExit(rc)

# the incremental-cache guard: a genuinely cold run against a throwaway
# cache, then a warm re-run, which must be >= 5x faster
with tempfile.TemporaryDirectory() as tmp:
    scratch = str(Path(tmp) / "cache.json")
    t0 = time.perf_counter()
    cold_rc = main(TARGETS + FLAGS + ["--cache", scratch])
    t1 = time.perf_counter()
    warm_rc = main(TARGETS + FLAGS + ["--cache", scratch])
    t2 = time.perf_counter()
cold, warm = t1 - t0, t2 - t1
print(f"simlint: cold {cold:.3f}s, warm {warm:.3f}s ({cold / warm:.1f}x)")
if cold_rc != 0 or warm_rc != 0:
    raise SystemExit(cold_rc or warm_rc)
if warm * 5 > cold:
    raise SystemExit(
        f"incremental cache regression: warm re-lint {warm:.3f}s is not "
        f">=5x faster than the cold run {cold:.3f}s"
    )
EOF

echo "== mypy: strict typing gate =="
if python -c "import mypy" >/dev/null 2>&1; then
    python -m mypy
else
    echo "warning: mypy not installed; skipping the typing gate" >&2
fi

echo "== ruff: baseline style =="
if python -c "import ruff" >/dev/null 2>&1 || command -v ruff >/dev/null 2>&1; then
    ruff check src
else
    echo "warning: ruff not installed; skipping the style gate" >&2
fi

echo "== chaos: zero-fault plan is bit-identical to no fault layer =="
python - <<'EOF'
from repro.experiments.executor import RunRequest, run_many
from repro.experiments.scenarios import chaos_scenario, default_scenario

plain, zero = run_many(
    [
        RunRequest(system="amoeba", scenario=default_scenario("matmul", day=600.0, seed=0)),
        RunRequest(system="amoeba", scenario=chaos_scenario("matmul", fault_scale=0.0, day=600.0, seed=0)),
    ],
    cache=False,
)
assert zero.faults is not None and zero.faults.total_injected == 0

def hexes(result):
    return [x.hex() for x in result.services["matmul"].metrics.latencies.values()]

if hexes(zero) != hexes(plain):
    raise SystemExit("zero-fault chaos run diverged from the no-fault-layer baseline")
print("zero-fault chaos run is bit-identical to the baseline")
EOF

echo "== overload: disabled policy is bit-identical + enabled policy protects =="
python - <<'EOF'
from dataclasses import replace

from repro.experiments.executor import RunRequest, run_many
from repro.experiments.scenarios import default_scenario, overload_scenario
from repro.overload import OverloadPolicy

def hexes(result):
    return [x.hex() for x in result.services["matmul"].metrics.latencies.values()]

base = default_scenario("matmul", day=600.0, seed=0)
policy = OverloadPolicy()
plain, wired, stormy = run_many(
    [
        RunRequest(system="amoeba", scenario=base),
        RunRequest(system="amoeba", scenario=replace(base, overload=OverloadPolicy.disabled())),
        RunRequest(
            system="amoeba",
            scenario=overload_scenario("matmul", lambda_factor=2.5, policy=policy, day=600.0, seed=0),
        ),
    ],
    cache=False,
)
assert wired.overload is not None and not wired.overload.policy_enabled
assert wired.overload.total_rejections == 0
if hexes(wired) != hexes(plain):
    raise SystemExit("disabled-policy run diverged from the no-overload-layer baseline")
print("disabled-policy run is bit-identical to the baseline")

m = stormy.services["matmul"].metrics
ov = stormy.overload
assert ov is not None and ov.policy_enabled
assert sum(ov.drops.values()) > 0, "expected the overload policy to shed something"
assert m.completed > 0, "expected surviving goodput under overload"
p95 = m.latency_percentile(95)
if p95 > m.qos_target:
    raise SystemExit(f"admitted p95 {p95:.3f}s exceeds QoS {m.qos_target:g}s under overload")
assert ov.peak_queue_depth_serverless <= policy.max_queue_depth
assert ov.peak_queue_depth_iaas <= policy.max_queue_depth
print(
    f"overload smoke: p95 {p95:.3f}s <= QoS {m.qos_target:g}s, "
    f"drops {ov.drops}, breaker {ov.breaker_state} "
    f"(opens {ov.breaker_trips + ov.breaker_reopens})"
)
EOF

echo "== executor: workers=4 batch is bit-identical to workers=1 =="
python - <<'EOF'
from repro.experiments.executor import RunRequest, run_many
from repro.experiments.scenarios import chaos_scenario

requests = [
    RunRequest(
        system="amoeba",
        scenario=chaos_scenario("matmul", fault_scale=scale, day=300.0, seed=0),
    )
    for scale in (0.0, 1.0)
]

def hexes(results):
    return [
        [x.hex() for x in r.services["matmul"].metrics.latencies.values()]
        for r in results
    ]

serial = run_many(requests, workers=1, cache=False)
parallel = run_many(requests, workers=4, cache=False)
if hexes(serial) != hexes(parallel):
    raise SystemExit("workers=4 fan-out diverged from the workers=1 serial batch")
print("workers=4 fan-out is float.hex-identical to the serial batch")
EOF

echo "== queueing: large-N Erlang math stays finite and accurate =="
python - <<'EOF'
from decimal import Decimal, getcontext

from repro.core.queueing import (
    discriminant_lambda, erlang_pin, min_servers, wait_quantile,
)

getcontext().prec = 60

def decimal_pin(n, rho):
    # Eq. 1-2: pi_N = (a^N/N!) * pi_0 with the Eq. 1 normalization
    a = Decimal(n) * Decimal(rho)
    s = Decimal(0)
    term = Decimal(1)
    for k in range(1, n):
        term = term * a / k
        s += term
    t_n = term * a / n
    return float(t_n / (1 + s + t_n / (1 - Decimal(rho))))

for n in (700, 2000, 5000):
    got, want = erlang_pin(n, 0.95), decimal_pin(n, 0.95)
    rel = abs(got - want) / want
    if rel > 1e-10:
        raise SystemExit(f"erlang_pin({n}, 0.95) off by {rel:.2e} vs Decimal reference")
# the ISSUE 6 repros: both used to raise `math domain error`
assert erlang_pin(1000, 0.95) > 0.0
assert wait_quantile(0.95, 1900.0, 1.0, 2000) == 0.0  # P{W>0} < 5%: inside QoS
assert discriminant_lambda(1.0, 2000, 1.2) > 0.0
assert min_servers(1900.0, 1.0, 1.2, 0.95, n_cap=4096) >= 1900
print("large-N Erlang gate: Eq. 1-5 finite and within 1e-10 of the Decimal reference")
EOF

echo "== fleet: sweep smoke, worker-count invariant =="
python - <<'EOF'
from repro.experiments.fleet import fleet_sweep

def hexes(figure):
    return [
        [x.hex() if isinstance(x, float) else x for x in row]
        for row in figure.extras["per_service"]
    ]

serial = fleet_sweep(services=5, daily_queries=2.5e5, day=120.0, seed=0,
                     workers=1, cache=False)
fanned = fleet_sweep(services=5, daily_queries=2.5e5, day=120.0, seed=0,
                     workers=2, cache=False)
if hexes(serial) != hexes(fanned):
    raise SystemExit("fleet sweep diverged between workers=1 and workers=2")
assert all(row[2] > 0 for row in serial.extras["per_service"]), "a fleet member completed nothing"
print(f"fleet smoke: {serial.extras['total_completed']} completions, "
      "workers=2 float.hex-identical to serial")
EOF

echo "== dag: single-node flat identity + retry-storm acceptance =="
python - <<'EOF'
from repro.experiments.dag import VIOLATION_BOUND, storm_comparison
from repro.experiments.graphrun import run_graph
from repro.experiments.runner import run_amoeba
from repro.experiments.scenarios import Scenario, sized_reservoir
from repro.graph import GraphScenario, chain_topology
from repro.workloads import ConstantTrace, benchmark

# -- gate 1: a single-node DAG (propagation off, no retries) IS the flat
#    scenario — same RNG stream names, same construction order
day, rate, limit = 120.0, 3.0, 8
trace = ConstantTrace(rate)
reservoir = sized_reservoir(trace, day)
graph_run = run_graph(GraphScenario(
    name="identity", topology=chain_topology(1, "float"), trace=trace,
    e2e_target=benchmark("float").qos_target, duration=day, seed=5,
    retry=None, propagate_deadlines=False, iaas_peak_rate=rate,
    reservoir=reservoir, limits=(limit,),
))
flat_run = run_amoeba(Scenario(
    foreground=benchmark("float"), trace=trace, limit=limit, background=(),
    duration=day, seed=5, iaas_peak_rate=rate, reservoir=reservoir,
))

def hexes(result):
    return [x.hex() for x in result.services["float"].metrics.latencies.values()]

if hexes(graph_run) != hexes(flat_run):
    raise SystemExit("single-node DAG diverged from the equivalent flat scenario")
print("single-node DAG is float.hex-identical to the flat scenario")

# -- gate 2: retry-storm acceptance at 2.5x overload, 4-deep chain,
#    mid-chain brownout — budgeted bounded, naive measurably not, both
#    deterministic across worker counts
serial = storm_comparison(depth=4, seed=0, day=120.0, workers=1, cache=False)
fanned = storm_comparison(depth=4, seed=0, day=120.0, workers=2, cache=False)
for leg in ("budgeted", "naive"):
    a, b = serial[leg], fanned[leg]
    if [x.hex() for x in a.latencies] != [x.hex() for x in b.latencies]:
        raise SystemExit(f"{leg} leg diverged between workers=1 and workers=2")
    if a.retries != b.retries:
        raise SystemExit(f"{leg} retry accounting diverged across worker counts")
budgeted, naive = serial["budgeted"], serial["naive"]
if budgeted.violation_fraction > VIOLATION_BOUND:
    raise SystemExit(
        f"budgeted stack violated QoS on {budgeted.violation_fraction:.1%} of "
        f"completed requests (bound {VIOLATION_BOUND:.0%})"
    )
if naive.violation_fraction < 0.25:
    raise SystemExit(
        f"naive baseline only violated {naive.violation_fraction:.1%} — the "
        "storm gate is no longer discriminating"
    )
if naive.retries["attempted"] < 5 * max(1, budgeted.retries["attempted"]):
    raise SystemExit(
        f"naive retries ({naive.retries['attempted']}) are not >=5x the "
        f"budgeted stack's ({budgeted.retries['attempted']}) — no storm"
    )
print(
    f"retry-storm gate: budgeted viol {budgeted.violation_fraction:.1%} <= "
    f"{VIOLATION_BOUND:.0%}, naive viol {naive.violation_fraction:.1%}, "
    f"retries {budgeted.retries['attempted']} vs {naive.retries['attempted']} "
    f"({naive.retries['attempted'] / max(1, budgeted.retries['attempted']):.0f}x), "
    "both legs worker-count invariant"
)
EOF

echo "== spot: zero-preemption identity + preemption-storm acceptance =="
python - <<'EOF'
from dataclasses import replace

from repro.cluster import SpotSpec
from repro.experiments.runner import run_amoeba
from repro.experiments.scenarios import default_scenario
from repro.experiments.spot import (
    GRACEFUL_VIOLATION_BOUND,
    HARDKILL_VIOLATION_FLOOR,
    preemption_comparison,
)
from repro.faults import FaultPlan

# -- gate 1: zero-preemption bit-identity — attaching spot capacity and
#    the new fault fields at probability 0.0 must leave the golden
#    scenario's latency stream float.hex-identical (no stray draws, no
#    stray events that reorder the sim)
sc = default_scenario("matmul", day=600.0, seed=0)
plain = run_amoeba(sc)
spotted = run_amoeba(replace(sc, spot=SpotSpec(fraction=0.5), faults=FaultPlan()))

def hexes(result):
    return [x.hex() for x in result.services["matmul"].metrics.latencies.values()]

if spotted.faults is None or spotted.faults.total_injected != 0:
    raise SystemExit("the zero plan injected faults")
if hexes(spotted) != hexes(plain):
    raise SystemExit("zero-preemption spot rental diverged from the plain scenario")
print("zero-preemption spot rental is float.hex-identical to on-demand")

# -- gate 2: preemption-storm acceptance at spot fraction 0.5 with a
#    guaranteed reclamation and serverless pinned out of reach — the
#    graceful drain keeps QoS violations bounded, the no-notice hard
#    kill measurably does not, and both legs are deterministic across
#    worker counts
serial = preemption_comparison(seed=0, workers=1, cache=False)
fanned = preemption_comparison(seed=0, workers=2, cache=False)
for leg in ("graceful", "hardkill"):
    a = serial[leg].services["matmul"].metrics
    b = fanned[leg].services["matmul"].metrics
    if [x.hex() for x in a.latencies.values()] != [x.hex() for x in b.latencies.values()]:
        raise SystemExit(f"{leg} leg diverged between workers=1 and workers=2")
    if a.preemptions != b.preemptions:
        raise SystemExit(f"{leg} preemption accounting diverged across worker counts")
graceful = serial["graceful"].services["matmul"].metrics
hardkill = serial["hardkill"].services["matmul"].metrics
if graceful.violation_fraction_with_failures > GRACEFUL_VIOLATION_BOUND:
    raise SystemExit(
        f"graceful drain violated QoS on "
        f"{graceful.violation_fraction_with_failures:.1%} of queries "
        f"(bound {GRACEFUL_VIOLATION_BOUND:.0%})"
    )
if hardkill.violation_fraction_with_failures <= HARDKILL_VIOLATION_FLOOR:
    raise SystemExit(
        f"hard kill only violated "
        f"{hardkill.violation_fraction_with_failures:.1%} — the storm gate "
        "is no longer discriminating"
    )
if graceful.preemptions["killed_inflight"] != 0:
    raise SystemExit("graceful drain killed in-flight queries")
print(
    f"preemption-storm gate: graceful viol "
    f"{graceful.violation_fraction_with_failures:.1%} <= "
    f"{GRACEFUL_VIOLATION_BOUND:.0%}, hardkill "
    f"{hardkill.violation_fraction_with_failures:.1%} > "
    f"{HARDKILL_VIOLATION_FLOOR:.0%}, both legs worker-count invariant"
)
EOF

echo "== pytest: quick tier =="
python -m pytest -x -q -m "not slow"

echo "== all gates green =="
