"""Fig. 11: normalized resource usage of Amoeba vs. Nameko."""

from repro.experiments.figures import FIG_DAY, fig11_resource_usage


def test_fig11_resource_usage(regenerate):
    result = regenerate(fig11_resource_usage, day=FIG_DAY)
    for name, cpu_ratio, mem_ratio, cpu_red, mem_red in result.rows:
        # paper: CPU reduced by 29.1-72.9%, memory by 30.2-84.9%
        assert 0.15 <= cpu_red <= 0.85, f"{name}: cpu reduction {cpu_red}"
        assert 0.15 <= mem_red <= 0.90, f"{name}: mem reduction {mem_red}"
    reductions = [row[3] for row in result.rows]
    assert max(reductions) > 0.5  # someone saves big (paper: up to 72.9%)
