"""Extension bench: maintainer-side dollar cost per system."""

from repro.experiments.figures import cost_comparison


def test_cost_comparison(regenerate):
    result = regenerate(cost_comparison, day=2400.0)
    by_key = {(row[0], row[1]): row for row in result.rows}
    for name in ("float", "matmul", "linpack", "dd", "cloud_stor"):
        nameko_total = by_key[(name, "nameko")][4]
        amoeba_total = by_key[(name, "amoeba")][4]
        # the paper's economic motivation: hybrid deployment is cheaper
        # for the maintainer than holding the peak rental all month
        assert amoeba_total < nameko_total, name
        # Nameko's bill is pure IaaS; Amoeba's has both components
        assert by_key[(name, "nameko")][3] == 0.0
