"""Fig. 15: average error of the discriminant function λ(μ)."""

import numpy as np

from repro.experiments.figures import FIG_DAY, fig15_discriminant_error


def test_fig15_discriminant_error(regenerate):
    result = regenerate(fig15_discriminant_error, day=FIG_DAY, duration=240.0)
    err = {(row[0], row[1]): row[4] for row in result.rows}
    benchmarks = {row[0] for row in result.rows}
    # the PCA-calibrated discriminant beats pessimistic accumulation on
    # (nearly) every benchmark, and clearly on average (paper: max error
    # 25.8% -> 8.3%, min 9.1% -> 2.8%)
    amoeba_errs = [err[(b, "amoeba")] for b in benchmarks]
    nom_errs = [err[(b, "nom")] for b in benchmarks]
    assert float(np.mean(amoeba_errs)) < float(np.mean(nom_errs))
    wins = sum(1 for b in benchmarks if err[(b, "amoeba")] <= err[(b, "nom")] + 0.01)
    assert wins >= len(benchmarks) - 1
