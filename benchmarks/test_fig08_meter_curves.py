"""Fig. 8: latency variation of the CPU/IO/network contention meters."""

import numpy as np

from repro.experiments.figures import fig8_meter_curves


def test_fig08_meter_curves(regenerate):
    result = regenerate(fig8_meter_curves, points=7, queries_per_point=60)
    for meter in ("meter_cpu", "meter_io", "meter_net"):
        measured = result.extras[meter]["measured"]
        # monotone, meaningfully increasing curves (invertible)
        assert np.all(np.diff(measured.latencies) >= 0)
        assert measured.latencies[-1] > 1.5 * measured.latencies[0]
    # measured and analytic agree (rows carry the relative difference)
    rel_diffs = [row[4] for row in result.rows]
    assert float(np.median(rel_diffs)) < 0.1
