"""Fleet-scale perf guard: faster-than-real-time, bit-deterministic.

The acceptance bar for the fleet scenario family (ISSUE 6 / DESIGN.md
§11): a ≥100-service fleet carrying ≥1M aggregate queries/day must
simulate its compressed day faster than real time — wall clock below the
simulated duration — and the sweep must be ``float.hex``-identical for
any worker count.  Numbers land in ``BENCH_fleet.json`` at the repo root
so the fleet-throughput trajectory is tracked across PRs.

The per-service runs are independent, so this bench is also the
standing regression guard for the batched keep-alive reaper and the
log-space Eq. 1–5 sizing: 100 heterogeneous services exercise the
concurrency-threshold search and the container-pool timer path at every
jittered operating point the generator can produce.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments.fleet import fleet_sweep

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

_SERVICES = 100
_DAILY_QUERIES = 5_000_000.0
_DAY = 300.0


def _per_service_hexes(figure):
    return [
        [x.hex() if isinstance(x, float) else x for x in row]
        for row in figure.extras["per_service"]
    ]


def test_fleet_faster_than_real_time_and_deterministic():
    usable_cores = len(os.sched_getaffinity(0))

    t0 = time.perf_counter()
    serial = fleet_sweep(
        services=_SERVICES, daily_queries=_DAILY_QUERIES, day=_DAY,
        seed=0, workers=1, cache=False,
    )
    serial_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    parallel = fleet_sweep(
        services=_SERVICES, daily_queries=_DAILY_QUERIES, day=_DAY,
        seed=0, workers=4, cache=False,
    )
    parallel_s = time.perf_counter() - t0

    # worker-count invariance, down to the last bit of every per-service
    # float (submission-order merge in run_many)
    assert _per_service_hexes(serial) == _per_service_hexes(parallel)

    # faster than real time: the whole fleet's compressed day in less
    # wall time than the day itself, already in the serial leg
    assert serial_s < _DAY, (
        f"fleet of {_SERVICES} services took {serial_s:.1f}s wall for "
        f"{_DAY:g}s simulated — slower than real time"
    )

    completed = serial.extras["total_completed"]
    assert completed > 0
    _BENCH_JSON.write_text(
        json.dumps(
            {
                "services": _SERVICES,
                "daily_queries": _DAILY_QUERIES,
                "day": _DAY,
                "usable_cores": usable_cores,
                "serial_s": round(serial_s, 4),
                "parallel_s": round(parallel_s, 4),
                "realtime_factor_serial": round(_DAY / serial_s, 2),
                "realtime_factor_parallel": round(_DAY / parallel_s, 2),
                "total_completed": completed,
                "total_cost_dollars": round(serial.extras["total_cost"], 4),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
