"""Sweep-level perf guards: executor fan-out and warm-cache replay.

The reference workload is the chaos fault-scale sweep plus the overload
factor sweep at ``day=300`` — 8 independent seeded runs, the shape every
figure regenerator reduces to.  Three measured legs:

* **serial cold** — ``workers=1``, cache off: the pre-executor baseline;
* **parallel cold** — ``workers=4`` into a fresh cache: the fan-out path
  (its speedup over serial is core-count-bound, so the ≥2x guard only
  applies when the host actually offers ≥4 usable cores);
* **warm replay** — the same sweep against the now-populated cache: must
  execute nothing (0 stores, all hits) and beat serial ≥2x everywhere,
  CPU-starved CI included.

All three legs must agree ``float.hex``-for-hex — the guard would catch
a merge-order or cache-serialization bug before any figure does.
Numbers land in ``BENCH_sweep.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

import json
import os
import time
from pathlib import Path

from repro.experiments.cache import RunCache
from repro.experiments.chaos import chaos_sweep
from repro.experiments.overload import overload_sweep

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"

_DAY = 300.0
_SCALES = (0.0, 0.5, 1.0, 2.0)
_FACTORS = (1.0, 2.0)
_RUNS = len(_SCALES) + 2 * len(_FACTORS)


def _full_sweep(workers, cache):
    chaos = chaos_sweep(
        "matmul", day=_DAY, seed=0, scales=_SCALES, workers=workers, cache=cache
    )
    overload = overload_sweep(
        "matmul", day=_DAY, seed=0, factors=_FACTORS, workers=workers, cache=cache
    )
    return chaos, overload


def _row_hexes(figures):
    return [
        [x.hex() if isinstance(x, float) else x for x in row]
        for figure in figures
        for row in figure.rows
    ]


def test_sweep_parallel_and_cache_speedup(tmp_path):
    usable_cores = len(os.sched_getaffinity(0))

    t0 = time.perf_counter()
    serial = _full_sweep(workers=1, cache=False)
    serial_s = time.perf_counter() - t0

    cold = RunCache(tmp_path / "cache")  # real code salt: the production key
    t0 = time.perf_counter()
    parallel = _full_sweep(workers=4, cache=cold)
    parallel_s = time.perf_counter() - t0
    assert cold.stores == _RUNS and cold.hits == 0

    warm = RunCache(tmp_path / "cache")
    t0 = time.perf_counter()
    replay = _full_sweep(workers=4, cache=warm)
    warm_s = time.perf_counter() - t0
    assert warm.stores == 0 and warm.hits == _RUNS, "warm replay must execute nothing"

    # bit-determinism across all three legs
    assert _row_hexes(serial) == _row_hexes(parallel) == _row_hexes(replay)

    parallel_speedup = serial_s / parallel_s
    warm_speedup = serial_s / warm_s
    # the cache replay dodges every simulation, so it must win even on a
    # single-core host; the fan-out win needs actual cores to exist
    assert warm_speedup >= 2.0, f"warm cache replay only {warm_speedup:.2f}x over serial"
    if usable_cores >= 4:
        assert parallel_speedup >= 2.0, (
            f"workers=4 only {parallel_speedup:.2f}x over serial on {usable_cores} cores"
        )

    _BENCH_JSON.write_text(
        json.dumps(
            {
                "day": _DAY,
                "runs": _RUNS,
                "usable_cores": usable_cores,
                "serial_s": round(serial_s, 4),
                "parallel_cold_s": round(parallel_s, 4),
                "warm_replay_s": round(warm_s, 4),
                "parallel_speedup": round(parallel_speedup, 4),
                "warm_speedup": round(warm_speedup, 4),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
