"""Fig. 2: CPU utilization of the benchmarks with IaaS-based deployment."""

from repro.experiments.figures import fig2_iaas_utilization


def test_fig02_iaas_utilization(regenerate):
    result = regenerate(fig2_iaas_utilization, day=3600.0, windows=48)
    for _name, lo, avg, hi in result.rows:
        assert 0.0 <= lo <= avg <= hi <= 1.0
    # the paper's point: just-enough IaaS still averages low utilization
    assert max(row[2] for row in result.rows) < 0.8
    # float's tight QoS keeps its utilization low despite being CPU-bound
    by_name = {row[0]: row for row in result.rows}
    assert by_name["float"][2] < by_name["matmul"][2]
