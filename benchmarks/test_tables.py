"""Tables II and III as configuration assertions."""

from repro.experiments.figures import table2_setup, table3_benchmarks


def test_table2_setup(regenerate):
    result = regenerate(table2_setup)
    values = dict((row[0], row[1]) for row in result.rows)
    assert values["cores per node"] == 40
    assert values["container memory (MB)"] == 256.0


def test_table3_benchmarks(regenerate):
    result = regenerate(table3_benchmarks)
    assert len(result.rows) == 5
