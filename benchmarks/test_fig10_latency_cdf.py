"""Fig. 10: latency CDFs normalized to QoS (Amoeba / Nameko / OpenWhisk)."""

from repro.experiments.figures import FIG_DAY, fig10_latency_cdf


def test_fig10_latency_cdf(regenerate):
    result = regenerate(fig10_latency_cdf, day=FIG_DAY)
    by_key = {(row[0], row[1]): row for row in result.rows}
    for name in ("float", "matmul", "linpack", "dd", "cloud_stor"):
        # Amoeba and Nameko meet the QoS target everywhere
        assert by_key[(name, "amoeba")][2] <= 1.0, name
        assert by_key[(name, "nameko")][2] <= 1.0, name
    # OpenWhisk violates the QoS of matmul, dd and cloud_stor (paper) ...
    for name in ("matmul", "dd", "cloud_stor"):
        assert by_key[(name, "openwhisk")][2] > 1.0, name
    # ... but holds it for float (and linpack in the paper's figure)
    assert by_key[("float", "openwhisk")][2] <= 1.0
