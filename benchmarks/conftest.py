"""Benchmark-suite helpers.

Experiment benches regenerate a whole paper figure, so they run exactly
once (``rounds=1``) — pytest-benchmark records the wall time, and the
regenerated table is printed so ``pytest benchmarks/ --benchmark-only -s``
shows the same rows the paper reports.  EXPERIMENTS.md is the curated
record of these outputs.
"""

import pytest


def pytest_collection_modifyitems(items):
    """Every bench regenerates experiment-scale output: all are ``slow``."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture(autouse=True, scope="session")
def executor_defaults():
    """Pick up ``REPRO_WORKERS`` / ``REPRO_CACHE`` for the bench session.

    The figure benches call sweeps without explicit ``workers``/``cache``
    arguments; this fixture routes them through the environment-driven
    executor defaults (and prints what was chosen, so a bench log always
    records whether runs were parallel and/or cached).
    """
    from repro.experiments import executor
    from repro.experiments.cache import RunCache

    workers = executor.resolve_workers()
    cache = RunCache.from_env()
    executor.configure(workers=workers, cache=cache)
    where = cache.root if cache is not None else "off"
    print(f"[executor: workers={workers}, cache={where}]")
    yield
    executor.configure(workers=None, cache=None)


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run a figure regenerator once under the benchmark clock and print it."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(result.text())
        return result

    return _run
