"""Benchmark-suite helpers.

Experiment benches regenerate a whole paper figure, so they run exactly
once (``rounds=1``) — pytest-benchmark records the wall time, and the
regenerated table is printed so ``pytest benchmarks/ --benchmark-only -s``
shows the same rows the paper reports.  EXPERIMENTS.md is the curated
record of these outputs.
"""

import pytest


def pytest_collection_modifyitems(items):
    """Every bench regenerates experiment-scale output: all are ``slow``."""
    for item in items:
        item.add_marker(pytest.mark.slow)


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run a figure regenerator once under the benchmark clock and print it."""

    def _run(fn, *args, **kwargs):
        result = benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
        with capsys.disabled():
            print()
            print(result.text())
        return result

    return _run
