"""Micro-benchmarks of the hot paths (true pytest-benchmark timing).

These are the performance-regression guards for the substrate itself:
the event loop, the contention engine's rebalance, the Erlang math and
the PCA fit are what every experiment's wall time is made of.
"""

import numpy as np

from repro.cluster.resource_model import (
    ContentionConfig,
    DemandVector,
    MachineModel,
    SensitivityVector,
)
from repro.core.monitor import pcr_fit
from repro.core.queueing import max_arrival_rate
from repro.sim.environment import Environment


def test_event_loop_throughput(benchmark):
    """Schedule-and-run of 20k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(20000):
                yield env.timeout(0.001)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 0


def test_machine_model_rebalance(benchmark):
    """Contended execute/finish churn: 2000 overlapping executions.

    Parameters keep the machine busy (~8 concurrent, pressure ≈ 0.5) but
    stable — the point is rebalance cost, not a saturation spiral.
    """
    demand = DemandVector(cpu=1.0, memory_mb=256.0)
    sens = SensitivityVector(cpu=1.0)

    def run():
        env = Environment()
        machine = MachineModel(env, cores=16.0, io_mbps=1000.0, net_mbps=1000.0)

        def feeder(env):
            for i in range(2000):
                machine.execute(0.05, demand, sens)
                yield env.timeout(0.007)

        env.process(feeder(env))
        env.run()
        return machine.active_count

    assert benchmark(run) == 0


def test_discriminant_evaluation(benchmark):
    """One controller decision's worth of Eq. 5 bisection."""

    def run():
        return max_arrival_rate(mu=2.5, n=8, qos=1.5, r=0.95)

    assert benchmark(run) > 0


def test_pcr_fit_speed(benchmark):
    """A PCA recalibration over a full feedback window."""
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(120, 3))
    y = X @ np.array([0.7, 0.2, 0.1]) + rng.normal(0, 0.01, 120)

    def run():
        return pcr_fit(X, y)

    w, _bias = benchmark(run)
    assert w.shape == (3,)


def test_full_mixed_platform_minute(benchmark):
    """One simulated minute of a loaded serverless platform."""
    from repro.serverless.platform import ServerlessPlatform
    from repro.sim.rng import RngRegistry
    from repro.telemetry import ServiceMetrics
    from repro.workloads.functionbench import benchmark as bench_spec
    from repro.workloads.loadgen import LoadGenerator
    from repro.workloads.traces import ConstantTrace

    def run():
        env = Environment()
        rng = RngRegistry(seed=1)
        platform = ServerlessPlatform(env, rng)
        total = 0
        for name in ("float", "matmul", "dd"):
            spec = bench_spec(name)
            metrics = ServiceMetrics(name, spec.qos_target)
            platform.register(spec, metrics=metrics)
            LoadGenerator(env, name, ConstantTrace(8.0), platform.invoke, rng)
        env.run(until=60.0)
        return env.now

    assert benchmark(run) == 60.0
