"""Micro-benchmarks of the hot paths (true pytest-benchmark timing).

These are the performance-regression guards for the substrate itself:
the event loop, the contention engine's rebalance, the Erlang math and
the PCA fit are what every experiment's wall time is made of.

The scheduling guards at the bottom pin the single-timer completion
scheme's asymptotics (DESIGN.md §6): heap insertions per completed query
must stay O(1) amortized, and a simulated hour must stay cheap in wall
time.  Results land in ``BENCH_kernel.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

import json
import time
from pathlib import Path

import numpy as np

from repro.cluster.resource_model import (
    ContentionConfig,
    DemandVector,
    MachineModel,
    SensitivityVector,
)
from repro.core.monitor import pcr_fit
from repro.core.queueing import max_arrival_rate
from repro.sim.environment import Environment

_BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_kernel.json"


def _record(**metrics: float) -> None:
    """Merge metrics into BENCH_kernel.json (one file across all guards)."""
    data = {}
    if _BENCH_JSON.exists():
        try:
            data = json.loads(_BENCH_JSON.read_text())
        except ValueError:
            data = {}
    data.update({k: round(v, 4) for k, v in metrics.items()})
    _BENCH_JSON.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")


def test_event_loop_throughput(benchmark):
    """Schedule-and-run of 20k timeout events."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(20000):
                yield env.timeout(0.001)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result > 0


def test_machine_model_rebalance(benchmark):
    """Contended execute/finish churn: 2000 overlapping executions.

    Parameters keep the machine busy (~8 concurrent, pressure ≈ 0.5) but
    stable — the point is rebalance cost, not a saturation spiral.
    """
    demand = DemandVector(cpu=1.0, memory_mb=256.0)
    sens = SensitivityVector(cpu=1.0)

    def run():
        env = Environment()
        machine = MachineModel(env, cores=16.0, io_mbps=1000.0, net_mbps=1000.0)

        def feeder(env):
            for i in range(2000):
                machine.execute(0.05, demand, sens)
                yield env.timeout(0.007)

        env.process(feeder(env))
        env.run()
        return machine.active_count

    assert benchmark(run) == 0


def test_discriminant_evaluation(benchmark):
    """One controller decision's worth of Eq. 5 bisection."""

    def run():
        return max_arrival_rate(mu=2.5, n=8, qos=1.5, r=0.95)

    assert benchmark(run) > 0


def test_pcr_fit_speed(benchmark):
    """A PCA recalibration over a full feedback window."""
    rng = np.random.default_rng(0)
    X = rng.uniform(0, 1, size=(120, 3))
    y = X @ np.array([0.7, 0.2, 0.1]) + rng.normal(0, 0.01, 120)

    def run():
        return pcr_fit(X, y)

    w, _bias = benchmark(run)
    assert w.shape == (3,)


def test_record_completion_throughput(benchmark):
    """Telemetry fold of 20k completed queries (the per-query ledger cost).

    Every completed query on every platform funnels through
    ``ServiceMetrics.record_completion``, so its constant factor is paid
    more often than any other line in the repo.  The batch mixes warm and
    cold queries across both platforms to exercise the stage loop and the
    served-by tally on realistic shapes.
    """
    from repro.telemetry import ServiceMetrics
    from repro.workloads.loadgen import Query

    queries = []
    for i in range(20000):
        q = Query(qid=i, service="bench", t_submit=0.1 * i)
        q.t_complete = q.t_submit + 0.4 + 0.001 * (i % 7)
        q.breakdown = {"proc": 0.01, "queue": 0.02, "exec": 0.3, "post": 0.01}
        if i % 5 == 0:
            q.breakdown["cold"] = 0.5
            q.breakdown["load"] = 0.05
        q.served_by = "serverless" if i % 3 else "iaas"
        queries.append(q)

    def run():
        metrics = ServiceMetrics("bench", qos_target=0.5)
        for q in queries:
            metrics.record_completion(q)
        return metrics

    metrics = benchmark(run)
    assert metrics.completed == len(queries)
    assert metrics.served_by["iaas"] + metrics.served_by["serverless"] == len(queries)
    t0 = time.perf_counter()
    run()
    per_query_us = (time.perf_counter() - t0) / len(queries) * 1e6
    _record(record_completion_us=per_query_us)


def test_full_mixed_platform_minute(benchmark):
    """One simulated minute of a loaded serverless platform."""
    from repro.serverless.platform import ServerlessPlatform
    from repro.sim.rng import RngRegistry
    from repro.telemetry import ServiceMetrics
    from repro.workloads.functionbench import benchmark as bench_spec
    from repro.workloads.loadgen import LoadGenerator
    from repro.workloads.traces import ConstantTrace

    def run():
        env = Environment()
        rng = RngRegistry(seed=1)
        platform = ServerlessPlatform(env, rng)
        total = 0
        for name in ("float", "matmul", "dd"):
            spec = bench_spec(name)
            metrics = ServiceMetrics(name, spec.qos_target)
            platform.register(spec, metrics=metrics)
            LoadGenerator(env, name, ConstantTrace(8.0), platform.invoke, rng)
        env.run(until=60.0)
        return env.now

    assert benchmark(run) == 60.0


def _loaded_platform_hour():
    """One simulated hour of the three-function mixed platform at 24 qps."""
    from repro.serverless.platform import ServerlessPlatform
    from repro.sim.rng import RngRegistry
    from repro.telemetry import ServiceMetrics
    from repro.workloads.functionbench import benchmark as bench_spec
    from repro.workloads.loadgen import LoadGenerator
    from repro.workloads.traces import ConstantTrace

    env = Environment()
    rng = RngRegistry(seed=1)
    platform = ServerlessPlatform(env, rng)
    all_metrics = []
    for name in ("float", "matmul", "dd"):
        spec = bench_spec(name)
        metrics = ServiceMetrics(name, spec.qos_target)
        platform.register(spec, metrics=metrics)
        LoadGenerator(env, name, ConstantTrace(8.0), platform.invoke, rng)
        all_metrics.append(metrics)
    t0 = time.perf_counter()
    env.run(until=3600.0)
    wall = time.perf_counter() - t0
    completed = sum(m.completed for m in all_metrics)
    return env, platform.machine, completed, wall


def test_heap_entries_per_query_o1_amortized():
    """Scheduling guard: heap insertions per completed query stay O(1).

    Under the old per-execution reschedule scheme this ratio scaled with
    the concurrent set (O(N) pushes per set change); the single-timer
    engine holds it at a small constant (~8: arrival/admission/dispatch
    events plus ~2 completion-timer arms).  The bound has headroom but
    would catch any return to per-execution rescheduling.
    """
    env, machine, completed, wall = _loaded_platform_hour()
    assert completed > 50_000  # the scenario really is loaded
    entries_per_query = env.scheduled_total / completed
    arms_per_completion = machine.timer_arms / machine.completed
    assert entries_per_query < 10.0
    assert arms_per_completion < 3.0
    # dead entries never dominate the heap (compaction invariant)
    assert env.heap_size <= 2 * max(env.live_size, env._COMPACT_MIN)
    _record(
        heap_entries_per_query=entries_per_query,
        timer_arms_per_completion=arms_per_completion,
        completed_queries=float(completed),
        wall_s_per_sim_hour=wall,
    )


def test_wall_time_per_simulated_hour(benchmark):
    """One simulated hour of the loaded platform, under the benchmark clock.

    The absolute ceiling is deliberately loose (CI machines vary wildly);
    BENCH_kernel.json carries the precise number across PRs.
    """

    def run():
        _env, _machine, completed, wall = _loaded_platform_hour()
        return completed, wall

    completed, wall = benchmark.pedantic(run, rounds=1, iterations=1)
    assert completed > 50_000
    assert wall < 90.0
    _record(wall_s_per_sim_hour=wall)
