"""Fig. 14: resource usage of Amoeba vs. Amoeba-NoM."""

from repro.experiments.figures import FIG_DAY, fig14_nom_ablation


def test_fig14_nom_ablation(regenerate):
    result = regenerate(fig14_nom_ablation, day=FIG_DAY)
    cpu_factors = [row[3] for row in result.rows]  # nom / amoeba
    mem_factors = [row[6] for row in result.rows]
    # paper: NoM uses up to 1.77x CPU and 2.38x memory of Amoeba.  Our
    # sub-saturation ambient regime attenuates the magnitude (see
    # EXPERIMENTS.md) but the ordering must hold: accumulation never
    # beats calibration, and it clearly loses on the multi-axis services.
    assert sum(cpu_factors) / len(cpu_factors) > 1.02
    assert max(cpu_factors) > 1.10
    assert max(mem_factors) > 1.10
    # the paper's own caveat holds too: some benchmarks end up similar
    # ("linpack and dd achieve similar CPU and memory resource usage")
    assert min(cpu_factors) > 0.95
