"""Fig. 12: timeline of the deploy-mode switches (float and dd)."""

from repro.experiments.export import ascii_mode_timeline
from repro.experiments.figures import FIG_DAY, fig12_switch_timeline


def test_fig12_switch_timeline(regenerate, capsys):
    result = regenerate(fig12_switch_timeline, services=("float", "dd"), day=FIG_DAY)
    with capsys.disabled():
        for name in ("float", "dd"):
            timeline = result.extras[name]["mode_timeline"]
            print(ascii_mode_timeline(timeline, FIG_DAY, label=f"{name:<6}"))
    for name in ("float", "dd"):
        events = result.extras[name]["switch_events"]
        assert len(events) >= 2, f"{name} never switched"
        directions = {d for _t, d, _l in events}
        assert "serverless" in directions  # at least one switch-in happened
    # the paper's observation: switch loads are not identical — they vary
    # with direction and with the contention at switch time
    loads = [row[3] for row in result.rows]
    assert max(loads) - min(loads) > 0.5
