"""Extension bench: all Table III services under one Amoeba runtime."""

from repro.experiments.portfolio import portfolio_figure


def test_portfolio(regenerate):
    result = regenerate(portfolio_figure, day=2400.0)
    assert len(result.rows) == 5
    for name, p95_ratio, violations, cpu_ratio, mem_ratio, switches in result.rows:
        # every managed service keeps its QoS while sharing the platform
        assert p95_ratio <= 1.0, f"{name}: p95/QoS {p95_ratio}"
        assert violations < 0.05, name
        # and still saves vs. a dedicated peak-sized rental
        assert cpu_ratio < 1.0, name
    # the portfolio as a whole switches: the engine is actually working
    assert sum(row[5] for row in result.rows) >= 5
