"""Ablation benches for the design choices DESIGN.md §5 calls out."""

from repro.experiments.ablations import (
    ablate_discriminant,
    ablate_guard,
    ablate_keep_alive,
    ablate_sample_period,
)


def test_abl_guard(regenerate):
    result = regenerate(ablate_guard, name="matmul", day=2400.0)
    rows = {row[0]: row for row in result.rows}
    # the guard never makes the background tenants worse
    assert rows["guard on"][2] <= rows["guard off"][2] + 0.02


def test_abl_sample_period(regenerate):
    result = regenerate(ablate_sample_period, name="float", day=2400.0)
    rows = {row[0]: row for row in result.rows}
    # an over-eager sampler switches at least as often (flapping risk)
    assert rows["3 s period"][3] >= rows["Eq. 8 period"][3]


def test_abl_keepalive(regenerate):
    result = regenerate(ablate_keep_alive, name="float", day=2400.0)
    mem = [row[2] for row in result.rows]
    cold = [row[3] for row in result.rows]
    # the trade-off axis: longer keep-alive = more memory, fewer colds
    assert mem[-1] >= mem[0]
    assert cold[-1] <= cold[0]


def test_abl_discriminant(regenerate):
    result = regenerate(ablate_discriminant, name="matmul", day=2400.0)
    rows = {row[0]: row for row in result.rows}
    # the loose utilization rule risks QoS relative to Eq. 5
    assert rows["rho < 0.9"][1] >= rows["Eq. 5 (M/M/N)"][1]
    # the tight rule burns at least as many cores as Eq. 5
    assert rows["rho < 0.5"][2] >= rows["Eq. 5 (M/M/N)"][2] * 0.95
