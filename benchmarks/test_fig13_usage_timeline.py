"""Fig. 13: timeline of resource-usage variation with Amoeba."""

from repro.experiments.export import ascii_series
from repro.experiments.figures import FIG_DAY, fig13_usage_timeline


def test_fig13_usage_timeline(regenerate, capsys):
    result = regenerate(fig13_usage_timeline, services=("float", "dd"), day=FIG_DAY)
    with capsys.disabled():
        for name in ("float", "dd"):
            grid = result.extras[name]["grid"]
            cpu = result.extras[name]["cpu"]
            print(ascii_series(grid, cpu, label=f"{name}: occupied cores over the day"))
    rows = {row[0]: row for row in result.rows}
    for name in ("float", "dd"):
        cpu = result.extras[name]["cpu"]
        mem = result.extras[name]["mem"]
        # the usage level actually varies over the day (that is the point)
        assert cpu.max() > 2 * max(cpu.min(), 1e-9)
        assert mem.max() > 0
    # float (tight QoS, big rental steps) changes more abruptly than its
    # own mean level; the "max step / max" column captures Fig. 13(a)
    assert rows["float"][5] > 0.3
