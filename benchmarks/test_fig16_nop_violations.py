"""Fig. 16: QoS violation of the benchmarks with Amoeba-NoP."""

from repro.experiments.figures import FIG_DAY, fig16_nop_violations


def test_fig16_nop_violations(regenerate):
    result = regenerate(fig16_nop_violations, day=FIG_DAY)
    for name, amoeba_viol, nop_viol in result.rows:
        # paper: 29.9-69.1% of queries violate QoS without prewarming,
        # while full Amoeba stays (essentially) violation-free
        assert amoeba_viol < 0.02, f"{name}: amoeba {amoeba_viol}"
        assert nop_viol > 0.15, f"{name}: nop only {nop_viol}"
    assert max(row[2] for row in result.rows) > 0.3
