"""§VII-E: overhead of the contention meters."""

from repro.experiments.figures import FIG_DAY, sec7e_meter_overhead


def test_sec7e_meter_overhead(regenerate):
    result = regenerate(sec7e_meter_overhead, day=FIG_DAY)
    rows = {row[0]: row[1] for row in result.rows}
    # paper: per-meter overheads ~1.1%/0.5%/0.6%; total bounded by ~1%
    assert 0.0 < rows["total"] < 0.02
    # the CPU meter is the most expensive one, as in the paper
    assert rows["meter_cpu"] >= rows["meter_io"]
    assert rows["meter_cpu"] >= rows["meter_net"]
