"""Fig. 3: serverless peak load normalized to IaaS with the same resources."""

from repro.experiments.figures import fig3_peak_loads


def test_fig03_peak_load(regenerate):
    result = regenerate(fig3_peak_loads, duration=300.0)
    ratios = {row[0]: row[3] for row in result.rows}
    # paper band: 0.739-0.892; we assert the structural claims —
    # serverless always below IaaS, by an overhead-sized margin
    for name, ratio in ratios.items():
        assert 0.55 < ratio < 1.0, f"{name}: {ratio}"
    # float pays the largest relative overhead (shortest kernel)
    assert ratios["float"] == min(ratios.values())
