"""Fig. 4: latency breakdown of serverless queries."""

from repro.experiments.figures import fig4_latency_breakdown


def test_fig04_latency_breakdown(regenerate):
    result = regenerate(fig4_latency_breakdown, duration=400.0)
    for row in result.rows:
        name, proc, load, exec_, post, overhead = row
        # paper: extra overheads are 10-45% of the end-to-end latency
        assert 0.05 <= overhead <= 0.45, f"{name}: {overhead}"
        assert exec_ == max(proc, load, exec_, post)
