"""Extension bench: M/M/N (Eq. 5) vs. the M/D/N-corrected discriminant.

The paper's Eq. 5 uses the exponential-service wait, which is
conservative for near-deterministic FaaS kernels.  The Allen–Cunneen
corrected backend ("mdn") admits more load at the same QoS — more time on
serverless, same (or better) compliance.
"""

from repro.core.config import AmoebaConfig
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_amoeba, run_nameko
from repro.experiments.scenarios import default_scenario


def _compare(day=2400.0, seed=0, name="matmul") -> FigureResult:
    scenario = default_scenario(name, day=day, seed=seed)
    baseline = run_nameko(scenario).foreground(scenario).usage
    rows = []
    for label, cfg in (
        ("Eq. 5 (M/M/N)", AmoebaConfig()),
        ("Allen-Cunneen (M/D/N)", AmoebaConfig(discriminant="mdn")),
    ):
        fg = run_amoeba(scenario, config=cfg).foreground(scenario)
        cpu_ratio, mem_ratio = fg.usage.normalized_to(baseline)
        rows.append(
            [label, fg.metrics.violation_fraction,
             fg.metrics.latency_percentile(95) / scenario.foreground.qos_target,
             cpu_ratio, mem_ratio]
        )
    return FigureResult(
        figure="Extension: discriminant backend",
        title=f"wait-model correction for near-deterministic service ({name})",
        headers=["backend", "violations", "p95 / QoS", "cpu vs nameko", "mem vs nameko"],
        rows=rows,
        notes="the corrected wait admits more load on serverless at equal QoS",
    )


def test_mdn_discriminant(regenerate):
    result = regenerate(_compare)
    rows = {row[0]: row for row in result.rows}
    mmn = rows["Eq. 5 (M/M/N)"]
    mdn = rows["Allen-Cunneen (M/D/N)"]
    # both meet QoS; the corrected backend is at least as resource-lean
    assert mmn[2] <= 1.0 and mdn[2] <= 1.05
    assert mdn[3] <= mmn[3] * 1.05
