"""Fig. 9: latency surfaces of an example microservice."""

from repro.experiments.figures import fig9_latency_surfaces


def test_fig09_latency_surfaces(regenerate):
    result = regenerate(
        fig9_latency_surfaces,
        service="dd",
        pressures=(0.0, 0.5, 1.0, 1.4),
        load_fractions=(0.0, 0.3, 0.6),
        duration=120.0,
    )
    # dd is IO-dominant: at the highest profiled pressure its IO surface
    # sits above CPU, which sits above network (Table III ordering)
    def cell(axis, p, v):
        return next(r[4] for r in result.rows if r[1] == axis and r[2] == p and r[3] == v)

    top_io = cell("io", 1.4, 0.0)
    top_cpu = cell("cpu", 1.4, 0.0)
    top_net = cell("net", 1.4, 0.0)
    assert top_io > top_cpu > top_net
    # latency grows along the pressure axis of the sensitive resource
    assert cell("io", 1.4, 0.0) > cell("io", 0.5, 0.0) > 0
