"""The fault plan: which faults strike, how often, and how hard.

One frozen dataclass per experiment describes every fault class the
injector may fire plus the bounded-retry policy the runtime answers
with.  Probabilities are *per opportunity* (per cold start, per boot
attempt, per meter sample, per prewarm ack), not per unit time, so the
fault pressure scales with activity exactly the way real platform
incidents do.

A plan is data, not behaviour: simlint rule SIM009 forbids folding fault
probabilities into control flow as module-level constants — they must
travel through a plan so ablation sweeps can scale them and the zero
plan provably disables the whole layer.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

__all__ = ["FaultPlan"]

#: plan fields that are probabilities (validated to [0, 1] and scaled
#: by :meth:`FaultPlan.scaled`)
_PROB_FIELDS = (
    "cold_start_failure_prob",
    "container_crash_prob",
    "vm_boot_failure_prob",
    "vm_boot_delay_prob",
    "meter_drop_prob",
    "meter_outage_prob",
    "prewarm_ack_loss_prob",
    "prewarm_ack_delay_prob",
    "vm_preemption_prob",
)

#: plan fields that are non-negative durations, seconds
_DURATION_FIELDS = (
    "vm_boot_delay_s",
    "meter_outage_duration_s",
    "prewarm_ack_delay_s",
    "crash_detect_s",
    "retry_backoff_s",
    "cold_start_retry_backoff_s",
    "boot_retry_backoff_s",
    "preemption_check_interval_s",
)

#: plan fields that are non-negative retry counts
_RETRY_FIELDS = ("max_query_retries", "max_cold_start_retries", "max_boot_retries")


@dataclass(frozen=True)
class FaultPlan:
    """Deterministic fault-injection configuration (all rates default 0)."""

    #: a pledged cold start dies during runtime boot (per attempt)
    cold_start_failure_prob: float = 0.0
    #: a container crashes while serving a query (per assignment)
    container_crash_prob: float = 0.0
    #: one VM boot attempt fails outright (per attempt)
    vm_boot_failure_prob: float = 0.0
    #: one VM boot attempt straggles (per attempt) ...
    vm_boot_delay_prob: float = 0.0
    #: ... by this many extra seconds
    vm_boot_delay_s: float = 30.0
    #: one meter invocation is silently dropped (per sample)
    meter_drop_prob: float = 0.0
    #: a meter outage begins at this sample (per sample) ...
    meter_outage_prob: float = 0.0
    #: ... silencing the meter for this long, seconds
    meter_outage_duration_s: float = 90.0
    #: the prewarm acknowledgement is lost outright (per switch-in)
    prewarm_ack_loss_prob: float = 0.0
    #: the prewarm acknowledgement arrives late (per switch-in) ...
    prewarm_ack_delay_prob: float = 0.0
    #: ... by this many seconds
    prewarm_ack_delay_s: float = 10.0
    #: time to detect a crashed container before the query is retried
    crash_detect_s: float = 1.0
    #: the cloud reclaims a service's spot VM share (per check interval,
    #: only meaningful when the scenario rents spot capacity —
    #: :class:`repro.cluster.SpotSpec`); drawn from ``faults/preemption/<svc>``
    vm_preemption_prob: float = 0.0
    #: how often the preemption watcher re-draws while the rental runs
    preemption_check_interval_s: float = 30.0

    # -- degradation policy (how the runtime answers the faults) ----------
    #: resubmissions granted to a crashed query before it is dropped
    max_query_retries: int = 2
    #: base backoff before a crashed query is resubmitted (linear in the
    #: attempt number — deterministic, no jitter)
    retry_backoff_s: float = 0.25
    #: relaunch attempts granted to a failing cold start
    max_cold_start_retries: int = 2
    cold_start_retry_backoff_s: float = 0.5
    #: re-boot attempts granted to a failing VM boot
    max_boot_retries: int = 2
    boot_retry_backoff_s: float = 5.0

    def __post_init__(self) -> None:
        for name in _PROB_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in _DURATION_FIELDS:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in _RETRY_FIELDS:
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def any_faults(self) -> bool:
        """True when at least one fault class can actually fire."""
        return any(getattr(self, name) > 0.0 for name in _PROB_FIELDS)

    def scaled(self, factor: float) -> "FaultPlan":
        """A plan with every probability multiplied by ``factor``.

        The sweep knob of the chaos scenario: ``scaled(0.0)`` is the
        provably-inert zero plan, ``scaled(2.0)`` doubles every fault
        rate (clamped to 1).  Durations and retry budgets are unchanged.
        """
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        changes = {
            name: min(getattr(self, name) * factor, 1.0) for name in _PROB_FIELDS
        }
        return replace(self, **changes)

    def describe(self) -> str:
        """One-line summary of the non-zero fault rates (for reports)."""
        parts = [
            f"{f.name}={getattr(self, f.name):g}"
            for f in fields(self)
            if f.name in _PROB_FIELDS and getattr(self, f.name) > 0.0
        ]
        return "faults(" + (", ".join(parts) if parts else "none") + ")"
