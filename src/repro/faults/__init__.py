"""Deterministic fault injection for the Amoeba reproduction.

The paper's switch protocol (§V-B) and sample-period rule (§IV, Eq. 8)
assume the happy path: prewarm acks arrive, VMs boot, contention meters
never go silent.  Real serverless platforms violate all three — cold
starts fail under overload, VMs straggle, telemetry drops out.  This
package supplies the fault model the runtime must degrade gracefully
under:

* :class:`~repro.faults.plan.FaultPlan` — the frozen configuration of
  fault classes and rates (all zero by default);
* :class:`~repro.faults.injector.FaultInjector` — the seeded runtime
  that turns a plan into concrete fault decisions, drawing every
  probability from a *named* :class:`~repro.sim.rng.RngRegistry` stream
  so the same seed and the same plan always produce the identical fault
  sequence;
* :class:`~repro.faults.injector.FaultStats` — counters of everything
  injected, surfaced through the experiment metrics.

Determinism contract: a plan whose rates are all zero makes **zero** RNG
draws and creates **zero** streams, so running with a zero-rate injector
is bit-identical (``float.hex``) to running with no injector at all.
Enforced by ``tests/experiments/test_chaos.py`` and simlint rule SIM009.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector, FaultStats, VMBootFailed
from repro.faults.plan import FaultPlan

__all__ = ["FaultInjector", "FaultPlan", "FaultStats", "VMBootFailed"]
