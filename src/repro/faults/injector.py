"""The runtime fault injector: seeded decisions + injection counters.

One :class:`FaultInjector` is shared by every component of a run (pool,
IaaS services, serverless platform facade, contention monitor).  Each
decision draws from a *named* RNG substream keyed by fault class and
service (``faults/coldstart/<svc>``, ``faults/vmboot/<svc>``, ...), so

* the fault sequence each component sees is independent of every other
  stream in the experiment (adding faults never perturbs workload or
  service-time draws), and
* the same root seed plus the same plan reproduces the identical fault
  sequence, run after run.

Every decision is gated on its probability being strictly positive
**before** any stream is touched: a zero-rate plan makes zero draws and
creates zero streams, which is what makes the zero-fault chaos config
bit-identical to a run without the fault layer (the ``scripts/check.sh``
golden gate).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, Optional

from repro.faults.plan import FaultPlan
from repro.sim import Environment, Event, RngRegistry

__all__ = ["FaultInjector", "FaultStats", "VMBootFailed"]


class VMBootFailed(RuntimeError):
    """A VM boot exhausted its retry budget; the deploy is rolled back."""


@dataclass
class FaultStats:
    """Counters of everything the injector actually fired."""

    cold_start_failures: int = 0
    cold_starts_abandoned: int = 0
    container_crashes: int = 0
    query_retries: int = 0
    queries_dropped: int = 0
    vm_boot_failures: int = 0
    vm_boot_delays: int = 0
    vm_boots_abandoned: int = 0
    prewarm_acks_lost: int = 0
    prewarm_acks_delayed: int = 0
    meter_samples_dropped: int = 0
    meter_outages: int = 0
    vm_preemptions: int = 0

    @property
    def total_injected(self) -> int:
        """Every primary injection (retries/drops are consequences)."""
        return (
            self.cold_start_failures
            + self.container_crashes
            + self.vm_boot_failures
            + self.vm_boot_delays
            + self.prewarm_acks_lost
            + self.prewarm_acks_delayed
            + self.meter_samples_dropped
            + self.meter_outages
            + self.vm_preemptions
        )

    def as_dict(self) -> Dict[str, int]:
        """Counter name -> value (for reports and CSV export)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class FaultInjector:
    """Turns a :class:`FaultPlan` into concrete, reproducible decisions."""

    def __init__(self, plan: FaultPlan, rng: RngRegistry) -> None:
        self.plan = plan
        self.rng = rng
        self.stats = FaultStats()

    def _hit(self, prob: float, stream: str) -> bool:
        """One Bernoulli decision; draws only when the fault is enabled."""
        if prob <= 0.0:
            return False
        return bool(self.rng.stream(stream).uniform() < prob)

    # -- serverless containers ---------------------------------------------
    def cold_start_fails(self, service: str) -> bool:
        """Does this cold-start attempt die during runtime boot?"""
        hit = self._hit(self.plan.cold_start_failure_prob, f"faults/coldstart/{service}")
        if hit:
            self.stats.cold_start_failures += 1
        return hit

    def container_crashes(self, service: str) -> bool:
        """Does the container crash while serving this query?"""
        hit = self._hit(self.plan.container_crash_prob, f"faults/crash/{service}")
        if hit:
            self.stats.container_crashes += 1
        return hit

    # -- IaaS VMs ----------------------------------------------------------
    def vm_boot_delay(self, service: str) -> float:
        """Extra seconds this boot attempt straggles (0.0 = on time)."""
        if self._hit(self.plan.vm_boot_delay_prob, f"faults/vmboot/{service}"):
            self.stats.vm_boot_delays += 1
            return self.plan.vm_boot_delay_s
        return 0.0

    def vm_boot_fails(self, service: str) -> bool:
        """Does this boot attempt fail outright?"""
        hit = self._hit(self.plan.vm_boot_failure_prob, f"faults/vmboot/{service}")
        if hit:
            self.stats.vm_boot_failures += 1
        return hit

    def vm_preempted(self, service: str) -> bool:
        """Does the cloud reclaim this service's spot share right now?

        One Bernoulli per watcher interval while the spot rental runs
        (:meth:`repro.iaas.service.IaaSService`).  The stream is only
        touched when ``vm_preemption_prob > 0``, so a zero-preemption
        plan makes zero draws — the bit-identity contract every other
        fault class honours.
        """
        hit = self._hit(self.plan.vm_preemption_prob, f"faults/preemption/{service}")
        if hit:
            self.stats.vm_preemptions += 1
        return hit

    # -- contention meters -------------------------------------------------
    def meter_outage(self, meter: str) -> float:
        """Outage duration starting at this sample (0.0 = meter healthy)."""
        if self._hit(self.plan.meter_outage_prob, f"faults/meter/{meter}"):
            self.stats.meter_outages += 1
            return self.plan.meter_outage_duration_s
        return 0.0

    def meter_sample_dropped(self, meter: str) -> bool:
        """Is this single meter invocation silently lost?"""
        hit = self._hit(self.plan.meter_drop_prob, f"faults/meter/{meter}")
        if hit:
            self.stats.meter_samples_dropped += 1
        return hit

    # -- switch protocol ---------------------------------------------------
    def filter_prewarm_ack(self, service: str, ack: Event, env: Environment) -> Event:
        """The ack the engine actually observes: intact, late, or never.

        A *lost* ack is a fresh event that never fires — the engine's
        ack deadline is what recovers from it.  A *late* ack relays the
        real ack after ``prewarm_ack_delay_s``.  The underlying pool ack
        always fires regardless (the containers really did warm; only
        the acknowledgement path is faulty).
        """
        stream = f"faults/ack/{service}"
        if self._hit(self.plan.prewarm_ack_loss_prob, stream):
            self.stats.prewarm_acks_lost += 1
            return env.event()
        if self._hit(self.plan.prewarm_ack_delay_prob, stream):
            self.stats.prewarm_acks_delayed += 1
            delayed = env.event()
            delay = self.plan.prewarm_ack_delay_s

            def _relay(ev: Event) -> None:
                delayed.succeed(ev._value, delay=delay)

            if ack.processed:
                delayed.succeed(ack.value, delay=delay)
            else:
                assert ack.callbacks is not None
                ack.callbacks.append(_relay)
            return delayed
        return ack


def maybe_injector(
    plan: Optional[FaultPlan], rng: RngRegistry
) -> Optional[FaultInjector]:
    """An injector for ``plan``, or None when no plan was given."""
    return None if plan is None else FaultInjector(plan, rng)
