"""Build and run one Amoeba deployment for a call-graph scenario.

Every topology node becomes a fully managed Amoeba service (its own
just-enough IaaS rental, hybrid engine, controller and governor on the
shared serverless pool); the orchestrator wires them into the DAG.  Only
the root gets an open-loop load generator — interior nodes receive their
arrivals from upstream completions, which is exactly what
``add_service(generate_load=False)`` exists for.

With ``propagate_deadlines`` on, each node's spec is re-targeted to its
critical-path share of the end-to-end target (``node_qos_targets``) so
the per-service controller/governor reason about a scalar target that is
consistent with the graph-level goal, *and* every query carries the
absolute deadline + downstream reservation so admission sees remaining
budget.  With it off, nodes keep their benchmark targets and no deadline
is attached — a single-node graph then replays the flat scenario
bit-for-bit (the check.sh identity gate).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import AmoebaConfig, AmoebaRuntime
from repro.core.runtime import ManagedService
from repro.graph.budget import downstream_reservation, node_costs, node_qos_targets
from repro.graph.orchestrator import CallGraphOrchestrator
from repro.graph.scenario import GraphScenario, GraphSummary
from repro.telemetry import RETRY_KINDS
from repro.workloads import BurstTrace, ConstantTrace, LoadGenerator

__all__ = ["GraphRuntime"]


class GraphRuntime:
    """One call-graph deployment: AmoebaRuntime + orchestrator wiring."""

    def __init__(
        self,
        scenario: GraphScenario,
        seed: Optional[int] = None,
        config: Optional[AmoebaConfig] = None,
        guard: bool = True,
    ) -> None:
        self.scenario = scenario
        self.rt = AmoebaRuntime(
            seed=seed if seed is not None else scenario.seed,
            config=config if config is not None else AmoebaConfig(),
            faults=scenario.faults,
            overload=scenario.overload,
        )
        topo = scenario.topology
        costs = node_costs(topo)
        reservations = downstream_reservation(topo, costs)
        targets = (
            node_qos_targets(topo, scenario.e2e_target)
            if scenario.propagate_deadlines
            else None
        )
        self.orchestrator = CallGraphOrchestrator(
            self.rt.env,
            topo,
            e2e_target=scenario.e2e_target,
            retry=scenario.retry,
            reservations=reservations,
            costs=costs,
            backpressure=scenario.backpressure,
            propagate_deadlines=scenario.propagate_deadlines,
        )
        root = topo.root
        self.services: Dict[str, ManagedService] = {}
        for i, node in enumerate(topo.nodes):
            spec = node.spec()
            if targets is not None:
                spec = spec.with_qos(targets[node.name])
            is_root = node.name == root
            managed = self.rt.add_service(
                spec,
                scenario.trace,
                guard_enabled=guard,
                limit=scenario.limits[i] if scenario.limits is not None else None,
                sizing_rate=scenario.iaas_peak_rate,
                reservoir=scenario.reservoir,
                router=self.orchestrator.root_submit if is_root else None,
                generate_load=is_root,
            )
            self.orchestrator.register(node.name, managed)
            self.services[node.name] = managed
        if scenario.brownout is not None:
            b = scenario.brownout
            # interfering load aimed straight at one node's engine: the
            # rectangular burst overloads a rental sized for the nominal
            # trace, tripping that node's breaker mid-graph
            burst = BurstTrace(ConstantTrace(0.0), [(b.t_start, b.t_end - b.t_start, b.rate)])
            LoadGenerator(
                self.rt.env, b.node, burst, self.services[b.node].engine.route, self.rt.rng
            )

    def run(self) -> None:
        """Advance the simulation through the scenario's duration."""
        self.rt.run(until=self.scenario.duration)

    def summary(self) -> GraphSummary:
        """End-to-end accounting after :meth:`run`."""
        stats = self.orchestrator.stats
        retries = {kind: 0 for kind in RETRY_KINDS}
        for managed in self.services.values():
            for kind, count in managed.metrics.retries.items():
                retries[kind] += count
        return GraphSummary(
            e2e_target=self.scenario.e2e_target,
            offered=stats.offered,
            completed=stats.completed,
            violations=stats.violations,
            failed=stats.failed,
            latencies=tuple(stats.latencies),
            failed_by_node=dict(stats.failed_by_node),
            retries=retries,
            backpressure_sheds=dict(stats.backpressure_sheds),
        )
