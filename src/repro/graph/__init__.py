"""Call-graph workloads with cascade-failure resilience.

A deterministic DAG workload family (chains, fan-out/fan-in, seeded
layered graphs) over fully managed Amoeba services, plus the machinery
that keeps a microservice graph safe under partial failure:

* :mod:`repro.graph.topology` — frozen DAG value objects and seeded
  builders with per-edge ``(seed, edge)`` RNG streams;
* :mod:`repro.graph.budget` — end-to-end deadline budgets propagated
  down the critical path (downstream reservations, per-node QoS split);
* :mod:`repro.graph.retry` — bounded per-edge retry budgets with
  deterministic deadline-aware give-up;
* :mod:`repro.graph.orchestrator` — fan-out/join execution with
  graph-aware backpressure (shed at the edge when the target's breaker
  is OPEN, so cascades die at their origin edge);
* :mod:`repro.graph.scenario` / :mod:`repro.graph.runtime` — frozen
  cache-fingerprintable scenarios and the deployment builder.
"""

from repro.graph.budget import (
    critical_path_cost,
    downstream_reservation,
    node_costs,
    node_qos_targets,
    upstream_cost,
)
from repro.graph.orchestrator import CallGraphOrchestrator, GraphStats
from repro.graph.retry import RetryPolicy
from repro.graph.runtime import GraphRuntime
from repro.graph.scenario import BrownoutSpec, GraphScenario, GraphSummary
from repro.graph.topology import (
    GraphEdge,
    GraphNode,
    GraphTopology,
    chain_topology,
    edge_network_cost,
    fanout_topology,
    layered_topology,
)

__all__ = [
    "BrownoutSpec",
    "CallGraphOrchestrator",
    "GraphEdge",
    "GraphNode",
    "GraphRuntime",
    "GraphScenario",
    "GraphStats",
    "GraphSummary",
    "GraphTopology",
    "RetryPolicy",
    "chain_topology",
    "critical_path_cost",
    "downstream_reservation",
    "edge_network_cost",
    "fanout_topology",
    "layered_topology",
    "node_costs",
    "node_qos_targets",
    "upstream_cost",
]
