"""Per-edge retry budgets with deterministic, deadline-aware give-up.

A retry is only worth issuing while the remaining end-to-end budget can
still cover one more downstream attempt; past that point a retry is a
guaranteed QoS violation that also feeds the overload it is reacting to
(the retry-storm amplification the acceptance gate measures).  The
policy here is a pure value object — ``give_up_reason`` is a total
function of ``(attempts, remaining, attempt_cost)`` with no clock and no
randomness, so retry decisions replay bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Retry budget for one call-graph edge (applied per node attempt)."""

    #: total attempts allowed per node per request (1 = never retry)
    max_attempts: int = 3
    #: linear backoff: the k-th retry waits ``k * backoff_s`` seconds
    backoff_s: float = 0.05
    #: when True, give up as soon as the remaining budget cannot cover
    #: the backoff plus one more downstream attempt (the paper-style
    #: "no retry past the point of no return"); when False the client
    #: retries until its attempt cap or its absolute deadline passes —
    #: the naive baseline the storm gate compares against
    deadline_aware: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_s < 0:
            raise ValueError(f"backoff_s must be >= 0, got {self.backoff_s}")

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Single attempt, no retries (the pre-graph behaviour)."""
        return cls(max_attempts=1)

    @classmethod
    def budgeted(cls, max_attempts: int = 3, backoff_s: float = 0.05) -> "RetryPolicy":
        """The recommended bounded, deadline-aware budget."""
        return cls(max_attempts=max_attempts, backoff_s=backoff_s, deadline_aware=True)

    @classmethod
    def storm(cls) -> "RetryPolicy":
        """Naive high-cap deadline-blind client (acceptance-gate baseline).

        Still bounded (attempt cap + absolute-deadline stop) so the
        simulation terminates; 64 attempts is far past the point where
        retries amplify an overload instead of riding it out.
        """
        return cls(max_attempts=64, backoff_s=0.05, deadline_aware=False)

    def give_up_reason(
        self, attempts: int, remaining: Optional[float], attempt_cost: float
    ) -> Optional[str]:
        """Why the next retry must NOT be issued, or None to allow it.

        ``attempts`` is the number already made, ``remaining`` the
        remaining end-to-end budget (None = no deadline attached) and
        ``attempt_cost`` the critical-path cost of one more attempt at
        this node (service + downstream reservation).  Returns a
        ``RETRY_KINDS`` name: ``"exhausted"`` when the attempt cap is
        spent, ``"deadline_abandoned"`` when the budget cannot cover
        another attempt.
        """
        if attempts >= self.max_attempts:
            return "exhausted"
        backoff = self.backoff_s * attempts
        if remaining is not None:
            if self.deadline_aware:
                if remaining - backoff < attempt_cost:
                    return "deadline_abandoned"
            elif remaining <= backoff:
                # even the naive client stops once its own wall-clock
                # deadline has passed — it just doesn't look ahead
                return "deadline_abandoned"
        return None
