"""Deterministic call-graph topologies (DAG workload family).

A :class:`GraphTopology` is a single-rooted DAG of microservice nodes:
user requests enter at the root, every edge is an RPC hop with a fixed
network cost, and a request completes when *all* nodes have served it
(fan-outs join at their fan-in node).  Topologies are frozen value
objects so they can sit inside a frozen scenario and fingerprint into
the run cache.

Determinism contract: the seeded builders draw every structural choice
and per-edge network cost from a dedicated ``(seed, index)``-keyed
generator — the same idiom ``workloads.fleet`` uses for per-service
streams — so topology ``k`` of seed ``s`` is bit-identical no matter
how many other topologies were built first.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.workloads import MicroserviceSpec, benchmark

__all__ = [
    "GraphEdge",
    "GraphNode",
    "GraphTopology",
    "chain_topology",
    "edge_network_cost",
    "fanout_topology",
    "layered_topology",
]

#: default per-hop RPC/network cost, seconds (same order as the Nameko
#: dispatch overhead the IaaS path already models)
DEFAULT_NETWORK_S = 0.002


@dataclass(frozen=True)
class GraphNode:
    """One microservice in the call graph."""

    name: str
    #: FunctionBench workload this node runs (``benchmark_names()``)
    benchmark: str
    #: multiplier on the benchmark's execution time (and QoS target)
    exec_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("node name must be non-empty")
        if self.exec_scale <= 0:
            raise ValueError(f"{self.name}: exec_scale must be positive, got {self.exec_scale}")

    def spec(self) -> MicroserviceSpec:
        """The node's microservice spec (benchmark renamed to the node)."""
        spec = benchmark(self.benchmark)
        if self.exec_scale != 1.0:
            spec = spec.scaled(self.exec_scale)
        return replace(spec, name=self.name)


@dataclass(frozen=True)
class GraphEdge:
    """A directed RPC hop ``src -> dst`` with a network cost in seconds."""

    src: str
    dst: str
    network_s: float = DEFAULT_NETWORK_S

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-edge on {self.src!r}")
        if self.network_s < 0:
            raise ValueError(f"{self.src}->{self.dst}: network_s must be >= 0")

    @property
    def key(self) -> str:
        """Stable display/counter key for this edge."""
        return f"{self.src}->{self.dst}"


@dataclass(frozen=True)
class GraphTopology:
    """A validated single-rooted DAG of :class:`GraphNode`/:class:`GraphEdge`."""

    nodes: Tuple[GraphNode, ...]
    edges: Tuple[GraphEdge, ...]

    def __post_init__(self) -> None:
        names = [n.name for n in self.nodes]
        if not names:
            raise ValueError("topology needs at least one node")
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate node names: {names}")
        known = set(names)
        seen = set()
        for e in self.edges:
            if e.src not in known or e.dst not in known:
                raise ValueError(f"edge {e.key} references unknown node")
            if (e.src, e.dst) in seen:
                raise ValueError(f"duplicate edge {e.key}")
            seen.add((e.src, e.dst))
        order = self._kahn_order()
        if order is None:
            raise ValueError("topology has a cycle")
        roots = [n for n in names if not self.parents(n)]
        if len(roots) != 1:
            raise ValueError(f"topology must have exactly one root, got {roots}")
        # every node must be reachable from the root (one request visits all)
        reach = {roots[0]}
        for name in order:
            if name in reach:
                for e in self.children(name):
                    reach.add(e.dst)
        if reach != known:
            raise ValueError(f"unreachable nodes: {sorted(known - reach)}")

    # -- structure ---------------------------------------------------------------
    @property
    def root(self) -> str:
        """The unique entry node (no in-edges)."""
        (root,) = [n.name for n in self.nodes if not self.parents(n.name)]
        return root

    def node(self, name: str) -> GraphNode:
        for n in self.nodes:
            if n.name == name:
                return n
        raise KeyError(name)

    def parents(self, name: str) -> Tuple[GraphEdge, ...]:
        """In-edges of ``name``."""
        return tuple(e for e in self.edges if e.dst == name)

    def children(self, name: str) -> Tuple[GraphEdge, ...]:
        """Out-edges of ``name``."""
        return tuple(e for e in self.edges if e.src == name)

    def sinks(self) -> Tuple[str, ...]:
        """Nodes with no out-edges."""
        return tuple(n.name for n in self.nodes if not self.children(n.name))

    def topo_order(self) -> Tuple[str, ...]:
        """A deterministic topological order (node-tuple order breaks ties)."""
        order = self._kahn_order()
        assert order is not None  # __post_init__ proved acyclicity
        return tuple(order)

    def _kahn_order(self) -> Optional[List[str]]:
        indeg: Dict[str, int] = {n.name: 0 for n in self.nodes}
        for e in self.edges:
            indeg[e.dst] += 1
        ready = [name for name in indeg if indeg[name] == 0]
        out: List[str] = []
        while ready:
            name = ready.pop(0)
            out.append(name)
            for e in self.children(name):
                indeg[e.dst] -= 1
                if indeg[e.dst] == 0:
                    ready.append(e.dst)
        return out if len(out) == len(indeg) else None

    def describe(self) -> str:
        """``root -> ... (N nodes, M edges)`` one-liner for logs/figures."""
        return f"{self.root} ({len(self.nodes)} nodes, {len(self.edges)} edges)"


def _node_name(benchmark_name: str, index: int) -> str:
    """Node naming shared by the builders.

    Index 0 keeps the bare benchmark name so a single-node DAG uses the
    exact RNG stream names (``arrivals/<name>``, ``exec/<name>``, ...) a
    flat scenario with the same benchmark uses — that is what makes the
    single-node bit-identity gate possible at all.
    """
    return benchmark_name if index == 0 else f"{benchmark_name}_{index}"


def edge_network_cost(
    seed: int,
    src_index: int,
    dst_index: int,
    median: float = DEFAULT_NETWORK_S,
    sigma: float = 0.35,
) -> float:
    """Lognormal per-edge network cost from a dedicated ``(seed, edge)`` stream.

    Mirrors the fleet idiom: each edge owns generator
    ``default_rng((seed, src, dst))``, so edge costs never depend on how
    many edges were drawn before them.  Config-time draw, not runtime.
    """
    rng = np.random.default_rng((seed, src_index, dst_index))  # simlint: ignore[SIM002]
    return float(median * np.exp(sigma * rng.standard_normal()))


def chain_topology(
    depth: int,
    benchmark_name: str = "matmul",
    network_s: float = DEFAULT_NETWORK_S,
    seed: Optional[int] = None,
) -> GraphTopology:
    """A linear chain ``n0 -> n1 -> ... -> n{depth-1}``.

    With ``seed`` set, each hop's network cost comes from its own
    ``(seed, edge)`` stream instead of the fixed ``network_s``.
    """
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth}")
    nodes = tuple(GraphNode(_node_name(benchmark_name, i), benchmark_name) for i in range(depth))
    edges = tuple(
        GraphEdge(
            nodes[i].name,
            nodes[i + 1].name,
            network_s if seed is None else edge_network_cost(seed, i, i + 1),
        )
        for i in range(depth - 1)
    )
    return GraphTopology(nodes=nodes, edges=edges)


def fanout_topology(
    width: int,
    benchmark_name: str = "matmul",
    network_s: float = DEFAULT_NETWORK_S,
    seed: Optional[int] = None,
) -> GraphTopology:
    """Root fans out to ``width`` parallel nodes that join at one sink."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    root = GraphNode(_node_name(benchmark_name, 0), benchmark_name)
    mids = tuple(
        GraphNode(f"{benchmark_name}_f{i}", benchmark_name) for i in range(width)
    )
    sink = GraphNode(f"{benchmark_name}_join", benchmark_name)
    nodes = (root,) + mids + (sink,)
    sink_index = width + 1
    edges: List[GraphEdge] = []
    for i, mid in enumerate(mids):
        cost = network_s if seed is None else edge_network_cost(seed, 0, i + 1)
        edges.append(GraphEdge(root.name, mid.name, cost))
        cost = network_s if seed is None else edge_network_cost(seed, i + 1, sink_index)
        edges.append(GraphEdge(mid.name, sink.name, cost))
    return GraphTopology(nodes=nodes, edges=edges)


def layered_topology(
    seed: int,
    depth: int,
    width: int,
    benchmarks: Tuple[str, ...] = ("matmul", "float"),
) -> GraphTopology:
    """A seeded layered DAG: 1 root, ``depth-2`` layers of ``width``, 1 sink.

    Every structural draw (node benchmark, parent wiring) comes from a
    per-node ``(seed, node_index)`` generator; per-edge network costs
    from ``(seed, src, dst)`` — so the topology is a pure function of
    its arguments.
    """
    if depth < 3:
        raise ValueError(f"layered topology needs depth >= 3, got {depth}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if not benchmarks:
        raise ValueError("benchmarks must be non-empty")
    # layer layout: [root] + (depth-2) x [width nodes] + [sink]
    layers: List[List[int]] = [[0]]
    idx = 1
    for _ in range(depth - 2):
        layers.append(list(range(idx, idx + width)))
        idx += width
    layers.append([idx])
    n_total = idx + 1

    def bench_of(i: int) -> str:
        if i == 0 or i == n_total - 1:
            return benchmarks[0]
        rng = np.random.default_rng((seed, i))  # simlint: ignore[SIM002]
        return benchmarks[int(rng.integers(len(benchmarks)))]

    nodes = tuple(
        GraphNode(f"{bench_of(i)}_L{i}" if i > 0 else bench_of(0), bench_of(i))
        for i in range(n_total)
    )
    edges: List[GraphEdge] = []
    wired: set = set()
    for layer, members in enumerate(layers[1:], start=1):
        prev = layers[layer - 1]
        fed: set = set()
        for i in members:
            rng = np.random.default_rng((seed, i))  # simlint: ignore[SIM002]
            n_parents = int(rng.integers(1, len(prev) + 1))
            parents = sorted(int(p) for p in rng.choice(prev, size=n_parents, replace=False))
            for p in parents:
                if (p, i) not in wired:
                    wired.add((p, i))
                    edges.append(
                        GraphEdge(nodes[p].name, nodes[i].name, edge_network_cost(seed, p, i))
                    )
                fed.add(p)
        # every node of the previous layer must feed someone, or it would
        # be a second sink; wire leftovers to a deterministic child
        for p in prev:
            if p not in fed:
                rng = np.random.default_rng((seed, n_total + p))  # simlint: ignore[SIM002]
                child = int(members[int(rng.integers(len(members)))])
                if (p, child) not in wired:
                    wired.add((p, child))
                    edges.append(
                        GraphEdge(
                            nodes[p].name, nodes[child].name, edge_network_cost(seed, p, child)
                        )
                    )
    return GraphTopology(nodes=nodes, edges=edges)
