"""The call-graph orchestrator: fan-out, joins, retries, backpressure.

One orchestrator drives all in-flight requests over one
:class:`~repro.graph.topology.GraphTopology` whose nodes are managed
Amoeba services.  The root's open-loop load generator submits into
:meth:`root_submit`; everything downstream is event-driven off query
completion hooks (``Query.on_done``) — no polling, no unbounded loops.

Resilience mechanics (the point of this module):

* **Deadline propagation** — with ``propagate_deadlines`` on, every
  sub-query carries the request's absolute deadline plus the node's
  downstream critical-path reservation, so each node's admission and
  shed checks see the *remaining* budget, not the global target.
* **Bounded retries** — a failed node attempt consults the
  :class:`~repro.graph.retry.RetryPolicy`; deadline-aware give-up means
  no retry is issued once the remaining budget cannot cover one more
  downstream attempt.  Outcomes land in the node's
  ``ServiceMetrics.retries`` family.
* **Graph-aware backpressure** — a dispatch toward a node whose breaker
  is OPEN (brownout) is shed at the edge, before the query enters the
  node's queue: the cascade dies at its origin edge instead of
  amplifying upward as queue growth in every ancestor.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.runtime import ManagedService
from repro.graph.retry import RetryPolicy
from repro.graph.topology import GraphEdge, GraphTopology
from repro.sim import Environment
from repro.telemetry import RETRY_KINDS
from repro.workloads import Query

__all__ = ["CallGraphOrchestrator", "GraphStats"]


class _RequestState:
    """Book-keeping for one in-flight request (dropped once settled)."""

    __slots__ = ("rid", "t_submit", "deadline", "remaining", "pending", "attempts", "finished")

    def __init__(self, rid: int, t_submit: float, deadline: Optional[float], n_nodes: int):
        self.rid = rid
        self.t_submit = t_submit
        #: absolute end-to-end deadline (None = no propagation)
        self.deadline = deadline
        #: nodes that have not completed yet
        self.remaining = n_nodes
        #: per-join-node count of parents still outstanding (lazy init)
        self.pending: Dict[str, int] = {}
        #: attempts consumed per node (includes backpressure sheds)
        self.attempts: Dict[str, int] = {}
        self.finished = False


class GraphStats:
    """Aggregate end-to-end accounting the summary is built from."""

    def __init__(self) -> None:
        self.offered = 0
        self.completed = 0
        self.violations = 0
        self.failed = 0
        #: end-to-end latency of each completed request, completion order
        self.latencies: List[float] = []
        #: requests that died at each node (give-up after drops/sheds)
        self.failed_by_node: Dict[str, int] = {}
        #: dispatches shed at an edge because the target was browned out
        self.backpressure_sheds: Dict[str, int] = {}
        #: retries issued per node
        self.retries_by_node: Dict[str, int] = {}


class CallGraphOrchestrator:
    """Runs requests through a DAG of managed services."""

    def __init__(
        self,
        env: Environment,
        topology: GraphTopology,
        e2e_target: float,
        retry: Optional[RetryPolicy] = None,
        reservations: Optional[Dict[str, float]] = None,
        costs: Optional[Dict[str, float]] = None,
        backpressure: bool = True,
        propagate_deadlines: bool = True,
    ) -> None:
        if e2e_target <= 0:
            raise ValueError(f"e2e_target must be positive, got {e2e_target}")
        self.env = env
        self.topology = topology
        self.e2e_target = e2e_target
        self.retry = retry if retry is not None else RetryPolicy.none()
        self.backpressure = backpressure
        self.propagate_deadlines = propagate_deadlines
        self.reservations = dict(reservations) if reservations is not None else {}
        self.costs = dict(costs) if costs is not None else {}
        self.services: Dict[str, ManagedService] = {}
        self.stats = GraphStats()
        self._root = topology.root
        self._n_nodes = len(topology.nodes)
        self._children: Dict[str, Tuple[GraphEdge, ...]] = {
            n.name: topology.children(n.name) for n in topology.nodes
        }
        self._parent_count: Dict[str, int] = {
            n.name: len(topology.parents(n.name)) for n in topology.nodes
        }
        self._states: Dict[int, _RequestState] = {}

    def register(self, name: str, managed: ManagedService) -> None:
        """Attach the managed service behind one topology node."""
        if name not in self._children:
            raise KeyError(f"{name!r} is not a topology node")
        self.services[name] = managed

    # -- ingress ----------------------------------------------------------------
    def root_submit(self, query: Query) -> None:
        """Load-generator submit target for the root node.

        Pure bookkeeping before ``engine.route`` — no RNG draws and no
        event scheduling — so a single-node graph replays the flat
        scenario's event sequence bit-for-bit.
        """
        state = _RequestState(
            rid=query.qid,
            t_submit=query.t_submit,
            deadline=(query.t_submit + self.e2e_target) if self.propagate_deadlines else None,
            n_nodes=self._n_nodes,
        )
        self.stats.offered += 1
        self._states[query.qid] = state
        self._attempt(self._root, state, via=None, query=query)

    # -- per-node attempts -------------------------------------------------------
    def _attempt(
        self,
        node: str,
        state: _RequestState,
        via: Optional[GraphEdge],
        query: Optional[Query] = None,
    ) -> None:
        """Issue one attempt at ``node`` (breaker-checked for interior nodes)."""
        if self.backpressure and via is not None and self._browned_out(node):
            # shed at the ingress edge: the attempt is consumed without
            # the query ever entering the browned-out node's queue
            state.attempts[node] = state.attempts.get(node, 0) + 1
            key = via.key
            self.stats.backpressure_sheds[key] = self.stats.backpressure_sheds.get(key, 0) + 1
            self._after_failure(node, state, via)
            return
        state.attempts[node] = state.attempts.get(node, 0) + 1
        if query is None:
            query = Query(qid=state.rid, service=node, t_submit=self.env.now)
        if state.deadline is not None:
            query.t_deadline = state.deadline
            query.reserved = self.reservations.get(node, 0.0)
        query.on_done = self._settle_hook(node, state, via)
        self.services[node].engine.route(query)

    def _settle_hook(
        self, node: str, state: _RequestState, via: Optional[GraphEdge]
    ) -> Callable[[Query], None]:
        def settled(query: Query) -> None:
            if state.finished:
                return
            if query.failed:
                self._after_failure(node, state, via)
            else:
                self._node_completed(node, state)

        return settled

    def _browned_out(self, node: str) -> bool:
        return self.services[node].engine.in_brownout()

    # -- failure / retry ---------------------------------------------------------
    def _after_failure(self, node: str, state: _RequestState, via: Optional[GraphEdge]) -> None:
        """One attempt at ``node`` failed (platform drop or edge shed)."""
        attempts = state.attempts[node]
        remaining = None if state.deadline is None else state.deadline - self.env.now
        attempt_cost = self.costs.get(node, 0.0) + self.reservations.get(node, 0.0)
        reason = self.retry.give_up_reason(attempts, remaining, attempt_cost)
        metrics = self.services[node].metrics
        if reason is None:
            metrics.record_retry("attempted")
            self.stats.retries_by_node[node] = self.stats.retries_by_node.get(node, 0) + 1
            backoff = self.retry.backoff_s * attempts
            self.env.schedule_callback(backoff, lambda: self._retry(node, state, via))
            return
        assert reason in RETRY_KINDS
        if attempts > 1 or reason != "exhausted":
            # "exhausted" after a single allowed attempt is just a
            # no-retry policy doing nothing; don't count it as give-up
            metrics.record_retry(reason)
        self._fail_request(node, state)

    def _retry(self, node: str, state: _RequestState, via: Optional[GraphEdge]) -> None:
        if state.finished:
            return
        self._attempt(node, state, via)

    def _fail_request(self, node: str, state: _RequestState) -> None:
        state.finished = True
        self._states.pop(state.rid, None)
        self.stats.failed += 1
        self.stats.failed_by_node[node] = self.stats.failed_by_node.get(node, 0) + 1

    # -- completion / fan-out ----------------------------------------------------
    def _node_completed(self, node: str, state: _RequestState) -> None:
        state.remaining -= 1
        for edge in self._children[node]:
            self._forward(edge, state)
        if state.remaining == 0 and not state.finished:
            self._succeed(state)

    def _forward(self, edge: GraphEdge, state: _RequestState) -> None:
        self.env.schedule_callback(edge.network_s, lambda: self._arrive(edge, state))

    def _arrive(self, edge: GraphEdge, state: _RequestState) -> None:
        if state.finished:
            return
        node = edge.dst
        pending = state.pending.get(node, self._parent_count[node]) - 1
        state.pending[node] = pending
        if pending > 0:
            return  # join: wait for the remaining parents
        self._attempt(node, state, via=edge)

    def _succeed(self, state: _RequestState) -> None:
        state.finished = True
        self._states.pop(state.rid, None)
        latency = self.env.now - state.t_submit
        self.stats.completed += 1
        self.stats.latencies.append(latency)
        if latency > self.e2e_target:
            self.stats.violations += 1
