"""Deadline-budget propagation down the call graph's critical path.

The end-to-end target ``T`` a user request carries must be split across
the nodes it visits.  Two quantities drive everything here:

* ``downstream_reservation(v)`` — the critical-path cost *below* node
  ``v`` (max over out-edges of network + child cost + child's own
  reservation).  A query arriving at ``v`` with absolute deadline ``D``
  therefore has local budget ``D - now - reservation(v)``: time ``v``
  may spend before the downstream work is mathematically late.  That is
  the budget the admission check and the shed check see (via
  ``Query.local_budget``), not the global target.

* ``node_qos_targets`` — a static per-node split of ``T`` proportional
  to each node's share of the critical path through it.  The controller
  and governor are per-service and reason about a scalar QoS target;
  this gives them one that is consistent with the end-to-end goal.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.graph.topology import GraphTopology

__all__ = [
    "critical_path_cost",
    "downstream_reservation",
    "node_costs",
    "node_qos_targets",
    "upstream_cost",
]

#: a per-node QoS target must stay strictly above the node's execution
#: time (MicroserviceSpec invariant); this is the enforced headroom
QOS_FLOOR_FACTOR = 1.5


def node_costs(topology: GraphTopology) -> Dict[str, float]:
    """Expected one-attempt service cost of each node (spec exec time)."""
    return {n.name: n.spec().exec_time for n in topology.nodes}


def downstream_reservation(
    topology: GraphTopology, costs: Optional[Dict[str, float]] = None
) -> Dict[str, float]:
    """Critical-path seconds reserved below each node (0 for sinks).

    Reverse-topological pass:
    ``res[v] = max over (v->c) of network(v,c) + cost(c) + res[c]``.
    """
    if costs is None:
        costs = node_costs(topology)
    res: Dict[str, float] = {}
    for name in reversed(topology.topo_order()):
        res[name] = max(
            (e.network_s + costs[e.dst] + res[e.dst] for e in topology.children(name)),
            default=0.0,
        )
    return res


def upstream_cost(
    topology: GraphTopology, costs: Optional[Dict[str, float]] = None
) -> Dict[str, float]:
    """Critical-path seconds spent *before* each node starts (0 for the root).

    Forward pass: ``up[v] = max over (p->v) of up[p] + cost(p) + network``.
    """
    if costs is None:
        costs = node_costs(topology)
    up: Dict[str, float] = {}
    for name in topology.topo_order():
        up[name] = max(
            (up[e.src] + costs[e.src] + e.network_s for e in topology.parents(name)),
            default=0.0,
        )
    return up


def critical_path_cost(topology: GraphTopology) -> float:
    """Total service + network cost along the longest root-to-sink path."""
    costs = node_costs(topology)
    root = topology.root
    return costs[root] + downstream_reservation(topology, costs)[root]


def node_qos_targets(topology: GraphTopology, e2e_target: float) -> Dict[str, float]:
    """Split an end-to-end target into per-node scalar QoS targets.

    Node ``v`` gets ``T * cost(v) / cp_through(v)`` where
    ``cp_through(v) = up(v) + cost(v) + res(v)`` is the critical path
    through ``v`` — i.e. its fair share of the budget along the tightest
    path it sits on.  The result is clamped to
    ``QOS_FLOOR_FACTOR * exec_time`` so the derived spec stays valid
    even for an infeasibly tight ``T``.
    """
    if e2e_target <= 0:
        raise ValueError(f"e2e_target must be positive, got {e2e_target}")
    costs = node_costs(topology)
    res = downstream_reservation(topology, costs)
    up = upstream_cost(topology, costs)
    targets: Dict[str, float] = {}
    for name, cost in costs.items():
        through = up[name] + cost + res[name]
        share = e2e_target * cost / through
        targets[name] = max(share, QOS_FLOOR_FACTOR * cost)
    return targets
