"""Frozen scenario + summary value objects for call-graph runs.

``GraphScenario`` is the cache-fingerprint unit for the ``dag`` sweep:
everything that shapes a run — topology, root trace, end-to-end target,
resilience knobs, fault/overload plans, the optional mid-graph brownout
— lives in one frozen dataclass, so the content-addressed run cache and
the ``float.hex`` determinism gates treat graph runs exactly like flat
ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.faults import FaultPlan
from repro.graph.retry import RetryPolicy
from repro.graph.topology import GraphTopology
from repro.overload import OverloadPolicy
from repro.workloads import Trace

__all__ = ["BrownoutSpec", "GraphScenario", "GraphSummary"]


@dataclass(frozen=True)
class BrownoutSpec:
    """A rectangular burst of interfering load aimed at one node.

    Drives ``rate`` extra queries/s straight into the node's engine for
    ``[t_start, t_end)`` — the mid-chain overload that trips the node's
    breaker and lets the cascade scenarios exercise backpressure.
    """

    node: str
    t_start: float
    t_end: float
    rate: float

    def __post_init__(self) -> None:
        if self.t_end <= self.t_start:
            raise ValueError(f"empty brownout window [{self.t_start}, {self.t_end})")
        if self.rate <= 0:
            raise ValueError(f"brownout rate must be positive, got {self.rate}")


@dataclass(frozen=True)
class GraphScenario:
    """One reproducible call-graph experiment."""

    name: str
    topology: GraphTopology
    trace: Trace
    #: end-to-end latency target for the whole graph, seconds
    e2e_target: float
    duration: float
    seed: int
    #: None = single attempt per node (no retries)
    retry: Optional[RetryPolicy] = None
    backpressure: bool = True
    propagate_deadlines: bool = True
    faults: Optional[FaultPlan] = None
    overload: Optional[OverloadPolicy] = None
    #: rate the per-node IaaS rentals are sized for (None = trace peak)
    iaas_peak_rate: Optional[float] = None
    #: latency-reservoir override for long/hot runs
    reservoir: Optional[int] = None
    #: per-node serverless concurrency limits, aligned with
    #: ``topology.nodes`` order (None = platform default)
    limits: Optional[Tuple[Optional[int], ...]] = None
    brownout: Optional[BrownoutSpec] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.e2e_target <= 0:
            raise ValueError(f"e2e_target must be positive, got {self.e2e_target}")
        names = {n.name for n in self.topology.nodes}
        if self.limits is not None and len(self.limits) != len(self.topology.nodes):
            raise ValueError(
                f"limits has {len(self.limits)} entries for {len(self.topology.nodes)} nodes"
            )
        if self.brownout is not None and self.brownout.node not in names:
            raise ValueError(f"brownout node {self.brownout.node!r} not in topology")


@dataclass(frozen=True)
class GraphSummary:
    """End-to-end outcome of one graph run (orchestrator accounting)."""

    e2e_target: float
    #: requests the root generator offered
    offered: int
    #: requests for which every node completed
    completed: int
    #: completed requests whose end-to-end latency blew the target
    violations: int
    #: requests abandoned after a node's retry budget gave up
    failed: int
    #: end-to-end latencies of completed requests, completion order
    #: (tuple of floats — the unit the hex-identity gates compare)
    latencies: Tuple[float, ...]
    failed_by_node: Dict[str, int] = field(default_factory=dict)
    #: aggregated ServiceMetrics retry family over all nodes
    retries: Dict[str, int] = field(default_factory=dict)
    #: per-edge dispatches shed because the target node was browned out
    backpressure_sheds: Dict[str, int] = field(default_factory=dict)

    @property
    def violation_fraction(self) -> float:
        """QoS-violating fraction of completed requests."""
        return self.violations / self.completed if self.completed else 0.0

    @property
    def violation_fraction_with_failures(self) -> float:
        """Failures count as violations (a dead request met no deadline)."""
        finished = self.completed + self.failed
        return (self.violations + self.failed) / finished if finished else 0.0

    @property
    def total_backpressure_sheds(self) -> int:
        return sum(self.backpressure_sheds.values())

    def p95(self) -> float:
        """Empirical 95th-percentile end-to-end latency (0.0 if empty)."""
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        rank = max(0, min(len(ordered) - 1, int(0.95 * len(ordered)) - 1))
        return ordered[rank]
