"""Serverless front end: per-query platform overheads before dispatch.

Every invocation pays an authentication/scheduling overhead before it
reaches the container pool's FIFO queue (paper Fig. 4's "processing"
stage; code loading and result posting are paid inside the container and
accounted by the pool).  The front end also stamps arrival telemetry so
the controller's load estimate reflects offered load, not completed load.
"""

from __future__ import annotations

from repro.serverless.pool import ContainerPool, FunctionState
from repro.serverless.config import ServerlessConfig
from repro.sim import Environment, RngRegistry
from repro.workloads import Query

__all__ = ["Frontend"]


class Frontend:
    """Entry point for invocations on the serverless platform."""

    def __init__(
        self,
        env: Environment,
        pool: ContainerPool,
        config: ServerlessConfig,
        rng: RngRegistry,
    ) -> None:
        self.env = env
        self.pool = pool
        self.config = config
        self.rng = rng
        self.accepted = 0
        #: queries rejected at admission (overload layer)
        self.rejected = 0
        #: per-service overhead samplers, built lazily (stream identity is
        #: name-keyed, so caching the sampler changes no draw sequence)
        self._proc_draw: dict = {}

    def invoke(self, query: Query) -> None:
        """Accept one query: pay the processing overhead, then enqueue.

        The admission delay is a plain scheduled callback, not a process —
        one query is three kernel events cheaper that way.  Drawing the
        overhead here instead of at a process bootstrap keeps the
        per-service RNG stream's draw order keyed to invoke() order, which
        is the order the bootstrap events replayed anyway.

        Admission happens *before* the overhead draw, yet draw order is
        preserved for the bit-identity gates: a disabled policy rejects
        nothing, so the per-service stream sees the same invoke() order.
        """
        fs = self.pool.state(query.service)
        if fs.metrics is not None:
            fs.metrics.record_arrival(self.env.now, canary=query.canary)
        gov = fs.overload
        if gov is not None:
            reason = gov.admit_serverless(
                queued=len(fs.queue),
                busy=fs.n_busy,
                capacity=self.pool.n_max(query.service),
                now=self.env.now,
                deadline=query.local_budget(self.env.now),
            )
            if reason is not None:
                self._reject(fs, query, reason)
                return
        self.accepted += 1
        if not query.canary:
            # conservation census: terminal paths in the pool decrement
            fs.user_in_flight += 1
        draw = self._proc_draw.get(query.service)
        if draw is None:
            draw = self._proc_draw[query.service] = self.rng.lognormal_sampler(
                f"proc/{query.service}",
                self.config.proc_overhead_median,
                self.config.proc_overhead_sigma,
            )
        proc = draw()

        def deliver() -> None:
            query.breakdown["proc"] = proc
            self.pool.submit(query)

        self.env.schedule_callback(proc, deliver)

    def _reject(self, fs: FunctionState, query: Query, reason: str) -> None:
        """Drop one arrival at the door (reason ``admission``/``breaker``)."""
        self.rejected += 1
        query.failed = True
        query.t_complete = self.env.now
        query.served_by = "serverless"
        if fs.metrics is not None:
            fs.metrics.record_drop(query, reason)
        assert fs.overload is not None
        if not query.canary:
            fs.overload.note_rejection(reason, self.env.now)
        query.notify_done()
