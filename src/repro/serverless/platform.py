"""Facade over the serverless node: machine + pool + front end.

One :class:`ServerlessPlatform` corresponds to the paper's shared
serverless node: a single :class:`~repro.cluster.resource_model.MachineModel`
whose containers all contend for the node's cores, disk and NIC, a
memory-capped :class:`~repro.serverless.pool.ContainerPool`, and a
:class:`~repro.serverless.frontend.Frontend`.  Amoeba's engine, the pure
OpenWhisk baseline and the contention meters all talk to this facade.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster import ContentionConfig, MachineModel, NodeSpec, UsageLedger
from repro.faults import FaultInjector
from repro.overload import OverloadGovernor
from repro.serverless.config import ServerlessConfig
from repro.serverless.frontend import Frontend
from repro.serverless.pool import ContainerPool, FunctionState
from repro.sim import Environment, Event, RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads import MicroserviceSpec, Query

__all__ = ["ServerlessPlatform"]


class ServerlessPlatform:
    """The shared serverless node (paper: modified OpenWhisk)."""

    def __init__(
        self,
        env: Environment,
        rng: RngRegistry,
        node: Optional[NodeSpec] = None,
        config: Optional[ServerlessConfig] = None,
        contention: Optional[ContentionConfig] = None,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.env = env
        self.rng = rng
        self.faults = faults
        self.node = node if node is not None else NodeSpec(name="serverless")
        self.config = config if config is not None else ServerlessConfig()
        if self.config.pool_memory_mb > self.node.memory_mb:
            raise ValueError("pool memory exceeds node memory")
        self.machine = MachineModel(
            env,
            cores=self.node.cores,
            io_mbps=self.node.disk_mbps,
            net_mbps=self.node.net_mbps,
            config=contention,
        )
        self.pool = ContainerPool(env, self.machine, self.config, rng, faults=faults)
        self.frontend = Frontend(env, self.pool, self.config, rng)

    # -- registration / invocation ------------------------------------------
    def register(
        self,
        spec: MicroserviceSpec,
        metrics: Optional[ServiceMetrics] = None,
        ledger: Optional[UsageLedger] = None,
        limit: Optional[int] = None,
        keep_alive: Optional[float] = None,
        overload: Optional[OverloadGovernor] = None,
    ) -> FunctionState:
        """Deploy a function; see :meth:`ContainerPool.register`."""
        return self.pool.register(
            spec,
            metrics=metrics,
            ledger=ledger,
            limit=limit,
            keep_alive=keep_alive,
            overload=overload,
        )

    def invoke(self, query: Query) -> None:
        """Submit a query to the platform (open loop)."""
        self.frontend.invoke(query)

    # -- Amoeba control surface ------------------------------------------------
    def prewarm(self, name: str, count: int) -> Event:
        """Warm ``count`` containers; event fires on ack (paper §V-B).

        Under fault injection the *acknowledgement path* can fail even
        when the warming itself succeeds: the returned event may fire
        late or never, and the engine's ack deadline is what recovers.
        """
        ack = self.pool.prewarm(name, count)
        if self.faults is not None:
            ack = self.faults.filter_prewarm_ack(name, ack, self.env)
        return ack

    def n_max(self, name: str) -> int:
        """Paper §IV-A container cap for ``name``."""
        return self.pool.n_max(name)

    # -- observability -----------------------------------------------------------
    def pressures(self) -> tuple[float, float, float]:
        """(cpu, io, net) pressure on the shared node."""
        return self.machine.pressures()

    def warm_count(self, name: str) -> int:
        """Idle warm containers for ``name``."""
        return self.pool.warm_count(name)

    def queue_length(self, name: str) -> int:
        """Pending invocations for ``name``."""
        return self.pool.queue_length(name)

    def function_ledger(self, name: str) -> UsageLedger:
        """Per-function vendor-side usage ledger."""
        return self.pool.state(name).ledger
