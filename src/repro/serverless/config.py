"""Serverless platform configuration constants.

Defaults follow the paper where it gives numbers (256 MB containers,
cold starts of one to three seconds, §V-A) and OpenWhisk conventions
elsewhere (warm-container keep-alive).  Front-end overheads are sized so
that the Fig. 4 breakdown lands in the paper's 10–45 % band; the exact
values are calibration, recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServerlessConfig"]


@dataclass(frozen=True)
class ServerlessConfig:
    """Tunable constants of the simulated serverless platform."""

    #: memory available to the container pool, MB (Table II node: 256 GB;
    #: the pool gets the node minus system reserve)
    pool_memory_mb: float = 240 * 1024.0
    #: per-container memory, MB (Table II: 256 MB)
    container_memory_mb: float = 256.0
    #: default per-function concurrent-container cap (the paper's
    #: "concurrent request threshold" limits, §I)
    concurrency_limit: int = 64
    #: cold-start duration: median seconds and lognormal sigma
    #: (paper §V-A: "one to three seconds")
    cold_start_median: float = 1.4
    cold_start_sigma: float = 0.30
    #: disk bandwidth a cold container's image/code pull tries to use, MB/s
    cold_load_mbps: float = 300.0
    #: effective bandwidth for per-query (warm) code/data loading, MB/s
    #: (calibrated so the Fig. 4 overhead share lands in the paper's
    #: 10-45% band across the benchmark suite)
    warm_load_mbps: float = 800.0
    #: idle warm container lifetime before reaping, seconds
    keep_alive: float = 60.0
    #: front-end authentication/scheduling overhead: median s, sigma
    proc_overhead_median: float = 0.010
    proc_overhead_sigma: float = 0.25
    #: result posting: fixed part (s) and effective bandwidth (MB/s)
    post_overhead_base: float = 0.005
    post_mbps: float = 500.0
    #: CPU a warm-idle container burns (runtime heartbeat), cores
    idle_cpu: float = 0.01
    #: CPU used by the front-end per query, cores (during proc overhead)
    frontend_cpu: float = 0.05

    def __post_init__(self) -> None:
        if self.container_memory_mb <= 0 or self.pool_memory_mb < self.container_memory_mb:
            raise ValueError("pool must fit at least one container")
        if self.concurrency_limit < 1:
            raise ValueError("concurrency_limit must be >= 1")
        for attr in (
            "cold_start_median",
            "cold_load_mbps",
            "warm_load_mbps",
            "keep_alive",
            "proc_overhead_median",
            "post_mbps",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        for attr in ("cold_start_sigma", "proc_overhead_sigma", "post_overhead_base", "idle_cpu", "frontend_cpu"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")

    @property
    def max_containers_by_memory(self) -> int:
        """Hard cap on concurrent containers from pool memory."""
        return int(self.pool_memory_mb // self.container_memory_mb)
