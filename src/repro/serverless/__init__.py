"""Serverless platform simulator (the paper's modified Apache OpenWhisk).

Structure mirrors the real thing at the granularity the paper's analysis
needs (Figs. 4, 5 and 7):

* :mod:`repro.serverless.config` — platform constants (container memory,
  cold-start distribution, keep-alive, front-end overheads).
* :mod:`repro.serverless.container` — single-concurrency container FSM
  (initializing → idle → busy → dead) with keep-alive reaping.
* :mod:`repro.serverless.pool` — memory-capped, per-function container
  pool: FIFO dispatch, cold-start pledging, prewarming.
* :mod:`repro.serverless.frontend` — per-query platform overheads
  (authentication/processing, code loading, result posting).
* :mod:`repro.serverless.platform` — the facade gluing the above to a
  :class:`~repro.cluster.resource_model.MachineModel`.
"""

from repro.serverless.config import ServerlessConfig
from repro.serverless.container import Container, ContainerState
from repro.serverless.platform import ServerlessPlatform

__all__ = ["Container", "ContainerState", "ServerlessConfig", "ServerlessPlatform"]
