"""Container lifecycle.

A container executes at most one invocation at a time (paper §V-A: "most
serverless platforms allow only one execution at a time in a container").
States:

``INITIALIZING``  cold start in progress (runtime boot + code pull)
``IDLE``          warm, waiting for work; reaped after ``keep_alive``
``BUSY``          executing one invocation
``DEAD``          reaped (memory returned to the pool)
``CRASHED``       died mid-query under fault injection (terminal, like
                  DEAD; memory already returned — the query it carried
                  is retried or dropped by the pool's fault policy)

The pool drives transitions; the container only owns its identity,
timestamps and its keep-alive deadline (``reap_at``).  Expiry is enforced
by the pool's single per-function reaper timer, so parking or re-using a
container never touches the event heap.
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.workloads import MicroserviceSpec

__all__ = ["Container", "ContainerState"]

_ids = itertools.count()


class ContainerState(enum.Enum):
    """Lifecycle states of a serverless container."""

    INITIALIZING = "initializing"
    IDLE = "idle"
    BUSY = "busy"
    DEAD = "dead"
    CRASHED = "crashed"


class Container:
    """One single-concurrency container bound to a function."""

    __slots__ = ("cid", "spec", "state", "created_at", "warm_since", "invocations", "reap_at", "prewarmed")

    def __init__(self, spec: "MicroserviceSpec", created_at: float, prewarmed: bool = False) -> None:
        self.cid = next(_ids)
        self.spec = spec
        self.state = ContainerState.INITIALIZING
        self.created_at = created_at
        self.warm_since: Optional[float] = None
        self.invocations = 0
        #: sim time this container expires while IDLE; meaningful only
        #: while parked in the pool's idle deque (park order == deadline
        #: order, which is what lets one timer cover the whole function)
        self.reap_at: float = 0.0
        #: True if created by the prewarm module (Fig. 16 accounting)
        self.prewarmed = prewarmed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Container #{self.cid} {self.spec.name} {self.state.value}>"
