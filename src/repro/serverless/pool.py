"""Memory-capped, per-function container pool with FIFO dispatch.

Scheduling policy (paper Fig. 7): each function has a FIFO queue of
pending invocations.  An arriving invocation takes a warm idle container
if one exists; otherwise, if pool memory and the function's concurrency
limit allow, a *cold start is pledged* — a new container begins
initializing and will take the oldest queued invocation when ready.
Invocations that can do neither wait in the queue for the next container
to free up.

Cold starts take the paper's one-to-three seconds (runtime boot) plus a
code pull that *contends for disk bandwidth* on the shared machine model,
so heavy IO tenants lengthen cold starts — one of the cross-resource
effects the contention monitor exists to capture.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, Iterator, Optional, Tuple

from repro.cluster import DemandVector, MachineModel, SensitivityVector, UsageLedger
from repro.faults import FaultInjector
from repro.overload import OverloadGovernor
from repro.serverless.config import ServerlessConfig
from repro.serverless.container import Container, ContainerState
from repro.sim import Environment, Event, RngRegistry, TimeSeries
from repro.sim.events import Callback
from repro.telemetry import ServiceMetrics
from repro.workloads import MicroserviceSpec, Query

__all__ = ["ContainerPool", "FunctionState"]

#: demand one cold-starting container's code pull places on the machine
_COLD_PULL_SENS = SensitivityVector(cpu=0.1, io=1.0, net=0.0)


@dataclass
class FunctionState:
    """Pool-side bookkeeping for one registered function."""

    spec: MicroserviceSpec
    metrics: Optional[ServiceMetrics]
    ledger: UsageLedger
    limit: int
    #: idle-container lifetime; None = the pool default.  Zero disables
    #: warm reuse entirely (every query cold starts — Amoeba-NoP's world).
    keep_alive: Optional[float] = None
    #: pending invocations.  Bounded by the overload layer at admission
    #: when a policy is enabled; open-loop baselines deliberately measure
    #: the unbounded backlog (tests/serverless/test_pool_overload.py).
    queue: Deque[Tuple[Query, float]] = field(default_factory=deque)  # simlint: ignore[SIM010]
    idle: Deque[Container] = field(default_factory=deque)
    n_init: int = 0
    n_busy: int = 0
    cold_starts: int = 0
    completions: int = 0
    #: accepted, non-canary queries not yet terminal anywhere in the
    #: platform (front-end delay, queue, container, retry backoff) — the
    #: serverless half of the invariant monitor's conservation census
    user_in_flight: int = 0
    #: total billed execution seconds (code load + execution + posting),
    #: the maintainer-side GB-second basis (see repro.cluster.pricing)
    busy_seconds: float = 0.0
    #: shared per-microservice overload governor (None = no protection)
    overload: Optional[OverloadGovernor] = None
    #: queue-depth observability, sampled on every enqueue/dequeue
    queue_depth: TimeSeries = field(default_factory=lambda: TimeSeries(min_interval=1.0))
    #: exact high-water mark (the TimeSeries decimates, this does not)
    peak_queue_depth: int = 0
    #: events fired when an in-flight cold start turns warm (prewarm acks)
    _ready_events: Deque[Event] = field(default_factory=deque)
    #: the single armed keep-alive reaper timer (None when disarmed) and
    #: the deadline it is armed for — one timer per function, not one per
    #: idle container (see ContainerPool._arm_reaper)
    _reap_timer: Optional[Event] = None
    _reap_deadline: float = math.inf
    #: cached per-function RNG samplers (built at registration; stream
    #: identity is name-keyed, so caching changes no draw sequence)
    _warm_draw: Optional[Callable[[], float]] = None
    _exec_draw: Optional[Callable[[], float]] = None

    @property
    def total_containers(self) -> int:
        """Containers currently alive for this function (any state)."""
        return self.n_init + self.n_busy + len(self.idle)

    @property
    def warm_or_warming(self) -> int:
        """Idle plus initializing containers (prewarm deficit basis)."""
        return self.n_init + len(self.idle)


class ContainerPool:
    """All container lifecycle and dispatch for one serverless node."""

    def __init__(
        self,
        env: Environment,
        machine: MachineModel,
        config: ServerlessConfig,
        rng: RngRegistry,
        faults: Optional[FaultInjector] = None,
    ) -> None:
        self.env = env
        self.machine = machine
        self.config = config
        self.rng = rng
        self.faults = faults
        self._functions: Dict[str, FunctionState] = {}
        self._container_memory_in_use = 0.0

    # -- registration -------------------------------------------------------
    def register(
        self,
        spec: MicroserviceSpec,
        metrics: Optional[ServiceMetrics] = None,
        ledger: Optional[UsageLedger] = None,
        limit: Optional[int] = None,
        keep_alive: Optional[float] = None,
        overload: Optional[OverloadGovernor] = None,
    ) -> FunctionState:
        """Make ``spec`` invocable; returns its pool state."""
        if spec.name in self._functions:
            raise ValueError(f"function {spec.name!r} already registered")
        if keep_alive is not None and keep_alive < 0:
            raise ValueError(f"keep_alive must be >= 0, got {keep_alive}")
        fs = FunctionState(
            spec=spec,
            metrics=metrics,
            ledger=ledger if ledger is not None else UsageLedger(self.env, f"sls/{spec.name}"),
            limit=limit if limit is not None else self.config.concurrency_limit,
            keep_alive=keep_alive,
            overload=overload,
        )
        fs._warm_draw = self.rng.lognormal_sampler(f"warmload/{spec.name}", 1.0, 0.15)
        fs._exec_draw = self.rng.lognormal_sampler(
            f"exec/{spec.name}", spec.exec_time, spec.exec_sigma
        )
        self._functions[spec.name] = fs
        return fs

    def state(self, name: str) -> FunctionState:
        """Pool state of a registered function."""
        try:
            return self._functions[name]
        except KeyError:
            raise KeyError(f"function {name!r} not registered") from None

    @property
    def container_memory_in_use(self) -> float:
        """Total MB held by live containers across all functions."""
        return self._container_memory_in_use

    def n_max(self, name: str) -> int:
        """Paper §IV-A upper container limit for one function.

        ``n_max = min(concurrency limit, free-memory bound)`` — the
        free-memory bound counts this function's own containers as
        reusable.
        """
        fs = self.state(name)
        free_mb = self.config.pool_memory_mb - self._container_memory_in_use
        own_mb = fs.total_containers * self.config.container_memory_mb
        mem_bound = int((free_mb + own_mb) // self.config.container_memory_mb)
        return min(fs.limit, mem_bound)

    # -- submission -----------------------------------------------------------
    def submit(self, query: Query) -> None:
        """Enqueue one invocation (front-end overhead already paid)."""
        fs = self.state(query.service)
        fs.queue.append((query, self.env.now))
        self._note_queue(fs)
        self._pump(fs)

    def _pump(self, fs: FunctionState) -> None:
        """Restore the dispatch invariant for one function."""
        # serve queued work with idle containers
        while fs.queue and fs.idle:
            nxt = self._take(fs)
            if nxt is None:
                break
            container = fs.idle.popleft()
            self._assign(fs, container, nxt[0], nxt[1])
        # pledge cold starts for backlog not already covered by warming ones
        while len(fs.queue) > fs.n_init and self._can_launch(fs):
            self._launch(fs)

    def _note_queue(self, fs: FunctionState) -> None:
        """Sample the queue depth into the observability timeline."""
        depth = len(fs.queue)
        fs.queue_depth.record(self.env.now, float(depth))
        if depth > fs.peak_queue_depth:
            fs.peak_queue_depth = depth

    def _take(self, fs: FunctionState) -> Optional[Tuple[Query, float]]:
        """Pop the next servable invocation, shedding expired ones.

        Every dequeue path goes through here so the queue-wait budget is
        enforced uniformly: a query whose accumulated wait already
        exceeds ``overload.wait_budget`` is dead on arrival at a server
        and is dropped (reason ``shed``) rather than occupying one.
        """
        gov = fs.overload
        while fs.queue:
            query, t_enq = fs.queue.popleft()
            self._note_queue(fs)
            if gov is not None and gov.should_shed(
                self.env.now - t_enq, target=query.local_budget(t_enq)
            ):
                self._shed(fs, query, self.env.now - t_enq)
                continue
            return query, t_enq
        return None

    def _shed(self, fs: FunctionState, query: Query, waited: float) -> None:
        """Drop one expired queued query."""
        query.breakdown["queue"] = waited
        query.failed = True
        query.t_complete = self.env.now
        query.served_by = "serverless"
        if fs.metrics is not None:
            fs.metrics.record_drop(query, "shed")
        if fs.overload is not None and not query.canary:
            fs.overload.note_rejection("shed", self.env.now)
        if not query.canary:
            fs.user_in_flight -= 1
        query.notify_done()

    def _can_launch(self, fs: FunctionState) -> bool:
        cfg = self.config
        fits = self._container_memory_in_use + cfg.container_memory_mb <= cfg.pool_memory_mb
        return fits and fs.total_containers < fs.limit

    # -- container lifecycle ----------------------------------------------------
    def _launch(self, fs: FunctionState, prewarmed: bool = False) -> Event:
        """Begin a cold start; returns an event fired when the container is warm."""
        cfg = self.config
        container = Container(fs.spec, self.env.now, prewarmed=prewarmed)
        fs.n_init += 1
        fs.cold_starts += 1
        self._container_memory_in_use += cfg.container_memory_mb
        fs.ledger.acquire(cfg.idle_cpu, cfg.container_memory_mb)
        ready = self.env.event()
        fs._ready_events.append(ready)
        self.env.process(self._cold_start(fs, container, ready))
        return ready

    def _cold_start(self, fs: FunctionState, container: Container, ready: Event) -> Iterator[Event]:
        cfg = self.config
        attempts = 0
        while True:
            boot = self.rng.lognormal_around(
                f"coldstart/{fs.spec.name}", cfg.cold_start_median, cfg.cold_start_sigma
            )
            yield self.env.timeout(boot)
            # code/image pull contends for disk bandwidth
            pull_work = fs.spec.code_mb / cfg.cold_load_mbps
            pull = self.machine.execute(
                pull_work,
                DemandVector(cpu=0.2, io_mbps=cfg.cold_load_mbps),
                _COLD_PULL_SENS,
            )
            yield pull
            if self.faults is None or not self.faults.cold_start_fails(fs.spec.name):
                break
            plan = self.faults.plan
            if attempts < plan.max_cold_start_retries:
                # the runtime crashed during boot: relaunch in place (the
                # pledge — memory, ledger, n_init — stays held), with a
                # deterministic linear backoff
                attempts += 1
                yield self.env.timeout(plan.cold_start_retry_backoff_s * attempts)
                continue
            # retry budget exhausted: abandon the pledge.  The oldest
            # pending ready event resolves with None (so prewarm AllOfs
            # still fire) and the pump re-plans for any backlog that was
            # counting on this container.
            self.faults.stats.cold_starts_abandoned += 1
            fs.n_init -= 1
            self._retire(fs, container)
            container.state = ContainerState.CRASHED
            if fs._ready_events:
                fs._ready_events.popleft().succeed(None)
            self._pump(fs)
            return
        fs.n_init -= 1
        container.state = ContainerState.IDLE
        container.warm_since = self.env.now
        if fs._ready_events:
            fs._ready_events.popleft().succeed(container.cid)
        nxt = self._take(fs)
        if nxt is not None:
            self._assign(fs, container, nxt[0], nxt[1], fresh_cold=True)
        else:
            self._idle(fs, container)

    def _retire(self, fs: FunctionState, container: Container) -> None:
        """Tear a container down and return its memory to the pool."""
        container.state = ContainerState.DEAD
        self._container_memory_in_use -= self.config.container_memory_mb
        fs.ledger.release(self.config.idle_cpu, self.config.container_memory_mb)

    def _keep_alive_of(self, fs: FunctionState) -> float:
        return fs.keep_alive if fs.keep_alive is not None else self.config.keep_alive

    def _idle(self, fs: FunctionState, container: Container) -> None:
        """Park a container as warm-idle under the function's reaper."""
        keep_alive = self._keep_alive_of(fs)
        if keep_alive <= 0.0 and container.invocations > 0:
            # warm reuse disabled: tear the container down right away
            self._retire(fs, container)
            return
        container.state = ContainerState.IDLE
        container.warm_since = self.env.now
        container.reap_at = self.env.now + max(keep_alive, 1e-3)
        fs.idle.append(container)
        self._arm_reaper(fs)

    def _arm_reaper(self, fs: FunctionState) -> None:
        """Keep exactly one keep-alive timer per function.

        Containers are parked in arrival order with a fixed lifetime, so
        ``fs.idle`` is always sorted by ``reap_at`` and one timer armed
        at the *front* deadline covers every idle container.  Parking
        while a timer is already armed costs nothing (the armed deadline
        can only be earlier), and warm reuse never needs to cancel —
        a firing that finds nothing expired simply re-arms.  At fleet
        scale this turns two heap operations per warm reuse into zero.
        """
        if not fs.idle:
            return
        front = fs.idle[0].reap_at
        if fs._reap_timer is not None and fs._reap_deadline <= front:
            return
        # an armed-later timer cannot happen (deadlines are monotone and
        # the front only moves forward), so arming here means no timer
        fs._reap_deadline = front
        # the 1e-9 floor guards re-arms whose float-rounded delay would
        # land an ulp short of the deadline and spin
        fs._reap_timer = self.env.schedule_callback(
            max(front - self.env.now, 1e-9), lambda: self._reap_due(fs)
        )

    def _reap_due(self, fs: FunctionState) -> None:
        """Retire every idle container whose keep-alive has expired."""
        fs._reap_timer = None
        fs._reap_deadline = math.inf
        now = self.env.now
        idle = fs.idle
        while idle and idle[0].reap_at <= now:
            self._retire(fs, idle.popleft())
        self._arm_reaper(fs)

    def _assign(
        self,
        fs: FunctionState,
        container: Container,
        query: Query,
        t_enqueue: float,
        fresh_cold: bool = False,
    ) -> None:
        container.state = ContainerState.BUSY
        # no reap timer to cancel: the per-function reaper skips
        # containers that are no longer parked in the idle deque
        fs.n_busy += 1
        wait = self.env.now - t_enqueue
        if fresh_cold:
            # the query waited (at least partly) on this container's cold
            # start: attribute that share of the wait to "cold"
            cold_elapsed = self.env.now - container.created_at
            cold_part = min(wait, cold_elapsed)
            query.breakdown["cold"] = cold_part
            query.breakdown["queue"] = wait - cold_part
        else:
            query.breakdown["queue"] = wait
        self._run(fs, container, query)

    def _run(self, fs: FunctionState, container: Container, query: Query) -> None:
        """Drive one query through load → contended exec → result posting.

        This is a callback chain, not a generator process: the per-query
        hot path is four kernel events lighter that way (no bootstrap, no
        process-completion event, no generator frames).  Draw order per
        RNG stream is unchanged — the load draw happens at assign time,
        which is the order the process bootstraps replayed.
        """
        env = self.env
        cfg = self.config
        spec = fs.spec
        # per-query (warm) code/data loading
        load_t = (spec.code_mb / cfg.warm_load_mbps) * fs._warm_draw()

        if self.faults is not None and self.faults.container_crashes(spec.name):
            # the container dies during the load stage; the crash is
            # noticed crash_detect_s later and the query re-enters the
            # queue (or is dropped once its retry budget is spent)
            Callback(
                env,
                load_t + self.faults.plan.crash_detect_s,
                lambda: self._crash(fs, container, query),
            )
            return

        def start_exec() -> None:
            # contended execution
            work = fs._exec_draw()
            fs.ledger.acquire(spec.demand.cpu, 0.0)
            done = self.machine.execute(work, spec.demand, spec.sensitivity)
            assert done.callbacks is not None
            done.callbacks.append(after_exec)

        def after_exec(done: Event) -> None:
            fs.ledger.release(spec.demand.cpu, 0.0)
            # result posting
            post_t = cfg.post_overhead_base + spec.result_mb / cfg.post_mbps
            Callback(env, post_t, lambda: self._complete(fs, container, query, load_t, done._value, post_t))

        Callback(env, load_t, start_exec)

    def _crash(self, fs: FunctionState, container: Container, query: Query) -> None:
        """A container died mid-query: retire it, retry or drop the query."""
        assert self.faults is not None
        plan = self.faults.plan
        fs.n_busy -= 1
        self._retire(fs, container)
        container.state = ContainerState.CRASHED
        query.attempts += 1
        if query.attempts <= plan.max_query_retries:
            self.faults.stats.query_retries += 1
            if fs.metrics is not None:
                fs.metrics.record_retry("attempted")
            backoff = plan.retry_backoff_s * query.attempts
            self.env.schedule_callback(max(backoff, 1e-6), lambda: self.submit(query))
        else:
            self.faults.stats.queries_dropped += 1
            query.failed = True
            query.t_complete = self.env.now
            query.served_by = "serverless"
            if fs.metrics is not None:
                fs.metrics.record_retry("exhausted")
                fs.metrics.record_drop(query, "crash")
            if fs.overload is not None and not query.canary:
                fs.overload.note_outcome(False, self.env.now)
            if not query.canary:
                fs.user_in_flight -= 1
            query.notify_done()
        self._pump(fs)

    def _complete(
        self,
        fs: FunctionState,
        container: Container,
        query: Query,
        load_t: float,
        exec_t: float,
        post_t: float,
    ) -> None:
        query.breakdown["load"] = load_t
        query.breakdown["exec"] = exec_t
        query.breakdown["post"] = post_t
        query.t_complete = self.env.now
        query.served_by = "serverless"
        if fs.metrics is not None:
            fs.metrics.record_completion(query)
        if fs.overload is not None and not query.canary:
            fs.overload.note_outcome(query.latency <= fs.spec.qos_target, self.env.now)
        if not query.canary:
            fs.user_in_flight -= 1
        query.notify_done()
        fs.completions += 1
        fs.busy_seconds += load_t + exec_t + post_t
        container.invocations += 1
        fs.n_busy -= 1
        if self._keep_alive_of(fs) <= 0.0:
            # no warm reuse at all (Amoeba-NoP): the container dies and
            # queued work must cold start afresh
            self._retire(fs, container)
        else:
            nxt = self._take(fs)
            if nxt is not None:
                # reuse for queued work
                self._assign(fs, container, nxt[0], nxt[1])
            else:
                self._idle(fs, container)
        # backlog may still exceed pledged cold starts (e.g. limit freed)
        self._pump(fs)

    # -- prewarming ----------------------------------------------------------------
    def prewarm(self, name: str, count: int) -> Event:
        """Ensure ``count`` containers are warm(ing); event fires when ready.

        The returned event's value is the number of containers that were
        actually secured (memory pressure can cap it below ``count``).
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        fs = self.state(name)
        deficit = count - fs.warm_or_warming
        launched: list[Event] = []
        while deficit > 0 and self._can_launch(fs):
            launched.append(self._launch(fs, prewarmed=True))
            deficit -= 1
        secured = count - max(deficit, 0)
        result = self.env.event()
        if not launched:
            result.succeed(secured)
            return result
        all_ready = self.env.all_of(launched)

        def _done(_ev: Event) -> None:
            result.succeed(secured)

        assert all_ready.callbacks is not None
        all_ready.callbacks.append(_done)
        return result

    # -- introspection -----------------------------------------------------------
    def warm_count(self, name: str) -> int:
        """Idle warm containers for ``name``."""
        return len(self.state(name).idle)

    def queue_length(self, name: str) -> int:
        """Pending invocations for ``name``."""
        return len(self.state(name).queue)

    def registered(self) -> tuple[str, ...]:
        """Names of all registered functions."""
        return tuple(self._functions)
