"""Shared-resource primitives: counting resources and object stores.

These model the synchronization structures the platform simulators need:

* :class:`Resource` — a counting semaphore with a FIFO wait queue
  (e.g. a VM's worker slots).
* :class:`PriorityResource` — like :class:`Resource` but the wait queue is
  ordered by a caller-supplied priority (lower first), FIFO within a
  priority level.
* :class:`Store` — an unbounded (or capacity-bounded) FIFO buffer of
  Python objects with blocking ``get``/``put`` (e.g. the serverless
  front-end's invocation queue).

Requests are events: a process does ``req = res.request(); yield req`` and
later ``res.release(req)``.  Convenience context management is deliberately
omitted — explicit acquire/release keeps the simulators' lifecycles
obvious.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment

__all__ = ["PriorityResource", "Resource", "Store"]


class _Request(Event):
    """A pending claim on a :class:`Resource` slot."""

    __slots__ = ("resource",)

    def __init__(self, env: "Environment", resource: "Resource") -> None:
        super().__init__(env)
        self.resource = resource


class Resource:
    """Counting semaphore with FIFO queueing.

    Parameters
    ----------
    env:
        Owning environment.
    capacity:
        Number of concurrent holders allowed; must be >= 1.
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self._capacity = int(capacity)
        self._users: set[_Request] = set()
        self._queue: deque[_Request] = deque()

    @property
    def capacity(self) -> int:
        """Maximum concurrent holders."""
        return self._capacity

    @property
    def count(self) -> int:
        """Current number of holders."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self) -> _Request:
        """Claim a slot; the returned event fires when the claim succeeds."""
        req = _Request(self.env, self)
        if len(self._users) < self._capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: _Request) -> None:
        """Return a previously granted slot.

        Releasing a request that was never granted (still queued) cancels
        it instead.
        """
        if request in self._users:
            self._users.discard(request)
            self._grant_next()
        else:
            try:
                self._queue.remove(request)
            except ValueError:
                raise RuntimeError("release() of a request this resource does not hold") from None

    def resize(self, capacity: int) -> None:
        """Change capacity at runtime (used when VMs join/leave a pool)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._grant_next()

    def _grant_next(self) -> None:
        while self._queue and len(self._users) < self._capacity:
            nxt = self._queue.popleft()
            self._users.add(nxt)
            nxt.succeed(nxt)


class PriorityResource(Resource):
    """A :class:`Resource` whose waiters are served lowest-priority-first."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._pqueue: list[tuple[float, int, _Request]] = []
        self._tiebreak = itertools.count()

    @property
    def queue_length(self) -> int:
        return len(self._pqueue)

    def request(self, priority: float = 0.0) -> _Request:  # type: ignore[override]
        req = _Request(self.env, self)
        if len(self._users) < self._capacity:
            self._users.add(req)
            req.succeed(req)
        else:
            heapq.heappush(self._pqueue, (priority, next(self._tiebreak), req))
        return req

    def release(self, request: _Request) -> None:  # type: ignore[override]
        if request in self._users:
            self._users.discard(request)
            self._grant_next()
        else:
            for i, (_p, _t, queued) in enumerate(self._pqueue):
                if queued is request:
                    self._pqueue.pop(i)
                    heapq.heapify(self._pqueue)
                    return
            raise RuntimeError("release() of a request this resource does not hold")

    def _grant_next(self) -> None:
        while self._pqueue and len(self._users) < self._capacity:
            _p, _t, nxt = heapq.heappop(self._pqueue)
            self._users.add(nxt)
            nxt.succeed(nxt)


class Store:
    """FIFO object buffer with blocking get/put.

    ``capacity`` bounds the number of buffered items (``inf`` by default).
    ``get()`` returns an event that fires with the oldest item once one is
    available; ``put(item)`` fires once there is room.
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self._putters: deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of buffered items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> Event:
        """Insert ``item``; the event fires when the insert lands."""
        ev = Event(self.env)
        self._putters.append((ev, item))
        self._dispatch()
        return ev

    def get(self) -> Event:
        """Remove and return the oldest item via the event's value."""
        ev = Event(self.env)
        self._getters.append(ev)
        self._dispatch()
        return ev

    def cancel_get(self, event: Event) -> bool:
        """Withdraw a pending ``get`` (e.g. a container that shut down)."""
        try:
            self._getters.remove(event)
            return True
        except ValueError:
            return False

    def _dispatch(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            # move queued puts into the buffer while room remains
            while self._putters and len(self._items) < self.capacity:
                ev, item = self._putters.popleft()
                self._items.append(item)
                ev.succeed()
                progressed = True
            # satisfy waiting getters
            while self._getters and self._items:
                getter = self._getters.popleft()
                getter.succeed(self._items.popleft())
                progressed = True
