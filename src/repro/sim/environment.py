"""The simulation environment: virtual clock plus event heap.

The environment owns a binary heap of ``(time, priority, seq, event)``
tuples.  ``seq`` is a monotonically increasing tie-breaker so that events
scheduled at the same instant run in FIFO order and the heap never has to
compare event objects.  ``priority`` lets resource bookkeeping (priority 0)
run ahead of ordinary events (priority 1) at the same timestamp.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Optional

from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]

#: priority for internal bookkeeping events that must precede user events
URGENT = 0
#: default event priority
NORMAL = 1


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at ``until``."""


class Environment:
    """A deterministic discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    """

    def __init__(self, initial_time: float = 0.0):
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert a triggered event into the heap (kernel-internal)."""
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` simulated seconds.

        A convenience for fire-and-forget bookkeeping that does not warrant
        a full process.  Returns the underlying timeout event.
        """
        ev = self.timeout(delay)
        assert ev.callbacks is not None
        ev.callbacks.append(lambda _ev: fn())
        return ev

    # -- execution ---------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        if not self._heap:
            raise EmptySchedule()
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        event._run_callbacks()
        if not event._ok and not event._defused:
            # an unhandled failure escapes the simulation
            raise event._value  # type: ignore[misc]

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``      run until the heap drains.
            ``float``     run until the clock reaches that time.
            ``Event``     run until that event has been processed; its
                          value is returned.
        """
        stop_value: Any = None
        if until is None:
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            if stop_event._processed:
                return stop_event._value
            assert stop_event.callbacks is not None
            stop_event.callbacks.append(self._stop_on_event)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"run(until={horizon}) is in the past (now={self._now})")
            stop_event = Event(self)
            stop_event._ok = True
            self._seq += 1
            # priority below URGENT so the clock stops before same-time events
            heapq.heappush(self._heap, (horizon, -1, self._seq, stop_event))
            assert stop_event.callbacks is not None
            stop_event.callbacks.append(self._stop_on_event)

        try:
            while True:
                self.step()
        except StopSimulation as stop:
            stop_value = stop.args[0] if stop.args else None
        except EmptySchedule:
            if isinstance(until, Event) and not until._processed:
                raise RuntimeError("run() ran out of events before `until` triggered") from None
        return stop_value

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        raise StopSimulation(event._value if event._ok else None)
