"""The simulation environment: virtual clock plus event heap.

The environment owns a binary heap of ``(time, priority, seq, event)``
tuples.  ``seq`` is a monotonically increasing tie-breaker so that events
scheduled at the same instant run in FIFO order and the heap never has to
compare event objects.  ``priority`` lets resource bookkeeping (priority 0)
run ahead of ordinary events (priority 1) at the same timestamp.

Cancelled events (:meth:`Event.cancel`) are discarded lazily: their heap
entries stay put until they reach the top (``step``/``peek`` skip them
without advancing the clock), and when more than half the heap is dead the
whole heap is compacted in one O(n) pass — so heap size stays O(live
events) no matter how often schedulers re-plan.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

from repro.sim.events import AllOf, AnyOf, Callback, Event, Timeout
from repro.sim.process import Process

__all__ = ["Environment", "EmptySchedule", "StopSimulation"]

#: priority for internal bookkeeping events that must precede user events
URGENT = 0
#: default event priority
NORMAL = 1


class EmptySchedule(Exception):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` at ``until``."""


class Environment:
    """A deterministic discrete-event simulation environment.

    Parameters
    ----------
    initial_time:
        Starting value of the simulated clock, in seconds.
    """

    #: compaction only kicks in past this heap size (small heaps drain fast)
    _COMPACT_MIN = 64

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = 0
        self._cancelled_pending = 0
        self._active_process: Optional[Process] = None

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- scheduling observability ------------------------------------------
    @property
    def scheduled_total(self) -> int:
        """Monotone count of every heap insertion since construction.

        The perf guards divide this by completed queries to assert the
        kernel does O(1) amortized scheduling work per query.
        """
        return self._seq

    @property
    def heap_size(self) -> int:
        """Current heap entries, including not-yet-discarded cancelled ones."""
        return len(self._heap)

    @property
    def live_size(self) -> int:
        """Heap entries that will actually be processed."""
        return len(self._heap) - self._cancelled_pending

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------
    def event(self) -> Event:
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` seconds from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------
    def _enqueue(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        """Insert a triggered event into the heap (kernel-internal)."""
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._seq, event))

    def schedule_callback(self, delay: float, fn: Callable[[], None]) -> Event:
        """Run ``fn()`` after ``delay`` simulated seconds.

        A convenience for fire-and-forget bookkeeping that does not warrant
        a full process.  Returns the scheduled :class:`Callback` event,
        which supports :meth:`Event.cancel` but cannot be waited on.
        """
        return Callback(self, delay, fn)

    def _note_cancelled(self) -> None:
        """Account one cancellation; compact when the heap is mostly dead.

        Compaction is O(n) but only runs once at least half the heap is
        cancelled entries, so its cost amortizes to O(1) per cancellation
        and the heap never holds more dead entries than live ones.
        """
        self._cancelled_pending += 1
        if (
            self._cancelled_pending > self._COMPACT_MIN
            and self._cancelled_pending * 2 >= len(self._heap)
        ):
            # in place, so the aliases held by run()'s inner loop stay valid
            self._heap[:] = [entry for entry in self._heap if not entry[3]._cancelled]
            heapq.heapify(self._heap)
            self._cancelled_pending = 0

    def _discard_cancelled_head(self) -> None:
        """Drop cancelled entries sitting at the top of the heap."""
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            heapq.heappop(heap)
            self._cancelled_pending -= 1

    # -- execution ---------------------------------------------------------
    def peek(self) -> float:
        """Time of the next live scheduled event, or ``inf`` if none."""
        self._discard_cancelled_head()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next live event.

        Cancelled entries encountered on the way are discarded without
        advancing the clock or running callbacks.

        Raises
        ------
        EmptySchedule
            If no live events remain.
        """
        self._discard_cancelled_head()
        if not self._heap:
            raise EmptySchedule()
        when, _prio, _seq, event = heapq.heappop(self._heap)
        self._now = when
        event._run_callbacks()
        if not event._ok and not event._defused:
            # an unhandled failure escapes the simulation
            raise event._value  # type: ignore[misc]

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``      run until the heap drains.
            ``float``     run until the clock reaches that time.
            ``Event``     run until that event has been processed; its
                          value is returned.
        """
        stop_value: Any = None
        if until is None:
            stop_event: Optional[Event] = None
        elif isinstance(until, Event):
            stop_event = until
            if stop_event._processed:
                return stop_event._value
            assert stop_event.callbacks is not None
            stop_event.callbacks.append(self._stop_on_event)
        else:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"run(until={horizon}) is in the past (now={self._now})")
            stop_event = Event(self)
            stop_event._ok = True
            self._seq += 1
            # priority below URGENT so the clock stops before same-time events
            heapq.heappush(self._heap, (horizon, -1, self._seq, stop_event))
            assert stop_event.callbacks is not None
            stop_event.callbacks.append(self._stop_on_event)

        # inlined step() loop: one Python frame per event matters when a
        # day's experiment processes ~10⁶ events.  Semantics match step()
        # exactly (cancelled entries discarded without advancing the clock).
        heap = self._heap
        pop = heapq.heappop
        try:
            while True:
                if not heap:
                    raise EmptySchedule()
                when, _prio, _seq, event = pop(heap)
                if event._cancelled:
                    self._cancelled_pending -= 1
                    continue
                self._now = when
                event._run_callbacks()
                if not event._ok and not event._defused:
                    # an unhandled failure escapes the simulation
                    raise event._value  # type: ignore[misc]
        except StopSimulation as stop:
            stop_value = stop.args[0] if stop.args else None
        except EmptySchedule:
            if isinstance(until, Event) and not until._processed:
                raise RuntimeError("run() ran out of events before `until` triggered") from None
        return stop_value

    @staticmethod
    def _stop_on_event(event: Event) -> None:
        raise StopSimulation(event._value if event._ok else None)
