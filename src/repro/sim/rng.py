"""Named, reproducible random-number substreams.

Every stochastic input in an experiment (arrival processes, service-time
jitter, cold-start durations, trace noise, ...) draws from its own
``numpy.random.Generator``.  Substreams are derived from a single root
seed plus the stream's name via ``numpy.random.SeedSequence.spawn``-style
keying, so:

* two streams with different names are statistically independent;
* the same (seed, name) pair always produces the same sequence,
  regardless of the order in which other streams were created or used.

This is what makes whole experiments bit-reproducible while still letting
components create their RNGs lazily.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Factory for named, independently seeded RNG substreams."""

    def __init__(self, seed: int = 0) -> None:
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed all substreams are derived from."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            # key the SeedSequence on a stable hash of the name so stream
            # identity does not depend on creation order
            key = zlib.crc32(name.encode("utf-8"))
            seq = np.random.SeedSequence(entropy=self._seed, spawn_key=(key,))
            gen = np.random.default_rng(seq)
            self._streams[name] = gen
        return gen

    def exponential(self, name: str, mean: float) -> float:
        """One exponential draw with the given mean from stream ``name``."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))

    def lognormal_around(self, name: str, median: float, sigma: float) -> float:
        """One lognormal draw with the given *median* from stream ``name``.

        Lognormal with small sigma is our default "noisy but positive"
        duration model (cold starts, code loading, per-query jitter).
        """
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        return float(median * np.exp(self.stream(name).normal(0.0, sigma)))

    def lognormal_sampler(self, name: str, median: float, sigma: float) -> Callable[[], float]:
        """A zero-argument sampler equivalent to :meth:`lognormal_around`.

        Hot paths call this once and keep the returned callable: each draw
        then skips the stream-name formatting and registry lookup while
        producing the bit-identical sequence ``lognormal_around`` would.
        """
        if median <= 0:
            raise ValueError(f"median must be positive, got {median}")
        normal = self.stream(name).normal
        exp = np.exp

        def draw() -> float:
            return float(median * exp(normal(0.0, sigma)))

        return draw

    def uniform(self, name: str, low: float, high: float) -> float:
        """One uniform draw on ``[low, high)`` from stream ``name``."""
        if high < low:
            raise ValueError(f"empty interval [{low}, {high})")
        return float(self.stream(name).uniform(low, high))

    def fork(self, salt: str) -> "RngRegistry":
        """A registry whose streams are all independent of this one's.

        Used to give experiment repetitions (e.g. different benchmarks in
        one sweep) disjoint randomness under a single root seed.
        """
        derived = zlib.crc32(salt.encode("utf-8")) ^ (self._seed * 0x9E3779B1 & 0xFFFFFFFF)
        return RngRegistry(seed=derived)
