"""Bounded-memory statistics for long simulations.

The evaluation runs process hundreds of thousands of queries; storing raw
samples for everything would dominate memory and post-processing time.
These helpers keep the accounting O(1) per observation:

* :class:`OnlineStats` — Welford mean/variance, min/max, count.
* :class:`P2Quantile` — the P² streaming quantile estimator (Jain &
  Chlamtac 1985): a single quantile in O(1) memory.
* :class:`ReservoirSample` — uniform fixed-size sample, for CDF plots
  where we *do* want a (bounded) empirical distribution.
* :class:`Histogram` — fixed-bin counts with overflow tracking.
* :class:`TimeWeightedStats` — integrates a piecewise-constant signal
  over simulated time (utilization, container counts, memory in use).
* :class:`TimeSeries` — decimating recorder of (t, value) pairs for the
  timeline figures.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "Histogram",
    "OnlineStats",
    "P2Quantile",
    "ReservoirSample",
    "TimeSeries",
    "TimeWeightedStats",
]


class OnlineStats:
    """Welford's online mean/variance plus min/max."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        """Fold one observation into the running moments."""
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def extend(self, xs: Iterable[float]) -> None:
        for x in xs:
            self.add(x)

    @property
    def mean(self) -> float:
        """Running mean (NaN when empty)."""
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN when n < 2)."""
        return self._m2 / (self.n - 1) if self.n > 1 else math.nan

    @property
    def std(self) -> float:
        """Sample standard deviation (NaN when n < 2)."""
        v = self.variance
        return math.sqrt(v) if not math.isnan(v) else math.nan

    def merge(self, other: "OnlineStats") -> "OnlineStats":
        """Combine two disjoint streams (Chan et al. parallel variance)."""
        out = OnlineStats()
        out.n = self.n + other.n
        if out.n == 0:
            return out
        delta = other._mean - self._mean
        out._mean = self._mean + delta * other.n / out.n
        out._m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / out.n
        out.min = min(self.min, other.min)
        out.max = max(self.max, other.max)
        return out


class P2Quantile:
    """P² single-quantile streaming estimator (O(1) memory).

    Tracks five markers whose heights approximate the ``q`` quantile of
    everything observed.  Accurate to a few percent for the smooth latency
    distributions this project produces; where exactness matters (the CDF
    figures) we use :class:`ReservoirSample` instead.
    """

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: list[float] = []
        self._pos = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._incr = [0.0, q / 2, q, (1 + q) / 2, 1.0]
        self.n = 0

    def add(self, x: float) -> None:
        """Fold one observation into the marker state."""
        self.n += 1
        h = self._heights
        if len(h) < 5:
            h.append(x)
            if len(h) == 5:
                h.sort()
            return

        # locate the cell containing x, clamping the extreme markers
        if x < h[0]:
            h[0] = x
            k = 0
        elif x >= h[4]:
            h[4] = x
            k = 3
        else:
            k = 0
            while k < 3 and not (h[k] <= x < h[k + 1]):
                k += 1

        pos = self._pos
        for i in range(k + 1, 5):
            pos[i] += 1.0
        for i in range(5):
            self._desired[i] += self._incr[i]

        # adjust interior markers toward their desired positions
        for i in (1, 2, 3):
            d = self._desired[i] - pos[i]
            if (d >= 1.0 and pos[i + 1] - pos[i] > 1.0) or (d <= -1.0 and pos[i - 1] - pos[i] < -1.0):
                step = 1.0 if d > 0 else -1.0
                candidate = self._parabolic(i, step)
                if h[i - 1] < candidate < h[i + 1]:
                    h[i] = candidate
                else:
                    h[i] = self._linear(i, step)
                pos[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        return h[i] + d / (pos[i + 1] - pos[i - 1]) * (
            (pos[i] - pos[i - 1] + d) * (h[i + 1] - h[i]) / (pos[i + 1] - pos[i])
            + (pos[i + 1] - pos[i] - d) * (h[i] - h[i - 1]) / (pos[i] - pos[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        h, pos = self._heights, self._pos
        j = i + int(d)
        return h[i] + d * (h[j] - h[i]) / (pos[j] - pos[i])

    @property
    def value(self) -> float:
        """Current quantile estimate (NaN when empty)."""
        if not self._heights:
            return math.nan
        if self.n < 5:
            srt = sorted(self._heights)
            idx = min(int(self.q * len(srt)), len(srt) - 1)
            return srt[idx]
        return self._heights[2]


class ReservoirSample:
    """Uniform random sample of fixed size over an unbounded stream."""

    def __init__(self, capacity: int, rng: Optional[np.random.Generator] = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        # deterministic fixed-seed fallback when no registry stream is injected
        self._rng = rng if rng is not None else np.random.default_rng(0)  # simlint: ignore[SIM002]
        self._buf: list[float] = []
        self.n = 0

    def add(self, x: float) -> None:
        """Offer one observation to the reservoir."""
        self.n += 1
        if len(self._buf) < self.capacity:
            self._buf.append(x)
        else:
            j = int(self._rng.integers(0, self.n))
            if j < self.capacity:
                self._buf[j] = x

    def values(self) -> np.ndarray:
        """The retained sample as a float array (unordered)."""
        return np.asarray(self._buf, dtype=float)

    def percentile(self, p: float) -> float:
        """Empirical percentile of the retained sample (p in [0, 100])."""
        if not self._buf:
            return math.nan
        return float(np.percentile(self._buf, p))

    def cdf(self, grid: Sequence[float]) -> np.ndarray:
        """Empirical CDF evaluated on ``grid`` (vectorized searchsorted)."""
        if not self._buf:
            return np.full(len(grid), math.nan)
        data = np.sort(np.asarray(self._buf, dtype=float))
        return np.searchsorted(data, np.asarray(grid, dtype=float), side="right") / data.size


class Histogram:
    """Fixed-width bins over [lo, hi) with underflow/overflow counters."""

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        if hi <= lo:
            raise ValueError(f"empty range [{lo}, {hi})")
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        self.lo, self.hi, self.bins = float(lo), float(hi), int(bins)
        self._width = (hi - lo) / bins
        self.counts = np.zeros(bins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    def add(self, x: float) -> None:
        """Count one observation."""
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            idx = int((x - self.lo) / self._width)
            if idx >= self.bins:
                # x just below hi can round up to the phantom bin when
                # (hi - lo) / bins is not exact (e.g. lo=0, hi=3.3, bins=6)
                idx = self.bins - 1
            self.counts[idx] += 1

    @property
    def n(self) -> int:
        """Total observations, including under/overflow."""
        return int(self.counts.sum()) + self.underflow + self.overflow

    def edges(self) -> np.ndarray:
        """Bin edges (length bins + 1)."""
        return np.linspace(self.lo, self.hi, self.bins + 1)


class TimeWeightedStats:
    """Time-integral of a piecewise-constant signal.

    ``set(t, v)`` declares that the signal takes value ``v`` from time
    ``t`` onward.  ``mean(t)`` is the time average over [t0, t]; ``min``
    and ``max`` track extremes of the level (not the integral).
    """

    def __init__(self, t0: float = 0.0, initial: float = 0.0) -> None:
        self._t0 = float(t0)
        self._last_t = float(t0)
        self._level = float(initial)
        self._integral = 0.0
        self.min = float(initial)
        self.max = float(initial)

    @property
    def level(self) -> float:
        """Current value of the signal."""
        return self._level

    def set(self, t: float, value: float) -> None:
        """Advance to time ``t`` and set the new level."""
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        self._integral += self._level * (t - self._last_t)
        self._last_t = t
        self._level = float(value)
        if value < self.min:
            self.min = float(value)
        if value > self.max:
            self.max = float(value)

    def adjust(self, t: float, delta: float) -> None:
        """Advance to time ``t`` and add ``delta`` to the level."""
        self.set(t, self._level + delta)

    def integral(self, t: float) -> float:
        """∫ signal dt over [t0, t]."""
        if t < self._last_t:
            raise ValueError(f"time went backwards: {t} < {self._last_t}")
        return self._integral + self._level * (t - self._last_t)

    def mean(self, t: float) -> float:
        """Time-averaged level over [t0, t] (NaN for an empty interval)."""
        span = t - self._t0
        if span <= 0:
            return math.nan
        return self.integral(t) / span


class TimeSeries:
    """Recorder of (t, value) pairs with optional decimation.

    ``min_interval`` suppresses samples closer together than that spacing
    (the *last* value in a burst still lands when the next spaced sample
    arrives, because the signal is sampled, not integrated).
    """

    def __init__(self, min_interval: float = 0.0) -> None:
        self.min_interval = float(min_interval)
        self._t: list[float] = []
        self._v: list[float] = []
        #: time of the last sample that *started* a decimation window; the
        #: grid is anchored here, not at the (rewritten) last timestamp
        self._anchor = -math.inf

    def record(self, t: float, value: float) -> None:
        """Append a sample, subject to decimation."""
        if self._t and self.min_interval > 0 and (t - self._anchor) < self.min_interval:
            # within the decimation window: the newest sample replaces the
            # previous one — both value AND timestamp, so the pair stays
            # consistent (the anchor keeps the window from sliding)
            self._t[-1] = float(t)
            self._v[-1] = float(value)
            return
        self._anchor = t
        self._t.append(float(t))
        self._v.append(float(value))

    def __len__(self) -> int:
        return len(self._t)

    def times(self) -> np.ndarray:
        """Sample timestamps as an array."""
        return np.asarray(self._t, dtype=float)

    def values(self) -> np.ndarray:
        """Sample values as an array."""
        return np.asarray(self._v, dtype=float)

    def resample(self, grid: Sequence[float]) -> np.ndarray:
        """Zero-order-hold resample onto ``grid`` (NaN before first sample)."""
        g = np.asarray(grid, dtype=float)
        if not self._t:
            return np.full(g.shape, math.nan)
        t = np.asarray(self._t)
        v = np.asarray(self._v)
        idx = np.searchsorted(t, g, side="right") - 1
        out = np.where(idx >= 0, v[np.clip(idx, 0, len(v) - 1)], math.nan)
        return out
