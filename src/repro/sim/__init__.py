"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event engine in the style
of SimPy, purpose-built for the Amoeba reproduction.  Processes are Python
generators that ``yield`` events (timeouts, other events, resource
requests); the :class:`~repro.sim.environment.Environment` advances a
virtual clock over a binary heap of scheduled events.

Design notes (see DESIGN.md §6):

* The hot path is a plain ``heapq`` keyed by ``(time, priority, seq)`` —
  no per-event wrapper objects beyond the Event itself.
* All randomness flows through :class:`~repro.sim.rng.RngRegistry`, which
  hands out named, independently-seeded ``numpy.random.Generator``
  substreams so that experiments are bit-reproducible.
* Statistics helpers (:mod:`repro.sim.stats`) provide bounded-memory
  percentile estimation and time-weighted counters used by the resource
  accounting ledgers.
"""

from repro.sim.environment import Environment
from repro.sim.events import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.sim.process import Process
from repro.sim.resources import PriorityResource, Resource, Store
from repro.sim.rng import RngRegistry
from repro.sim.stats import (
    Histogram,
    OnlineStats,
    P2Quantile,
    ReservoirSample,
    TimeSeries,
    TimeWeightedStats,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Histogram",
    "Interrupt",
    "OnlineStats",
    "P2Quantile",
    "PriorityResource",
    "Process",
    "ReservoirSample",
    "Resource",
    "RngRegistry",
    "Store",
    "TimeSeries",
    "TimeWeightedStats",
    "Timeout",
]
