"""Core event primitives for the discrete-event kernel.

An :class:`Event` moves through three states:

``pending``      created but not yet triggered; processes may wait on it.
``triggered``    a value (or exception) has been attached and the event is
                 sitting in the environment's heap awaiting its timestamp.
``processed``    the environment has popped it and run its callbacks.

Processes wait on events by ``yield``-ing them; the environment wires the
process resumption up as a callback.

A triggered-but-unprocessed event can additionally be :meth:`~Event.cancel`-led:
its heap entry stays where it is, but the environment discards it on pop
(or during an amortized compaction) without advancing the clock or running
callbacks.  This is the kernel's true event-cancellation path — schedulers
that re-plan (the contention engine's completion timer) cancel their
obsolete timer instead of leaving a generation-guarded stale callback to
fire as a no-op.  (The container pool goes one step further: its
per-function keep-alive reaper batches all idle-container deadlines into
one timer that never needs cancelling at all.)
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.sim.environment import Environment

__all__ = [
    "AllOf",
    "AnyOf",
    "Callback",
    "ConditionEvent",
    "Event",
    "EventAlreadyTriggered",
    "Interrupt",
    "Timeout",
]


class EventAlreadyTriggered(RuntimeError):
    """Raised when ``succeed``/``fail`` is called on a non-pending event."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it.

    The ``cause`` is an arbitrary payload supplied by the interrupter
    (e.g. a string reason or a richer object).
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The owning environment.  Events are only meaningful within a
        single environment; mixing environments raises at trigger time.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "_processed", "_defused", "_cancelled")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: bool = True
        self._triggered: bool = False
        self._processed: bool = False
        #: a failed event whose exception was consumed (e.g. by a waiting
        #: process) is "defused" and will not crash the environment.
        self._defused: bool = False
        #: a cancelled event's heap entry is discarded instead of processed
        self._cancelled: bool = False

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once a value or exception has been attached."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful when triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The event's payload (or exception when ``not ok``)."""
        if not self._triggered:
            raise AttributeError("value of untriggered event is not available")
        return self._value

    @property
    def cancelled(self) -> bool:
        """True once the event's scheduled occurrence has been revoked."""
        return self._cancelled

    def defuse(self) -> None:
        """Mark a failed event as handled so it will not propagate."""
        self._defused = True

    def cancel(self) -> None:
        """Revoke a scheduled (triggered, unprocessed) event.

        The heap entry is left in place and discarded lazily by the
        environment — no callbacks run, the clock does not advance to the
        event's timestamp, and waiting on a cancelled event forever blocks
        (schedulers must re-arm a replacement themselves).  Cancelling an
        already-cancelled event is a no-op; cancelling a pending or
        processed event is an error (there is no scheduled occurrence to
        revoke).
        """
        if self._cancelled:
            return
        if not self._triggered or self._processed:
            raise RuntimeError(f"cannot cancel {self!r}: not scheduled")
        self._cancelled = True
        self.env._note_cancelled()

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None, *, delay: float = 0.0, priority: int = 1) -> "Event":
        """Trigger the event successfully with ``value`` after ``delay``."""
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        env = self.env
        env._seq += 1
        heapq.heappush(env._heap, (env._now + delay, priority, env._seq, self))
        return self

    def fail(self, exception: BaseException, *, delay: float = 0.0, priority: int = 1) -> "Event":
        """Trigger the event with an exception after ``delay``."""
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._triggered:
            raise EventAlreadyTriggered(f"{self!r} already triggered")
        self._triggered = True
        self._ok = False
        self._value = exception
        env = self.env
        env._seq += 1
        heapq.heappush(env._heap, (env._now + delay, priority, env._seq, self))
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            event.defuse()
            self.fail(event._value)

    # -- internal --------------------------------------------------------
    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        self._processed = True
        if callbacks:
            for cb in callbacks:
                cb(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._cancelled:
            state = "cancelled"
        else:
            state = "processed" if self._processed else ("triggered" if self._triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None, priority: int = 1) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        # flattened Event.__init__: a Timeout is created for every yield on
        # the hot path, so skip the chained constructor and the double
        # assignment of the triggered/value fields.
        self.env = env
        self.callbacks = []
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self._value = value
        self.delay = float(delay)
        env._seq += 1
        heapq.heappush(env._heap, (env._now + delay, priority, env._seq, self))


class Callback(Event):
    """A deferred function call: runs ``fn()`` after ``delay`` seconds.

    The storage-free form of ``Timeout`` plus a callback — the function is
    held directly instead of in a callbacks list, so fire-and-forget
    bookkeeping (:meth:`Environment.schedule_callback`) costs one slim
    event and no list/lambda allocations.  Being triggered from birth, a
    ``Callback`` supports :meth:`Event.cancel` like any scheduled event;
    nothing can *wait* on one (no callbacks list), which is the point.
    """

    __slots__ = ("_fn",)

    def __init__(self, env: "Environment", delay: float, fn: Callable[[], None], priority: int = 1) -> None:
        if delay < 0:
            raise ValueError(f"negative callback delay: {delay}")
        self.env = env
        self.callbacks = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self._value = None
        self._fn = fn
        env._seq += 1
        heapq.heappush(env._heap, (env._now + delay, priority, env._seq, self))

    def _run_callbacks(self) -> None:
        self._processed = True
        self._fn()


class ConditionEvent(Event):
    """Base for composite events over a set of child events.

    Subclasses define :meth:`_check`, which is consulted each time a child
    triggers.  The condition's value is a dict mapping each *triggered*
    child event to its value, in child order.
    """

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._events: tuple[Event, ...] = tuple(events)
        self._count = 0
        for ev in self._events:
            if ev.env is not env:
                raise ValueError("cannot mix events from different environments")
        if not self._events:
            self.succeed({})
            return
        for ev in self._events:
            if ev._processed:
                self._on_child(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self._triggered:
            if not child._ok:
                # condition already resolved; don't let a late failure
                # crash the environment.
                child.defuse()
            return
        if not child._ok:
            child.defuse()
            self.fail(child._value)
            return
        self._count += 1
        if self._check():
            self.succeed(self._collect())

    def _collect(self) -> dict[Event, Any]:
        # _processed, not _triggered: a Timeout is born triggered but has
        # not *fired* until the environment processes it
        return {ev: ev._value for ev in self._events if ev._processed and ev._ok}

    def _check(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AllOf(ConditionEvent):
    """Triggers once *all* child events have triggered successfully."""

    def _check(self) -> bool:
        return self._count == len(self._events)


class AnyOf(ConditionEvent):
    """Triggers as soon as *any* child event triggers successfully."""

    def _check(self) -> bool:
        return self._count >= 1
