"""Generator-based simulation processes.

A :class:`Process` drives a Python generator: each value the generator
yields must be an :class:`~repro.sim.events.Event`; the process sleeps
until the event triggers, then resumes with the event's value (or has the
event's exception thrown into it on failure).  A process is itself an
event that triggers when the generator returns, so processes can wait on
each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.sim.events import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.environment import Environment

__all__ = ["Process"]


class Process(Event):
    """A running simulation process (also an event: fires on completion)."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator, name: Optional[str] = None) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"process() needs a generator, got {generator!r}")
        super().__init__(env)
        self._generator = generator
        #: the event this process is currently waiting on (None when ready)
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # bootstrap: resume on the next kernel step at the current time
        init = Event(env)
        init._ok = True
        env._enqueue(init, 0.0, priority=0)
        assert init.callbacks is not None
        init.callbacks.append(self._resume)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a process
        that is waiting on an event detaches it from that event first.
        """
        if self._triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        exc = Interrupt(cause)
        failer = Event(self.env)
        failer._ok = False
        failer._value = exc
        failer._defused = True
        self.env._enqueue(failer, 0.0, priority=0)
        assert failer.callbacks is not None
        failer.callbacks.append(self._resume_interrupt)

    # -- resumption machinery ---------------------------------------------
    def _resume_interrupt(self, failer: Event) -> None:
        if self._triggered:
            return  # process finished between interrupt() and delivery
        target, self._target = self._target, None
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._resume(failer)

    def _resume(self, event: Event) -> None:
        # one frame per resume: this is the kernel's hottest callback, so
        # the former _resume/_step pair is a single method
        self._target = None
        env = self.env
        prev, env._active_process = env._active_process, self
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                event.defuse()
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            env._active_process = prev
            if self.callbacks:
                self.succeed(stop.value)
            else:
                # nobody is waiting on this process: complete in place
                # instead of scheduling a completion event the kernel would
                # pop only to find an empty callback list.  Late observers
                # see a processed event (the relay path in the yield
                # handling below covers `yield finished_process`).
                self._triggered = True
                self._processed = True
                self._ok = True
                self._value = stop.value
                self.callbacks = None
            return
        except BaseException as exc:
            env._active_process = prev
            # the process died; propagate via this event so waiters see it
            self.fail(exc)
            return
        env._active_process = prev

        if not isinstance(next_target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {next_target!r}; processes may only yield events"
            )
        if next_target.env is not env:
            raise ValueError("process yielded an event from a different environment")
        if next_target._processed:
            # already done: resume immediately on the next kernel step
            relay = Event(env)
            relay._ok = next_target._ok
            relay._value = next_target._value
            if not relay._ok:
                relay._defused = True
            env._enqueue(relay, 0.0, priority=0)
            assert relay.callbacks is not None
            relay.callbacks.append(self._resume)
            self._target = relay
        else:
            self._target = next_target
            assert next_target.callbacks is not None
            next_target.callbacks.append(self._resume)
