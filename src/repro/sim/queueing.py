"""The M/M/N queueing model of paper §IV (Eqs. 1–5).

This module is pure stdlib math with no dependencies on the rest of the
repo, which is why it lives at the bottom of the layer stack in
``repro.sim`` (every layer above — sizing, admission control, the
controller, the fleet generator — reasons with these equations).  It
moved here from ``repro.core.queueing``; that path remains as a
re-export shim for external callers.

Queries arrive Poisson(λ), N containers each serve exp(μ), one FIFO queue
of infinite capacity.  With ρ = λ/(Nμ) < 1 the stationary distribution is
Eq. 1; the waiting-time CDF is Eq. 4:

    F_W(t) = 1 − π_N/(1−ρ) · exp(−Nμ(1−ρ)t)

and the paper's discriminant function (Eq. 5) inverts "the r-ile of
(wait + mean service) equals the QoS target T_D" for the largest
admissible arrival rate:

    λ(μ) = Nμ + ln[(1−r)(1−ρ)/π_N] / (T_D − 1/μ)

Because ρ and π_N on the right-hand side themselves depend on λ, Eq. 5 is
a fixed-point equation; :func:`discriminant_lambda` solves it by damped
iteration, and :func:`max_arrival_rate` solves the same threshold by
bisection (the two agree — a regression test asserts it).

All probability computations genuinely run in log space.  Writing
a = Nρ for the offered load, the Eq. 1 normalization is

    S = Σ_{k=0}^{N-1} a^k/k!  +  a^N / (N! (1−ρ))

whose individual terms overflow/underflow double precision long before
N = 10³ (a^k/k! peaks near e^a, and e^700 is already inf).  We therefore
compute log S directly: anchor at the largest term k* = min(N−1, ⌊a⌋),
sum the neighbours *relative to the anchor* via the exact term ratios
t_{k−1}/t_k = k/a and t_{k+1}/t_k = a/(k+1) with compensated (Kahan)
accumulation, stopping once terms fall below 1e−19 of the running total
(the term profile is a discrete Gaussian of width ~√a, so only O(√a) of
the N terms ever matter), and fold in the queueing tail as
exp(log t_N − log t_{k*})/(1−ρ).  Every downstream quantity (π_N,
Erlang-C, wait quantiles, Eq. 5) is then derived from log S without ever
exponentiating an intermediate that could underflow — finite and
accurate for N ≥ 10⁵.
"""

from __future__ import annotations

import math

__all__ = [
    "discriminant_lambda",
    "erlang_c",
    "erlang_pi0",
    "erlang_pin",
    "log_erlang_c",
    "log_erlang_pi0",
    "log_erlang_pin",
    "max_arrival_rate",
    "max_arrival_rate_gg",
    "mean_wait",
    "min_servers",
    "qos_satisfied",
    "qos_satisfied_gg",
    "sojourn_quantile",
    "wait_cdf",
    "wait_quantile",
    "wait_quantile_gg",
]


def _validate(n: int, rho: float) -> None:
    if n < 1:
        raise ValueError(f"need at least one server, got n={n}")
    if not 0.0 <= rho < 1.0:
        raise ValueError(f"utilization must be in [0, 1) for a stable queue, got rho={rho}")


def _log_norm(n: int, rho: float) -> float:
    """log S for the Eq. 1 normalization S (see module docstring).

    Anchored scaled summation: all terms are accumulated relative to the
    largest head term t_{k*}, so the running total stays in [1, ~√a·t_rel]
    and never overflows; the anchor's own magnitude is carried in log
    space.  Requires 0 < rho < 1.
    """
    a = n * rho
    log_a = math.log(a)
    k0 = min(n - 1, int(a))
    log_max = k0 * log_a - math.lgamma(k0 + 1)
    total = 1.0  # the anchor term t_{k0}, scaled to 1
    comp = 0.0  # Kahan compensation
    # downward sweep: t_{k-1}/t_k = k/a
    term = 1.0
    for k in range(k0, 0, -1):
        term *= k / a
        y = term - comp
        t = total + y
        comp = (t - total) - y
        total = t
        if term < 1e-19 * total:
            break
    # upward sweep over the remaining head terms: t_{k+1}/t_k = a/(k+1)
    term = 1.0
    for k in range(k0 + 1, n):
        term *= a / k
        y = term - comp
        t = total + y
        comp = (t - total) - y
        total = t
        if term < 1e-19 * total:
            break
    # queueing tail a^n/(n!(1-rho)); t_n <= t_{k0} so the scaled value is
    # at most 1/(1-rho) — large near saturation but nowhere near overflow
    log_tail = n * log_a - math.lgamma(n + 1) - math.log1p(-rho)
    tail = math.exp(log_tail - log_max)
    y = tail - comp
    total = total + y
    return log_max + math.log(total)


def log_erlang_pi0(n: int, rho: float) -> float:
    """log π₀ = −log S: finite for any N even when π₀ itself underflows."""
    _validate(n, rho)
    if rho == 0.0:
        return 0.0
    return -_log_norm(n, rho)


def log_erlang_pin(n: int, rho: float) -> float:
    """log π_N = N·ln(Nρ) − ln N! − log S.  Requires rho > 0."""
    _validate(n, rho)
    if rho == 0.0:
        raise ValueError("pi_N is exactly 0 at rho=0; its log is undefined")
    a = n * rho
    return n * math.log(a) - math.lgamma(n + 1) - _log_norm(n, rho)


def log_erlang_c(n: int, rho: float) -> float:
    """log P{W > 0} = log π_N − log(1−ρ).  Requires rho > 0."""
    return log_erlang_pin(n, rho) - math.log1p(-rho)


def erlang_pi0(n: int, rho: float) -> float:
    """π₀: probability the system is empty (Eq. 1 normalization).

    Underflows to 0.0 only when π₀ is genuinely below the smallest
    positive double (e.g. N = 10⁵, ρ = 0.95 has π₀ ≈ e^{−92000});
    use :func:`log_erlang_pi0` when the magnitude itself is needed.
    """
    _validate(n, rho)
    if rho == 0.0:
        return 1.0
    return math.exp(-_log_norm(n, rho))


def erlang_pin(n: int, rho: float) -> float:
    """π_N: probability exactly N queries are in the system (Eq. 1)."""
    _validate(n, rho)
    if rho == 0.0:
        return 0.0
    return math.exp(log_erlang_pin(n, rho))


def erlang_c(n: int, rho: float) -> float:
    """Erlang-C: probability an arrival must wait, P{W > 0} = π_N/(1−ρ)."""
    _validate(n, rho)
    if rho == 0.0:
        return 0.0
    return math.exp(log_erlang_c(n, rho))


def wait_cdf(t: float, lam: float, mu: float, n: int) -> float:
    """F_W(t): probability the queueing delay is at most ``t`` (Eq. 4).

    The survival term π_N/(1−ρ)·e^{−Nμ(1−ρ)t} is assembled in log space
    so the product cannot spuriously under/overflow at large N.
    """
    if t < 0:
        return 0.0
    if lam < 0 or mu <= 0:
        raise ValueError("lam must be >= 0 and mu > 0")
    rho = lam / (n * mu)
    _validate(n, rho)
    if lam == 0.0:
        return 1.0
    log_sf = log_erlang_c(n, rho) - n * mu * (1.0 - rho) * t
    return -math.expm1(log_sf) if log_sf < 0.0 else 0.0


def wait_quantile(r: float, lam: float, mu: float, n: int) -> float:
    """W_r: the r-ile of the queueing delay (inverse of Eq. 4).

    Zero when P{W > 0} ≤ 1 − r (the r-ile arrival does not wait at all).
    Evaluated as (log P{W>0} − log(1−r)) / (Nμ(1−ρ)), entirely in log
    space.
    """
    if not 0.0 < r < 1.0:
        raise ValueError(f"r must be in (0, 1), got {r}")
    if lam < 0 or mu <= 0:
        raise ValueError("lam must be >= 0 and mu > 0")
    rho = lam / (n * mu)
    _validate(n, rho)
    if lam == 0.0:
        return 0.0
    log_pw = log_erlang_c(n, rho)
    log_tail = math.log1p(-r)
    if log_pw <= log_tail:
        return 0.0
    return (log_pw - log_tail) / (n * mu * (1.0 - rho))


def mean_wait(lam: float, mu: float, n: int) -> float:
    """E[W]: mean queueing delay = P{W>0} / (Nμ − λ)."""
    if lam < 0 or mu <= 0:
        raise ValueError("lam must be >= 0 and mu > 0")
    rho = lam / (n * mu)
    _validate(n, rho)
    if lam == 0.0:
        return 0.0
    return erlang_c(n, rho) / (n * mu - lam)


def sojourn_quantile(r: float, lam: float, mu: float, n: int) -> float:
    """The paper's r-ile end-to-end estimate: W_r + 1/μ.

    (Eq. 5 budgets T_D − 1/μ for the wait, i.e. it adds the *mean*
    service time to the wait quantile rather than convolving the two —
    we reproduce that approximation faithfully.)
    """
    return wait_quantile(r, lam, mu, n) + 1.0 / mu


def qos_satisfied(lam: float, mu: float, n: int, qos: float, r: float = 0.95) -> bool:
    """Can N containers of capacity μ meet ``qos`` at arrival rate λ?"""
    if qos <= 0:
        raise ValueError(f"qos must be positive, got {qos}")
    if lam >= n * mu:
        return False  # unstable queue: no
    return sojourn_quantile(r, lam, mu, n) <= qos


def max_arrival_rate(mu: float, n: int, qos: float, r: float = 0.95, tol: float = 1e-9) -> float:
    """Largest λ for which ``qos_satisfied`` holds, by bisection.

    This is the operational meaning of the paper's discriminant function:
    if the observed load λ is at most this value, switching the service
    to the serverless platform keeps its r-ile latency within T_D.
    Returns 0.0 when even a lone query misses the target (1/μ > T_D).
    """
    if mu <= 0 or n < 1:
        raise ValueError("mu must be > 0 and n >= 1")
    if qos <= 1.0 / mu:
        return 0.0
    lo, hi = 0.0, n * mu * (1.0 - 1e-12)
    if qos_satisfied(hi, mu, n, qos, r):
        return hi
    while hi - lo > tol * max(1.0, n * mu):
        mid = 0.5 * (lo + hi)
        if qos_satisfied(mid, mu, n, qos, r):
            lo = mid
        else:
            hi = mid
    return lo


def discriminant_lambda(
    mu: float,
    n: int,
    qos: float,
    r: float = 0.95,
    max_iter: int = 200,
    damping: float = 0.5,
) -> float:
    """Paper Eq. 5 by damped fixed-point iteration.

        λ(μ) = Nμ + ln[(1−r)(1−ρ)/π_N] / (T_D − 1/μ)

    The iteration is started from the bisection answer's neighbourhood
    (0.5·Nμ) and damped because the bare map can oscillate near
    saturation.  The logarithm is expanded as
    ln(1−r) + ln(1−ρ) − ln π_N with ln π_N evaluated in log space, so
    the map stays exact even where π_N itself would underflow double
    precision (large N).  Agrees with :func:`max_arrival_rate` to solver
    tolerance; a unit test enforces that.
    """
    if mu <= 0 or n < 1:
        raise ValueError("mu must be > 0 and n >= 1")
    if qos <= 1.0 / mu:
        return 0.0
    budget = qos - 1.0 / mu
    lam = 0.5 * n * mu
    for _ in range(max_iter):
        rho = lam / (n * mu)
        if not 0.0 < rho < 1.0:
            rho = min(max(rho, 1e-9), 1.0 - 1e-9)
        log_arg = math.log1p(-r) + math.log1p(-rho) - log_erlang_pin(n, rho)
        if log_arg >= 0.0:
            # r-ile wait already zero: the wait constraint is slack
            lam_new = n * mu * (1.0 - 1e-9)
        else:
            lam_new = n * mu + log_arg / budget
        lam_new = min(max(lam_new, 0.0), n * mu * (1.0 - 1e-12))
        nxt = (1.0 - damping) * lam + damping * lam_new
        if abs(nxt - lam) < 1e-10 * max(1.0, n * mu):
            lam = nxt
            break
        lam = nxt
    return lam


def _gg_factor(ca2: float, cs2: float) -> float:
    """Allen–Cunneen variability factor (C_a² + C_s²)/2."""
    if ca2 < 0 or cs2 < 0:
        raise ValueError("squared coefficients of variation must be >= 0")
    return 0.5 * (ca2 + cs2)


def wait_quantile_gg(
    r: float, lam: float, mu: float, n: int, ca2: float = 1.0, cs2: float = 0.0
) -> float:
    """G/G/N wait r-ile via the Allen–Cunneen correction.

    The paper's Eq. 5 assumes exponential service (M/M/N), but FaaS
    kernels are near-deterministic, which makes M/M/N waits conservative
    by about 2× (M/D/1's mean wait is exactly half of M/M/1's).  The
    Allen–Cunneen approximation scales the M/M/N wait by
    (C_a² + C_s²)/2; with Poisson arrivals (C_a² = 1) and deterministic
    service (C_s² = 0) that recovers the M/D/N half-wait rule.  This is
    an *extension* beyond the paper — the default discriminant stays
    faithful to Eq. 5.
    """
    return wait_quantile(r, lam, mu, n) * _gg_factor(ca2, cs2)


def qos_satisfied_gg(
    lam: float, mu: float, n: int, qos: float, r: float = 0.95, ca2: float = 1.0, cs2: float = 0.0
) -> bool:
    """G/G/N analogue of :func:`qos_satisfied`."""
    if qos <= 0:
        raise ValueError(f"qos must be positive, got {qos}")
    if lam >= n * mu:
        return False
    return wait_quantile_gg(r, lam, mu, n, ca2, cs2) + 1.0 / mu <= qos


def max_arrival_rate_gg(
    mu: float,
    n: int,
    qos: float,
    r: float = 0.95,
    ca2: float = 1.0,
    cs2: float = 0.0,
    tol: float = 1e-9,
) -> float:
    """Largest admissible λ under the Allen–Cunneen-corrected wait."""
    if mu <= 0 or n < 1:
        raise ValueError("mu must be > 0 and n >= 1")
    if qos <= 1.0 / mu:
        return 0.0
    lo, hi = 0.0, n * mu * (1.0 - 1e-12)
    if qos_satisfied_gg(hi, mu, n, qos, r, ca2, cs2):
        return hi
    while hi - lo > tol * max(1.0, n * mu):
        mid = 0.5 * (lo + hi)
        if qos_satisfied_gg(mid, mu, n, qos, r, ca2, cs2):
            lo = mid
        else:
            hi = mid
    return lo


def min_servers(lam: float, mu: float, qos: float, r: float = 0.95, n_cap: int = 4096) -> int:
    """Smallest N meeting ``qos`` at load λ; raises if ``n_cap`` is not enough.

    Used both by the controller (how many containers must be warm) and by
    the IaaS "just-enough" sizing.  Feasibility is monotone in N (more
    servers at the same λ never hurt — the max_arrival_rate monotonicity
    test pins this), so instead of the old linear scan we double up to the
    first feasible N and bisect back down: O(log N) discriminant
    evaluations, which matters now that fleet sizing runs at N in the
    thousands.
    """
    if lam < 0 or mu <= 0:
        raise ValueError("lam must be >= 0 and mu > 0")
    if qos <= 1.0 / mu:
        raise ValueError(f"QoS {qos}s is below the mean service time {1.0 / mu}s: unattainable")
    if lam == 0.0:
        return 1

    def feasible(n: int) -> bool:
        return lam < n * mu and qos_satisfied(lam, mu, n, qos, r)

    floor_n = max(1, math.ceil(lam / mu))  # below this the queue is unstable
    hi = floor_n
    while not feasible(hi):
        if hi >= n_cap:
            raise ValueError(f"no server count up to {n_cap} meets qos={qos} at lam={lam}, mu={mu}")
        hi = min(2 * hi, n_cap)
    lo = floor_n - 1  # unstable, hence infeasible
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid
    return hi
