"""Open-loop query generation.

Queries arrive according to a non-homogeneous Poisson process whose rate
follows a :class:`~repro.workloads.traces.Trace` (the paper's M/M/N
assumption: exponential inter-arrivals).  Generation is *open-loop*: slow
responses do not throttle arrivals, which is what makes overload visible
as queue growth — the effect the discriminant function exists to predict.

Thinning (Lewis & Shedler) against the trace's ``peak_rate`` keeps the
non-homogeneous process exact without integrating the rate function.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim import Environment, Event, RngRegistry
from repro.sim.events import Callback
from repro.workloads.traces import Trace

__all__ = ["LoadGenerator", "Query"]


@dataclass
class Query:
    """One user request travelling through a deployment."""

    qid: int
    service: str
    t_submit: float
    #: filled in by whichever platform completes the query
    t_complete: Optional[float] = None
    #: per-stage latency contributions, seconds (platforms fill these in)
    breakdown: dict = field(default_factory=dict)
    #: which platform served it ("iaas" / "serverless"), for the timelines
    served_by: Optional[str] = None
    #: True for Amoeba's shadow/canary duplicates (excluded from user QoS)
    canary: bool = False
    #: crash-retry resubmissions consumed so far (fault injection)
    attempts: int = 0
    #: True once the retry budget is spent and the query is dropped
    failed: bool = False
    #: True when a spot reclamation killed this query mid-execution; the
    #: serving process sees the flag when the (ghost) machine work
    #: finishes and skips the terminal accounting already done at kill
    preempt_killed: bool = False
    #: absolute end-to-end deadline propagated down a call graph; None
    #: means no budget is attached and admission falls back to the
    #: service's own QoS target (the flat, pre-graph behaviour)
    t_deadline: Optional[float] = None
    #: critical-path time reserved for work *downstream* of this node,
    #: subtracted from the remaining budget before admission looks at it
    reserved: float = 0.0
    #: fired exactly once when the query reaches a terminal state
    #: (completion or any drop); the call-graph orchestrator's join hook
    on_done: Optional[Callable[["Query"], None]] = None

    @property
    def latency(self) -> float:
        """End-to-end latency; raises if the query has not completed."""
        if self.t_complete is None:
            raise RuntimeError(f"query {self.qid} of {self.service!r} has not completed")
        return self.t_complete - self.t_submit

    def local_budget(self, now: float) -> Optional[float]:
        """Time this node may spend before the downstream reservation is at risk.

        ``deadline - now - reserved``; None when no deadline is attached.
        May be <= 0 for a query that is already dead on arrival.
        """
        if self.t_deadline is None:
            return None
        return self.t_deadline - now - self.reserved

    def notify_done(self) -> None:
        """Fire the terminal hook (at most once, even on double-settle)."""
        cb = self.on_done
        if cb is not None:
            self.on_done = None
            cb(self)


class LoadGenerator:
    """Drives a submit callback with Poisson arrivals following a trace.

    Parameters
    ----------
    env:
        Simulation environment.
    service:
        Service name stamped on the queries.
    trace:
        Arrival-rate shape.
    submit:
        Called with each new :class:`Query`; expected to route it into a
        deployment (fire-and-forget — completion is the platform's job).
    rng:
        Randomness registry; the generator uses stream
        ``"arrivals/<service>"``.
    """

    def __init__(
        self,
        env: Environment,
        service: str,
        trace: Trace,
        submit: Callable[[Query], None],
        rng: RngRegistry,
    ):
        self.env = env
        self.service = service
        self.trace = trace
        self.submit = submit
        self._rng = rng.stream(f"arrivals/{service}")
        self._ids = itertools.count()
        self.generated = 0
        # the generator is a self-rescheduling callback, not a process: one
        # kernel event per candidate arrival instead of an event plus a
        # generator resume.  ``_next`` is the pending candidate's event so
        # stop() can cancel it outright (no stale timers after shutdown).
        self._next: Optional[Event] = None
        rate_max = trace.peak_rate
        if rate_max > 0:
            self._rate_max = rate_max
            self._mean_gap = 1.0 / rate_max
            self._exponential = self._rng.exponential
            self._uniform = self._rng.uniform
            self._trace_rate = trace.rate
            self._next_id = self._ids.__next__
            # candidate arrivals come from the dominating homogeneous
            # process; the first gap is drawn here, which is the same
            # stream position the process bootstrap drew it from
            self._next = Callback(env, float(self._exponential(self._mean_gap)), self._tick)

    def _tick(self) -> None:
        # thinning: accept with probability rate(t) / rate_max
        env = self.env
        if self._uniform() * self._rate_max <= self._trace_rate(env.now):
            q = Query(qid=self._next_id(), service=self.service, t_submit=env.now)
            self.generated += 1
            self.submit(q)
        if self._next is not None:  # stop() during the submit cascade clears it
            self._next = Callback(env, float(self._exponential(self._mean_gap)), self._tick)

    def stop(self) -> None:
        """Halt arrival generation (end of experiment)."""
        ev, self._next = self._next, None
        if ev is not None and not ev.processed:
            ev.cancel()
