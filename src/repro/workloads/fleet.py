"""Deterministic fleet generator for the fleet-scale scenario family.

The paper evaluates Amoeba one service at a time; real deployments run
*fleets* — hundreds of heterogeneous microservices whose arrival rates
sum to millions of queries per day.  :func:`generate_fleet` produces such
a fleet deterministically from a single seed:

* **Heterogeneous mixes.**  Services cycle through the FunctionBench
  families (``float``/``matmul``/``linpack``/``dd``/``cloud_stor``) with
  per-service execution-time jitter applied via
  :meth:`~repro.workloads.functionbench.MicroserviceSpec.scaled`, so no
  two services are exact clones and QoS targets scale with the work.
* **Phase-offset diurnal load.**  Every service gets its own
  :class:`~repro.workloads.traces.DiurnalTrace` with a uniformly drawn
  phase offset plus jittered amplitude, floor, rush-hour shape and noise,
  so the fleet's aggregate load is much flatter than any one service's
  day — the statistical-multiplexing effect that makes shared serverless
  capacity worthwhile.
* **Aggregate-λ normalization.**  Per-service amplitudes are drawn as
  relative weights and then rescaled in a second pass so the fleet's
  aggregate mean arrival rate is exactly ``daily_queries / 86400``
  queries/s — i.e. the fleet as a whole carries ``daily_queries`` per
  (real) day regardless of fleet size or seed.  Traces replay one full
  diurnal cycle in ``day`` compressed simulated seconds, like every other
  scenario in this repo (see EXPERIMENTS.md on compressed days).
* **Dedicated RNG streams.**  Service ``i`` draws all of its parameters
  from ``np.random.default_rng((seed, i))`` — a dedicated config-time
  stream keyed by (seed, index), so the *drawn* parameters (family mix,
  exec jitter, phase, shape, relative amplitude) of services 0..99 are
  unchanged when service 101 joins a 100-service fleet; only the shared
  normalization scale (and with it every absolute rate) moves.

Sizing every service's concurrency threshold is *injected* via
``limit_fn`` rather than computed here: the Eq. 5 admissible-rate search
lives above this layer (``repro.experiments.fleet.fleet_threshold``),
which keeps the workloads package independent of the platform and core
layers (ARCH001 — see DESIGN.md §12).  The default Eq. 5 sizing is the
reason the Erlang math in :mod:`repro.sim.queueing` has to survive large
N without underflow.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Tuple

import numpy as np

from repro.workloads.functionbench import MicroserviceSpec, benchmark, benchmark_names
from repro.workloads.traces import DAY, DiurnalTrace

__all__ = [
    "DEFAULT_DAILY_QUERIES",
    "FleetService",
    "LimitFn",
    "fleet_daily_queries",
    "generate_fleet",
]

#: concurrency-cap sizing hook: (spec, peak_rate, ceiling_fraction) -> limit
LimitFn = Callable[[MicroserviceSpec, float, float], int]

#: default aggregate fleet volume: five million queries per (real) day
DEFAULT_DAILY_QUERIES = 5_000_000.0

#: relative per-family base weights for the amplitude draw (heavier
#: weight on the cheap families, as in public serverless traces where
#: short functions dominate invocation counts)
_FAMILY_WEIGHTS = {
    "float": 3.0,
    "matmul": 1.0,
    "linpack": 1.0,
    "dd": 1.5,
    "cloud_stor": 1.2,
}


@dataclass(frozen=True)
class FleetService:
    """One generated fleet member: spec + load + concurrency cap."""

    #: stable position in the fleet (parameter stream key)
    index: int
    #: FunctionBench family this service was derived from
    family: str
    spec: MicroserviceSpec
    trace: DiurnalTrace
    #: serverless concurrency threshold (Eq. 5 sizing, jittered fraction)
    limit: int
    #: mean arrival rate over one day, queries/s (cached from the trace)
    mean_rate: float


def _draw_params(seed: int, index: int, day: float) -> dict:
    """All random parameters for service ``index``, in one fixed draw order.

    Drawn from a dedicated stream keyed by (seed, index) so fleet
    membership and size never perturb other services' parameters.
    """
    # config-time stream, deterministic by construction
    rng = np.random.default_rng((seed, index))  # simlint: ignore[SIM002]
    return {
        "exec_factor": float(rng.uniform(0.75, 1.35)),
        "amplitude": float(rng.uniform(0.5, 2.0)),
        "phase": float(rng.uniform(0.0, day)),
        "low_fraction": float(rng.uniform(0.20, 0.40)),
        "morning_fraction": float(rng.uniform(0.70, 1.00)),
        "noise_sigma": float(rng.uniform(0.02, 0.08)),
        "ceiling_fraction": float(rng.uniform(0.80, 1.20)),
        "trace_seed": int(rng.integers(1 << 31)),
    }


def generate_fleet(
    services: int,
    daily_queries: float = DEFAULT_DAILY_QUERIES,
    day: float = 600.0,
    seed: int = 0,
    *,
    limit_fn: LimitFn,
) -> Tuple[FleetService, ...]:
    """Generate a deterministic heterogeneous fleet.

    Parameters
    ----------
    services:
        Fleet size (>= 1).
    daily_queries:
        Aggregate fleet volume in queries per *real* day; the generated
        mean rates sum to exactly ``daily_queries / 86400`` queries/s.
    day:
        Compressed-day length in simulated seconds (each trace replays
        one full diurnal cycle in this long).
    seed:
        Master seed; every per-service parameter derives from
        ``(seed, index)``.
    limit_fn:
        Sizes each member's concurrency cap from
        ``(spec, peak_rate, ceiling_fraction)``.  Must be deterministic
        and RNG-free (it runs after all parameter draws, so it can never
        perturb them).  The Eq. 5 sizing used by the sweeps is
        :func:`repro.experiments.fleet.fleet_threshold`, applied by the
        :func:`repro.experiments.fleet.generate_fleet` wrapper.
    """
    if services < 1:
        raise ValueError(f"services must be >= 1, got {services}")
    if daily_queries <= 0:
        raise ValueError(f"daily_queries must be positive, got {daily_queries}")
    if day <= 0:
        raise ValueError(f"day must be positive, got {day}")
    families = benchmark_names()

    # pass 1: draw parameters and provisional traces at relative weights
    drawn = []
    weighted_mean = 0.0
    for i in range(services):
        family = families[i % len(families)]
        p = _draw_params(seed, i, day)
        weight = _FAMILY_WEIGHTS[family] * p["amplitude"]
        trace = DiurnalTrace(
            peak_rate=weight,
            low_fraction=p["low_fraction"],
            morning_fraction=p["morning_fraction"],
            noise_sigma=p["noise_sigma"],
            seed=p["trace_seed"],
            phase=p["phase"],
            day=day,
        )
        mean = trace.mean_rate(0.0, day)
        drawn.append((family, p, weight, mean))
        weighted_mean += mean

    # pass 2: rescale every amplitude so Σ mean_rate == daily_queries/86400.
    # DiurnalTrace.rate() is linear in peak_rate (shape × noise × peak),
    # so scaling the peak scales the mean by the same factor exactly.
    scale = (daily_queries / DAY) / weighted_mean
    fleet = []
    for i, (family, p, weight, mean) in enumerate(drawn):
        base = benchmark(family)
        spec = replace(base.scaled(p["exec_factor"]), name=f"svc{i:04d}_{family}")
        peak = weight * scale
        trace = DiurnalTrace(
            peak_rate=peak,
            low_fraction=p["low_fraction"],
            morning_fraction=p["morning_fraction"],
            noise_sigma=p["noise_sigma"],
            seed=p["trace_seed"],
            phase=p["phase"],
            day=day,
        )
        limit = limit_fn(spec, peak, p["ceiling_fraction"])
        fleet.append(
            FleetService(
                index=i,
                family=family,
                spec=spec,
                trace=trace,
                limit=limit,
                mean_rate=mean * scale,
            )
        )
    return tuple(fleet)


def fleet_daily_queries(fleet: Tuple[FleetService, ...]) -> float:
    """Aggregate fleet volume in queries per (real) day.

    Equals the ``daily_queries`` the fleet was generated with, by the
    pass-2 normalization in :func:`generate_fleet`.
    """
    return sum(s.mean_rate for s in fleet) * DAY
