"""Workload substrate: FunctionBench microservices, traces, load generation.

* :mod:`repro.workloads.functionbench` — the five Table III benchmarks
  (``float``, ``matmul``, ``linpack``, ``dd``, ``cloud_stor``) expressed
  as :class:`~repro.workloads.functionbench.MicroserviceSpec` records:
  solo execution profile, resource demand vector, contention sensitivity
  vector, code size and QoS target.
* :mod:`repro.workloads.traces` — deterministic load-shape generators,
  including the Didi-like two-peak diurnal trace the paper drives its
  evaluation with.
* :mod:`repro.workloads.loadgen` — an open-loop, non-homogeneous Poisson
  query generator that submits queries against any deployment's router.
* :mod:`repro.workloads.fleet` — the deterministic fleet generator:
  hundreds of heterogeneous, phase-offset diurnal services whose mean
  rates are normalized to an aggregate queries-per-day volume.
"""

from repro.workloads.functionbench import (
    BENCHMARKS,
    MicroserviceSpec,
    benchmark,
    benchmark_names,
)
from repro.workloads.ambient import AmbientTenants
from repro.workloads.loadgen import LoadGenerator, Query
from repro.workloads.traces import (
    BurstTrace,
    ConstantTrace,
    DiurnalTrace,
    FlashCrowdTrace,
    SampledTrace,
    StepTrace,
    Trace,
)

__all__ = [
    "AmbientTenants",
    "BENCHMARKS",
    "BurstTrace",
    "ConstantTrace",
    "DiurnalTrace",
    "FlashCrowdTrace",
    "LoadGenerator",
    "MicroserviceSpec",
    "Query",
    "SampledTrace",
    "StepTrace",
    "Trace",
    "benchmark",
    "benchmark_names",
]
