"""Load-shape generators.

The paper drives every benchmark with a load pattern "configured based on
the query trace from Didi" — a ride-hailing service whose demand shows
the classic two-peak diurnal shape (morning and evening rush), with the
overnight low around 30% of the peak (the paper's §I definition of "low
load").  The actual Didi trace is not redistributable; §II-A of the paper
notes "the actual fluctuate pattern does not affect the analysis", so
:class:`DiurnalTrace` synthesizes that shape deterministically:

* a smooth baseline built from two Gaussian bumps (centred 08:30 and
  18:00) on top of the overnight floor,
* multiplicative noise from a seeded autoregressive process,
* optional short bursts (to exercise the controller's burst handling).

All traces expose ``rate(t)`` (queries/second at simulated time ``t``)
and ``peak_rate`` (their design maximum, used for IaaS sizing).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "BurstTrace",
    "ConstantTrace",
    "DiurnalTrace",
    "FlashCrowdTrace",
    "SampledTrace",
    "StepTrace",
    "Trace",
]

DAY = 86400.0


def peak_concurrent_extra(bursts: Sequence[tuple[float, float, float]]) -> float:
    """Maximum simultaneous sum of rectangular ``(start, duration, extra)`` rates.

    The sum of active rectangles is piecewise constant and can only
    reach a new maximum at some rectangle's start, so evaluating the
    overlap sum at each start covers every candidate instant.  With a
    single burst this reduces to the burst's own extra; *overlapping*
    bursts stack, which a plain ``max`` over extras understates.
    """
    best = 0.0
    for start, _, _ in bursts:
        total = sum(extra for s, d, extra in bursts if s <= start < s + d)
        if total > best:
            best = total
    return best


class Trace:
    """Interface: a time-varying arrival-rate function."""

    #: the maximum rate the trace is designed to reach (for sizing)
    peak_rate: float

    def rate(self, t: float) -> float:  # pragma: no cover - interface
        """Instantaneous arrival rate (queries/second) at time ``t``."""
        raise NotImplementedError

    def mean_rate(self, t0: float, t1: float, samples: int = 512) -> float:
        """Average rate over [t0, t1] by midpoint sampling."""
        if t1 <= t0:
            raise ValueError(f"empty interval [{t0}, {t1}]")
        ts = np.linspace(t0, t1, samples, endpoint=False) + (t1 - t0) / (2 * samples)
        return float(np.mean([self.rate(float(t)) for t in ts]))


class ConstantTrace(Trace):
    """Fixed arrival rate (peak-load probes, unit tests)."""

    def __init__(self, rate: float):
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self._rate = float(rate)
        self.peak_rate = float(rate)

    def rate(self, t: float) -> float:
        return self._rate


class StepTrace(Trace):
    """Piecewise-constant rate from (time, rate) breakpoints."""

    def __init__(self, breakpoints: Sequence[tuple[float, float]]):
        if not breakpoints:
            raise ValueError("need at least one breakpoint")
        times = [bp[0] for bp in breakpoints]
        if times != sorted(times):
            raise ValueError("breakpoints must be sorted by time")
        if any(bp[1] < 0 for bp in breakpoints):
            raise ValueError("rates must be >= 0")
        self._times = np.asarray(times, dtype=float)
        self._rates = np.asarray([bp[1] for bp in breakpoints], dtype=float)
        self.peak_rate = float(self._rates.max())

    def rate(self, t: float) -> float:
        idx = int(np.searchsorted(self._times, t, side="right")) - 1
        if idx < 0:
            return 0.0
        return float(self._rates[idx])


class DiurnalTrace(Trace):
    """Didi-like two-peak diurnal load shape with seeded noise.

    Parameters
    ----------
    peak_rate:
        Queries/second at the evening peak (the larger of the two).
    low_fraction:
        Overnight floor as a fraction of ``peak_rate`` (paper: ~0.3).
    morning_fraction:
        Height of the morning peak relative to the evening peak.
    noise_sigma:
        Std-dev of the multiplicative AR(1) noise (0 disables noise).
    seed:
        Noise seed; same seed → identical trace.
    phase:
        Shift of the daily pattern in seconds (lets background services
        peak at different hours than the foreground benchmark).
    day:
        Length of one "day" in simulated seconds.  The default is a real
        day; experiments compress it (e.g. 7200 s) so a full diurnal
        cycle fits in a fast simulation — the controller's dynamics only
        depend on the load *shape*, not the absolute day length, as long
        as the day is much longer than the switch dwell time.
    """

    def __init__(
        self,
        peak_rate: float,
        low_fraction: float = 0.3,
        morning_fraction: float = 0.85,
        noise_sigma: float = 0.04,
        seed: int = 0,
        phase: float = 0.0,
        day: float = DAY,
    ):
        if peak_rate <= 0:
            raise ValueError(f"peak_rate must be positive, got {peak_rate}")
        if not 0.0 <= low_fraction < 1.0:
            raise ValueError(f"low_fraction must be in [0, 1), got {low_fraction}")
        if not 0.0 < morning_fraction <= 1.0:
            raise ValueError(f"morning_fraction must be in (0, 1], got {morning_fraction}")
        if noise_sigma < 0:
            raise ValueError(f"noise_sigma must be >= 0, got {noise_sigma}")
        if day <= 0:
            raise ValueError(f"day must be positive, got {day}")
        self.peak_rate = float(peak_rate)
        self.low_fraction = float(low_fraction)
        self.morning_fraction = float(morning_fraction)
        self.noise_sigma = float(noise_sigma)
        self.phase = float(phase)
        self.day = float(day)
        # precompute one day of AR(1) multiplicative noise on a fixed grid
        # of 1440 cells, wrapped periodically, so rate() is a pure
        # function of t
        n = 1440
        # explicitly seeded one-shot noise table, deterministic given `seed`
        rng = np.random.default_rng(seed)  # simlint: ignore[SIM002]
        ar = np.empty(n)
        ar[0] = 0.0
        alpha = 0.9
        innov = rng.normal(0.0, noise_sigma * math.sqrt(1 - alpha**2), size=n)
        for i in range(1, n):
            ar[i] = alpha * ar[i - 1] + innov[i]
        # a plain list: rate() indexes one scalar per candidate arrival,
        # and list[int] → float beats ndarray scalar extraction there
        self._noise = np.exp(ar).tolist()
        self._noise_dt = self.day / n

    def _shape(self, tod: float) -> float:
        """Noise-free shape on [0, 1] given time-of-day in [0, day)."""
        h = 24.0 * tod / self.day
        # two Gaussian rush-hour bumps on top of the overnight floor
        morning = self.morning_fraction * math.exp(-((h - 8.5) ** 2) / (2 * 1.6**2))
        evening = math.exp(-((h - 18.0) ** 2) / (2 * 2.2**2))
        bump = max(morning, evening)
        return self.low_fraction + (1.0 - self.low_fraction) * bump

    def rate(self, t: float) -> float:
        tod = (t + self.phase) % self.day
        # _shape(tod) unrolled: rate() runs once per candidate arrival
        h = 24.0 * tod / self.day
        morning = self.morning_fraction * math.exp(-((h - 8.5) ** 2) / (2 * 1.6**2))
        evening = math.exp(-((h - 18.0) ** 2) / (2 * 2.2**2))
        bump = max(morning, evening)
        shape = self.low_fraction + (1.0 - self.low_fraction) * bump
        base = shape * self.peak_rate
        idx = int(tod / self._noise_dt) % len(self._noise)
        return float(min(base * self._noise[idx], self.peak_rate))


class SampledTrace(Trace):
    """A rate curve from (time, rate) samples — e.g. a real query trace.

    This is the adapter for replaying actual load data (the paper drives
    its benchmarks from the Didi trace; anyone holding such a trace can
    resample it to (t, qps) pairs and feed it here).

    Parameters
    ----------
    times, rates:
        Sample points; times strictly increasing, rates >= 0.
    interpolation:
        ``"linear"`` between samples or ``"previous"`` (step function).
    period:
        If set, the trace repeats with this period (``times`` must fit
        inside one period); otherwise the rate is clamped to the first /
        last sample outside the sampled range.
    scale:
        Multiplier applied to every rate (rescale a trace to a target
        peak without editing the data).
    """

    def __init__(self, times, rates, interpolation: str = "linear",
                 period: Optional[float] = None, scale: float = 1.0):
        t = np.asarray(times, dtype=float)
        r = np.asarray(rates, dtype=float)
        if t.ndim != 1 or t.shape != r.shape or t.size < 2:
            raise ValueError("need matching 1-D times/rates with >= 2 samples")
        if np.any(np.diff(t) <= 0):
            raise ValueError("times must be strictly increasing")
        if np.any(r < 0):
            raise ValueError("rates must be >= 0")
        if interpolation not in ("linear", "previous"):
            raise ValueError(f"unknown interpolation {interpolation!r}")
        if period is not None and period <= t[-1] - t[0]:
            raise ValueError("period must exceed the sampled span")
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        self._t = t
        self._r = r * scale
        self.interpolation = interpolation
        self.period = period
        self.peak_rate = float(self._r.max())

    @classmethod
    def from_csv(cls, path, **kwargs) -> "SampledTrace":
        """Load a two-column (time, rate) CSV; '#' lines are comments."""
        data = np.loadtxt(path, delimiter=",", comments="#")
        if data.ndim != 2 or data.shape[1] < 2:
            raise ValueError(f"{path}: expected two columns (time, rate)")
        return cls(data[:, 0], data[:, 1], **kwargs)

    def rate(self, t: float) -> float:
        if self.period is not None:
            t = self._t[0] + (t - self._t[0]) % self.period
            if t > self._t[-1]:
                # inside the repetition gap: hold the last sample
                return float(self._r[-1])
        if self.interpolation == "linear":
            return float(np.interp(t, self._t, self._r))
        idx = int(np.searchsorted(self._t, t, side="right")) - 1
        idx = min(max(idx, 0), self._t.size - 1)
        return float(self._r[idx])


class BurstTrace(Trace):
    """A base trace with superimposed rectangular bursts.

    ``bursts`` is a sequence of ``(start, duration, extra_rate)`` tuples.
    Used by ablation benches to exercise the controller's reaction to
    sudden load (paper §II-E, third challenge).
    """

    def __init__(self, base: Trace, bursts: Sequence[tuple[float, float, float]]):
        for start, duration, extra in bursts:
            if duration <= 0 or extra < 0:
                raise ValueError(f"bad burst ({start}, {duration}, {extra})")
        self.base = base
        self.bursts = tuple(bursts)
        # overlapping bursts stack, so the design peak is the max over
        # *summed* concurrent extras, not the single largest burst
        self.peak_rate = base.peak_rate + peak_concurrent_extra(self.bursts)

    def rate(self, t: float) -> float:
        r = self.base.rate(t)
        for start, duration, extra in self.bursts:
            if start <= t < start + duration:
                r += extra
        return r


class FlashCrowdTrace(Trace):
    """A base trace with a seeded Poisson train of flash-crowd spikes.

    Spike arrivals over ``[0, horizon)`` form a Poisson process with
    mean inter-arrival ``mean_gap_s`` (drawn once at construction from
    the ``(seed, 0)`` stream); spike ``k``'s magnitude and duration come
    from its own ``(seed, k)`` stream, so adding or removing one spike
    never perturbs another's shape.  Each spike is a rectangle of extra
    rate layered on the base — the surge-mode stress pattern the
    controller's Eq. 7 prewarm margin must absorb (paper §II-E's sudden
    load challenge, at flash-crowd scale).

    Parameters
    ----------
    base:
        The underlying (e.g. diurnal) trace.
    horizon:
        Time span to populate with spikes, seconds.
    mean_gap_s:
        Mean gap between spike starts (Poisson arrivals).
    magnitude:
        Median extra rate per spike, queries/second.
    duration_s:
        Median spike duration, seconds.
    seed:
        Root seed for the spike train.
    magnitude_sigma, duration_sigma:
        Lognormal spread of per-spike magnitude/duration.
    """

    def __init__(
        self,
        base: Trace,
        horizon: float,
        mean_gap_s: float,
        magnitude: float,
        duration_s: float = 60.0,
        seed: int = 0,
        magnitude_sigma: float = 0.35,
        duration_sigma: float = 0.25,
    ):
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if mean_gap_s <= 0:
            raise ValueError(f"mean_gap_s must be positive, got {mean_gap_s}")
        if magnitude < 0 or duration_s <= 0:
            raise ValueError("magnitude must be >= 0 and duration_s positive")
        if magnitude_sigma < 0 or duration_sigma < 0:
            raise ValueError("sigmas must be >= 0")
        self.base = base
        self.horizon = float(horizon)
        # the gap stream is (seed, 0); spike k's shape stream is (seed, k)
        # — deterministic one-shot construction, like DiurnalTrace's table
        gap_rng = np.random.default_rng((seed, 0))  # simlint: ignore[SIM002]
        spikes = []
        t = float(gap_rng.exponential(mean_gap_s))
        k = 1
        while t < self.horizon:
            srng = np.random.default_rng((seed, k))  # simlint: ignore[SIM002]
            extra = magnitude * float(srng.lognormal(0.0, magnitude_sigma))
            dur = duration_s * float(srng.lognormal(0.0, duration_sigma))
            spikes.append((t, dur, extra))
            t += float(gap_rng.exponential(mean_gap_s))
            k += 1
        self.spikes = tuple(spikes)
        self.peak_rate = base.peak_rate + peak_concurrent_extra(self.spikes)

    def rate(self, t: float) -> float:
        r = self.base.rate(t)
        for start, duration, extra in self.spikes:
            if start <= t < start + duration:
                r += extra
        return r
