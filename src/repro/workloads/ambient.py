"""Ambient tenant pressure on the shared serverless node.

The paper's serverless platform is multi-tenant: "queries of multiple
user-facing applications are submitted to and executed by the serverless
computing platform" (Fig. 5), and the whole point of the contention
monitor is that the pressure those *other* applications produce keeps
changing.  Simulating every ambient tenant query-by-query would dominate
the event budget, so ambient tenants are modelled as a standing demand
vector that tracks per-axis diurnal pressure traces — the machine model
treats it exactly like containers' demand (it stretches everyone's
execution), and the contention meters measure it like any other load,
but it costs one event per update tick instead of thousands per second.

This is a documented substitution (DESIGN.md §2): the deployment
controller never observes ambient tenants directly — only through meter
latencies — so their microscopic structure is irrelevant to every
experiment; only the pressure trajectory matters.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cluster import DemandVector, MachineModel
from repro.sim import Environment, RngRegistry
from repro.workloads.traces import Trace

__all__ = ["AmbientTenants"]

AXES = ("cpu", "io", "net")


class AmbientTenants:
    """Time-varying background pressure on a machine.

    Parameters
    ----------
    env, machine:
        Where the pressure lands.
    pressure_traces:
        Map from axis name (``"cpu"``/``"io"``/``"net"``) to a
        :class:`~repro.workloads.traces.Trace` whose ``rate(t)`` is read
        as a *pressure* (fraction of that axis's capacity).
    rng:
        Randomness for the per-tick jitter.
    interval:
        Seconds between pressure updates.
    jitter_sigma:
        Lognormal sigma of multiplicative per-tick noise.
    """

    def __init__(
        self,
        env: Environment,
        machine: MachineModel,
        pressure_traces: Dict[str, Trace],
        rng: RngRegistry,
        interval: float = 20.0,
        jitter_sigma: float = 0.05,
    ):
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if jitter_sigma < 0:
            raise ValueError(f"jitter_sigma must be >= 0, got {jitter_sigma}")
        unknown = set(pressure_traces) - set(AXES)
        if unknown:
            raise ValueError(f"unknown axes {sorted(unknown)}; expected subset of {AXES}")
        self.env = env
        self.machine = machine
        self.traces = dict(pressure_traces)
        self.rng = rng
        self.interval = float(interval)
        self.jitter_sigma = float(jitter_sigma)
        self._remove: Optional[Callable[[], None]] = None
        self.current = DemandVector()
        self._proc = env.process(self._run())

    def _target_demand(self, t: float) -> DemandVector:
        caps = self.machine.capacity  # (cores, io, net)
        vals = []
        for i, axis in enumerate(AXES):
            trace = self.traces.get(axis)
            if trace is None:
                vals.append(0.0)
                continue
            p = trace.rate(t)
            if self.jitter_sigma > 0:
                p *= self.rng.lognormal_around(f"ambient/{axis}", 1.0, self.jitter_sigma)
            vals.append(max(p, 0.0) * caps[i])
        return DemandVector(cpu=vals[0], io_mbps=vals[1], net_mbps=vals[2])

    def _run(self):
        while True:
            demand = self._target_demand(self.env.now)
            if self._remove is not None:
                self._remove()
                self._remove = None
            if demand.cpu > 0 or demand.io_mbps > 0 or demand.net_mbps > 0:
                self._remove = self.machine.inject_background(demand)
            self.current = demand
            yield self.env.timeout(self.interval)

    def pressures_now(self) -> tuple[float, float, float]:
        """The ambient pressure vector currently injected."""
        caps = self.machine.capacity
        d = self.current
        return (d.cpu / caps[0], d.io_mbps / caps[1], d.net_mbps / caps[2])
