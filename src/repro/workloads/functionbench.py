"""The FunctionBench benchmarks of paper Table III.

The paper characterizes five FunctionBench microservices by their
*sensitivity of loads* on CPU, memory, disk IO and network (Table III):

============  =====  ======  ========  =======
name          CPU    Memory  Disk I/O  Network
============  =====  ======  ========  =======
float         high   high    --        --
matmul        high   high    --        --
linpack       high   high    --        --
dd            med.   med.    high      --
cloud_stor    low    low     medium    high
============  =====  ======  ========  =======

FunctionBench itself is a real code suite (sin/cos/sqrt loops, matrix
multiply, LINPACK, ``dd`` disk copy, cloud-storage up/download).  We do
not execute the real kernels; each benchmark is a
:class:`MicroserviceSpec` whose *solo execution time*, *demand vector*
and *sensitivity vector* reproduce the qualitative Table III profile.
Concrete numbers are our calibration (documented in EXPERIMENTS.md):
execution times are in the hundreds-of-milliseconds range FunctionBench
reports on similar hardware, QoS targets are set a few× the solo
end-to-end latency — tight for ``float`` (the paper calls out its tight
QoS keeping IaaS utilization low) and looser for the long kernels.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Tuple

from repro.cluster import DemandVector, SensitivityVector

__all__ = ["BENCHMARKS", "MicroserviceSpec", "benchmark", "benchmark_names"]


@dataclass(frozen=True)
class MicroserviceSpec:
    """Everything a platform needs to host one microservice.

    Parameters
    ----------
    name:
        Registry key.
    exec_time:
        Mean uncontended execution time of one query, in seconds,
        when the query has its full demand vector available.
    exec_sigma:
        Lognormal sigma of per-query execution-time jitter.
    demand:
        Resources one in-flight query occupies while executing.
    sensitivity:
        Degradation multipliers per contended resource axis
        (cpu+memory-bandwidth, disk IO, network — the paper's three
        contention-meter axes).
    qos_target:
        End-to-end 95%-ile latency target, seconds (the paper's QoS).
    code_mb:
        Deployment artifact size; governs serverless code-loading time.
    memory_mb:
        Per-container / per-worker memory footprint.
    result_mb:
        Response payload size; governs serverless result-posting time.
    """

    name: str
    exec_time: float
    exec_sigma: float
    demand: DemandVector
    sensitivity: SensitivityVector
    qos_target: float
    code_mb: float = 40.0
    memory_mb: float = 256.0
    result_mb: float = 0.1

    def __post_init__(self) -> None:
        if self.exec_time <= 0:
            raise ValueError(f"exec_time must be positive, got {self.exec_time}")
        if self.exec_sigma < 0:
            raise ValueError(f"exec_sigma must be >= 0, got {self.exec_sigma}")
        if self.qos_target <= self.exec_time:
            raise ValueError(
                f"{self.name}: QoS target {self.qos_target}s does not even cover "
                f"the solo execution time {self.exec_time}s"
            )
        if self.code_mb <= 0 or self.memory_mb <= 0 or self.result_mb < 0:
            raise ValueError("code_mb/memory_mb must be positive, result_mb >= 0")

    def with_qos(self, qos_target: float) -> "MicroserviceSpec":
        """Copy of this spec with a different QoS target."""
        return replace(self, qos_target=qos_target)

    def scaled(self, exec_factor: float) -> "MicroserviceSpec":
        """Copy with execution time (and QoS, proportionally) scaled."""
        if exec_factor <= 0:
            raise ValueError(f"exec_factor must be positive, got {exec_factor}")
        return replace(
            self,
            exec_time=self.exec_time * exec_factor,
            qos_target=self.qos_target * exec_factor,
        )


def _spec(
    name: str,
    exec_time: float,
    demand: Tuple[float, float, float, float],
    sens: Tuple[float, float, float],
    qos_target: float,
    code_mb: float,
    result_mb: float,
    exec_sigma: float = 0.12,
) -> MicroserviceSpec:
    cpu, mem, io, net = demand
    s_cpu, s_io, s_net = sens
    return MicroserviceSpec(
        name=name,
        exec_time=exec_time,
        exec_sigma=exec_sigma,
        demand=DemandVector(cpu=cpu, memory_mb=mem, io_mbps=io, net_mbps=net),
        sensitivity=SensitivityVector(cpu=s_cpu, io=s_io, net=s_net),
        qos_target=qos_target,
        code_mb=code_mb,
        memory_mb=max(mem, 256.0),
        result_mb=result_mb,
    )


#: Table III reproduced as concrete specs.  Demand = (cores, MB, MB/s disk,
#: MB/s net); sensitivity = (cpu+membw, io, net).
BENCHMARKS: Dict[str, MicroserviceSpec] = {
    # float_operation: sin/cos/sqrt in a tight loop — purely CPU, and the
    # paper singles it out for a *tight* QoS target that keeps IaaS CPU
    # utilization low (Fig. 2 discussion).
    "float": _spec(
        "float",
        exec_time=0.080,
        demand=(1.0, 128.0, 0.0, 0.5),
        sens=(1.00, 0.05, 0.05),
        qos_target=0.30,
        code_mb=15.0,
        result_mb=0.02,
    ),
    # matrix_multiplication: dense GEMM — CPU and memory-bandwidth heavy.
    "matmul": _spec(
        "matmul",
        exec_time=0.350,
        demand=(1.0, 220.0, 0.0, 1.0),
        sens=(1.25, 0.05, 0.05),
        qos_target=1.60,
        code_mb=30.0,
        result_mb=0.20,
    ),
    # linpack: LU solve — CPU/memory heavy, slightly longer kernel.
    "linpack": _spec(
        "linpack",
        exec_time=0.500,
        demand=(1.0, 240.0, 0.0, 1.0),
        sens=(1.10, 0.05, 0.05),
        qos_target=2.40,
        code_mb=35.0,
        result_mb=0.10,
    ),
    # dd: disk copy with moderate compute — the disk-IO-bound benchmark.
    "dd": _spec(
        "dd",
        exec_time=0.300,
        demand=(0.65, 200.0, 100.0, 1.0),
        sens=(0.40, 1.20, 0.05),
        qos_target=1.30,
        code_mb=35.0,
        result_mb=0.05,
    ),
    # cloud_storage: up/download against object storage — network-bound
    # with a medium disk component (paper: network bottleneck keeps its
    # IaaS CPU utilization low).
    "cloud_stor": _spec(
        "cloud_stor",
        exec_time=0.400,
        demand=(0.30, 180.0, 30.0, 90.0),
        sens=(0.20, 0.50, 1.25),
        qos_target=1.70,
        code_mb=45.0,
        result_mb=1.50,
    ),
}


def benchmark(name: str) -> MicroserviceSpec:
    """Look up one Table III benchmark by name."""
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(f"unknown benchmark {name!r}; known: {sorted(BENCHMARKS)}") from None


def benchmark_names() -> tuple[str, ...]:
    """All benchmark names in Table III order."""
    return ("float", "matmul", "linpack", "dd", "cloud_stor")
