"""IaaS platform simulator (the paper's Nameko services in VMs).

A service rents ``k`` identical VM flavors sized "just enough" for its
peak load (paper §II-B) and keeps them up for its whole deployment — the
rented cores and memory are occupied whether queries arrive or not, which
is precisely the waste Fig. 2 quantifies.

* :mod:`repro.iaas.vm` — the VM flavor (a fixed slice of the node) and
  boot-time model.
* :mod:`repro.iaas.sizing` — just-enough sizing: the smallest (k VMs,
  n worker slots) whose predicted 95 %-ile latency at peak load meets
  the QoS target, accounting for the service's *self*-contention inside
  its own VMs.
* :mod:`repro.iaas.service` — a deployed service: worker-slot FIFO,
  contended execution, deploy/boot/drain/undeploy lifecycle.
* :mod:`repro.iaas.platform` — facade for deploying many services.
"""

from repro.iaas.platform import IaaSPlatform
from repro.iaas.service import IaaSService
from repro.iaas.sizing import SizingResult, size_service
from repro.iaas.vm import VMFlavor

__all__ = ["IaaSPlatform", "IaaSService", "SizingResult", "VMFlavor", "size_service"]
