"""Just-enough IaaS sizing (paper §II-B).

"We deploy each benchmark on the infrastructure that is *just enough* to
guarantee the QoS of the benchmark under the peak load."  Given a spec
and its peak arrival rate, find the smallest rental — ``k`` VMs of a
flavor, with ``n`` concurrent worker slots spread across them — whose
predicted 95 %-ile latency at peak meets the QoS target.

The prediction couples two effects:

* **Queueing**: n worker slots form an M/M/n system
  (:func:`repro.sim.queueing.qos_satisfied`).
* **Self-contention**: when many slots are busy at once, the service's
  own demand pressures its own VMs' cores/disk/NIC and stretches its
  service time.  We evaluate the slowdown at the all-busy pressure —
  conservative, which is what "guarantee the QoS" requires.

This mechanism reproduces Fig. 2's utilization spread without per-
benchmark hand-tuning: tight-QoS CPU services need pressure headroom
(low CPU utilization), and network-bound services must rent cores they
will never use just to obtain NIC bandwidth.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.cluster import ContentionConfig
from repro.sim.queueing import qos_satisfied
from repro.iaas.vm import DEFAULT_FLAVOR, VMFlavor
from repro.workloads import MicroserviceSpec

__all__ = ["SizingResult", "size_service"]

#: fixed per-query RPC overhead on the IaaS path (Nameko dispatch), seconds
RPC_OVERHEAD = 0.003


@dataclass(frozen=True)
class SizingResult:
    """Outcome of just-enough sizing."""

    vm_count: int
    workers: int
    flavor: VMFlavor
    #: predicted effective service time at all-busy pressure, seconds
    effective_service_time: float

    @property
    def rented_cores(self) -> float:
        """Total cores this rental occupies."""
        return self.vm_count * self.flavor.cores

    @property
    def rented_memory_mb(self) -> float:
        """Total memory this rental occupies."""
        return self.vm_count * self.flavor.memory_mb


def effective_service_time(
    spec: MicroserviceSpec,
    workers: int,
    vm_count: int,
    flavor: VMFlavor,
    contention: ContentionConfig,
) -> float:
    """Service time when all ``workers`` slots are busy on ``vm_count`` VMs."""
    if workers < 1 or vm_count < 1:
        raise ValueError("workers and vm_count must be >= 1")
    d = spec.demand
    pressures = (
        workers * d.cpu / (vm_count * flavor.cores),
        workers * d.io_mbps / (vm_count * flavor.io_mbps),
        workers * d.net_mbps / (vm_count * flavor.net_mbps),
    )
    slowdown = contention.slowdown(spec.sensitivity, pressures)
    return spec.exec_time * slowdown + RPC_OVERHEAD


def size_service(
    spec: MicroserviceSpec,
    peak_rate: float,
    flavor: Optional[VMFlavor] = None,
    contention: Optional[ContentionConfig] = None,
    qos_margin: float = 0.90,
    r: float = 0.95,
    max_vms: int = 64,
) -> SizingResult:
    """Smallest (vm_count, workers) meeting the QoS at ``peak_rate``.

    ``qos_margin`` shrinks the target so the conservative analytic model
    leaves room for execution-time jitter the M/M/n math does not see.
    """
    if peak_rate <= 0:
        raise ValueError(f"peak_rate must be positive, got {peak_rate}")
    if not 0.0 < qos_margin <= 1.0:
        raise ValueError(f"qos_margin must be in (0, 1], got {qos_margin}")
    flavor = flavor if flavor is not None else DEFAULT_FLAVOR
    contention = contention if contention is not None else ContentionConfig()
    target = spec.qos_target * qos_margin

    for k in range(1, max_vms + 1):
        # worker slots are bounded by VM memory
        mem_bound = int(k * flavor.memory_mb // spec.memory_mb)
        if mem_bound < 1:
            continue
        # minimum worker count for stability at peak (ignoring slowdown)
        n_lo = max(1, math.ceil(peak_rate * spec.exec_time))
        for n in range(n_lo, mem_bound + 1):
            s_eff = effective_service_time(spec, n, k, flavor, contention)
            if s_eff >= target:
                # adding slots only raises all-busy pressure further
                break
            mu = 1.0 / s_eff
            if peak_rate < n * mu and qos_satisfied(peak_rate, mu, n, target, r):
                return SizingResult(
                    vm_count=k, workers=n, flavor=flavor, effective_service_time=s_eff
                )
    raise ValueError(
        f"{spec.name}: no rental up to {max_vms} x {flavor.name} meets "
        f"qos={spec.qos_target}s at peak {peak_rate} qps"
    )
