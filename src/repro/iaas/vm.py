"""VM flavors: the rentable unit of the IaaS platform.

A flavor is a fixed slice of a physical node: cores, memory, and the
matching proportional slices of disk and network bandwidth (a 4-core
flavor on a 40-core node gets a tenth of the node's NIC).  Boot times are
tens of seconds — three orders of magnitude above a container cold start,
which is why the hybrid engine boots VMs *before* flipping the route
(§V-B) rather than on demand.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster import NodeSpec

__all__ = ["VMFlavor", "DEFAULT_FLAVOR"]


@dataclass(frozen=True)
class VMFlavor:
    """One rentable VM shape."""

    name: str = "c4.large"
    cores: float = 4.0
    memory_mb: float = 8 * 1024.0
    io_mbps: float = 200.0
    net_mbps: float = 312.5
    #: VM boot time: lognormal median (s) and sigma
    boot_median: float = 25.0
    boot_sigma: float = 0.20

    def __post_init__(self) -> None:
        for attr in ("cores", "memory_mb", "io_mbps", "net_mbps", "boot_median"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.boot_sigma < 0:
            raise ValueError("boot_sigma must be >= 0")

    @classmethod
    def slice_of(cls, node: NodeSpec, cores: float, name: str = "custom") -> "VMFlavor":
        """A flavor that is ``cores`` worth of ``node``, bandwidth pro-rata."""
        if cores <= 0 or cores > node.cores:
            raise ValueError(f"cores must be in (0, {node.cores}], got {cores}")
        frac = cores / node.cores
        return cls(
            name=name,
            cores=cores,
            memory_mb=node.memory_mb * frac,
            io_mbps=node.disk_mbps * frac,
            net_mbps=node.net_mbps * frac,
        )


#: the default rental unit: a 4-core slice of the Table II node
DEFAULT_FLAVOR = VMFlavor()
