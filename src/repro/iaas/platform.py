"""IaaS platform facade: deploy and route to many services.

Unlike the serverless node, IaaS services do not share a machine model —
each rental is an isolated slice (that isolation is what the maintainer
pays for).  The facade handles sizing + construction and name-based
routing.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster import ContentionConfig
from repro.iaas.service import IaaSService
from repro.iaas.sizing import size_service
from repro.iaas.vm import VMFlavor
from repro.sim import Environment, RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads import MicroserviceSpec, Query

__all__ = ["IaaSPlatform"]


class IaaSPlatform:
    """All IaaS rentals in one experiment."""

    def __init__(
        self,
        env: Environment,
        rng: RngRegistry,
        flavor: Optional[VMFlavor] = None,
        contention: Optional[ContentionConfig] = None,
    ):
        self.env = env
        self.rng = rng
        self.flavor = flavor if flavor is not None else VMFlavor()
        self.contention = contention if contention is not None else ContentionConfig()
        self._services: Dict[str, IaaSService] = {}

    def deploy(
        self,
        spec: MicroserviceSpec,
        peak_rate: float,
        metrics: Optional[ServiceMetrics] = None,
        instant: bool = True,
    ) -> IaaSService:
        """Size just-enough for ``peak_rate``, build and boot the service."""
        if spec.name in self._services:
            raise ValueError(f"service {spec.name!r} already deployed")
        sizing = size_service(spec, peak_rate, flavor=self.flavor, contention=self.contention)
        svc = IaaSService(
            self.env, spec, sizing, self.rng, metrics=metrics, contention=self.contention
        )
        svc.deploy(instant=instant)
        self._services[spec.name] = svc
        return svc

    def service(self, name: str) -> IaaSService:
        """Look up a deployed service."""
        try:
            return self._services[name]
        except KeyError:
            raise KeyError(f"service {name!r} not deployed") from None

    def invoke(self, query: Query) -> None:
        """Route one query to its service."""
        self.service(query.service).invoke(query)
