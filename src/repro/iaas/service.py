"""A deployed IaaS service: rented VMs + worker-slot queueing.

The service holds ``k`` flavors' worth of capacity in one
:class:`~repro.cluster.resource_model.MachineModel` (perfect load
balancing across its own VMs) and admits at most ``n`` concurrent queries
through a FIFO :class:`~repro.sim.resources.Resource`.  The rented cores
and memory hit the usage ledger for the VMs' entire uptime — that is the
IaaS cost model the paper's Fig. 2/11 comparisons rest on.

Lifecycle: ``deploy()`` boots the VMs (tens of seconds) and only then
reports ready; ``undeploy()`` drains in-flight queries before releasing
the rental (paper §V-B: "the IaaS platform releases the resources after
all its allocated queries completed").
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cluster import ContentionConfig, MachineModel, UsageLedger
from repro.faults import FaultInjector, VMBootFailed
from repro.iaas.sizing import RPC_OVERHEAD, SizingResult
from repro.overload import OverloadGovernor
from repro.sim import Environment, Event, Resource, RngRegistry, TimeSeries
from repro.telemetry import ServiceMetrics
from repro.workloads import MicroserviceSpec, Query

__all__ = ["IaaSService", "ServiceState"]


class ServiceState(enum.Enum):
    """Deployment lifecycle of an IaaS service."""

    STOPPED = "stopped"
    BOOTING = "booting"
    RUNNING = "running"
    DRAINING = "draining"


class IaaSService:
    """One microservice rented onto IaaS VMs."""

    def __init__(
        self,
        env: Environment,
        spec: MicroserviceSpec,
        sizing: SizingResult,
        rng: RngRegistry,
        metrics: Optional[ServiceMetrics] = None,
        ledger: Optional[UsageLedger] = None,
        contention: Optional[ContentionConfig] = None,
        faults: Optional[FaultInjector] = None,
        overload: Optional[OverloadGovernor] = None,
    ):
        self.env = env
        self.spec = spec
        self.sizing = sizing
        self.rng = rng
        self.metrics = metrics
        self.faults = faults
        self.overload = overload
        self.ledger = ledger if ledger is not None else UsageLedger(env, f"iaas/{spec.name}")
        flavor = sizing.flavor
        k = sizing.vm_count
        self.machine = MachineModel(
            env,
            cores=k * flavor.cores,
            io_mbps=k * flavor.io_mbps,
            net_mbps=k * flavor.net_mbps,
            config=contention,
        )
        self.workers = Resource(env, capacity=sizing.workers)
        self.state = ServiceState.STOPPED
        self.in_flight = 0
        self.completions = 0
        #: queries rejected at dispatch / shed after queueing (overload)
        self.rejected = 0
        self.shed = 0
        #: worker-queue depth observability, sampled around each request
        self.queue_depth = TimeSeries(min_interval=1.0)
        #: exact high-water mark (the TimeSeries decimates, this does not)
        self.peak_queue_depth = 0
        self._drained: Optional[Event] = None
        #: the pending deploy() ready event while BOOTING — lets a caller
        #: that aborted its own wait re-join an in-progress boot instead
        #: of raising on a second deploy()
        self.boot_ready: Optional[Event] = None

    # -- lifecycle -----------------------------------------------------------
    def deploy(self, instant: bool = False) -> Event:
        """Boot the VMs; the returned event fires when the service is ready.

        ``instant=True`` skips the boot delay (used to stand the initial
        deployment up at t=0, where the paper's services are already
        running when the experiment begins).
        """
        if self.state is not ServiceState.STOPPED:
            raise RuntimeError(f"deploy() in state {self.state}")
        self.state = ServiceState.BOOTING
        ready = self.env.event()
        self.boot_ready = ready
        if instant:
            self._finish_boot(ready)
        else:
            self.env.process(self._boot(ready))
        return ready

    def _boot(self, ready: Event):
        flavor = self.sizing.flavor
        name = self.spec.name
        attempts = 0
        while True:
            boot = self.rng.lognormal_around(
                f"vmboot/{name}", flavor.boot_median, flavor.boot_sigma
            )
            if self.faults is not None:
                # a straggling hypervisor stretches this attempt
                boot += self.faults.vm_boot_delay(name)
            yield self.env.timeout(boot)
            if self.faults is None or not self.faults.vm_boot_fails(name):
                break
            plan = self.faults.plan
            if attempts < plan.max_boot_retries:
                attempts += 1
                yield self.env.timeout(plan.boot_retry_backoff_s * attempts)
                continue
            # give up: roll the deploy back so a later deploy() can work
            self.faults.stats.vm_boots_abandoned += 1
            self.state = ServiceState.STOPPED
            self.boot_ready = None
            ready.fail(VMBootFailed(f"{name}: boot failed after {attempts + 1} attempts"))
            return
        self._finish_boot(ready)

    def _finish_boot(self, ready: Event) -> None:
        self.state = ServiceState.RUNNING
        self.boot_ready = None
        self.ledger.acquire(self.sizing.rented_cores, self.sizing.rented_memory_mb)
        ready.succeed()

    def undeploy(self) -> Event:
        """Drain in-flight queries, then release the rental.

        The returned event fires once the resources are actually freed.
        """
        if self.state is not ServiceState.RUNNING:
            raise RuntimeError(f"undeploy() in state {self.state}")
        self.state = ServiceState.DRAINING
        done = self.env.event()
        self._drained = done
        self._maybe_release()
        return done

    def _maybe_release(self) -> None:
        if self.state is ServiceState.DRAINING and self.in_flight == 0:
            self.state = ServiceState.STOPPED
            self.ledger.release(self.sizing.rented_cores, self.sizing.rented_memory_mb)
            if self._drained is not None:
                self._drained.succeed()
                self._drained = None

    def force_release(self) -> None:
        """Release a DRAINING rental now, stuck in-flight work or not.

        The engine's drain watchdog calls this when a drain exceeds its
        deadline: the rental cost stops accruing and the drain event
        fires so a waiting switch-out can proceed.  Queries still in
        flight finish on the (already-freed) machine model; their late
        ``_maybe_release`` calls are no-ops because the state has left
        DRAINING.  No-op unless currently DRAINING.
        """
        if self.state is not ServiceState.DRAINING:
            return
        self.state = ServiceState.STOPPED
        self.ledger.release(self.sizing.rented_cores, self.sizing.rented_memory_mb)
        if self._drained is not None:
            drained = self._drained
            self._drained = None
            if not drained.triggered:
                drained.succeed()

    # -- serving ----------------------------------------------------------------
    def invoke(self, query: Query) -> None:
        """Serve one query (open loop).

        Accepted while RUNNING or DRAINING (a drain finishes the queries
        already routed here; the engine stops routing new ones first).
        """
        if self.state in (ServiceState.STOPPED, ServiceState.BOOTING):
            raise RuntimeError(f"invoke() while {self.spec.name} is {self.state.value}")
        if self.metrics is not None:
            self.metrics.record_arrival(self.env.now, canary=query.canary)
        gov = self.overload
        if gov is not None:
            reason = gov.admit_iaas(
                queued=self.workers.queue_length,
                busy=self.workers.count,
                capacity=self.workers.capacity,
                now=self.env.now,
                deadline=query.local_budget(self.env.now),
            )
            if reason is not None:
                self._drop(query, reason)
                return
        self.in_flight += 1
        self.env.process(self._serve(query))

    def _drop(self, query: Query, reason: str) -> None:
        """Reject one arrival at dispatch (reason ``admission``/``breaker``)."""
        self.rejected += 1
        query.failed = True
        query.t_complete = self.env.now
        query.served_by = "iaas"
        if self.metrics is not None:
            self.metrics.record_drop(query, reason)
        assert self.overload is not None
        if not query.canary:
            self.overload.note_rejection(reason, self.env.now)
        query.notify_done()

    def _serve(self, query: Query):
        spec = self.spec
        gov = self.overload
        # Nameko RPC dispatch overhead
        yield self.env.timeout(RPC_OVERHEAD)
        query.breakdown["proc"] = RPC_OVERHEAD
        req = self.workers.request()
        t_q = self.env.now
        depth = self.workers.queue_length
        self.queue_depth.record(t_q, float(depth))
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        yield req
        self.queue_depth.record(self.env.now, float(self.workers.queue_length))
        wait = self.env.now - t_q
        query.breakdown["queue"] = wait
        if gov is not None and gov.should_shed(wait, target=query.local_budget(t_q)):
            # the query's accumulated queue wait already blew its budget:
            # free the worker slot for one that can still meet QoS
            self.workers.release(req)
            self.shed += 1
            query.failed = True
            query.t_complete = self.env.now
            query.served_by = "iaas"
            if self.metrics is not None:
                self.metrics.record_drop(query, "shed")
            if not query.canary:
                gov.note_rejection("shed", self.env.now)
            query.notify_done()
            self.in_flight -= 1
            self._maybe_release()
            return
        work = self.rng.lognormal_around(f"iaas-exec/{spec.name}", spec.exec_time, spec.exec_sigma)
        exec_t = yield self.machine.execute(work, spec.demand, spec.sensitivity)
        self.workers.release(req)
        query.breakdown["exec"] = exec_t
        query.t_complete = self.env.now
        query.served_by = "iaas"
        if self.metrics is not None:
            self.metrics.record_completion(query)
        if gov is not None and not query.canary:
            gov.note_outcome(query.latency <= spec.qos_target, self.env.now)
        query.notify_done()
        self.completions += 1
        self.in_flight -= 1
        self._maybe_release()

    # -- observability -------------------------------------------------------------
    @property
    def utilization_cpu(self) -> float:
        """Instantaneous CPU pressure inside the rental."""
        return self.machine.pressures()[0]

    def mean_cpu_utilization(self) -> float:
        """Time-averaged consumed-cores / rented-cores since t0."""
        used = self.machine.cpu_in_use.mean(self.env.now)
        return used / self.sizing.rented_cores if used == used else 0.0
