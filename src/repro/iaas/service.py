"""A deployed IaaS service: rented VMs + worker-slot queueing.

The service holds ``k`` flavors' worth of capacity in one
:class:`~repro.cluster.resource_model.MachineModel` (perfect load
balancing across its own VMs) and admits at most ``n`` concurrent queries
through a FIFO :class:`~repro.sim.resources.Resource`.  The rented cores
and memory hit the usage ledger for the VMs' entire uptime — that is the
IaaS cost model the paper's Fig. 2/11 comparisons rest on.

Lifecycle: ``deploy()`` boots the VMs (tens of seconds) and only then
reports ready; ``undeploy()`` drains in-flight queries before releasing
the rental (paper §V-B: "the IaaS platform releases the resources after
all its allocated queries completed").
"""

from __future__ import annotations

import enum
import itertools
from typing import Callable, Dict, Optional

from repro.cluster import ContentionConfig, DemandVector, MachineModel, SpotSpec, UsageLedger
from repro.faults import FaultInjector, VMBootFailed
from repro.iaas.sizing import RPC_OVERHEAD, SizingResult
from repro.overload import OverloadGovernor
from repro.sim import Environment, Event, Resource, RngRegistry, TimeSeries
from repro.telemetry import ServiceMetrics
from repro.workloads import MicroserviceSpec, Query

__all__ = ["IaaSService", "ServiceState"]


class ServiceState(enum.Enum):
    """Deployment lifecycle of an IaaS service."""

    STOPPED = "stopped"
    BOOTING = "booting"
    RUNNING = "running"
    DRAINING = "draining"


class IaaSService:
    """One microservice rented onto IaaS VMs."""

    def __init__(
        self,
        env: Environment,
        spec: MicroserviceSpec,
        sizing: SizingResult,
        rng: RngRegistry,
        metrics: Optional[ServiceMetrics] = None,
        ledger: Optional[UsageLedger] = None,
        contention: Optional[ContentionConfig] = None,
        faults: Optional[FaultInjector] = None,
        overload: Optional[OverloadGovernor] = None,
        spot: Optional[SpotSpec] = None,
    ):
        self.env = env
        self.spec = spec
        self.sizing = sizing
        self.rng = rng
        self.metrics = metrics
        self.faults = faults
        self.overload = overload
        self.ledger = ledger if ledger is not None else UsageLedger(env, f"iaas/{spec.name}")
        self.spot = spot if spot is not None and spot.fraction > 0.0 else None
        flavor = sizing.flavor
        k = sizing.vm_count
        self.machine = MachineModel(
            env,
            cores=k * flavor.cores,
            io_mbps=k * flavor.io_mbps,
            net_mbps=k * flavor.net_mbps,
            config=contention,
        )
        self.workers = Resource(env, capacity=sizing.workers)
        self.state = ServiceState.STOPPED
        self.in_flight = 0
        self.completions = 0
        #: queries rejected at dispatch / shed after queueing (overload)
        self.rejected = 0
        self.shed = 0
        #: worker-queue depth observability, sampled around each request
        self.queue_depth = TimeSeries(min_interval=1.0)
        #: exact high-water mark (the TimeSeries decimates, this does not)
        self.peak_queue_depth = 0
        self._drained: Optional[Event] = None
        #: the pending deploy() ready event while BOOTING — lets a caller
        #: that aborted its own wait re-join an in-progress boot instead
        #: of raising on a second deploy()
        self.boot_ready: Optional[Event] = None
        # -- spot rental state (inert when self.spot is None) ----------------
        frac = self.spot.fraction if self.spot is not None else 0.0
        #: the reclaimable share of the rental, billed at the spot rate
        self.spot_cores = sizing.rented_cores * frac
        self.spot_memory_mb = sizing.rented_memory_mb * frac
        self._spot_workers = round(sizing.workers * frac)
        #: worker slots left after the cloud takes the spot share back
        self._surviving_workers = max(1, sizing.workers - self._spot_workers)
        self.spot_ledger: Optional[UsageLedger] = (
            UsageLedger(env, f"iaas-spot/{spec.name}") if self.spot is not None else None
        )
        #: one reclamation episode per run: True from the notice onward
        self.preempted = False
        #: True once the on-demand replacement restored full capacity
        self.replaced = False
        self._spot_held = False
        #: amounts currently held on the on-demand ledger (the spot split
        #: means releases must mirror what was actually acquired)
        self._held_cores = 0.0
        self._held_memory_mb = 0.0
        self._watch_started = False
        self._bg_remove: Optional[Callable[[], None]] = None
        #: executing user queries by start token (insertion-ordered), so a
        #: hard reclamation can kill the most recently started ones
        self._active: Dict[int, Query] = {}
        self._tokens = itertools.count()
        #: platform hook fired at the preemption notice (the engine's
        #: chance to pin serverless before the deadline); receives the
        #: notice lead time in seconds (0.0 for a no-notice hard kill)
        self.on_preemption: Optional[Callable[[float], None]] = None

    # -- lifecycle -----------------------------------------------------------
    def deploy(self, instant: bool = False) -> Event:
        """Boot the VMs; the returned event fires when the service is ready.

        ``instant=True`` skips the boot delay (used to stand the initial
        deployment up at t=0, where the paper's services are already
        running when the experiment begins).
        """
        if self.state is not ServiceState.STOPPED:
            raise RuntimeError(f"deploy() in state {self.state}")
        self.state = ServiceState.BOOTING
        ready = self.env.event()
        self.boot_ready = ready
        if instant:
            self._finish_boot(ready)
        else:
            self.env.process(self._boot(ready))
        return ready

    def _boot(self, ready: Event):
        flavor = self.sizing.flavor
        name = self.spec.name
        attempts = 0
        while True:
            boot = self.rng.lognormal_around(
                f"vmboot/{name}", flavor.boot_median, flavor.boot_sigma
            )
            if self.faults is not None:
                # a straggling hypervisor stretches this attempt
                boot += self.faults.vm_boot_delay(name)
            yield self.env.timeout(boot)
            if self.faults is None or not self.faults.vm_boot_fails(name):
                break
            plan = self.faults.plan
            if attempts < plan.max_boot_retries:
                attempts += 1
                yield self.env.timeout(plan.boot_retry_backoff_s * attempts)
                continue
            # give up: roll the deploy back so a later deploy() can work
            self.faults.stats.vm_boots_abandoned += 1
            self.state = ServiceState.STOPPED
            self.boot_ready = None
            ready.fail(VMBootFailed(f"{name}: boot failed after {attempts + 1} attempts"))
            return
        self._finish_boot(ready)

    def _finish_boot(self, ready: Event) -> None:
        self.state = ServiceState.RUNNING
        self.boot_ready = None
        if self.spot is not None and not self.preempted:
            # split the rental: the spot share bills on its own ledger at
            # the discounted rate, the rest is ordinary on-demand
            ondemand_cores = self.sizing.rented_cores - self.spot_cores
            ondemand_mem = self.sizing.rented_memory_mb - self.spot_memory_mb
            assert self.spot_ledger is not None
            self.spot_ledger.acquire(self.spot_cores, self.spot_memory_mb)
            self._spot_held = True
            self.ledger.acquire(ondemand_cores, ondemand_mem)
            self._held_cores = ondemand_cores
            self._held_memory_mb = ondemand_mem
            self._start_preemption_watch()
        else:
            self.ledger.acquire(self.sizing.rented_cores, self.sizing.rented_memory_mb)
            self._held_cores = self.sizing.rented_cores
            self._held_memory_mb = self.sizing.rented_memory_mb
        ready.succeed()

    def undeploy(self) -> Event:
        """Drain in-flight queries, then release the rental.

        The returned event fires once the resources are actually freed.
        """
        if self.state is not ServiceState.RUNNING:
            raise RuntimeError(f"undeploy() in state {self.state}")
        self.state = ServiceState.DRAINING
        done = self.env.event()
        self._drained = done
        self._maybe_release()
        return done

    def _release_rental(self) -> None:
        """Free whatever the service currently holds on either ledger."""
        self.ledger.release(self._held_cores, self._held_memory_mb)
        self._held_cores = 0.0
        self._held_memory_mb = 0.0
        if self._spot_held:
            assert self.spot_ledger is not None
            self.spot_ledger.release(self.spot_cores, self.spot_memory_mb)
            self._spot_held = False

    def _maybe_release(self) -> None:
        if self.state is ServiceState.DRAINING and self.in_flight == 0:
            self.state = ServiceState.STOPPED
            self._release_rental()
            if self._drained is not None:
                self._drained.succeed()
                self._drained = None

    def force_release(self) -> None:
        """Release a DRAINING rental now, stuck in-flight work or not.

        The engine's drain watchdog calls this when a drain exceeds its
        deadline: the rental cost stops accruing and the drain event
        fires so a waiting switch-out can proceed.  Queries still in
        flight finish on the (already-freed) machine model; their late
        ``_maybe_release`` calls are no-ops because the state has left
        DRAINING.  No-op unless currently DRAINING.
        """
        if self.state is not ServiceState.DRAINING:
            return
        self.state = ServiceState.STOPPED
        self._release_rental()
        if self._drained is not None:
            drained = self._drained
            self._drained = None
            if not drained.triggered:
                drained.succeed()

    # -- spot preemption ---------------------------------------------------------
    def _start_preemption_watch(self) -> None:
        """Arm the reclamation watcher (once) for a spot-backed rental.

        Draws come from the dedicated ``faults/preemption/<svc>`` stream
        on the plan's check interval; with ``vm_preemption_prob == 0``
        nothing is armed and zero draws are made, keeping the zero plan
        bit-identical to a run without spot capacity.
        """
        if self._watch_started or self.preempted:
            return
        if self.faults is None or self.faults.plan.vm_preemption_prob <= 0.0:
            return
        if self.faults.plan.preemption_check_interval_s <= 0.0:
            return
        self._watch_started = True
        self.env.process(self._preemption_watch())

    def _preemption_watch(self):
        assert self.faults is not None
        interval = self.faults.plan.preemption_check_interval_s
        while not self.preempted:
            yield self.env.timeout(interval)
            if self.preempted:
                return
            if self.state is not ServiceState.RUNNING:
                continue
            if self.faults.vm_preempted(self.spec.name):
                self._begin_preemption()
                return

    def _begin_preemption(self) -> None:
        """The cloud reclaims the spot share — one episode per run.

        Graceful (``SpotSpec.graceful`` with a positive notice): the
        doomed slots stop dispatching a drain-lead before the deadline so
        in-flight work can finish, the on-demand replacement boots
        immediately (a notice longer than a VM boot means capacity never
        dips), and the share is only taken at the deadline.  Hard kill
        (no notice): the share vanishes now and whatever executed on it
        dies mid-flight.
        """
        spot = self.spot
        assert spot is not None
        self.preempted = True
        graceful = spot.graceful and spot.notice_s > 0.0
        notice = spot.notice_s if graceful else 0.0
        if graceful and self.metrics is not None:
            self.metrics.record_preemption("noticed")
        # the replacement starts booting at the notice, not the deadline
        self.env.process(self._replacement_boot())
        if self.on_preemption is not None:
            self.on_preemption(notice)
        if graceful:
            lead = min(notice, max(5.0, 8.0 * self.sizing.effective_service_time))
            self.env.schedule_callback(max(0.0, notice - lead), self._stop_doomed_dispatch)
            self.env.schedule_callback(notice, self._reclaim_spot)
        else:
            self._stop_doomed_dispatch()
            self._reclaim_spot()

    def _stop_doomed_dispatch(self) -> None:
        """Shrink the worker pool to the surviving on-demand slots."""
        if self.replaced:
            return  # the replacement already covers the doomed share
        self.workers.resize(self._surviving_workers)

    def _reclaim_spot(self) -> None:
        """Deadline: the spot share is gone (billing, capacity, victims)."""
        if self._spot_held:
            assert self.spot_ledger is not None
            self.spot_ledger.release(self.spot_cores, self.spot_memory_mb)
            self._spot_held = False
        if not self.replaced and self._bg_remove is None and self.spot_cores > 0.0:
            # the reclaimed cores show up as standing pressure on the
            # shared machine model until the replacement arrives
            flavor = self.sizing.flavor
            frac = self.spot.fraction if self.spot is not None else 0.0
            self._bg_remove = self.machine.inject_background(
                DemandVector(
                    cpu=self.spot_cores,
                    io_mbps=self.sizing.vm_count * flavor.io_mbps * frac,
                    net_mbps=self.sizing.vm_count * flavor.net_mbps * frac,
                )
            )
        victims = max(0, self.workers.count - self.workers.capacity)
        if victims > 0:
            self._kill_victims(victims)
        elif self.spot is not None and self.spot.graceful and self.metrics is not None:
            self.metrics.record_preemption("drained")

    def _kill_victims(self, count: int) -> None:
        """Kill the ``count`` most recently started executions.

        Each victim is a terminal ``preempted`` drop at kill time; the
        serving process later sees :attr:`Query.preempt_killed` and skips
        its own terminal accounting (the leftover machine work is the
        reclamation thrash the graceful path exists to avoid).
        """
        doomed = list(self._active.items())[-count:]
        now = self.env.now
        for token, query in doomed:
            del self._active[token]
            query.preempt_killed = True
            query.failed = True
            query.t_complete = now
            query.served_by = "iaas"
            if self.metrics is not None:
                self.metrics.record_drop(query, "preempted")
                self.metrics.record_preemption("killed_inflight")
            query.notify_done()
            self.in_flight -= 1
        self._maybe_release()

    def _replacement_boot(self):
        """Boot the on-demand replacement for the reclaimed share."""
        flavor = self.sizing.flavor
        boot = self.rng.lognormal_around(
            f"vmboot/{self.spec.name}", flavor.boot_median, flavor.boot_sigma
        )
        yield self.env.timeout(boot)
        self._restore_capacity()

    def _restore_capacity(self) -> None:
        self.replaced = True
        if self._bg_remove is not None:
            self._bg_remove()
            self._bg_remove = None
        self.workers.resize(self.sizing.workers)
        # re-rent the reclaimed share at the on-demand rate while the
        # rental is live; top up to the full sizing so a redeploy that
        # already acquired everything is not double-billed
        if self._held_cores > 0.0 or self._spot_held:
            missing_cores = max(0.0, self.sizing.rented_cores - self._held_cores)
            missing_mem = max(0.0, self.sizing.rented_memory_mb - self._held_memory_mb)
            if missing_cores > 0.0 or missing_mem > 0.0:
                self.ledger.acquire(missing_cores, missing_mem)
                self._held_cores += missing_cores
                self._held_memory_mb += missing_mem
        if self.metrics is not None:
            self.metrics.record_preemption("replaced")

    # -- serving ----------------------------------------------------------------
    def invoke(self, query: Query) -> None:
        """Serve one query (open loop).

        Accepted while RUNNING or DRAINING (a drain finishes the queries
        already routed here; the engine stops routing new ones first).
        """
        if self.state in (ServiceState.STOPPED, ServiceState.BOOTING):
            raise RuntimeError(f"invoke() while {self.spec.name} is {self.state.value}")
        if self.metrics is not None:
            self.metrics.record_arrival(self.env.now, canary=query.canary)
        gov = self.overload
        if gov is not None:
            reason = gov.admit_iaas(
                queued=self.workers.queue_length,
                busy=self.workers.count,
                capacity=self.workers.capacity,
                now=self.env.now,
                deadline=query.local_budget(self.env.now),
            )
            if reason is not None:
                self._drop(query, reason)
                return
        self.in_flight += 1
        self.env.process(self._serve(query))

    def _drop(self, query: Query, reason: str) -> None:
        """Reject one arrival at dispatch (reason ``admission``/``breaker``)."""
        self.rejected += 1
        query.failed = True
        query.t_complete = self.env.now
        query.served_by = "iaas"
        if self.metrics is not None:
            self.metrics.record_drop(query, reason)
        assert self.overload is not None
        if not query.canary:
            self.overload.note_rejection(reason, self.env.now)
        query.notify_done()

    def _serve(self, query: Query):
        spec = self.spec
        gov = self.overload
        # Nameko RPC dispatch overhead
        yield self.env.timeout(RPC_OVERHEAD)
        query.breakdown["proc"] = RPC_OVERHEAD
        req = self.workers.request()
        t_q = self.env.now
        depth = self.workers.queue_length
        self.queue_depth.record(t_q, float(depth))
        if depth > self.peak_queue_depth:
            self.peak_queue_depth = depth
        yield req
        self.queue_depth.record(self.env.now, float(self.workers.queue_length))
        wait = self.env.now - t_q
        query.breakdown["queue"] = wait
        if gov is not None and gov.should_shed(wait, target=query.local_budget(t_q)):
            # the query's accumulated queue wait already blew its budget:
            # free the worker slot for one that can still meet QoS
            self.workers.release(req)
            self.shed += 1
            query.failed = True
            query.t_complete = self.env.now
            query.served_by = "iaas"
            if self.metrics is not None:
                self.metrics.record_drop(query, "shed")
            if not query.canary:
                gov.note_rejection("shed", self.env.now)
            query.notify_done()
            self.in_flight -= 1
            self._maybe_release()
            return
        work = self.rng.lognormal_around(f"iaas-exec/{spec.name}", spec.exec_time, spec.exec_sigma)
        token = next(self._tokens)
        self._active[token] = query
        exec_t = yield self.machine.execute(work, spec.demand, spec.sensitivity)
        self._active.pop(token, None)
        self.workers.release(req)
        if query.preempt_killed:
            # terminal accounting already happened at the reclamation;
            # the machine work that just finished was the ghost of the
            # killed execution
            return
        query.breakdown["exec"] = exec_t
        query.t_complete = self.env.now
        query.served_by = "iaas"
        if self.metrics is not None:
            self.metrics.record_completion(query)
        if gov is not None and not query.canary:
            gov.note_outcome(query.latency <= spec.qos_target, self.env.now)
        query.notify_done()
        self.completions += 1
        self.in_flight -= 1
        self._maybe_release()

    # -- observability -------------------------------------------------------------
    @property
    def utilization_cpu(self) -> float:
        """Instantaneous CPU pressure inside the rental."""
        return self.machine.pressures()[0]

    def mean_cpu_utilization(self) -> float:
        """Time-averaged consumed-cores / rented-cores since t0."""
        used = self.machine.cpu_in_use.mean(self.env.now)
        return used / self.sizing.rented_cores if used == used else 0.0
