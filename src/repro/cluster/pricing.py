"""Maintainer-side dollar cost of a deployment (library extension).

The paper's §I motivation is cost: "maintainers pay for each function
invocation instead of the whole infrastructure", and Amoeba exists so the
maintainer stops paying for an idle peak-sized rental overnight.  The
evaluation reports vendor-side resource usage; this module adds the
matching maintainer-side bill so the Fig. 11 savings can also be read in
dollars.

Pricing shape follows the public clouds:

* **IaaS** — rented cores and memory are billed for the whole uptime,
  busy or not (per core-hour and GB-hour).
* **Serverless** — billed per invocation plus GB-seconds of container
  memory held while *serving* (the vendor eats warm-idle time; defaults
  approximate AWS Lambda's list prices).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.accounting import UsageSample

__all__ = ["CostBreakdown", "PricingModel"]


@dataclass(frozen=True)
class PricingModel:
    """Unit prices, in dollars."""

    #: IaaS: per rented core-hour (on-demand general-purpose ballpark)
    iaas_core_hour: float = 0.048
    #: IaaS: per rented GB-hour of memory
    iaas_gb_hour: float = 0.0065
    #: serverless: per GB-second of container memory during execution
    serverless_gb_second: float = 1.6667e-5
    #: serverless: per million invocations
    serverless_per_million: float = 0.20
    #: spot (preemptible) IaaS price as a fraction of on-demand — the
    #: discount that motivates renting revocable capacity at all
    #: (public-cloud spot markets hover around 60-70 % off)
    spot_price_factor: float = 0.35

    def __post_init__(self) -> None:
        for attr in (
            "iaas_core_hour",
            "iaas_gb_hour",
            "serverless_gb_second",
            "serverless_per_million",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")
        if not 0.0 <= self.spot_price_factor <= 1.0:
            raise ValueError(
                f"spot_price_factor must be in [0, 1], got {self.spot_price_factor}"
            )

    # -- per-side costs ----------------------------------------------------
    def iaas_cost(self, usage: UsageSample) -> float:
        """Bill for a rental's integrated occupation."""
        core_hours = usage.cpu_core_seconds / 3600.0
        gb_hours = usage.memory_mb_seconds / 1024.0 / 3600.0
        return core_hours * self.iaas_core_hour + gb_hours * self.iaas_gb_hour

    def iaas_spot_cost(self, usage: UsageSample) -> float:
        """Bill for a *spot* rental share: on-demand rate times the discount."""
        return self.iaas_cost(usage) * self.spot_price_factor

    def serverless_cost(
        self, invocations: int, mean_duration_s: float, container_memory_mb: float
    ) -> float:
        """Bill for function invocations (requests + GB-seconds)."""
        if invocations < 0 or mean_duration_s < 0 or container_memory_mb <= 0:
            raise ValueError("invocations/duration must be >= 0, memory positive")
        gb_seconds = invocations * mean_duration_s * container_memory_mb / 1024.0
        return (
            gb_seconds * self.serverless_gb_second
            + invocations / 1e6 * self.serverless_per_million
        )


@dataclass(frozen=True)
class CostBreakdown:
    """One service's bill under one deployment."""

    system: str
    iaas_dollars: float
    serverless_dollars: float
    #: discounted bill for the spot share of the rental (0 when no spot)
    iaas_spot_dollars: float = 0.0

    @property
    def total(self) -> float:
        """The full bill."""
        return self.iaas_dollars + self.serverless_dollars + self.iaas_spot_dollars

    def normalized_to(self, baseline: "CostBreakdown") -> float:
        """This bill as a fraction of ``baseline``'s."""
        if baseline.total <= 0:
            raise ValueError("baseline cost must be positive")
        return self.total / baseline.total
