"""Progress-based multi-resource contention engine.

This module is the simulated stand-in for the shared hardware of the
paper's serverless node (DESIGN.md §2): co-running containers contend for
① cores, ② memory (bandwidth; *space* is enforced separately by the
container pool), ③ disk IO bandwidth and ④ network bandwidth (paper
Fig. 5).  The model has three properties the paper's analysis depends on:

1.  **Pressure is additive, slowdown is convex.**  Per-resource pressure
    is total demand divided by capacity; an execution's slowdown grows
    slowly below saturation and quadratically above it, so tail latency
    explodes once a resource saturates — the behaviour that makes the
    switch-out decision matter.
2.  **Per-resource degradations are not independent** (paper §II-E): a
    pairwise coupling term makes simultaneous pressure on two resources
    worse than the sum of each alone.  This is exactly the effect the
    PCA-corrected weight calibration (Amoeba) models and the pessimistic
    additive variant (Amoeba-NoM) over-estimates.
3.  **Executions are progress-based.**  Each execution carries its
    remaining *work* (seconds of uncontended execution).  When the active
    set changes, every execution's accumulated progress is banked and its
    rate recomputed, so latencies respond to contention that arrives
    *mid-execution*.

Completion scheduling is **single-timer** (DESIGN.md §6): all executions
on a machine share one pressure vector, so between set changes each runs
at a fixed rate and the next completion is simply ``min(work_left /
rate)`` — one O(N) scan per rebalance, one timer per machine.  The
previous timer is cancelled through the kernel's event-cancellation path
rather than left to fire as a stale generation-guarded no-op, which keeps
heap growth O(1) amortized per query instead of O(active set) per change.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim import Environment, Event, TimeWeightedStats

__all__ = ["ContentionConfig", "DemandVector", "MachineModel", "SensitivityVector"]

#: resource axes, in fixed order (memory *space* handled by the pool)
RESOURCES = ("cpu", "io", "net")


@dataclass(frozen=True)
class DemandVector:
    """Resources one execution occupies while running.

    ``cpu`` is in cores, ``memory_mb`` in MB (space, informational here),
    ``io_mbps`` and ``net_mbps`` in MB/s of disk and network bandwidth.
    """

    cpu: float = 0.0
    memory_mb: float = 0.0
    io_mbps: float = 0.0
    net_mbps: float = 0.0

    def __post_init__(self) -> None:
        for attr in ("cpu", "memory_mb", "io_mbps", "net_mbps"):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0, got {getattr(self, attr)}")

    def scaled(self, factor: float) -> "DemandVector":
        """This demand multiplied by ``factor`` (load scaling helper)."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return DemandVector(
            cpu=self.cpu * factor,
            memory_mb=self.memory_mb * factor,
            io_mbps=self.io_mbps * factor,
            net_mbps=self.net_mbps * factor,
        )


@dataclass(frozen=True)
class SensitivityVector:
    """How strongly an execution's progress suffers per unit pressure.

    Axes follow the paper's three contention meters: ``cpu`` covers the
    combined CPU/memory-bandwidth axis (the paper's ``l_CPU_Memory``),
    ``io`` disk bandwidth, ``net`` network bandwidth.  Values are
    dimensionless multipliers; 0 = immune, 1 = fully exposed.
    """

    cpu: float = 1.0
    io: float = 0.0
    net: float = 0.0

    def __post_init__(self) -> None:
        for attr in RESOURCES:
            v = getattr(self, attr)
            if not 0.0 <= v <= 5.0:
                raise ValueError(f"sensitivity {attr} out of range [0, 5]: {v}")

    def as_tuple(self) -> tuple[float, float, float]:
        """(cpu, io, net) in canonical axis order."""
        return (self.cpu, self.io, self.net)


@dataclass(frozen=True)
class ContentionConfig:
    """Shape parameters of the slowdown function.

    Per-axis degradation is convex in pressure:

        ``d_r = s_r·g(p_r)``  with  ``g(p) = linear·p + quad·max(0, p − knee)²``

    (the linear term models sub-saturation interference — cache/SMT/port
    sharing; the quadratic term models queueing for a saturated
    resource).  The total slowdown *overlaps* the per-axis degradations
    instead of summing them:

        ``slowdown = 1 + max_r d_r + (1 − overlap)·(Σ_r d_r − max_r d_r)``

    ``overlap = 0`` would be plain accumulation; ``overlap = 1`` would be
    full hiding behind the worst axis.  This sub-additivity is the
    paper's §II-E observation — "the performance degradation … is not
    the simple accumulation of its degradations due to the contention on
    each type of resource" — and it is exactly what the PCA-calibrated
    weights learn (and what the Amoeba-NoM ablation, which *does*
    accumulate, gets pessimistically wrong; §VII-C).
    """

    linear: float = 0.18
    quad: float = 6.0
    knee: float = 0.75
    #: fraction of the non-dominant axes' degradation hidden behind the
    #: dominant one (stalls on different resources partially overlap)
    overlap: float = 0.60
    #: pressure ceiling: beyond this the resource is hard-saturated and
    #: g(p) is evaluated at the ceiling (progress never reaches zero)
    pressure_cap: float = 3.0

    def __post_init__(self) -> None:
        if self.linear < 0 or self.quad < 0:
            raise ValueError("slowdown coefficients must be >= 0")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValueError(f"overlap must be in [0, 1], got {self.overlap}")
        if not 0.0 < self.knee <= 1.5:
            raise ValueError(f"knee must be in (0, 1.5], got {self.knee}")
        if self.pressure_cap <= self.knee:
            raise ValueError("pressure_cap must exceed knee")

    def g(self, pressure: float) -> float:
        """Per-resource degradation as a function of pressure."""
        p = min(pressure, self.pressure_cap)
        excess = p - self.knee
        return self.linear * p + (self.quad * excess * excess if excess > 0 else 0.0)

    def slowdown(self, sens: SensitivityVector, pressures: tuple[float, float, float]) -> float:
        """Total slowdown of an execution with ``sens`` under ``pressures``."""
        s = sens.as_tuple()
        d0 = s[0] * self.g(pressures[0])
        d1 = s[1] * self.g(pressures[1])
        d2 = s[2] * self.g(pressures[2])
        total = d0 + d1 + d2
        worst = max(d0, d1, d2)
        return 1.0 + worst + (1.0 - self.overlap) * (total - worst)


class _Execution:
    """Bookkeeping for one in-flight execution on a machine."""

    __slots__ = ("eid", "demand", "sens", "work_left", "rate", "last_update", "done", "start")

    def __init__(
        self,
        eid: int,
        demand: DemandVector,
        sens: SensitivityVector,
        work: float,
        done: Event,
        now: float,
    ):
        self.eid = eid
        self.demand = demand
        self.sens = sens
        self.work_left = work
        self.rate = 1.0
        self.last_update = now
        self.done = done
        self.start = now


class _CompletionTimer(Event):
    """The machine's next-completion heap entry.

    A slim Event subclass that dispatches straight to the machine's
    completion handler — no callbacks list, no closure.  One of these is
    armed per rebalance (and cancelled by the next), so its construction
    cost is on the engine's hottest path.
    """

    __slots__ = ("machine",)

    def __init__(self, env: Environment, delay: float, machine: "MachineModel"):
        # flattened Event.__init__, enqueued at the default event priority
        # exactly like the schedule_callback Timeout it replaces
        self.env = env
        self.callbacks = None
        self._value = None
        self._ok = True
        self._triggered = True
        self._processed = False
        self._defused = False
        self._cancelled = False
        self.machine = machine
        env._seq += 1
        heapq.heappush(env._heap, (env._now + delay, 1, env._seq, self))

    def _run_callbacks(self) -> None:
        self._processed = True
        self.machine._on_timer()


class MachineModel:
    """One node's shared-resource execution engine.

    Parameters
    ----------
    env:
        Simulation environment.
    cores, io_mbps, net_mbps:
        Node capacities (memory space is enforced by the container pool,
        not here).
    config:
        Slowdown shape parameters.
    """

    def __init__(
        self,
        env: Environment,
        cores: float,
        io_mbps: float,
        net_mbps: float,
        config: Optional[ContentionConfig] = None,
    ):
        if cores <= 0 or io_mbps <= 0 or net_mbps <= 0:
            raise ValueError("capacities must be positive")
        self.env = env
        self.capacity = (float(cores), float(io_mbps), float(net_mbps))
        self.config = config if config is not None else ContentionConfig()
        self._active: Dict[int, _Execution] = {}
        self._ids = itertools.count()
        self._demand_totals = [0.0, 0.0, 0.0]
        self._memory_in_use = 0.0
        self._background_count = 0
        #: the machine's single next-completion timer and its target
        self._timer: Optional[Event] = None
        self._timer_ex: Optional[_Execution] = None
        #: perf-guard counters: timers armed / queries completed
        self.timer_arms = 0
        self.completed = 0
        # accounting taps
        self.cpu_in_use = TimeWeightedStats(env.now)
        self.io_in_use = TimeWeightedStats(env.now)
        self.net_in_use = TimeWeightedStats(env.now)
        self.memory_stat = TimeWeightedStats(env.now)
        #: optional hook called after every active-set change with (t, pressures)
        self.on_pressure_change: Optional[Callable[[float, tuple[float, float, float]], None]] = None

    # -- observability -----------------------------------------------------
    @property
    def active_count(self) -> int:
        """Number of in-flight executions."""
        return len(self._active)

    @property
    def memory_in_use_mb(self) -> float:
        """Total memory space claimed by in-flight executions."""
        return self._memory_in_use

    def pressures(self) -> tuple[float, float, float]:
        """(cpu, io, net) pressure = total demand / capacity."""
        d, c = self._demand_totals, self.capacity
        return (d[0] / c[0], d[1] / c[1], d[2] / c[2])

    def slowdown_for(self, sens: SensitivityVector) -> float:
        """Slowdown a hypothetical execution with ``sens`` would see now."""
        return self.config.slowdown(sens, self.pressures())

    # -- execution ----------------------------------------------------------
    def execute(self, work: float, demand: DemandVector, sens: SensitivityVector) -> Event:
        """Run ``work`` seconds of uncontended execution; returns completion event.

        The completion event's value is the actual (stretched) duration.
        """
        if work <= 0:
            raise ValueError(f"work must be positive, got {work}")
        now = self.env.now
        done = self.env.event()
        ex = _Execution(next(self._ids), demand, sens, work, done, now)
        self._active[ex.eid] = ex
        self._demand_totals[0] += demand.cpu
        self._demand_totals[1] += demand.io_mbps
        self._demand_totals[2] += demand.net_mbps
        self._memory_in_use += demand.memory_mb
        self._rebalance(now)
        return done

    def _rebalance(self, now: float) -> None:
        """Bank progress, recompute rates and re-arm the completion timer.

        Called after every active-set or demand change.  Banking (credit
        each execution's progress at its *old* rate up to ``now``) and the
        rate refresh are fused into one pass over the active set: the two
        computations are independent per execution, so interleaving them
        produces bit-identical results to the former two-pass scheme.
        """
        # clamp accumulated float residue so an empty machine reads
        # exactly zero pressure (additions and removals of the same
        # demands do not cancel bitwise when interleaved)
        if not self._active and not self._background_count:
            # provably empty: snap exactly (the epsilon clamp below misses
            # residues of 1e-9 and larger, e.g. after a 1e-9 demand leaves)
            self._demand_totals[0] = self._demand_totals[1] = self._demand_totals[2] = 0.0
            self._memory_in_use = 0.0
        else:
            for i in range(3):
                if abs(self._demand_totals[i]) < 1e-9:
                    self._demand_totals[i] = 0.0
            if abs(self._memory_in_use) < 1e-9:
                self._memory_in_use = 0.0
        pressures = self.pressures()
        cfg = self.config
        # single O(N) pass: refresh every rate, find the earliest finisher.
        # All executions share `pressures`, so between set changes each
        # runs at a fixed rate and min(work_left / rate) IS the next
        # completion — no per-execution timers needed.  Strict `<` keeps
        # the tie-break on insertion (eid) order, matching the FIFO order
        # the per-execution scheme produced.
        #
        # Rate fast path: g(p) depends only on the shared pressures, so it
        # is evaluated once per axis, and executions with the same
        # sensitivity vector (all invocations of one function share the
        # spec's) hit a per-rebalance cache.  The arithmetic below mirrors
        # ContentionConfig.slowdown term for term so the cached rates are
        # bit-identical to cfg.slowdown()'s.
        # g() unrolled per axis (mirrors ContentionConfig.g bit for bit)
        lin, quad, knee, cap = cfg.linear, cfg.quad, cfg.knee, cfg.pressure_cap
        p = min(pressures[0], cap)
        e = p - knee
        g0 = lin * p + (quad * e * e if e > 0 else 0.0)
        p = min(pressures[1], cap)
        e = p - knee
        g1 = lin * p + (quad * e * e if e > 0 else 0.0)
        p = min(pressures[2], cap)
        e = p - knee
        g2 = lin * p + (quad * e * e if e > 0 else 0.0)
        co_overlap = 1.0 - cfg.overlap
        # keyed by id(): invocations of one function share the spec's
        # sensitivity object, and identity lookups skip the dataclass's
        # field-tuple hash (equal-valued distinct objects just recompute
        # the same bits)
        rate_of: Dict[int, float] = {}
        next_ex: Optional[_Execution] = None
        next_in = math.inf
        for ex in self._active.values():
            elapsed = now - ex.last_update
            if elapsed > 0:
                ex.work_left -= elapsed * ex.rate
                if ex.work_left < 0:
                    ex.work_left = 0.0
            ex.last_update = now
            sens = ex.sens
            rate = rate_of.get(id(sens))
            if rate is None:
                d0 = sens.cpu * g0
                d1 = sens.io * g1
                d2 = sens.net * g2
                total = d0 + d1 + d2
                worst = max(d0, d1, d2)
                rate = 1.0 / (1.0 + worst + co_overlap * (total - worst))
                rate_of[id(sens)] = rate
            ex.rate = rate
            finish_in = ex.work_left / rate if rate > 0 else math.inf
            if finish_in < next_in:
                next_in = finish_in
                next_ex = ex
        # re-arm the machine's one completion timer (cancel the stale one)
        timer = self._timer
        if timer is not None and not timer._processed:
            timer.cancel()
        self._timer_ex = next_ex
        if next_ex is None:
            self._timer = None
        else:
            self._timer = _CompletionTimer(self.env, next_in, self)
            self.timer_arms += 1
        # accounting: a set() with an unchanged level is a mathematical
        # no-op for a piecewise-constant signal (the integral accrues
        # lazily), so skip the call for axes that did not move
        d = self._demand_totals
        s = self.cpu_in_use
        if s._level != d[0]:
            s.set(now, d[0])
        s = self.io_in_use
        if s._level != d[1]:
            s.set(now, d[1])
        s = self.net_in_use
        if s._level != d[2]:
            s.set(now, d[2])
        s = self.memory_stat
        if s._level != self._memory_in_use:
            s.set(now, self._memory_in_use)
        if self.on_pressure_change is not None:
            self.on_pressure_change(now, pressures)

    def _on_timer(self) -> None:
        ex = self._timer_ex
        assert ex is not None  # a live timer always has a target
        now = self.env.now
        # bank this execution's own progress precisely
        ex.work_left -= (now - ex.last_update) * ex.rate
        ex.last_update = now
        if ex.work_left > 1e-12:  # numeric guard: not actually done yet
            # rates are unchanged since arming (any set change would have
            # cancelled this timer), so ``ex`` is still the earliest
            self._timer = _CompletionTimer(self.env, ex.work_left / ex.rate, self)
            self.timer_arms += 1
            return
        ex.work_left = 0.0  # clamp float residue; progress never goes negative
        del self._active[ex.eid]
        d = ex.demand
        self._demand_totals[0] -= d.cpu
        self._demand_totals[1] -= d.io_mbps
        self._demand_totals[2] -= d.net_mbps
        self._memory_in_use -= d.memory_mb
        self._rebalance(now)
        self.completed += 1
        ex.done.succeed(now - ex.start)

    # -- background pressure -------------------------------------------------
    def inject_background(self, demand: DemandVector) -> Callable[[], None]:
        """Add a standing demand (e.g. an unmodelled co-tenant); returns remover.

        Background demand contributes to pressure but has no work to
        complete; used by tests and by synthetic co-tenant scenarios.
        """
        now = self.env.now
        self._demand_totals[0] += demand.cpu
        self._demand_totals[1] += demand.io_mbps
        self._demand_totals[2] += demand.net_mbps
        self._memory_in_use += demand.memory_mb
        self._background_count += 1
        self._rebalance(now)
        removed = False

        def remove() -> None:
            nonlocal removed
            if removed:
                raise RuntimeError("background demand already removed")
            removed = True
            t = self.env.now
            self._demand_totals[0] -= demand.cpu
            self._demand_totals[1] -= demand.io_mbps
            self._demand_totals[2] -= demand.net_mbps
            self._memory_in_use -= demand.memory_mb
            self._background_count -= 1
            self._rebalance(t)

        return remove
