"""Node and cluster specifications (paper Table II).

The paper's testbed is three identical nodes:

* CPU: Intel Xeon Platinum 8163 @ 2.50 GHz, 40 cores, 32 MB shared L3
* DRAM: 256 GB; Disk: NVMe SSD; NIC: 25,000 Mb/s, 25 GbE switch
* Serverless containers: 256 MB memory each
* IaaS side: Nameko in VMs; serverless side: OpenWhisk

We encode those numbers as defaults.  Disk bandwidth is not listed in the
paper; we use 2,000 MB/s, a typical figure for a 2019 datacenter NVMe SSD
(documented substitution, see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CLUSTER_TABLE_II", "ClusterSpec", "NodeSpec", "SpotSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Capacities of one physical node."""

    name: str = "node"
    cores: int = 40
    memory_mb: float = 256 * 1024.0
    #: disk bandwidth in MB/s (NVMe SSD; not listed in Table II, see module docstring)
    disk_mbps: float = 2000.0
    #: network bandwidth in MB/s (25,000 Mb/s NIC = 3125 MB/s)
    net_mbps: float = 3125.0

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError(f"cores must be >= 1, got {self.cores}")
        for attr in ("memory_mb", "disk_mbps", "net_mbps"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive, got {getattr(self, attr)}")


@dataclass(frozen=True)
class ClusterSpec:
    """The full testbed: one IaaS node, one serverless node, one driver node."""

    iaas_node: NodeSpec = field(default_factory=lambda: NodeSpec(name="iaas"))
    serverless_node: NodeSpec = field(default_factory=lambda: NodeSpec(name="serverless"))
    driver_node: NodeSpec = field(default_factory=lambda: NodeSpec(name="driver"))
    #: serverless container memory size (Table II: 256 MB)
    container_memory_mb: float = 256.0
    #: fabric bandwidth between nodes, MB/s (25 GbE switch)
    switch_mbps: float = 3125.0

    def __post_init__(self) -> None:
        if self.container_memory_mb <= 0:
            raise ValueError("container_memory_mb must be positive")
        if self.container_memory_mb > self.serverless_node.memory_mb:
            raise ValueError("container memory exceeds node memory")

    @property
    def max_containers_by_memory(self) -> int:
        """Upper bound on concurrent containers from node memory alone."""
        return int(self.serverless_node.memory_mb // self.container_memory_mb)


@dataclass(frozen=True)
class SpotSpec:
    """Spot (preemptible) VM class: reclamation-notice semantics.

    A service rents ``fraction`` of its just-enough IaaS footprint on
    discounted spot capacity (discount lives in
    :class:`~repro.cluster.pricing.PricingModel`).  When the cloud
    reclaims the share (arrival law:
    :class:`~repro.faults.FaultPlan.vm_preemption_prob`), a *graceful*
    reclamation delivers ``notice_s`` of warning — the platform stops
    dispatching onto the doomed VMs late enough to drain them and boots
    an on-demand replacement inside the window.  ``graceful=False`` is
    the degraded hard-kill path: zero notice, in-flight queries on the
    reclaimed share die.
    """

    #: share of the rented footprint (cores/memory/worker slots) on spot
    fraction: float = 0.5
    #: reclamation warning, seconds (e.g. the classic 120 s spot notice)
    notice_s: float = 120.0
    #: True = notice honoured (drain + replace); False = hard kill
    graceful: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {self.fraction}")
        if self.notice_s < 0:
            raise ValueError(f"notice_s must be >= 0, got {self.notice_s}")


#: the paper's Table II configuration
CLUSTER_TABLE_II = ClusterSpec()
