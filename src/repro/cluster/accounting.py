"""Vendor-side resource-usage ledgers.

The paper reports *resource usage* as what the deployment occupies on the
vendor's machines (Figs. 11, 13, 14): an IaaS VM occupies its full rented
core/memory allocation for its whole uptime; a serverless container
occupies one container's CPU share and 256 MB for its lifetime (busy,
warm-idle, or prewarmed).  :class:`UsageLedger` integrates both axes over
simulated time and can emit normalized comparisons and timelines.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim import Environment, TimeSeries, TimeWeightedStats

__all__ = ["UsageLedger", "UsageSample"]


@dataclass(frozen=True)
class UsageSample:
    """Integrated usage over an interval."""

    cpu_core_seconds: float
    memory_mb_seconds: float
    duration: float

    def __add__(self, other: "UsageSample") -> "UsageSample":
        """Combine two ledgers covering the same interval (hybrid usage)."""
        return UsageSample(
            cpu_core_seconds=self.cpu_core_seconds + other.cpu_core_seconds,
            memory_mb_seconds=self.memory_mb_seconds + other.memory_mb_seconds,
            duration=max(self.duration, other.duration),
        )

    @property
    def mean_cores(self) -> float:
        """Average cores occupied over the interval."""
        return self.cpu_core_seconds / self.duration if self.duration > 0 else 0.0

    @property
    def mean_memory_mb(self) -> float:
        """Average memory occupied over the interval."""
        return self.memory_mb_seconds / self.duration if self.duration > 0 else 0.0

    def normalized_to(self, baseline: "UsageSample") -> tuple[float, float]:
        """(cpu_ratio, memory_ratio) of this usage vs ``baseline``."""
        if baseline.cpu_core_seconds <= 0 or baseline.memory_mb_seconds <= 0:
            raise ValueError("baseline usage must be positive to normalize")
        return (
            self.cpu_core_seconds / baseline.cpu_core_seconds,
            self.memory_mb_seconds / baseline.memory_mb_seconds,
        )


class UsageLedger:
    """Tracks cores and memory a deployment occupies over time.

    ``acquire``/``release`` adjust the current occupation level; the
    ledger integrates it.  A decimated timeline is kept for the Fig. 13
    usage-timeline reproduction.
    """

    def __init__(self, env: Environment, name: str = "", timeline_interval: float = 30.0):
        self.env = env
        self.name = name
        self._cpu = TimeWeightedStats(env.now)
        self._mem = TimeWeightedStats(env.now)
        self._t0 = env.now
        self.cpu_timeline = TimeSeries(min_interval=timeline_interval)
        self.mem_timeline = TimeSeries(min_interval=timeline_interval)

    @property
    def current_cores(self) -> float:
        """Cores occupied right now."""
        return self._cpu.level

    @property
    def current_memory_mb(self) -> float:
        """Memory occupied right now."""
        return self._mem.level

    def acquire(self, cores: float, memory_mb: float) -> None:
        """Occupy ``cores`` and ``memory_mb`` starting now."""
        if cores < 0 or memory_mb < 0:
            raise ValueError("acquire() amounts must be >= 0")
        now = self.env.now
        self._cpu.adjust(now, cores)
        self._mem.adjust(now, memory_mb)
        self.cpu_timeline.record(now, self._cpu.level)
        self.mem_timeline.record(now, self._mem.level)

    def release(self, cores: float, memory_mb: float) -> None:
        """Stop occupying ``cores`` and ``memory_mb`` as of now."""
        if cores < 0 or memory_mb < 0:
            raise ValueError("release() amounts must be >= 0")
        now = self.env.now
        new_cpu = self._cpu.level - cores
        new_mem = self._mem.level - memory_mb
        if new_cpu < -1e-9 or new_mem < -1e-9:
            raise RuntimeError(
                f"ledger {self.name!r} went negative: cores {new_cpu:.3f}, mem {new_mem:.3f}"
            )
        self._cpu.set(now, max(new_cpu, 0.0))
        self._mem.set(now, max(new_mem, 0.0))
        self.cpu_timeline.record(now, self._cpu.level)
        self.mem_timeline.record(now, self._mem.level)

    def snapshot(self) -> UsageSample:
        """Usage integrated from the ledger's start to now."""
        now = self.env.now
        return UsageSample(
            cpu_core_seconds=self._cpu.integral(now),
            memory_mb_seconds=self._mem.integral(now),
            duration=now - self._t0,
        )
