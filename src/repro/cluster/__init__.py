"""Hardware substrate: node specs, contention model, usage accounting.

This package simulates the paper's 3-node testbed (Table II).  The piece
everything else leans on is :class:`~repro.cluster.resource_model.MachineModel`,
a progress-based multi-resource contention engine: executions carry a
demand vector over (CPU cores, memory bandwidth, disk IO bandwidth,
network bandwidth) plus a sensitivity vector, and their remaining work is
stretched whenever the set of co-running executions changes.
"""

from repro.cluster.accounting import UsageLedger, UsageSample
from repro.cluster.resource_model import (
    ContentionConfig,
    DemandVector,
    MachineModel,
    SensitivityVector,
)
from repro.cluster.spec import CLUSTER_TABLE_II, NodeSpec, SpotSpec

__all__ = [
    "CLUSTER_TABLE_II",
    "ContentionConfig",
    "DemandVector",
    "MachineModel",
    "NodeSpec",
    "SensitivityVector",
    "SpotSpec",
    "UsageLedger",
    "UsageSample",
]
