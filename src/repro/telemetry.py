"""Per-service telemetry shared by every deployment backend.

Both platforms (and the Amoeba engine, which straddles them) record the
same things for each service: end-to-end latencies, QoS violations,
latency-stage breakdowns, arrival times for load estimation, and which
platform served each query.  Keeping this in one class means Fig. 10's
CDFs, Fig. 4's breakdowns, and the controller's load signal all read from
the same bookkeeping regardless of deployment mode.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

import numpy as np

from repro.overload import DROP_REASONS
from repro.sim import OnlineStats, P2Quantile, ReservoirSample
from repro.workloads import Query

__all__ = [
    "DROP_REASONS",
    "PREEMPTION_KINDS",
    "RETRY_KINDS",
    "LoadEstimator",
    "ServiceMetrics",
]

#: the latency stages platforms may report in Query.breakdown
STAGES = ("proc", "queue", "cold", "load", "exec", "post")

#: the unified ``retries{kind}`` counter family, next to ``drops{reason}``:
#: ``attempted`` (a retry was actually issued), ``exhausted`` (a query
#: abandoned because its attempt budget ran out), ``deadline_abandoned``
#: (a retry deterministically given up because the remaining end-to-end
#: budget could no longer cover a downstream attempt)
RETRY_KINDS = ("attempted", "exhausted", "deadline_abandoned")

#: the unified ``preemptions{kind}`` counter family for spot reclamation
#: episodes: ``noticed`` (a reclamation warning was delivered),
#: ``drained`` (a graceful episode finished with no in-flight casualty),
#: ``killed_inflight`` (a query died on the reclaimed share — one count
#: per query), ``replaced`` (an on-demand replacement restored capacity)
PREEMPTION_KINDS = ("noticed", "drained", "killed_inflight", "replaced")


class LoadEstimator:
    """Sliding-window arrival-rate estimate.

    The controller's λ.  A fixed window (paper: the sample period is on
    the order of seconds to a minute, Eq. 8) over arrival timestamps; the
    estimate is count/window once the window has filled.
    """

    def __init__(self, window: float = 60.0):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = float(window)
        self._arrivals: Deque[float] = deque()
        self._t0: Optional[float] = None
        self.total = 0

    def record(self, t: float) -> None:
        """Register one arrival at time ``t``."""
        if self._t0 is None:
            self._t0 = t
        self.total += 1
        self._arrivals.append(t)
        self._evict(t)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        arr = self._arrivals
        while arr and arr[0] < cutoff:
            arr.popleft()

    def rate(self, now: float) -> float:
        """Arrival rate (queries/s) over the trailing window."""
        self._evict(now)
        if self._t0 is None:
            return 0.0
        span = min(self.window, max(now - self._t0, 1e-9))
        return len(self._arrivals) / span


class ServiceMetrics:
    """Latency/QoS/breakdown accounting for one service.

    Canary (shadow) queries are tallied separately — they inform the
    controller but must not count against the user-facing QoS.
    """

    def __init__(self, service: str, qos_target: float, reservoir: int = 20000, seed: int = 1):
        if qos_target <= 0:
            raise ValueError(f"qos_target must be positive, got {qos_target}")
        self.service = service
        self.qos_target = float(qos_target)
        # explicitly seeded per-service reservoir, deterministic given `seed`
        self.latencies = ReservoirSample(reservoir, rng=np.random.default_rng(seed))  # simlint: ignore[SIM002]
        self.p95 = P2Quantile(0.95)
        self.stats = OnlineStats()
        self.completed = 0
        self.violations = 0
        self.breakdown_sums: Dict[str, float] = {s: 0.0 for s in STAGES}
        self.served_by: Dict[str, int] = {}
        self.load = LoadEstimator()
        self.canary_latencies: Deque[float] = deque(maxlen=256)
        #: recent user-query latencies (controller feedback while the
        #: service itself runs on the serverless platform)
        self.recent: Deque[float] = deque(maxlen=128)
        #: sim time of the latest canary completion (stale-telemetry basis)
        self.last_canary_time: Optional[float] = None
        #: the unified ``retries{kind}`` family: attempted (a retry was
        #: issued), exhausted (attempt budget spent), deadline_abandoned
        #: (deterministic deadline-aware give-up)
        self.retries: Dict[str, int] = {kind: 0 for kind in RETRY_KINDS}
        #: total dropped user queries (sum over :attr:`drops`)
        self.failed = 0
        #: the unified ``dropped{reason}`` family: crash (retry
        #: exhaustion), admission (rejected on arrival), shed (queue
        #: wait blew the budget), breaker (brownout drop-tail)
        self.drops: Dict[str, int] = {reason: 0 for reason in DROP_REASONS}
        #: the unified ``preemptions{kind}`` family (spot reclamation):
        #: noticed, drained, killed_inflight, replaced
        self.preemptions: Dict[str, int] = {kind: 0 for kind in PREEMPTION_KINDS}

    def record_arrival(self, t: float, canary: bool = False) -> None:
        """Register a query submission (canaries excluded from load)."""
        if not canary:
            self.load.record(t)

    def record_completion(self, query: Query) -> None:
        """Fold a completed query into the ledgers.

        Controller-feedback stores (``canary_latencies``, ``recent``)
        keep the *processing* latency — end-to-end minus queueing and
        cold start.  Eq. 6's μ is per-container processing capacity
        (queueing is the M/M/N model's job, Eq. 5), and Eq. 8's
        sample-period rule exists precisely so that "cold start by
        accident" does not mislead the controller (§VI-B).  User-facing
        QoS accounting keeps the full end-to-end latency.
        """
        lat = query.latency
        breakdown = query.breakdown
        processing = lat - breakdown.get("cold", 0.0) - breakdown.get("queue", 0.0)
        if query.canary:
            self.canary_latencies.append(processing)
            self.last_canary_time = query.t_complete
            return
        self.completed += 1
        self.recent.append(processing)
        self.latencies.add(lat)
        self.p95.add(lat)
        self.stats.add(lat)
        if lat > self.qos_target:
            self.violations += 1
        # hot path (every completed query): walk the fixed stage tuple so
        # each known stage costs one lookup instead of a membership test
        # plus two, and unknown stages cost nothing
        sums = self.breakdown_sums
        for stage in STAGES:
            dt = breakdown.get(stage)
            if dt is not None:
                sums[stage] += dt
        server = query.served_by
        if server:
            try:
                self.served_by[server] += 1
            except KeyError:
                self.served_by[server] = 1

    def record_retry(self, kind: str = "attempted") -> None:
        """Count one retry event in the ``retries{kind}`` family.

        ``attempted`` for every retry actually issued (crash-retry
        resubmissions, graph edge retries), ``exhausted`` when a query is
        abandoned because its attempt budget ran out, and
        ``deadline_abandoned`` when a deadline-aware policy gives up
        because the remaining end-to-end budget can no longer cover a
        downstream attempt.
        """
        if kind not in self.retries:
            raise ValueError(f"unknown retry kind {kind!r}")
        self.retries[kind] += 1

    @property
    def total_retries(self) -> int:
        """Sum over the ``retries{kind}`` family."""
        return sum(self.retries.values())

    def record_preemption(self, kind: str) -> None:
        """Count one spot-reclamation event in the ``preemptions{kind}`` family.

        ``noticed`` when the cloud delivers a reclamation warning,
        ``drained`` when a graceful episode completes without killing
        anything in flight, ``killed_inflight`` per query that dies on
        the reclaimed share (those queries are also dropped with reason
        ``preempted``), and ``replaced`` when the on-demand replacement
        restores the lost capacity.
        """
        if kind not in self.preemptions:
            raise ValueError(f"unknown preemption kind {kind!r}")
        self.preemptions[kind] += 1

    @property
    def total_preemption_events(self) -> int:
        """Sum over the ``preemptions{kind}`` family."""
        return sum(self.preemptions.values())

    def record_drop(self, query: Query, reason: str) -> None:
        """Count one dropped user query in the ``dropped{reason}`` family.

        Dropped queries never reach :meth:`record_completion`; they are
        tallied separately so the latency ledgers stay comparable with
        fault-free runs, and folded back in by
        :attr:`violation_fraction_with_failures` (a drop is the
        worst-possible QoS outcome).  Canary drops are not counted —
        shadow traffic must not pollute user-facing QoS, mirroring
        :meth:`record_completion`.
        """
        if reason not in self.drops:
            raise ValueError(f"unknown drop reason {reason!r}")
        if query.canary:
            return
        self.drops[reason] += 1
        self.failed += 1

    def record_failure(self, query: Query) -> None:
        """Crash-drop shorthand: a query dropped after its retry budget."""
        self.record_drop(query, "crash")

    @property
    def violation_fraction(self) -> float:
        """Fraction of completed user queries over the QoS target."""
        return self.violations / self.completed if self.completed else 0.0

    @property
    def violation_fraction_with_failures(self) -> float:
        """QoS violation fraction counting dropped queries as violations."""
        total = self.completed + self.failed
        return (self.violations + self.failed) / total if total else 0.0

    @property
    def p95_estimate(self) -> float:
        """Streaming 95%-ile latency estimate."""
        return self.p95.value

    @property
    def latency_sample_exact(self) -> bool:
        """True while the reservoir still holds *every* completion latency.

        Once ``completed`` exceeds the reservoir capacity the sample
        becomes a uniform subsample and percentiles are estimates.
        """
        return self.latencies.n <= self.latencies.capacity

    @property
    def latency_sample_coverage(self) -> Tuple[int, int]:
        """(latencies observed, reservoir capacity) — the honesty gauge."""
        return self.latencies.n, self.latencies.capacity

    def latency_percentile(self, p: float) -> float:
        """Percentile of completion latency from the reservoir (p in [0, 100]).

        Exact while ``latency_sample_exact`` holds; beyond the reservoir
        capacity it degrades to a *deterministic* (seeded) uniform
        subsample estimate — reproducible run-to-run, but no longer the
        exact order statistic.  Size the reservoir above the expected
        completion count (see ``Scenario.reservoir``) when a QoS gate
        needs the exact value.  (Formerly misnamed ``exact_percentile``.)
        """
        return self.latencies.percentile(p)

    def breakdown_fractions(self) -> Dict[str, float]:
        """Each stage's share of total recorded latency."""
        total = sum(self.breakdown_sums.values())
        if total <= 0:
            return {s: 0.0 for s in STAGES}
        return {s: v / total for s, v in self.breakdown_sums.items()}

    def mean_canary_latency(self) -> float:
        """Average latency of recent shadow queries (NaN when none)."""
        if not self.canary_latencies:
            return float("nan")
        return float(np.mean(self.canary_latencies))
