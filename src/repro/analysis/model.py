"""Project model: parsed-module table with resolved imports.

The whole-program passes (ARCH layering, import cycles, facade-bypass
detection) need more than one file's AST: they need to know, for every
module in the analyzed tree, *what module it is* (its dotted name,
resolved by walking ``__init__.py`` chains up from the file) and *what it
imports* (with relative imports resolved against that name).  This
module builds that table; :mod:`repro.analysis.graph` condenses it to a
package-level digraph and :mod:`repro.analysis.rules_arch` judges it.

Everything here is pure data — records are plain tuples/dataclasses so
the incremental cache (:mod:`repro.analysis.engine`) can serialize them
and rebuild the whole-program model on a warm run without re-parsing a
single unchanged file.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "ImportRecord",
    "ModuleRecord",
    "collect_imports",
    "module_exports",
    "module_name",
]


@dataclass(frozen=True)
class ImportRecord:
    """One import statement, with its target resolved to a dotted module.

    ``toplevel`` marks imports that execute (or are declared, for
    ``TYPE_CHECKING`` blocks) at module scope — the layering rules
    consider only those, while ARCH003 (experiments leakage) considers
    every import including function-local ones.
    """

    #: absolute dotted module the statement targets (relative imports
    #: already resolved against the importing module's package)
    module: str
    #: names bound by ``from module import a, b`` ("*" kept literally);
    #: empty for plain ``import module``
    names: Tuple[str, ...]
    line: int
    col: int
    toplevel: bool

    def to_json(self) -> List[Any]:
        return [self.module, list(self.names), self.line, self.col, self.toplevel]

    @staticmethod
    def from_json(data: Sequence[Any]) -> "ImportRecord":
        module, names, line, col, toplevel = data
        return ImportRecord(str(module), tuple(names), int(line), int(col), bool(toplevel))


@dataclass(frozen=True)
class ModuleRecord:
    """One analyzed file's identity and imports, as cacheable data."""

    #: path as reported in findings (relative to the lint invocation)
    path: str
    #: dotted module name, or None when the file is not inside a package
    module: Optional[str]
    imports: Tuple[ImportRecord, ...] = ()
    #: the module's ``__all__`` (facade surface), when statically visible
    exports: Optional[Tuple[str, ...]] = None
    is_init: bool = field(default=False)

    @property
    def package_parts(self) -> Tuple[str, ...]:
        """Dotted-name parts of the *package* this module lives in."""
        if self.module is None:
            return ()
        parts = tuple(self.module.split("."))
        return parts if self.is_init else parts[:-1]

    def to_json(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "imports": [record.to_json() for record in self.imports],
            "exports": list(self.exports) if self.exports is not None else None,
            "is_init": self.is_init,
        }

    @staticmethod
    def from_json(path: str, data: Dict[str, Any]) -> "ModuleRecord":
        exports = data.get("exports")
        return ModuleRecord(
            path=path,
            module=data.get("module"),
            imports=tuple(ImportRecord.from_json(r) for r in data.get("imports", ())),
            exports=tuple(exports) if exports is not None else None,
            is_init=bool(data.get("is_init", False)),
        )


def module_name(path: Path) -> Optional[str]:
    """Dotted module name for ``path``, by walking ``__init__.py`` chains.

    ``src/repro/core/engine.py`` resolves to ``repro.core.engine`` because
    ``core/`` and ``repro/`` carry ``__init__.py`` and ``src/`` does not.
    Returns None for a file whose own directory is not a package (the
    file is then a top-level script/module outside any package tree).
    """
    path = path.resolve()
    parts: List[str] = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if len(parts) == 1 and path.name != "__init__.py":
        return None
    if path.name == "__init__.py":
        parts = parts[1:]
        if not parts:
            return None
    return ".".join(reversed(parts))


def _resolve_relative(importer: Optional[str], is_init: bool, node: ast.ImportFrom) -> Optional[str]:
    """Absolute dotted target of ``node``, or None when unresolvable."""
    if node.level == 0:
        return node.module
    if importer is None:
        return None
    parts = importer.split(".")
    # level 1 = the importing module's own package; each extra level
    # climbs one package higher
    base = parts if is_init else parts[:-1]
    if node.level > 1:
        if node.level - 1 >= len(base):
            return None
        base = base[: len(base) - (node.level - 1)]
    prefix = ".".join(base)
    if node.module:
        return f"{prefix}.{node.module}" if prefix else node.module
    return prefix or None


def collect_imports(
    tree: ast.Module, importer: Optional[str], is_init: bool
) -> Tuple[ImportRecord, ...]:
    """Every import in ``tree``, with module-scope statements marked.

    "Module scope" includes statements nested in module-level ``if``
    blocks (``if TYPE_CHECKING:`` and friends) and ``try`` fallbacks —
    lexically top-level knowledge counts for layering even when it does
    not execute at import time.
    """
    toplevel_ids = set()
    stack: List[ast.stmt] = list(tree.body)
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, (ast.Import, ast.ImportFrom)):
            toplevel_ids.add(id(stmt))
        elif isinstance(stmt, ast.If):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body)
            stack.extend(stmt.orelse)
            stack.extend(stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)

    records: List[ImportRecord] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                records.append(
                    ImportRecord(
                        module=alias.name,
                        names=(),
                        line=node.lineno,
                        col=node.col_offset,
                        toplevel=id(node) in toplevel_ids,
                    )
                )
        elif isinstance(node, ast.ImportFrom):
            target = _resolve_relative(importer, is_init, node)
            if target is None:
                continue
            records.append(
                ImportRecord(
                    module=target,
                    names=tuple(alias.name for alias in node.names),
                    line=node.lineno,
                    col=node.col_offset,
                    toplevel=id(node) in toplevel_ids,
                )
            )
    records.sort(key=lambda record: (record.line, record.col, record.module))
    return tuple(records)


def module_exports(tree: ast.Module) -> Optional[Tuple[str, ...]]:
    """The statically-declared ``__all__`` of a module, when present."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:
                        return None
                    if isinstance(value, (list, tuple, set)):
                        return tuple(str(name) for name in value)
    return None
