"""SARIF 2.1.0 emission for CI artifact upload and code-scanning UIs.

Emits the minimal-but-valid subset of the OASIS SARIF 2.1.0 schema that
code-scanning consumers read: one run, the full rule table on the tool
driver, and one result per finding with a physical location.  Baselined
findings are emitted at ``note`` level with ``baselineState`` set so a
viewer can distinguish accepted debt from live errors; stale-ignore
warnings ride along at ``warning`` level.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Sequence

from repro.analysis.rules import Rule, Violation

__all__ = ["SARIF_VERSION", "to_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"
_INFO_URI = "https://github.com/oasis-tcs/sarif-spec"


def _rule_descriptor(rule: Rule, level: str) -> Dict[str, Any]:
    return {
        "id": rule.id,
        "name": rule.id,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.invariant},
        "defaultConfiguration": {"level": level},
    }


def _result(violation: Violation, level: str, baseline_state: str | None = None) -> Dict[str, Any]:
    uri = Path(violation.path).as_posix()
    result: Dict[str, Any] = {
        "ruleId": violation.rule_id,
        "level": level,
        "message": {"text": violation.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": uri, "uriBaseId": "SRCROOT"},
                    "region": {
                        "startLine": max(1, violation.line),
                        "startColumn": max(1, violation.col + 1),
                    },
                }
            }
        ],
    }
    if baseline_state is not None:
        result["baselineState"] = baseline_state
    return result


def to_sarif(
    rules: Sequence[Rule],
    errors: Sequence[Violation],
    warnings: Sequence[Violation] = (),
    baselined: Sequence[Violation] = (),
    tool_version: str = "1.0.0",
) -> Dict[str, Any]:
    """The complete SARIF log object for one analyzer run."""
    warning_ids = {violation.rule_id for violation in warnings}
    descriptors = [
        _rule_descriptor(rule, "warning" if rule.id in warning_ids else "error")
        for rule in rules
    ]
    results: List[Dict[str, Any]] = []
    for violation in errors:
        results.append(_result(violation, "error"))
    for violation in warnings:
        results.append(_result(violation, "warning"))
    for violation in baselined:
        results.append(_result(violation, "note", baseline_state="unchanged"))
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": _INFO_URI,
                        "version": tool_version,
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": Path.cwd().as_uri() + "/"}
                },
                "results": results,
            }
        ],
    }
