"""The incremental whole-program lint engine.

Orchestrates everything the CLI exposes:

* **Discovery** — ``os.walk``-style traversal with real directory
  pruning (the old ``rglob`` filter skipped matching *files* but still
  descended into skipped trees), deterministic ordering, and per-file
  scope assignment: files under ``tests/``/``benchmarks/`` get the
  relaxed TEST scope, everything else (and every explicitly named file)
  the full KERNEL scope.
* **Per-file analysis** — the legacy :class:`InvariantVisitor` rules
  plus the :mod:`repro.analysis.rules_flow` dataflow pass, with inline
  ``# simlint: ignore[...]`` suppression anchored to *statement spans*
  (a directive on a ``def`` line silences a violation reported on its
  decorator, and a directive on any line of a multi-line statement
  covers the whole statement).
* **Whole-program pass** — the module table feeds the ARCH layering
  rules (:mod:`repro.analysis.rules_arch`); ARCH findings are not
  inline-suppressible (use the baseline for accepted exceptions).
* **Incremental cache** — per-file results keyed by content sha256 and
  a salt over the analyzer's own sources (same pattern as
  ``repro.experiments.cache``): a warm re-lint of an unchanged tree
  re-parses nothing, including the ARCH pass, which rebuilds from
  cached import records.
* **SIM016** — directives that suppressed nothing become stale-ignore
  warnings (errors under ``--strict-ignores``).
"""

from __future__ import annotations

import ast
import concurrent.futures
import hashlib
import io
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.baseline import BaselineEntry, apply_baseline
from repro.analysis.model import ModuleRecord, collect_imports, module_exports, module_name
from repro.analysis.rules import RULES, InvariantVisitor, Rule, Violation
from repro.analysis.rules_arch import ARCH_RULES, check_architecture, prove_acyclic
from repro.analysis.rules_flow import FLOW_RULES, FlowVisitor

__all__ = [
    "ALL_RULES",
    "FileAnalysis",
    "Report",
    "SCOPE_KERNEL",
    "SCOPE_TEST",
    "STALE_IGNORE_RULE",
    "analyze_source",
    "iter_python_files",
    "run_engine",
]

#: directories never worth descending into (pruned, not post-filtered)
_SKIP_DIR_NAMES = {
    "__pycache__",
    ".git",
    ".mypy_cache",
    ".pytest_cache",
    ".ruff_cache",
    ".repro_cache",
    ".hypothesis",
}

#: the corpus of deliberately-broken rule fixtures: pruned whenever it is
#: reached by directory walk (linting it explicitly still works)
_FIXTURE_DIR = ("analysis", "fixtures")

#: matches the blanket directive or the bracketed form with rule ids
_IGNORE_RE = re.compile(r"#\s*simlint:\s*ignore(?:\[(?P<ids>[A-Z0-9,\s]+)\])?")

SCOPE_KERNEL = "kernel"
SCOPE_TEST = "test"

#: rules enforced on tests/ and benchmarks/: the leak-across-runs pair
#: (shared mutable defaults, swallowed control flow) plus stale ignores;
#: kernel-convention rules would drown test code in false positives
#: (tests legitimately build RNGs, read clocks around benchmarks, etc.)
_TEST_SCOPE_RULES = {"SIM005", "SIM006"}

STALE_IGNORE_RULE = Rule(
    "SIM016",
    "stale '# simlint: ignore' directive suppresses nothing",
    "an ignore that no longer matches any violation is camouflage: it "
    "documents a hazard that no longer exists and will silently swallow "
    "the next real finding on that statement — delete it (or fix the "
    "rule list in the brackets)",
)

#: every rule the engine can emit, in report order
ALL_RULES: Tuple[Rule, ...] = RULES + FLOW_RULES + (STALE_IGNORE_RULE,) + ARCH_RULES

_CACHE_VERSION = 2

#: compound statements whose suppression span is the *header* only
#: (directive on the def/if line must not blanket the whole body)
_COMPOUND_STMTS = (
    ast.FunctionDef,
    ast.AsyncFunctionDef,
    ast.ClassDef,
    ast.If,
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


@dataclass
class Directive:
    """One inline ignore comment and whether it earned its keep."""

    line: int
    col: int
    #: None = blanket ignore; otherwise the bracketed rule ids
    ids: Optional[Tuple[str, ...]]
    used: bool = False

    def to_json(self) -> List[Any]:
        return [self.line, self.col, list(self.ids) if self.ids is not None else None, self.used]

    @staticmethod
    def from_json(data: Sequence[Any]) -> "Directive":
        line, col, ids, used = data
        return Directive(int(line), int(col), tuple(ids) if ids is not None else None, bool(used))


@dataclass
class FileAnalysis:
    """Everything the engine needs to remember about one analyzed file."""

    path: str
    violations: List[Violation] = field(default_factory=list)
    directives: List[Directive] = field(default_factory=list)
    #: suppressed finding counts per rule (for the stats table)
    suppressed: Dict[str, int] = field(default_factory=dict)
    module: Optional[ModuleRecord] = None
    broken: Optional[str] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "violations": [
                [v.line, v.col, v.rule_id, v.message] for v in self.violations
            ],
            "directives": [d.to_json() for d in self.directives],
            "suppressed": self.suppressed,
            "module": self.module.to_json() if self.module is not None else None,
            "broken": self.broken,
        }

    @staticmethod
    def from_json(path: str, data: Dict[str, Any]) -> "FileAnalysis":
        module = data.get("module")
        return FileAnalysis(
            path=path,
            violations=[
                Violation(path=path, line=int(line), col=int(col), rule_id=str(rule), message=str(msg))
                for line, col, rule, msg in data.get("violations", ())
            ],
            directives=[Directive.from_json(d) for d in data.get("directives", ())],
            suppressed={str(k): int(v) for k, v in data.get("suppressed", {}).items()},
            module=ModuleRecord.from_json(path, module) if module is not None else None,
            broken=data.get("broken"),
        )


# -- discovery ---------------------------------------------------------------


def _prune(dirnames: List[str], parent: Path) -> None:
    keep = []
    for name in dirnames:
        if name in _SKIP_DIR_NAMES:
            continue
        if name == _FIXTURE_DIR[1] and parent.name == _FIXTURE_DIR[0]:
            continue
        keep.append(name)
    dirnames[:] = sorted(keep)


def iter_python_files(paths: Iterable[Path]) -> Iterable[Tuple[Path, str]]:
    """Yield ``(file, scope)`` pairs in deterministic order.

    Directories are walked with genuine pruning: a skipped directory is
    never descended into.  Explicitly named files are always yielded at
    KERNEL scope, whatever their location — only walk-*discovered* files
    under a ``tests``/``benchmarks`` segment are demoted to TEST scope.
    """
    seen: Set[Path] = set()
    for path in paths:
        if path.is_dir():
            root_is_test = bool({"tests", "benchmarks"} & set(path.parts))
            for dirpath, dirnames, filenames in os.walk(path):
                here = Path(dirpath)
                _prune(dirnames, here)
                rel_parts = here.relative_to(path).parts
                in_tests = root_is_test or bool({"tests", "benchmarks"} & set(rel_parts))
                for name in sorted(filenames):
                    if not name.endswith(".py"):
                        continue
                    file_path = here / name
                    if file_path in seen:
                        continue
                    seen.add(file_path)
                    yield file_path, SCOPE_TEST if in_tests else SCOPE_KERNEL
        elif path.suffix == ".py" and path not in seen:
            seen.add(path)
            yield path, SCOPE_KERNEL


# -- suppression -------------------------------------------------------------


def _parse_directive(text: str, line: int, col_base: int) -> Optional[Directive]:
    match = _IGNORE_RE.search(text)
    if match is None:
        return None
    ids = match.group("ids")
    parsed: Optional[Tuple[str, ...]] = None
    if ids is not None:
        parsed = tuple(part.strip() for part in ids.split(",") if part.strip())
    return Directive(line=line, col=col_base + match.start(), ids=parsed)


def _collect_directives(source: str) -> List[Directive]:
    """Every ignore directive in ``source``, from real comment tokens.

    Tokenizing (rather than scanning raw lines) keeps a ``# simlint:
    ignore`` *mention* inside a docstring or string literal from being
    treated as a live directive — the stale-ignore audit (SIM016) would
    otherwise flag prose that documents the escape hatch.
    """
    directives: List[Directive] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            directive = _parse_directive(token.string, token.start[0], token.start[1])
            if directive is not None:
                directives.append(directive)
    except (tokenize.TokenError, IndentationError):
        # fall back to the historical line scan for untokenizable input
        directives = []
        for lineno, text in enumerate(source.splitlines(), start=1):
            directive = _parse_directive(text, lineno, 0)
            if directive is not None:
                directives.append(directive)
    return directives


def _statement_spans(tree: ast.Module) -> List[Tuple[int, int]]:
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        for deco in getattr(node, "decorator_list", []):
            start = min(start, deco.lineno)
        body = getattr(node, "body", None)
        if isinstance(node, _COMPOUND_STMTS) and body:
            end = max(node.lineno, body[0].lineno - 1)
        else:
            end = node.end_lineno or node.lineno
        spans.append((start, end))
    return spans


def _span_for_line(spans: Sequence[Tuple[int, int]], line: int) -> Tuple[int, int]:
    """The innermost statement span containing ``line``."""
    best: Optional[Tuple[int, int]] = None
    for start, end in spans:
        if start <= line <= end:
            if best is None or (end - start, -start) < (best[1] - best[0], -best[0]):
                best = (start, end)
    return best if best is not None else (line, line)


def _apply_suppression(
    violations: List[Violation],
    directives: List[Directive],
    spans: Sequence[Tuple[int, int]],
) -> Tuple[List[Violation], Dict[str, int]]:
    kept: List[Violation] = []
    suppressed: Dict[str, int] = {}
    by_line: Dict[int, List[Directive]] = {}
    for directive in directives:
        by_line.setdefault(directive.line, []).append(directive)
    for violation in violations:
        start, end = _span_for_line(spans, violation.line)
        hit = None
        for line in range(start, end + 1):
            for directive in by_line.get(line, ()):
                if directive.ids is None or violation.rule_id in directive.ids:
                    hit = directive
                    break
            if hit is not None:
                break
        if hit is not None:
            hit.used = True
            suppressed[violation.rule_id] = suppressed.get(violation.rule_id, 0) + 1
        else:
            kept.append(violation)
    return kept, suppressed


# -- per-file analysis -------------------------------------------------------


def analyze_source(
    source: str,
    path: str,
    *,
    scope: str = SCOPE_KERNEL,
    legacy_only: bool = False,
    fs_path: Optional[Path] = None,
) -> FileAnalysis:
    """Run every per-file pass over one module's source text.

    ``legacy_only`` restricts to the SIM001-SIM011 visitor — that is the
    byte-compatibility surface of :func:`repro.analysis.lint.lint_source`
    (the fixture corpus pins it).  The engine always runs the full set.
    """
    analysis = FileAnalysis(path=path)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        analysis.broken = f"{path}:{exc.lineno or 1}:0: cannot parse: {exc.msg}"
        return analysis

    visitor = InvariantVisitor(path)
    visitor.visit(tree)
    violations = list(visitor.violations)
    if not legacy_only and scope == SCOPE_KERNEL:
        flow = FlowVisitor(path)
        flow.visit(tree)
        violations.extend(flow.violations)
    if scope == SCOPE_TEST:
        violations = [v for v in violations if v.rule_id in _TEST_SCOPE_RULES]
    violations.sort(key=lambda v: (v.line, v.col, v.rule_id))

    directives = _collect_directives(source)
    spans = _statement_spans(tree)
    analysis.violations, analysis.suppressed = _apply_suppression(violations, directives, spans)
    analysis.directives = directives

    if not legacy_only:
        resolve_from = fs_path if fs_path is not None else Path(path)
        is_init = resolve_from.name == "__init__.py"
        dotted = module_name(resolve_from) if resolve_from.exists() else None
        analysis.module = ModuleRecord(
            path=path,
            module=dotted,
            imports=collect_imports(tree, dotted, is_init),
            exports=module_exports(tree) if is_init else None,
            is_init=is_init,
        )
    return analysis


def _analyze_file(args: Tuple[str, str]) -> Tuple[str, str, Dict[str, Any]]:
    """Worker for the process-pool fan-out; returns cacheable JSON."""
    path_str, scope = args
    path = Path(path_str)
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as exc:
        broken = FileAnalysis(path=path_str, broken=f"{path_str}:1:0: cannot read: {exc}")
        return path_str, "", broken.to_json()
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    analysis = analyze_source(source, path_str, scope=scope, fs_path=path)
    return path_str, digest, analysis.to_json()


# -- cache -------------------------------------------------------------------


def _analysis_salt() -> str:
    """sha256 over the analyzer's own sources: new rules bust the cache."""
    digest = hashlib.sha256()
    package_dir = Path(__file__).parent
    for source in sorted(package_dir.glob("*.py")):
        digest.update(source.name.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(source.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def _load_cache(cache_path: Path, salt: str) -> Dict[str, Any]:
    try:
        data = json.loads(cache_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if not isinstance(data, dict) or data.get("version") != _CACHE_VERSION:
        return {}
    if data.get("salt") != salt:
        return {}
    files = data.get("files")
    return files if isinstance(files, dict) else {}


def _save_cache(cache_path: Path, salt: str, files: Dict[str, Any]) -> None:
    payload = {"version": _CACHE_VERSION, "salt": salt, "files": files}
    tmp = cache_path.with_name(cache_path.name + ".tmp")
    try:
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        os.replace(tmp, cache_path)
    except OSError:
        tmp.unlink(missing_ok=True)


# -- the engine --------------------------------------------------------------


@dataclass
class Report:
    """One engine run's complete outcome."""

    errors: List[Violation] = field(default_factory=list)
    warnings: List[Violation] = field(default_factory=list)
    baselined: List[Violation] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    broken: List[str] = field(default_factory=list)
    #: per-rule {"errors": n, "warnings": n, "baselined": n, "suppressed": n}
    stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    files_analyzed: int = 0
    files_reused: int = 0
    #: the acyclicity proof: packages in dependency order (None = cycle)
    package_order: Optional[List[str]] = None

    @property
    def exit_code(self) -> int:
        if self.broken:
            return 2
        return 1 if self.errors else 0

    def _bump(self, rule_id: str, bucket: str, amount: int = 1) -> None:
        row = self.stats.setdefault(
            rule_id, {"errors": 0, "warnings": 0, "baselined": 0, "suppressed": 0}
        )
        row[bucket] += amount


def run_engine(
    paths: Sequence[Path],
    *,
    cache_path: Optional[Path] = None,
    jobs: int = 1,
    strict_ignores: bool = False,
    baseline: Optional[Dict[Tuple[str, str], BaselineEntry]] = None,
) -> Report:
    """Lint ``paths`` end to end; the CLI renders the returned report."""
    report = Report()
    targets = list(iter_python_files(paths))

    salt = _analysis_salt()
    cached = _load_cache(cache_path, salt) if cache_path is not None else {}
    fresh_cache: Dict[str, Any] = {}
    analyses: Dict[str, FileAnalysis] = {}
    pending: List[Tuple[str, str]] = []

    for file_path, scope in targets:
        key = str(file_path)
        entry = cached.get(key)
        digest: Optional[str] = None
        if entry is not None and entry.get("scope") == scope:
            try:
                source_bytes = file_path.read_bytes()
            except OSError:
                source_bytes = None
            if source_bytes is not None:
                digest = hashlib.sha256(source_bytes).hexdigest()
                if digest == entry.get("hash"):
                    analyses[key] = FileAnalysis.from_json(key, entry["analysis"])
                    fresh_cache[key] = entry
                    report.files_reused += 1
                    continue
        pending.append((key, scope))

    if pending:
        if jobs > 1 and len(pending) > 4:
            with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(_analyze_file, pending, chunksize=8))
        else:
            results = [_analyze_file(item) for item in pending]
        scope_of = dict(pending)
        for key, digest_str, payload in results:
            analyses[key] = FileAnalysis.from_json(key, payload)
            report.files_analyzed += 1
            if digest_str:
                fresh_cache[key] = {
                    "hash": digest_str,
                    "scope": scope_of[key],
                    "analysis": payload,
                }

    # deterministic order for everything downstream
    ordered = [analyses[key] for key, _ in ((str(p), s) for p, s in targets)]

    violations: List[Violation] = []
    for analysis in ordered:
        if analysis.broken is not None:
            report.broken.append(analysis.broken)
            continue
        violations.extend(analysis.violations)
        for rule_id, count in analysis.suppressed.items():
            report._bump(rule_id, "suppressed", count)

    # whole-program ARCH pass from the (possibly cached) module table
    modules = [a.module for a in ordered if a.module is not None and a.broken is None]
    violations.extend(check_architecture(modules))
    report.package_order = prove_acyclic(modules)

    # SIM016: directives that suppressed nothing
    stale: List[Violation] = []
    for analysis in ordered:
        if analysis.broken is not None:
            continue
        for directive in analysis.directives:
            if not directive.used:
                listed = f"[{', '.join(directive.ids)}]" if directive.ids is not None else ""
                stale.append(
                    Violation(
                        path=analysis.path,
                        line=directive.line,
                        col=directive.col,
                        rule_id="SIM016",
                        message=(
                            f"stale directive 'simlint: ignore{listed}' suppresses "
                            "nothing on this statement; delete it so it cannot "
                            "mask the next real finding"
                        ),
                    )
                )
    if strict_ignores:
        violations.extend(stale)
    else:
        report.warnings.extend(stale)

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    report.errors, report.baselined, report.stale_baseline = apply_baseline(
        violations, baseline or {}
    )

    for violation in report.errors:
        report._bump(violation.rule_id, "errors")
    for violation in report.warnings:
        report._bump(violation.rule_id, "warnings")
    for violation in report.baselined:
        report._bump(violation.rule_id, "baselined")

    if cache_path is not None:
        _save_cache(cache_path, salt, fresh_cache)
    return report
