"""Import-graph algorithms: condensation, cycles, topological layers.

Pure functions over adjacency dicts ``{node: {dependency, ...}}``; the
ARCH rules build the package-level graph from the module table and use
these to *prove* the dependency DAG acyclic (Tarjan strongly-connected
components) and to derive a layering order (Kahn) for reports.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

__all__ = ["cycles", "edge_list", "strongly_connected_components", "topological_order"]

Graph = Dict[str, Set[str]]


def _normalized(graph: Graph) -> Dict[str, Tuple[str, ...]]:
    """Deterministic adjacency: every referenced node present, edges sorted."""
    nodes = set(graph)
    for deps in graph.values():
        nodes |= deps
    return {node: tuple(sorted(graph.get(node, ()))) for node in sorted(nodes)}


def strongly_connected_components(graph: Graph) -> List[Tuple[str, ...]]:
    """Tarjan's SCCs, deterministically ordered, members sorted.

    Iterative (explicit stack) so pathological import chains cannot hit
    the recursion limit; components come out in reverse-topological
    order of the condensation, which we re-sort lexicographically for
    stable reports.
    """
    adj = _normalized(graph)
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    components: List[Tuple[str, ...]] = []
    counter = 0

    for root in adj:
        if root in index:
            continue
        work: List[Tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_i = work[-1]
            if edge_i == 0:
                index[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            neighbours = adj[node]
            while edge_i < len(neighbours):
                succ = neighbours[edge_i]
                edge_i += 1
                if succ not in index:
                    work[-1] = (node, edge_i)
                    work.append((succ, 0))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(tuple(sorted(component)))
    return sorted(components)


def cycles(graph: Graph) -> List[Tuple[str, ...]]:
    """Non-trivial SCCs (size > 1, or a self-loop): the import cycles."""
    out = []
    for component in strongly_connected_components(graph):
        if len(component) > 1:
            out.append(component)
        elif component[0] in graph.get(component[0], ()):
            out.append(component)
    return out


def topological_order(graph: Graph) -> Optional[List[str]]:
    """Kahn's order (dependencies first), or None when the graph cycles.

    A non-None return is the acyclicity proof the ARCH gate reports: a
    linear order in which every package appears after everything it
    imports.
    """
    adj = _normalized(graph)
    indegree = {node: 0 for node in adj}
    # emit dependencies first: each importer waits on its dependencies,
    # so its indegree is its dependency count (self-loops never drain)
    importers: Dict[str, List[str]] = {node: [] for node in adj}
    for node, deps in adj.items():
        for dep in deps:
            importers[dep].append(node)
            indegree[node] += 1
    ready = sorted(node for node, degree in indegree.items() if degree == 0)
    order: List[str] = []
    while ready:
        node = ready.pop(0)
        order.append(node)
        for importer in sorted(importers[node]):
            indegree[importer] -= 1
            if indegree[importer] == 0:
                ready.append(importer)
        ready.sort()
    if len(order) != len(adj):
        return None
    return order


def edge_list(graph: Graph) -> Sequence[Tuple[str, str]]:
    """Sorted ``(importer, dependency)`` pairs, for reports and tests."""
    return sorted((node, dep) for node, deps in graph.items() for dep in deps)
