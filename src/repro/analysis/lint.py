"""The sim-kernel linter CLI: ``python -m repro.analysis.lint <paths>``.

Walks the given files/directories, runs every SIM rule over each Python
module, honours inline ``# simlint: ignore[SIM00x]`` escape hatches, and
exits non-zero when any violation survives.  Pure standard library, so it
runs in any environment the repo itself runs in.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Iterable, List, Sequence

from repro.analysis.rules import RULE_IDS, RULES, InvariantVisitor, Violation

__all__ = ["lint_file", "lint_paths", "lint_source", "main"]

#: directories never worth descending into
_SKIP_DIRS = {"__pycache__", ".git", ".mypy_cache", ".pytest_cache", ".ruff_cache"}

#: ``# simlint: ignore`` (blanket) or ``# simlint: ignore[SIM001,SIM005]``
_IGNORE_RE = re.compile(r"#\s*simlint:\s*ignore(?:\[(?P<ids>[A-Z0-9,\s]+)\])?")


class BrokenModule(Exception):
    """Raised when a file cannot be parsed (reported as a hard error)."""


def _ignored_ids(line: str) -> frozenset:
    """Rule IDs silenced by an inline comment on ``line``.

    Returns the empty set when there is no directive, and the full rule
    set for a blanket ``# simlint: ignore`` with no bracket list.
    """
    match = _IGNORE_RE.search(line)
    if match is None:
        return frozenset()
    ids = match.group("ids")
    if ids is None:
        return frozenset(RULE_IDS)
    return frozenset(part.strip() for part in ids.split(",") if part.strip())


def lint_source(source: str, path: str) -> List[Violation]:
    """Lint one module's source text; ``path`` scopes path-based rules."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise BrokenModule(f"{path}:{exc.lineno or 1}:0: cannot parse: {exc.msg}") from exc
    visitor = InvariantVisitor(path)
    visitor.visit(tree)
    if not visitor.violations:
        return []
    lines = source.splitlines()
    kept: List[Violation] = []
    for violation in visitor.violations:
        line_text = lines[violation.line - 1] if 0 < violation.line <= len(lines) else ""
        if violation.rule_id not in _ignored_ids(line_text):
            kept.append(violation)
    return kept


def lint_file(path: Path) -> List[Violation]:
    """Lint one file on disk."""
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if not _SKIP_DIRS & set(part for part in sub.parts):
                    yield sub
        elif path.suffix == ".py":
            yield path


def lint_paths(paths: Sequence[Path]) -> List[Violation]:
    """Lint every Python file under ``paths`` (files or directories)."""
    violations: List[Violation] = []
    for path in _iter_python_files(paths):
        violations.extend(lint_file(path))
    return violations


def _list_rules() -> str:
    lines = []
    for rule in RULES:
        lines.append(f"{rule.id}  {rule.summary}")
        lines.append(f"        {rule.invariant}")
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="Check simulation-kernel invariants (SIM001..SIM010).",
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories to lint")
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule and its invariant, then exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis.lint src)")

    missing = [str(p) for p in args.paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    try:
        violations = lint_paths(args.paths)
    except BrokenModule as exc:
        print(str(exc), file=sys.stderr)
        return 2

    for violation in violations:
        print(violation.render())
    if violations:
        count = len(violations)
        print(f"simlint: {count} violation{'s' if count != 1 else ''} found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
