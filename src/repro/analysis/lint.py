"""The sim-kernel linter CLI: ``python -m repro.analysis.lint <paths>``.

Front-end over :mod:`repro.analysis.engine`.  Walks the given
files/directories, runs the per-file SIM rules plus the whole-program
ARCH layering pass, honours inline ``# simlint: ignore[SIM00x]`` escape
hatches (anchored to the enclosing statement, so a directive on a
``def`` line covers findings on its decorators and a directive anywhere
in a multi-line statement covers the whole statement), and exits
non-zero when any non-baselined violation survives.  Pure standard
library, so it runs in any environment the repo itself runs in.

Output formats: ``text`` (one ``path:line:col: RULE message`` line per
finding), ``json`` (the full report), and ``sarif`` (SARIF 2.1.0 for CI
artifact upload).  ``--cache`` enables the content-hash incremental
cache; ``--baseline`` demotes accepted findings; ``--strict-ignores``
turns stale ignore directives (SIM016) into errors.

The module-level helpers (:func:`lint_source`, :func:`lint_file`,
:func:`lint_paths`) remain the stable legacy API: SIM001-SIM011 only,
no flow/ARCH rules, exceptions for unparsable files.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.analysis import engine as _engine
from repro.analysis.baseline import BaselineError, load_baseline, write_baseline
from repro.analysis.engine import ALL_RULES, Report, run_engine
from repro.analysis.rules import Violation
from repro.analysis.sarif import to_sarif

__all__ = ["BrokenModule", "lint_file", "lint_paths", "lint_source", "main"]


class BrokenModule(Exception):
    """Raised when a file cannot be parsed (reported as a hard error)."""


def lint_source(source: str, path: str) -> List[Violation]:
    """Lint one module's source text; ``path`` scopes path-based rules.

    Legacy per-file surface: SIM001-SIM011 only (no dataflow or ARCH
    rules — those need the engine's whole-program context).
    """
    analysis = _engine.analyze_source(source, path, legacy_only=True)
    if analysis.broken is not None:
        raise BrokenModule(analysis.broken)
    return analysis.violations


def lint_file(path: Path) -> List[Violation]:
    """Lint one file on disk."""
    return lint_source(path.read_text(encoding="utf-8"), str(path))


def _iter_python_files(paths: Iterable[Path]) -> Iterable[Path]:
    for path, _scope in _engine.iter_python_files(paths):
        yield path


def lint_paths(paths: Sequence[Path]) -> List[Violation]:
    """Lint every Python file under ``paths`` (files or directories)."""
    violations: List[Violation] = []
    for path in _iter_python_files(paths):
        violations.extend(lint_file(path))
    return violations


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        lines.append(f"{rule.id}  {rule.summary}")
        lines.append(f"        {rule.invariant}")
    return "\n".join(lines)


def _report_to_json(report: Report) -> dict:
    def rows(violations: Sequence[Violation]) -> List[dict]:
        return [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "message": v.message,
            }
            for v in violations
        ]

    return {
        "errors": rows(report.errors),
        "warnings": rows(report.warnings),
        "baselined": rows(report.baselined),
        "staleBaseline": report.stale_baseline,
        "broken": report.broken,
        "stats": report.stats,
        "files": {"analyzed": report.files_analyzed, "reused": report.files_reused},
        "packageOrder": report.package_order,
    }


def _stats_table(report: Report) -> str:
    header = f"{'rule':<9}{'errors':>8}{'warnings':>10}{'baselined':>11}{'suppressed':>12}"
    lines = [header, "-" * len(header)]
    totals = {"errors": 0, "warnings": 0, "baselined": 0, "suppressed": 0}
    for rule in ALL_RULES:
        row = report.stats.get(rule.id)
        if row is None or not any(row.values()):
            continue
        lines.append(
            f"{rule.id:<9}{row['errors']:>8}{row['warnings']:>10}"
            f"{row['baselined']:>11}{row['suppressed']:>12}"
        )
        for key in totals:
            totals[key] += row[key]
    lines.append(
        f"{'total':<9}{totals['errors']:>8}{totals['warnings']:>10}"
        f"{totals['baselined']:>11}{totals['suppressed']:>12}"
    )
    return "\n".join(lines)


def _emit(document: str, output: Optional[Path]) -> None:
    if output is not None:
        output.write_text(document, encoding="utf-8")
    else:
        print(document)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description=(
            "Check simulation-kernel invariants (SIM001..SIM017) and "
            "architecture layering (ARCH001..ARCH004)."
        ),
    )
    parser.add_argument("paths", nargs="*", type=Path, help="files or directories to lint")
    parser.add_argument(
        "--list-rules", action="store_true", help="print every rule and its invariant, then exit"
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, help="write the report to a file instead of stdout"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed baseline of accepted findings (see repro.analysis.baseline)",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        help="write the surviving errors as a fresh baseline file and exit 0",
    )
    parser.add_argument(
        "--justification",
        default="accepted pre-existing finding; ratchet down over time",
        help="justification recorded on entries written by --write-baseline",
    )
    parser.add_argument(
        "--strict-ignores",
        action="store_true",
        help="treat stale '# simlint: ignore' directives (SIM016) as errors",
    )
    parser.add_argument(
        "--cache",
        type=Path,
        default=None,
        help="enable the incremental cache, stored at this path",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, help="analyze files with N worker processes"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print a per-rule summary table to stderr"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if not args.paths:
        parser.error("no paths given (try: python -m repro.analysis.lint src)")

    missing = [str(p) for p in args.paths if not p.exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline = {}
    if args.baseline is not None:
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    report = run_engine(
        args.paths,
        cache_path=args.cache,
        jobs=max(1, args.jobs),
        strict_ignores=args.strict_ignores,
        baseline=baseline,
    )

    if report.broken:
        for message in report.broken:
            print(message, file=sys.stderr)
        return 2

    if args.write_baseline is not None:
        count = write_baseline(report.errors, args.write_baseline, args.justification)
        print(
            f"simlint: wrote {count} baseline entr{'ies' if count != 1 else 'y'} "
            f"to {args.write_baseline}",
            file=sys.stderr,
        )
        return 0

    if args.format == "text":
        for violation in report.errors:
            print(violation.render())
        for violation in report.warnings:
            print(f"warning: {violation.render()}")
        for violation in report.baselined:
            print(f"baselined: {violation.render()}")
    elif args.format == "json":
        _emit(json.dumps(_report_to_json(report), indent=2, sort_keys=True), args.output)
    else:
        document = to_sarif(ALL_RULES, report.errors, report.warnings, report.baselined)
        _emit(json.dumps(document, indent=2, sort_keys=True), args.output)

    for message in report.stale_baseline:
        print(f"warning: {message}", file=sys.stderr)
    if args.stats:
        print(_stats_table(report), file=sys.stderr)

    if report.errors:
        count = len(report.errors)
        print(f"simlint: {count} violation{'s' if count != 1 else ''} found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
