"""The SIM rule set: domain invariants of the discrete-event kernel.

Each rule protects one leg of the determinism contract that the paper's
QoS pipeline (discriminant Eq. 5, sample-period Eq. 8, prewarm Eq. 7)
rests on.  Rules are deliberately narrow: they encode *this repo's*
conventions (all randomness flows through ``sim/rng.py``'s named streams,
all time flows through ``Environment.now``), not generic style.

The checker is a single source-order AST pass (`InvariantVisitor`);
``NodeVisitor`` recursion follows ``ast.iter_child_nodes``, which yields
children in source order, so statement-ordering rules like SIM004 see
code in the order it executes within a straight-line body.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["RULES", "Rule", "Violation", "InvariantVisitor"]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, what it enforces, and why."""

    id: str
    summary: str
    #: the kernel/paper invariant the rule protects (shown by --list-rules)
    invariant: str


RULES: Tuple[Rule, ...] = (
    Rule(
        "SIM001",
        "wall-clock read or real sleep in simulation code",
        "simulated time is Environment.now only; time.time()/sleep() make "
        "latencies depend on host speed (allowed only in the CLI driver "
        "experiments/__main__.py, which times the *host* run)",
    ),
    Rule(
        "SIM002",
        "RNG constructed or drawn outside sim/rng.py",
        "all randomness must flow through named RngRegistry streams so a "
        "single root seed reproduces every draw regardless of creation "
        "order (paper Eqs. 5-7 QoS numbers are seed-conditioned)",
    ),
    Rule(
        "SIM003",
        "== / != comparison on a simulated-time expression",
        "simulated timestamps are accumulated floats; exact equality is "
        "representation-dependent — compare with <=, >=, or an epsilon",
    ),
    Rule(
        "SIM004",
        "cancelled Event re-armed or passed back to the scheduler",
        "Event.cancel() revokes the heap entry lazily; re-triggering or "
        "re-scheduling the same object corrupts heap accounting "
        "(_note_cancelled bookkeeping) — create a fresh Event instead",
    ),
    Rule(
        "SIM005",
        "mutable default argument",
        "a shared default list/dict/set leaks state between calls and "
        "between simulation runs, breaking run-to-run independence",
    ),
    Rule(
        "SIM006",
        "bare `except:` clause",
        "swallowing BaseException hides StopSimulation/Interrupt control "
        "flow and kernel bugs; catch the specific exception",
    ),
    Rule(
        "SIM007",
        "config dataclass is not frozen",
        "configs are hashed, shared across runs, and compared in ablation "
        "sweeps; in-place mutation would silently fork experiment setups",
    ),
    Rule(
        "SIM008",
        "public core/ or sim/ function without a return annotation",
        "kernel APIs are contracts; unannotated returns let time/rate "
        "unit mixups (seconds vs. queries/s) slip through the type gate",
    ),
    Rule(
        "SIM009",
        "fault probability folded into control flow as a module constant",
        "fault rates must travel through a FaultPlan and be drawn from a "
        "named RngRegistry stream (repro.faults); a module-level constant "
        "compared in control flow cannot be swept, scaled to zero, or "
        "reproduced from the root seed",
    ),
    Rule(
        "SIM010",
        "unbounded queue in platform code (serverless/ or iaas/)",
        "overload protection (repro.overload) assumes every request queue "
        "is depth-bounded; a bare deque()/list backlog grows without limit "
        "under lambda >> capacity, wedging open-loop runs — pass maxlen=, "
        "enforce an explicit bound at enqueue, or justify with "
        "'# simlint: ignore[SIM010]'",
    ),
    Rule(
        "SIM011",
        "lambda/nested function submitted to an executor in experiments code",
        "sweep fan-out crosses a process boundary: ProcessPoolExecutor "
        "tasks pickle by qualified name, so only module-level callables "
        "survive the trip — a lambda or closure would crash the parallel "
        "path that the serial fallback never exercises; pass a "
        "module-level function and move per-run variation into the "
        "RunRequest data",
    ),
    Rule(
        "SIM017",
        "unbounded retry loop or uncapped recursive fan-out in call-path code",
        "retries amplify load exactly when the system is least able to "
        "absorb it: a 'while True' retry loop with no attempt bound, or "
        "direct recursion with no depth cap, turns one slow node into a "
        "cascade (the retry-storm failure mode the dag resilience gate "
        "measures) — bound attempts against a budget (see "
        "graph.RetryPolicy) and compare recursion against a depth cap",
    ),
)

RULE_IDS: Set[str] = {rule.id for rule in RULES}


@dataclass(frozen=True)
class Violation:
    """One finding: where, which rule, and how to fix it."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def render(self) -> str:
        """The canonical ``path:line:col: RULE message`` display form."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


#: wall-clock entry points, by canonical dotted name (SIM001)
_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.sleep",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: files (path suffixes) where wall-clock reads are legitimate: the CLI
#: driver reports how long the *host* took to run each experiment
_WALL_CLOCK_ALLOWED = ("experiments/__main__.py",)

#: the one module allowed to construct numpy/stdlib RNGs (SIM002)
_RNG_ALLOWED = ("sim/rng.py",)

#: identifiers that denote simulated-time values (SIM003)
_TIME_NAME_RE = re.compile(r"^(now|t_\w+|\w*_time|\w*deadline\w*)$")

#: attribute calls that (re-)arm an event on the heap (SIM004)
_EVENT_ARM_METHODS = {"succeed", "fail", "trigger"}
_SCHEDULER_FUNCS = {"schedule", "schedule_callback", "_enqueue"}

#: AST nodes that build a fresh mutable object per evaluation (SIM005)
_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_FACTORIES = {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}

#: path segments that mark kernel packages for SIM008
_ANNOTATED_PACKAGES = {"core", "sim"}

#: path segments marking platform packages whose queues must be bounded
#: (SIM010) — these are exactly the layers the overload policy guards
_BOUNDED_QUEUE_PACKAGES = {"serverless", "iaas"}

#: binding names that denote a request queue/backlog (SIM010)
_QUEUE_NAME_RE = re.compile(r"(?i)^\w*(queue|backlog|pending|waiting)\w*$")

#: path segments whose executor submissions must be picklable (SIM011):
#: the experiments package is where run fan-out crosses process bounds
_EXECUTOR_PACKAGES = {"experiments"}

#: attribute-call names that hand a callable to an executor (SIM011);
#: bare builtin map() stays in-process and is exempt
_EXECUTOR_SUBMIT_METHODS = {"submit", "map"}

#: path segments marking call-path packages whose retries must be
#: budgeted (SIM017) — exactly the layers where one node's retries
#: become another node's offered load, so an unbounded client storms
_RETRY_SCOPED_PACKAGES = {"serverless", "iaas", "graph"}

#: operand names that evidence an attempt/retry budget guard (SIM017)
_RETRY_GUARD_RE = re.compile(r"(?i)^\w*(attempt|retr|tries|budget)\w*$")

#: operand names that evidence a recursion depth cap (SIM017); an
#: attempt budget also counts — bounded either way
_DEPTH_GUARD_RE = re.compile(r"(?i)^\w*(depth|level|hop|attempt|retr|tries|budget)\w*$")

#: names that look like a fault-injection probability/rate (SIM009);
#: matched against module-level constant bindings only — FaultPlan
#: *fields* (class scope) are the sanctioned home for these numbers.
#: Preemption and flash-crowd knobs are included: a spot reclamation
#: rate or spike probability hard-coded next to the control flow it
#: gates is exactly as unsweepable as a crash rate
_FAULT_PROB_NAME_RE = re.compile(
    r"(?i)^\w*(fault|fail(ure)?|crash|outage|drop|loss"
    r"|preempt(ion)?|reclaim|spike|surge|crowd)\w*_(prob(ability)?|rate|p)$"
)


def _dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The last identifier of a Name/Attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _path_matches(path: str, suffixes: Tuple[str, ...]) -> bool:
    norm = path.replace("\\", "/")
    return any(norm.endswith(suffix) for suffix in suffixes)


def _path_segments(path: str) -> Set[str]:
    return set(path.replace("\\", "/").split("/"))


class InvariantVisitor(ast.NodeVisitor):
    """Single-pass checker for all SIM rules over one module."""

    def __init__(self, path: str):
        self.path = path
        self.violations: List[Violation] = []
        #: local alias -> canonical dotted module/attribute name
        self._aliases: Dict[str, str] = {}
        self._wall_clock_exempt = _path_matches(path, _WALL_CLOCK_ALLOWED)
        self._rng_exempt = _path_matches(path, _RNG_ALLOWED)
        self._annotations_apply = bool(_ANNOTATED_PACKAGES & _path_segments(path))
        self._queue_bounds_apply = bool(_BOUNDED_QUEUE_PACKAGES & _path_segments(path))
        self._executor_rules_apply = bool(_EXECUTOR_PACKAGES & _path_segments(path))
        self._retry_rules_apply = bool(_RETRY_SCOPED_PACKAGES & _path_segments(path))
        #: scope stack of {name -> def line} for unpicklable callables
        #: (lambda bindings anywhere, nested defs) — SIM011 lookups walk it
        self._unpicklable_callables: List[Dict[str, int]] = [{}]
        #: stack of per-function {name -> cancel line} maps for SIM004
        self._cancelled_stack: List[Dict[str, int]] = []
        self._function_depth = 0
        self._class_depth = 0
        #: module-level fault-probability constants {name -> def line} (SIM009)
        self._fault_prob_consts: Dict[str, int] = {}

    # -- helpers -----------------------------------------------------------
    def _report(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=rule_id,
                message=message,
            )
        )

    def _canonical(self, dotted: Optional[str]) -> Optional[str]:
        """Resolve the chain root through recorded import aliases."""
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        base = self._aliases.get(root)
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base

    # -- import tracking ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._aliases[alias.asname or alias.name.partition(".")[0]] = (
                alias.name if alias.asname else alias.name.partition(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    self._aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    # -- SIM001 / SIM002 / SIM004 (calls) ----------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        canonical = self._canonical(_dotted_name(node.func))
        if canonical is not None:
            if not self._wall_clock_exempt and canonical in _WALL_CLOCK_CALLS:
                self._report(
                    node,
                    "SIM001",
                    f"call to {canonical}() reads the wall clock; use Environment.now "
                    "/ Environment.timeout for simulated time (host timing belongs in "
                    "experiments/__main__.py)",
                )
            if not self._rng_exempt and (
                canonical.startswith("random.") or canonical.startswith("numpy.random.")
            ):
                self._report(
                    node,
                    "SIM002",
                    f"call to {canonical}() bypasses the RngRegistry; draw from a named "
                    "stream (registry.stream(<name>)) so one root seed reproduces "
                    "every sequence",
                )
        self._check_cancelled_use(node)
        if self._executor_rules_apply:
            self._check_executor_submission(node)
        self.generic_visit(node)

    # -- SIM011 (unpicklable executor submissions) -------------------------
    def _check_executor_submission(self, node: ast.Call) -> None:
        """Flag ``pool.submit(lambda: ...)`` / closures in experiments/."""
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr in _EXECUTOR_SUBMIT_METHODS):
            return
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                self._report(
                    node,
                    "SIM011",
                    f"lambda passed to .{func.attr}(); executor tasks pickle by "
                    "qualified name, so only a module-level function crosses the "
                    "process boundary — move it to module scope and carry per-run "
                    "variation in the RunRequest",
                )
                continue
            if isinstance(arg, ast.Name):
                line = self._lookup_unpicklable(arg.id)
                if line is not None:
                    self._report(
                        node,
                        "SIM011",
                        f"'{arg.id}' (nested function/lambda from line {line}) passed "
                        f"to .{func.attr}(); it cannot pickle to a worker process — "
                        "define it at module level and carry per-run variation in "
                        "the RunRequest",
                    )

    def _lookup_unpicklable(self, name: str) -> Optional[int]:
        for frame in reversed(self._unpicklable_callables):
            if name in frame:
                return frame[name]
        return None

    def _check_cancelled_use(self, node: ast.Call) -> None:
        """SIM004: flag re-arming or re-scheduling of a cancelled event."""
        if not self._cancelled_stack:
            return
        cancelled = self._cancelled_stack[-1]
        func = node.func
        if isinstance(func, ast.Attribute):
            target = _terminal_name(func.value)
            if func.attr == "cancel" and isinstance(func.value, (ast.Name, ast.Attribute)):
                if target is not None:
                    cancelled[target] = node.lineno
                return
            if func.attr in _EVENT_ARM_METHODS and target in cancelled:
                self._report(
                    node,
                    "SIM004",
                    f"'{target}' was cancelled on line {cancelled[target]}; calling "
                    f".{func.attr}() on it re-arms a dead heap entry — create a fresh "
                    "Event/Timeout instead",
                )
                return
            if func.attr in _SCHEDULER_FUNCS:
                self._flag_cancelled_args(node, cancelled)
        elif isinstance(func, ast.Name) and func.id in _SCHEDULER_FUNCS:
            self._flag_cancelled_args(node, cancelled)

    def _flag_cancelled_args(self, node: ast.Call, cancelled: Dict[str, int]) -> None:
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            name = _terminal_name(arg)
            if name in cancelled:
                self._report(
                    node,
                    "SIM004",
                    f"'{name}' was cancelled on line {cancelled[name]}; passing it back "
                    "to the scheduler corrupts cancelled-entry accounting — schedule a "
                    "fresh Event instead",
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        # rebinding a name clears its cancelled status (fresh object)
        if self._cancelled_stack:
            cancelled = self._cancelled_stack[-1]
            for target in node.targets:
                name = _terminal_name(target)
                if name in cancelled:
                    del cancelled[name]
        for target in node.targets:
            self._record_fault_prob_const(target, node.value)
            self._check_unbounded_queue(target, node.value, node)
            self._track_lambda_binding(target, node.value, node)
        self.generic_visit(node)

    def _track_lambda_binding(self, target: ast.AST, value: ast.AST, node: ast.AST) -> None:
        """Track ``name = lambda ...`` bindings for SIM011 (rebind clears)."""
        if not isinstance(target, ast.Name):
            return
        frame = self._unpicklable_callables[-1]
        if isinstance(value, ast.Lambda):
            frame[target.id] = getattr(node, "lineno", 1)
        else:
            frame.pop(target.id, None)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_fault_prob_const(node.target, node.value)
            self._check_unbounded_queue(node.target, node.value, node)
            self._track_lambda_binding(node.target, node.value, node)
        self.generic_visit(node)

    # -- SIM010 (unbounded platform queues) --------------------------------
    def _check_unbounded_queue(self, target: ast.AST, value: ast.AST, node: ast.AST) -> None:
        """Flag ``queue = deque()`` / ``backlog = []`` in serverless|iaas."""
        if not self._queue_bounds_apply:
            return
        name = _terminal_name(target)
        if name is None or not _QUEUE_NAME_RE.match(name):
            return
        if self._is_unbounded_queue_value(value):
            self._report(
                node,
                "SIM010",
                f"'{name}' binds an unbounded queue; platform backlogs must be "
                "depth-bounded (deque(maxlen=...), or an explicit bound enforced "
                "at enqueue with a '# simlint: ignore[SIM010]' justification) so "
                "open-loop overload cannot grow state without limit",
            )

    def _is_unbounded_queue_value(self, value: ast.AST) -> bool:
        if isinstance(value, (ast.List, ast.ListComp)):
            return True
        if not isinstance(value, ast.Call):
            return False
        callee = _terminal_name(value.func)
        if callee == "list":
            return True
        if callee == "deque":
            return not self._deque_is_bounded(value)
        if callee == "field":
            for kw in value.keywords:
                if kw.arg == "default_factory":
                    factory = kw.value
                    if _terminal_name(factory) in ("deque", "list"):
                        return True
                    if isinstance(factory, ast.Lambda):
                        return self._is_unbounded_queue_value(factory.body)
        return False

    @staticmethod
    def _deque_is_bounded(call: ast.Call) -> bool:
        if len(call.args) >= 2:  # deque(iterable, maxlen)
            return True
        for kw in call.keywords:
            if kw.arg == "maxlen":
                return not (isinstance(kw.value, ast.Constant) and kw.value.value is None)
        return False

    # -- SIM009 (fault probabilities as module constants) ------------------
    def _record_fault_prob_const(self, target: ast.AST, value: ast.AST) -> None:
        """Remember ``CRASH_PROB = 0.01``-style module-level bindings.

        Class scope is exempt: (Ann)Assigns there are dataclass fields,
        and a ``FaultPlan`` field is exactly where the number belongs.
        """
        if self._function_depth > 0 or self._class_depth > 0:
            return
        if not (
            isinstance(target, ast.Name)
            and _FAULT_PROB_NAME_RE.match(target.id)
            and isinstance(value, ast.Constant)
            and isinstance(value.value, (int, float))
            and not isinstance(value.value, bool)
        ):
            return
        self._fault_prob_consts[target.id] = target.lineno

    def _check_fault_prob_use(self, operand: ast.AST, node: ast.AST) -> bool:
        if not (isinstance(operand, ast.Name) and operand.id in self._fault_prob_consts):
            return False
        self._report(
            node,
            "SIM009",
            f"'{operand.id}' (module constant, line "
            f"{self._fault_prob_consts[operand.id]}) gates control flow; fault "
            "probabilities must live on a FaultPlan and be drawn via a named "
            "RngRegistry stream (FaultInjector) so runs stay seed-reproducible "
            "and sweepable to zero",
        )
        return True

    def visit_If(self, node: ast.If) -> None:
        self._check_fault_prob_use(node.test, node)
        self.generic_visit(node)

    # -- SIM003 (time equality) / SIM009 (fault-prob comparisons) ----------
    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for operand in operands:
            if self._check_fault_prob_use(operand, node):
                break
        for op, (lhs, rhs) in zip(node.ops, zip(operands, operands[1:])):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for side, other in ((lhs, rhs), (rhs, lhs)):
                name = _terminal_name(side)
                if name is None or not _TIME_NAME_RE.match(name):
                    continue
                # `x == None` is a different bug (ruff E711), and equality
                # against a string/bool is not a float-time comparison
                if isinstance(other, ast.Constant) and not isinstance(other.value, (int, float)):
                    continue
                op_text = "==" if isinstance(op, ast.Eq) else "!="
                self._report(
                    node,
                    "SIM003",
                    f"'{name}' {op_text} ... compares simulated time exactly; "
                    "accumulated float timestamps are not exactly representable — "
                    "use <=, >=, or math.isclose with an explicit tolerance",
                )
                break
        self.generic_visit(node)

    # -- SIM005 / SIM008 (function definitions) ----------------------------
    def _check_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for default in list(args.defaults) + [d for d in args.kw_defaults if d is not None]:
            if isinstance(default, _MUTABLE_LITERALS) or (
                isinstance(default, ast.Call)
                and _terminal_name(default.func) in _MUTABLE_FACTORIES
            ):
                self._report(
                    node,
                    "SIM005",
                    f"function '{node.name}' has a mutable default argument; the object "
                    "is shared across calls and simulation runs — default to None and "
                    "construct inside the body",
                )
                break
        if (
            self._annotations_apply
            and self._function_depth == 0
            and node.returns is None
            and (not node.name.startswith("_") or node.name == "__init__")
        ):
            self._report(
                node,
                "SIM008",
                f"public function '{node.name}' lacks a return annotation; kernel APIs "
                "must state their contract (use '-> None' for procedures)",
            )
        if self._retry_rules_apply:
            self._check_uncapped_recursion(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self._enter_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self._enter_function(node)

    def _enter_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if self._function_depth > 0:
            # a def inside a function is a closure: remember it for SIM011
            self._unpicklable_callables[-1][node.name] = node.lineno
        self._cancelled_stack.append({})
        self._unpicklable_callables.append({})
        self._function_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._function_depth -= 1
            self._unpicklable_callables.pop()
            self._cancelled_stack.pop()

    # -- SIM017 (unbounded retry loops / uncapped recursion) ---------------
    def visit_While(self, node: ast.While) -> None:
        """Flag ``while True:`` retry loops with no attempt-budget guard.

        A retry loop is a constant-true loop that ``continue``s (re-runs
        the attempt); it is budgeted if any comparison inside it names an
        attempt/retry/budget-ish operand.  Loops that never ``continue``
        (event loops, generators draining ``yield``) are not retry loops.
        """
        if (
            self._retry_rules_apply
            and isinstance(node.test, ast.Constant)
            and bool(node.test.value)
            and self._own_continues(node)
            and not self._has_guard_compare(node, _RETRY_GUARD_RE)
        ):
            self._report(
                node,
                "SIM017",
                "'while True' retry loop with no attempt budget; an unbounded "
                "client re-offers load exactly when the callee is overloaded "
                "and storms the call path — bound attempts (e.g. 'attempts < "
                "policy.max_attempts') or justify with "
                "'# simlint: ignore[SIM017]'",
            )
        self.generic_visit(node)

    @staticmethod
    def _own_continues(loop: ast.While) -> bool:
        """True iff the loop body has a ``continue`` targeting *this* loop."""
        stack: List[ast.AST] = list(loop.body)
        while stack:
            stmt = stack.pop()
            if isinstance(stmt, ast.Continue):
                return True
            if isinstance(
                stmt,
                (ast.While, ast.For, ast.AsyncFor, ast.FunctionDef, ast.AsyncFunctionDef),
            ):
                continue  # a continue in there targets the inner loop/frame
            stack.extend(ast.iter_child_nodes(stmt))
        return False

    @staticmethod
    def _has_guard_compare(root: ast.AST, pattern: "re.Pattern[str]") -> bool:
        """True if any comparison under ``root`` names a guard-ish operand."""
        for sub in ast.walk(root):
            if isinstance(sub, ast.Compare):
                for operand in [sub.left, *sub.comparators]:
                    name = _terminal_name(operand)
                    if name is not None and pattern.match(name):
                        return True
        return False

    @staticmethod
    def _is_recursive_call(func: ast.AST, name: str) -> bool:
        """``name(...)`` or ``self/cls.name(...)`` — NOT ``other.name(...)``.

        Delegation wrappers (``def invoke(self): return self.pool.invoke(...)``)
        share the method name with the callee but do not recurse.
        """
        if isinstance(func, ast.Name):
            return func.id == name
        if isinstance(func, ast.Attribute) and func.attr == name:
            return isinstance(func.value, ast.Name) and func.value.id in ("self", "cls")
        return False

    def _check_uncapped_recursion(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        """Flag direct recursion with no depth-cap comparison (SIM017)."""
        calls_self = any(
            isinstance(sub, ast.Call) and self._is_recursive_call(sub.func, node.name)
            for sub in ast.walk(node)
        )
        if calls_self and not self._has_guard_compare(node, _DEPTH_GUARD_RE):
            self._report(
                node,
                "SIM017",
                f"'{node.name}' recurses with no depth cap; recursive fan-out "
                "without a bound turns one call into an unbounded cascade — "
                "compare against a depth/level limit (or an attempt budget) "
                "before recursing, or justify with '# simlint: ignore[SIM017]'",
            )

    # -- SIM006 (bare except) ----------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._report(
                node,
                "SIM006",
                "bare 'except:' catches BaseException, including the kernel's "
                "StopSimulation/Interrupt control flow — name the exception type",
            )
        self.generic_visit(node)

    # -- SIM007 (frozen config dataclasses) --------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if self._is_config_dataclass(node) and not self._dataclass_frozen(node):
            self._report(
                node,
                "SIM007",
                f"config dataclass '{node.name}' must be @dataclass(frozen=True); "
                "configs are shared across runs and hashed by ablation sweeps",
            )
        self._class_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._class_depth -= 1

    def _is_config_dataclass(self, node: ast.ClassDef) -> bool:
        if not self._has_dataclass_decorator(node):
            return False
        return node.name.endswith("Config") or _path_matches(self.path, ("config.py",))

    def _has_dataclass_decorator(self, node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            if _terminal_name(target) == "dataclass":
                return True
        return False

    def _dataclass_frozen(self, node: ast.ClassDef) -> bool:
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call) and _terminal_name(deco.func) == "dataclass":
                for kw in deco.keywords:
                    if (
                        kw.arg == "frozen"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
        return False
