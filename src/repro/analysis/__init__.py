"""Static analysis for the simulation kernel's correctness contract.

The reproduction's headline guarantee — bit-identical per-query latencies
for a given ``(seed, scenario)`` pair — is a *whole-repo* property: one
stray wall-clock read, one unseeded RNG, or one float-equality test on
simulated time silently breaks it, and the QoS/capacity numbers derived
from the discriminant function (paper Eqs. 5-7) stop being reproducible.

``repro.analysis`` encodes those invariants as machine-checked rules over
the Python AST, organised as a whole-program framework:

* per-file syntactic rules ``SIM001`` ... ``SIM011`` (``rules``), an
  intra-procedural dataflow pass ``SIM012`` ... ``SIM015`` tracking RNG
  and set-origin values (``dataflow`` + ``rules_flow``), and stale-ignore
  auditing ``SIM016``;
* whole-program architecture rules ``ARCH001`` ... ``ARCH004`` over the
  resolved import graph: layering direction, cycle detection, kernel
  isolation from ``experiments``, and facade enforcement (``model`` +
  ``graph`` + ``rules_arch``);
* an incremental engine (``engine``) with a content-hash cache, process
  fan-out, a committed-baseline ratchet (``baseline``) and text/json/
  SARIF 2.1.0 output (``sarif``);
* ``python -m repro.analysis.lint src tests benchmarks`` lints the repo
  and exits non-zero on any non-baselined violation;
* each rule carries a fix-it message and traces back to the invariant it
  protects (see ``engine.ALL_RULES`` and DESIGN.md §7/§12);
* an intentional violation is silenced inline with
  ``# simlint: ignore[SIM00x]`` plus a one-line justification (anchored
  to the enclosing statement); ARCH findings are baseline-only.

The linter is self-hosted: it depends only on the standard library, so it
runs anywhere the repo runs (CI, the ``scripts/check.sh`` gate, editors).
"""

from __future__ import annotations

# NOTE: repro.analysis.lint is deliberately not imported here — importing
# it from the package __init__ would shadow `python -m repro.analysis.lint`
# (runpy warns when the submodule is already in sys.modules).
from repro.analysis.engine import ALL_RULES, Report, run_engine
from repro.analysis.rules import RULES, Rule, Violation
from repro.analysis.rules_arch import ARCH_RULES
from repro.analysis.rules_flow import FLOW_RULES

__all__ = [
    "ALL_RULES",
    "ARCH_RULES",
    "FLOW_RULES",
    "RULES",
    "Report",
    "Rule",
    "Violation",
    "run_engine",
]
