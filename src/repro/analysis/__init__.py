"""Static analysis for the simulation kernel's correctness contract.

The reproduction's headline guarantee — bit-identical per-query latencies
for a given ``(seed, scenario)`` pair — is a *whole-repo* property: one
stray wall-clock read, one unseeded RNG, or one float-equality test on
simulated time silently breaks it, and the QoS/capacity numbers derived
from the discriminant function (paper Eqs. 5-7) stop being reproducible.

``repro.analysis`` encodes those invariants as machine-checked lint rules
(``SIM001`` ... ``SIM008``) over the Python AST:

* ``python -m repro.analysis.lint src`` lints a tree and exits non-zero
  on any violation;
* each rule carries a fix-it message and traces back to the invariant it
  protects (see ``rules.RULES`` and DESIGN.md §7);
* an intentional violation is silenced inline with
  ``# simlint: ignore[SIM00x]`` plus a one-line justification.

The linter is self-hosted: it depends only on the standard library, so it
runs anywhere the repo runs (CI, the ``scripts/check.sh`` gate, editors).
"""

from __future__ import annotations

# NOTE: repro.analysis.lint is deliberately not imported here — importing
# it from the package __init__ would shadow `python -m repro.analysis.lint`
# (runpy warns when the submodule is already in sys.modules).
from repro.analysis.rules import RULES, Rule, Violation

__all__ = ["RULES", "Rule", "Violation"]
