"""Determinism dataflow rules SIM012-SIM015 (use-def pass).

These rules track values from their origin instead of pattern-matching
single call sites, which is what lets them catch the indirections the
per-site SIM002 check structurally cannot:

* SIM012 — an RNG *factory* is bound to a name and constructed later
  (``make = np.random.default_rng; rng = make()``).  Direct calls are
  SIM002's territory; SIM012 only fires where the factory reference
  travelled through a binding first.
* SIM013 — a registry stream (or any constructed RNG) escapes into
  module globals or class attributes.  Streams are per-run state owned
  by the runtime; module/class state outlives the run and is shared
  across services, so an escaped stream breaks both replay determinism
  and the run cache's claim that (config, scenario, seed) determines
  the result.
* SIM014 — iteration over a ``set`` (or values of a dict keyed from
  one) feeding a float accumulation in kernel packages.  Set iteration
  order is hash-seed/insertion-history dependent, and float addition is
  not associative: the same elements in a different order produce
  different bits, which the ``float.hex`` identity gates will flag as
  nondeterminism long after the real cause is forgotten.
* SIM015 — ``os.environ``/``sys.argv``/``sys.stdin`` reads inside
  ``sim/``/``core/``: host-environment state must enter through config
  dataclasses at the experiments layer, never mid-simulation.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.dataflow import ScopeTracker
from repro.analysis.rules import (
    Rule,
    Violation,
    _dotted_name,
    _path_matches,
    _path_segments,
    _terminal_name,
)

__all__ = ["FLOW_RULES", "FLOW_RULE_IDS", "FlowVisitor"]

FLOW_RULES: Tuple[Rule, ...] = (
    Rule(
        "SIM012",
        "RNG constructed through a bound factory reference outside sim/rng.py",
        "all randomness must flow through named RngRegistry streams; "
        "binding random.Random / numpy.random.default_rng to a name and "
        "calling it later creates the same unseeded-stream hazard SIM002 "
        "flags at direct call sites, one indirection away",
    ),
    Rule(
        "SIM013",
        "RNG or registry stream stored in module/class state (stream escape)",
        "streams are per-run values owned by the runtime; a stream (or "
        "RNG) parked in a module global or class attribute outlives the "
        "run and is shared across services, so replays and cached runs "
        "stop being functions of (config, scenario, seed)",
    ),
    Rule(
        "SIM014",
        "set iteration feeding float accumulation in kernel code",
        "set/frozenset iteration order depends on hashes and insertion "
        "history, and float addition is not associative — accumulate "
        "over a sorted() or list-ordered container so the Eq. 1-7 "
        "pipeline's float.hex bit-identity survives",
    ),
    Rule(
        "SIM015",
        "os.environ / sys state read inside sim/ or core/",
        "host environment must enter through config dataclasses at the "
        "experiments layer; an environ/argv/stdin read in kernel code "
        "makes simulated results depend on the invoking shell",
    ),
)

FLOW_RULE_IDS: Set[str] = {rule.id for rule in FLOW_RULES}

#: canonical names that construct a stdlib/numpy RNG (SIM012 factories)
_RNG_FACTORIES = {
    "random.Random",
    "random.SystemRandom",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.RandomState",
    "numpy.random.MT19937",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.SFC64",
}

#: the one module allowed to construct RNGs (mirrors rules._RNG_ALLOWED)
_RNG_ALLOWED = ("sim/rng.py",)

#: path segments marking kernel packages for SIM014/SIM015
_KERNEL_PACKAGES = {"core", "sim"}

#: host-state expressions banned in kernel code (SIM015)
_HOST_STATE_READS = {"os.environ", "sys.argv", "sys.stdin"}
_HOST_STATE_CALLS = {"os.getenv"}

# origin tags
_TAG_FACTORY = "rng-factory"
_TAG_RNG = "rng"
_TAG_STREAM = "rng-stream"
_TAG_SET = "set"
_TAG_DICT_FROM_SET = "dict-from-set"


class FlowVisitor(ast.NodeVisitor):
    """Single-pass use-def checker for SIM012-SIM015 over one module."""

    def __init__(self, path: str):
        self.path = path
        self.violations: List[Violation] = []
        self._aliases: Dict[str, str] = {}
        self._scopes = ScopeTracker()
        self._class_depth = 0
        self._function_depth = 0
        self._rng_exempt = _path_matches(path, _RNG_ALLOWED)
        self._kernel = bool(_KERNEL_PACKAGES & _path_segments(path))

    # -- helpers -----------------------------------------------------------
    def _report(self, node: ast.AST, rule_id: str, message: str) -> None:
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule_id=rule_id,
                message=message,
            )
        )

    def _canonical(self, dotted: Optional[str]) -> Optional[str]:
        if dotted is None:
            return None
        root, _, rest = dotted.partition(".")
        base = self._aliases.get(root)
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base

    # -- import tracking ---------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._aliases[alias.asname or alias.name.partition(".")[0]] = (
                alias.name if alias.asname else alias.name.partition(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                if alias.name != "*":
                    self._aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._scopes.declare_global(list(node.names))

    # -- origin classification ---------------------------------------------
    def _value_tag(self, value: ast.AST) -> Optional[str]:
        """Origin tag of an expression, or None for plain data."""
        if isinstance(value, ast.Name):
            return self._scopes.lookup(value.id)
        if isinstance(value, (ast.Attribute,)):
            canonical = self._canonical(_dotted_name(value))
            if canonical in _RNG_FACTORIES:
                return _TAG_FACTORY
            return None
        if isinstance(value, (ast.Set, ast.SetComp)):
            return _TAG_SET
        if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
            left = self._value_tag(value.left)
            right = self._value_tag(value.right)
            if _TAG_SET in (left, right):
                return _TAG_SET
            return None
        if isinstance(value, ast.Call):
            return self._call_tag(value)
        return None

    def _call_tag(self, call: ast.Call) -> Optional[str]:
        canonical = self._canonical(_dotted_name(call.func))
        if canonical in _RNG_FACTORIES:
            return _TAG_RNG
        if isinstance(call.func, ast.Name):
            bound = self._scopes.lookup(call.func.id)
            if bound == _TAG_FACTORY:
                return _TAG_RNG
        if isinstance(call.func, ast.Attribute) and call.func.attr == "stream":
            return _TAG_STREAM
        callee = _terminal_name(call.func)
        if callee in ("set", "frozenset"):
            return _TAG_SET
        if callee == "dict" and call.args and self._value_tag(call.args[0]) == _TAG_SET:
            return _TAG_DICT_FROM_SET
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr == "fromkeys"
            and _terminal_name(call.func.value) == "dict"
            and call.args
            and self._value_tag(call.args[0]) == _TAG_SET
        ):
            return _TAG_DICT_FROM_SET
        return None

    def _is_rng_valued(self, tag: Optional[str]) -> bool:
        return tag in (_TAG_RNG, _TAG_STREAM)

    # -- SIM012 (factory-indirection construction) -------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if not self._rng_exempt and isinstance(node.func, ast.Name):
            bound = self._scopes.lookup(node.func.id)
            if bound == _TAG_FACTORY:
                self._report(
                    node,
                    "SIM012",
                    f"'{node.func.id}' holds an RNG factory; calling it constructs "
                    "an RNG outside repro.sim.rng — draw from a named registry "
                    "stream (registry.stream(<name>)) instead",
                )
        if self._kernel:
            canonical = self._canonical(_dotted_name(node.func))
            if canonical in _HOST_STATE_CALLS:
                self._report(
                    node,
                    "SIM015",
                    f"call to {canonical}() reads the host environment in kernel "
                    "code; route host configuration through a frozen config "
                    "dataclass built at the experiments layer",
                )
            self._check_set_reduction(node)
        self.generic_visit(node)

    def _check_set_reduction(self, node: ast.Call) -> None:
        """``sum(<set>)`` / ``math.fsum(<set>)`` in kernel code (SIM014)."""
        canonical = self._canonical(_dotted_name(node.func))
        if canonical not in ("sum", "math.fsum") or not node.args:
            return
        if self._iterates_unordered(node.args[0]):
            self._report(
                node,
                "SIM014",
                f"{canonical}() over a set accumulates floats in hash order; "
                "wrap the iterable in sorted(...) so the reduction order is "
                "deterministic",
            )

    def _iterates_unordered(self, iterable: ast.AST) -> bool:
        """Does ``iterable`` walk a set (or a dict keyed from one)?"""
        tag = self._value_tag(iterable)
        if tag == _TAG_SET:
            return True
        if isinstance(iterable, ast.Call) and isinstance(iterable.func, ast.Attribute):
            if iterable.func.attr in ("values", "keys", "items"):
                receiver_tag = self._value_tag(iterable.func.value)
                return receiver_tag == _TAG_DICT_FROM_SET
        return False

    # -- SIM015 (host-state reads) -----------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        if self._kernel:
            canonical = self._canonical(_dotted_name(node))
            if canonical in _HOST_STATE_READS:
                self._report(
                    node,
                    "SIM015",
                    f"{canonical} read in kernel code; host environment must "
                    "enter through config dataclasses at the experiments layer",
                )
                return  # do not double-report nested chains
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self._kernel and isinstance(node.ctx, ast.Load):
            canonical = self._canonical(node.id)
            if canonical in _HOST_STATE_READS:
                self._report(
                    node,
                    "SIM015",
                    f"{canonical} (imported as '{node.id}') read in kernel code; "
                    "host environment must enter through config dataclasses at "
                    "the experiments layer",
                )

    # -- SIM013 (stream escape) + binding upkeep ---------------------------
    def _handle_binding(self, target: ast.AST, value: ast.AST, node: ast.AST) -> None:
        tag = self._value_tag(value)
        if isinstance(target, ast.Name):
            escapes_module_state = (
                self._function_depth == 0 or self._scopes.is_global(target.id)
            )
            if self._is_rng_valued(tag) and escapes_module_state and not self._rng_exempt:
                where = (
                    "class attribute"
                    if self._class_depth > 0 and self._function_depth == 0
                    else "module global"
                )
                kind = "registry stream" if tag == _TAG_STREAM else "RNG"
                self._report(
                    node,
                    "SIM013",
                    f"{kind} stored in {where} '{target.id}'; streams are "
                    "per-run state owned by the runtime — module/class state "
                    "outlives the run and is shared across services, breaking "
                    "replay and run-cache soundness",
                )
            self._scopes.bind(target.id, tag)
        elif isinstance(target, ast.Attribute):
            base = _terminal_name(target.value)
            if (
                self._is_rng_valued(tag)
                and not self._rng_exempt
                and isinstance(target.value, ast.Name)
                and target.value.id == "cls"
            ):
                kind = "registry stream" if tag == _TAG_STREAM else "RNG"
                self._report(
                    node,
                    "SIM013",
                    f"{kind} stored on class attribute 'cls.{target.attr}' "
                    f"(via {base}); class state is shared across services and "
                    "runs — keep streams on the per-run instance",
                )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_binding(element, value, node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._handle_binding(target, node.value, node)
        # dispatch on the value itself (not its children) so a Call RHS
        # still reaches visit_Call for the SIM012/SIM015 checks
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._handle_binding(node.target, node.value, node)
            self.visit(node.value)

    # -- SIM014 (set-iteration accumulation) -------------------------------
    def visit_For(self, node: ast.For) -> None:
        if self._kernel and self._iterates_unordered(node.iter):
            accumulation = self._find_accumulation(node.body)
            if accumulation is not None:
                self._report(
                    node,
                    "SIM014",
                    "iterating a set while accumulating on line "
                    f"{accumulation.lineno}; set order depends on hashes and "
                    "float addition is not associative — iterate sorted(...) "
                    "so the result is bit-stable",
                )
        self.generic_visit(node)

    @staticmethod
    def _find_accumulation(body: List[ast.stmt]) -> Optional[ast.AST]:
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.AugAssign) and isinstance(
                    sub.op, (ast.Add, ast.Sub, ast.Mult)
                ):
                    return sub
        return None

    # -- scope bookkeeping -------------------------------------------------
    def _enter_scope(self, node: ast.AST, is_function: bool) -> None:
        self._scopes.push()
        if is_function:
            self._function_depth += 1
        else:
            self._class_depth += 1
        try:
            self.generic_visit(node)
        finally:
            if is_function:
                self._function_depth -= 1
            else:
                self._class_depth -= 1
            self._scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope(node, is_function=True)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope(node, is_function=True)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._enter_scope(node, is_function=True)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter_scope(node, is_function=False)
