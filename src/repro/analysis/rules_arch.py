"""ARCH rules: package-layering invariants over the whole-program model.

The enforced direction is the *measured* reality of the codebase, not
the aspirational sketch in the issue tracker: ``repro.core`` is the
composition root (the Amoeba runtime wires platforms, workloads, faults
and telemetry together), so it sits near the top, directly under
``experiments``.  The full linearization, bottom (imported by everyone)
to top (imports everyone):

    sim, analysis < cluster, faults, overload < workloads < telemetry
        < serverless, iaas < core < graph < experiments

Imports must flow strictly downward; two packages on the same layer may
not import each other (that is how the ``workloads <-> core`` and
``workloads <-> serverless`` cycles crept in before this pass existed).
DESIGN.md §12 maps each rule to the paper invariant it protects.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.graph import cycles, topological_order
from repro.analysis.model import ImportRecord, ModuleRecord
from repro.analysis.rules import Rule, Violation

__all__ = ["ARCH_RULES", "ARCH_RULE_IDS", "LAYERS", "check_architecture", "prove_acyclic"]

ARCH_RULES: Tuple[Rule, ...] = (
    Rule(
        "ARCH001",
        "upward or lateral package import (layering violation)",
        "the Eq. 1-5 kernel stays pure because dependencies flow one way: "
        "sim < {cluster, faults, overload} < workloads < telemetry < "
        "{serverless, iaas} < core < graph < experiments; an upward or "
        "same-layer import lets a lower layer observe composition-root "
        "state and breaks the bit-identity argument for sharded runs",
    ),
    Rule(
        "ARCH002",
        "package-level import cycle",
        "a cycle makes import order (and therefore module-level "
        "initialization order) depend on the entry point; the run cache "
        "salts over source content assuming a well-founded module DAG",
    ),
    Rule(
        "ARCH003",
        "kernel package imports repro.experiments",
        "experiments is the driver layer (CLIs, sweeps, caching, figures); "
        "kernel code importing it would let host-facing concerns (argv, "
        "wall-clock timing, worker pools) leak into seed-reproducible "
        "simulation state — this rule checks *every* import, including "
        "function-local ones",
    ),
    Rule(
        "ARCH004",
        "deep import bypasses a package's __init__ public API",
        "a package's __all__ is its supported surface; reaching for "
        "repro.pkg.module internals couples callers to file layout and "
        "skips the facade where deprecations and laziness live — import "
        "the name from repro.pkg instead (names absent from __all__ stay "
        "legal to deep-import)",
    ),
)

ARCH_RULE_IDS: Set[str] = {rule.id for rule in ARCH_RULES}

#: the analyzed root package
ROOT = "repro"

#: enforced linearization: imports must go to a strictly lower layer.
#: ``analysis`` is an island (imports nothing, imported by nothing at
#: runtime); it sits at the bottom with ``sim``.
LAYERS: Dict[str, int] = {
    "sim": 0,
    "analysis": 0,
    "cluster": 1,
    "faults": 1,
    "overload": 1,
    "workloads": 2,
    "telemetry": 3,
    "serverless": 4,
    "iaas": 4,
    "core": 5,
    "graph": 6,
    "experiments": 7,
}


def _package_of(module: Optional[str]) -> Optional[str]:
    """The root-child package a dotted repro module belongs to."""
    if module is None:
        return None
    parts = module.split(".")
    if parts[0] != ROOT or len(parts) < 2:
        return None
    return parts[1]


def _target_package(record: ImportRecord) -> Optional[str]:
    parts = record.module.split(".")
    if parts[0] != ROOT or len(parts) < 2:
        return None
    return parts[1]


def package_graph(modules: Sequence[ModuleRecord]) -> Dict[str, Set[str]]:
    """Module-scope package digraph ``{package: {imported package}}``."""
    graph: Dict[str, Set[str]] = {}
    for record in modules:
        pkg = _package_of(record.module)
        if pkg is None:
            continue
        graph.setdefault(pkg, set())
        for imp in record.imports:
            if not imp.toplevel:
                continue
            target = _target_package(imp)
            if target is not None and target != pkg:
                graph[pkg].add(target)
    return graph


def prove_acyclic(modules: Sequence[ModuleRecord]) -> Optional[List[str]]:
    """A topological order of the package graph, or None when it cycles."""
    return topological_order(package_graph(modules))


def check_architecture(modules: Sequence[ModuleRecord]) -> List[Violation]:
    """Run ARCH001-ARCH004 over the whole-program module table."""
    violations: List[Violation] = []
    facades: Dict[str, Set[str]] = {}
    for record in modules:
        if record.is_init and record.module is not None:
            parts = record.module.split(".")
            if len(parts) == 2 and parts[0] == ROOT and record.exports is not None:
                facades[parts[1]] = set(record.exports)

    # one representative site per package edge, for the cycle report
    edge_sites: Dict[Tuple[str, str], Tuple[str, int, int]] = {}

    for record in sorted(modules, key=lambda r: r.path):
        pkg = _package_of(record.module)
        for imp in record.imports:
            target = _target_package(imp)
            # ARCH003 guards every import, from any repro module
            if (
                pkg is not None
                and pkg != "experiments"
                and target == "experiments"
            ):
                violations.append(
                    Violation(
                        path=record.path,
                        line=imp.line,
                        col=imp.col,
                        rule_id="ARCH003",
                        message=(
                            f"kernel package '{pkg}' imports {imp.module}; the "
                            "experiments driver layer must never be visible from "
                            "kernel code (host timing/argv/pools would leak into "
                            "seed-reproducible state)"
                        ),
                    )
                )
            if not imp.toplevel or pkg is None or target is None or target == pkg:
                continue
            edge_sites.setdefault((pkg, target), (record.path, imp.line, imp.col))
            # ARCH001: layering direction
            src_layer = LAYERS.get(pkg)
            dst_layer = LAYERS.get(target)
            if src_layer is None or dst_layer is None:
                unknown = pkg if src_layer is None else target
                violations.append(
                    Violation(
                        path=record.path,
                        line=imp.line,
                        col=imp.col,
                        rule_id="ARCH001",
                        message=(
                            f"package '{unknown}' is not in the layer table; "
                            "register new packages in repro.analysis.rules_arch."
                            "LAYERS (and DESIGN.md §12) before importing across "
                            "package boundaries"
                        ),
                    )
                )
            elif dst_layer >= src_layer:
                direction = "upward" if dst_layer > src_layer else "lateral (same-layer)"
                violations.append(
                    Violation(
                        path=record.path,
                        line=imp.line,
                        col=imp.col,
                        rule_id="ARCH001",
                        message=(
                            f"{direction} import: '{pkg}' (layer {src_layer}) imports "
                            f"'{target}' (layer {dst_layer}); dependencies must flow "
                            "strictly downward — move the shared code below both "
                            "packages or invert the dependency with an injected hook"
                        ),
                    )
                )
            # ARCH004: deep import bypassing the facade
            if target != ROOT and len(imp.module.split(".")) >= 3 and imp.names:
                facade = facades.get(target)
                if facade:
                    bypassed = sorted(set(imp.names) & facade)
                    if bypassed:
                        names = ", ".join(bypassed)
                        violations.append(
                            Violation(
                                path=record.path,
                                line=imp.line,
                                col=imp.col,
                                rule_id="ARCH004",
                                message=(
                                    f"deep import of {names} from {imp.module}; "
                                    f"these names are public API of repro.{target} — "
                                    f"import them from the facade "
                                    f"(from repro.{target} import {names})"
                                ),
                            )
                        )

    # ARCH002: one violation per cycle, anchored at the first edge site
    graph = package_graph(modules)
    for component in cycles(graph):
        members = set(component)
        sites = sorted(
            site
            for edge, site in edge_sites.items()
            if edge[0] in members and edge[1] in members
        )
        chain = " -> ".join(list(component) + [component[0]])
        path, line, col = sites[0] if sites else ("<unknown>", 1, 0)
        violations.append(
            Violation(
                path=path,
                line=line,
                col=col,
                rule_id="ARCH002",
                message=(
                    f"package import cycle: {chain}; module initialization "
                    "order becomes entry-point-dependent — break the cycle by "
                    "moving shared code downward or injecting the upward call"
                ),
            )
        )

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return violations
