"""Committed-baseline mechanism: land rules warn-first, then ratchet.

A baseline file is a committed JSON list of *accepted* findings, keyed
by ``(path, rule)`` with a count and a mandatory justification.  The
engine demotes up to ``count`` matching findings from error to
"baselined" (reported, excluded from the exit code), which lets a new
rule land green and be ratcheted file-by-file.  The ratchet half: when a
baselined file improves, the now-too-generous entry is reported as stale
so the allowance shrinks instead of masking regressions.

Format (``simlint-baseline.json``)::

    {
      "version": 1,
      "entries": [
        {"path": "src/repro/x.py", "rule": "ARCH004", "count": 2,
         "justification": "migration tracked in ISSUE 9"}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.rules import Violation

__all__ = ["BaselineEntry", "BaselineError", "apply_baseline", "load_baseline", "write_baseline"]

_VERSION = 1


class BaselineError(Exception):
    """Raised for a malformed baseline file (reported as a hard error)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted ``(path, rule)`` allowance."""

    path: str
    rule: str
    count: int
    justification: str


def _normalize(path: str) -> str:
    return path.replace("\\", "/")


def load_baseline(path: Path) -> Dict[Tuple[str, str], BaselineEntry]:
    """Parse a baseline file into a ``{(path, rule): entry}`` map."""
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"{path}: cannot read baseline: {exc}") from exc
    if not isinstance(data, dict) or data.get("version") != _VERSION:
        raise BaselineError(f"{path}: expected a baseline object with version={_VERSION}")
    entries: Dict[Tuple[str, str], BaselineEntry] = {}
    for raw in data.get("entries", []):
        try:
            entry = BaselineEntry(
                path=_normalize(str(raw["path"])),
                rule=str(raw["rule"]),
                count=int(raw["count"]),
                justification=str(raw["justification"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(
                f"{path}: malformed entry {raw!r}: every entry needs "
                "path/rule/count/justification"
            ) from exc
        if entry.count < 1 or not entry.justification.strip():
            raise BaselineError(
                f"{path}: entry for {entry.path}:{entry.rule} needs count >= 1 "
                "and a non-empty justification"
            )
        key = (entry.path, entry.rule)
        if key in entries:
            raise BaselineError(f"{path}: duplicate entry for {entry.path}:{entry.rule}")
        entries[key] = entry
    return entries


def apply_baseline(
    violations: Sequence[Violation],
    baseline: Dict[Tuple[str, str], BaselineEntry],
) -> Tuple[List[Violation], List[Violation], List[str]]:
    """Split findings into (errors, baselined) and report stale entries.

    Findings are matched in report order: the first ``count`` findings of
    a ``(path, rule)`` pair are demoted, the rest stay errors (the
    ratchet never widens).  ``stale`` describes entries whose allowance
    exceeded reality — shrink or delete them.
    """
    remaining = {key: entry.count for key, entry in baseline.items()}
    errors: List[Violation] = []
    baselined: List[Violation] = []
    for violation in violations:
        key = (_normalize(violation.path), violation.rule_id)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            baselined.append(violation)
        else:
            errors.append(violation)
    stale = [
        f"baseline entry {key[0]}:{key[1]} allows {baseline[key].count} finding(s) "
        f"but only {baseline[key].count - left} occurred — shrink or delete it"
        for key, left in sorted(remaining.items())
        if left > 0
    ]
    return errors, baselined, stale


def write_baseline(violations: Sequence[Violation], path: Path, justification: str) -> int:
    """Write the current findings as a fresh baseline; returns entry count."""
    counts: Dict[Tuple[str, str], int] = {}
    for violation in violations:
        key = (_normalize(violation.path), violation.rule_id)
        counts[key] = counts.get(key, 0) + 1
    entries = [
        {
            "path": file_path,
            "rule": rule,
            "count": count,
            "justification": justification,
        }
        for (file_path, rule), count in sorted(counts.items())
    ]
    payload = {"version": _VERSION, "entries": entries}
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8")
    return len(entries)
