"""Intra-procedural use-def machinery for the flow rules.

A deliberately small dataflow core: lexical scope frames mapping names
to *origin tags* (what kind of value the name was last bound to, e.g.
``rng-factory``, ``rng``, ``set``), with ``global`` declarations tracked
per function.  :mod:`repro.analysis.rules_flow` assigns tags when it
sees constructions and consumes them when a tagged value flows somewhere
it must not (an RNG escaping to module state, a set feeding a float
accumulation).  Flow-insensitive beyond straight-line rebinding — no
branches are joined — which keeps it fast, deterministic, and honest:
every tag corresponds to a literal binding the reviewer can see.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

__all__ = ["ScopeTracker"]


class ScopeTracker:
    """Name -> origin-tag bindings across a lexical scope stack."""

    def __init__(self) -> None:
        #: innermost frame last; frame 0 is module scope
        self._frames: List[Dict[str, str]] = [{}]
        #: per-function sets of names declared ``global``
        self._globals: List[Set[str]] = [set()]

    # -- scope lifecycle ---------------------------------------------------
    def push(self) -> None:
        """Enter a function/class scope."""
        self._frames.append({})
        self._globals.append(set())

    def pop(self) -> None:
        """Leave the innermost scope."""
        self._frames.pop()
        self._globals.pop()

    @property
    def depth(self) -> int:
        """Nesting depth; 0 at module scope."""
        return len(self._frames) - 1

    # -- bindings ----------------------------------------------------------
    def declare_global(self, names: List[str]) -> None:
        self._globals[-1].update(names)

    def is_global(self, name: str) -> bool:
        """Whether ``name`` is declared ``global`` in the current scope."""
        return name in self._globals[-1]

    def bind(self, name: str, tag: Optional[str]) -> None:
        """Bind ``name`` to ``tag`` (None clears: a rebind to plain data)."""
        frame = self._frames[0] if self.is_global(name) else self._frames[-1]
        if tag is None:
            frame.pop(name, None)
        else:
            frame[name] = tag

    def lookup(self, name: str) -> Optional[str]:
        """Tag of ``name``, searching enclosing scopes innermost-first."""
        if self.is_global(name):
            return self._frames[0].get(name)
        for frame in reversed(self._frames):
            if name in frame:
                return frame[name]
        return None

    def tag_of(self, node: ast.AST) -> Optional[str]:
        """Tag of an expression when it is a tracked bare name."""
        if isinstance(node, ast.Name):
            return self.lookup(node.id)
        return None
