"""Parallel experiment executor: seeded run fan-out with a run cache.

Every sweep in this repo (chaos fault scales, overload factors, the
NoM/NoP ablations, the figure regenerators) is a batch of *independent*
fully seeded runs: each run builds its own
:class:`~repro.sim.environment.Environment` and
:class:`~repro.sim.rng.RngRegistry` from the request's seed, and no
mutable state crosses a run boundary.  That makes the batch
embarrassingly parallel — and bit-deterministic under parallelism, as
long as results are merged in submission order rather than completion
order.  :func:`run_many` is that merge.

Design contract (DESIGN.md §10):

* **Task specs are data.**  A :class:`RunRequest` carries the scenario,
  system, variant, guard flag, seed, and config overrides — all
  picklable, all fingerprintable.  The one callable that crosses the
  process boundary is the module-level :func:`execute_request`
  (lint rule SIM011 keeps it that way: lambdas/closures would break
  pickling and silently serialize the sweep).
* **Deterministic merge.**  Results are returned in submission order,
  keyed by content fingerprint; worker count and completion order
  cannot change the output.  ``workers=1`` bypasses the pool entirely —
  the debugging fallback runs everything inline in this process.
* **Content-addressed memoization.**  With a
  :class:`~repro.experiments.cache.RunCache` attached, each unique
  request is looked up by fingerprint before anything is executed, and
  every freshly computed result is stored — so shared baselines (the
  pure-IaaS / pure-serverless runs behind Figs. 10-16) are computed
  once per session and interrupted sweeps resume where they stopped.
* **Duplicate requests collapse.**  Two requests with the same
  fingerprint execute once and share the result object.

Knobs: ``workers`` argument > :func:`configure` default >
``REPRO_WORKERS`` environment > serial; ``cache`` argument (``False``
forces off) > :func:`configure` default > ``REPRO_CACHE`` environment >
disabled.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core import AmoebaConfig, InvariantViolation
from repro.experiments.cache import RunCache, fingerprint
from repro.experiments.graphrun import run_graph
from repro.experiments.runner import (
    RunResult,
    run_amoeba,
    run_nameko,
    run_openwhisk,
)
from repro.experiments.scenarios import Scenario
from repro.graph import GraphScenario
from repro.serverless import ServerlessConfig

__all__ = [
    "WORKERS_ENV_VAR",
    "RunRequest",
    "configure",
    "execute_request",
    "resolve_cache",
    "resolve_workers",
    "run_many",
    "run_systems",
]

#: environment knob for the default worker count
WORKERS_ENV_VAR = "REPRO_WORKERS"

_SYSTEMS = ("amoeba", "nameko", "openwhisk", "graph")


@dataclass(frozen=True)
class RunRequest:
    """One independent, fully seeded run: pure data, picklable.

    ``system`` selects the runner (``amoeba`` / ``nameko`` /
    ``openwhisk`` / ``graph``); ``variant`` only applies to Amoeba runs,
    ``config`` to Amoeba and graph runs, ``serverless_config`` to
    OpenWhisk runs.  A ``graph`` request carries a
    :class:`~repro.graph.GraphScenario`; every other system carries a
    flat :class:`~repro.experiments.scenarios.Scenario`.  ``seed``
    overrides the scenario's seed, exactly like the runner arguments.
    """

    system: str
    scenario: Union[Scenario, GraphScenario]
    variant: str = "full"
    guard: bool = True
    seed: Optional[int] = None
    config: Optional[AmoebaConfig] = None
    serverless_config: Optional[ServerlessConfig] = None

    def __post_init__(self) -> None:
        if self.system not in _SYSTEMS:
            raise ValueError(f"unknown system {self.system!r}; expected one of {_SYSTEMS}")
        if self.system != "amoeba" and self.variant != "full":
            raise ValueError(f"variant only applies to amoeba runs, not {self.system!r}")
        if self.system not in ("amoeba", "graph") and self.config is not None:
            raise ValueError(f"config only applies to amoeba/graph runs, not {self.system!r}")
        if self.system != "openwhisk" and self.serverless_config is not None:
            raise ValueError(f"serverless_config only applies to openwhisk runs, not {self.system!r}")
        if self.system == "graph" and not isinstance(self.scenario, GraphScenario):
            raise TypeError(f"graph runs need a GraphScenario, got {type(self.scenario).__name__}")
        if self.system != "graph" and isinstance(self.scenario, GraphScenario):
            raise TypeError(f"{self.system!r} runs need a flat Scenario, not a GraphScenario")


def execute_request(request: RunRequest) -> RunResult:
    """Execute one request (module-level so it pickles to worker processes)."""
    if request.system == "amoeba":
        assert isinstance(request.scenario, Scenario)
        return run_amoeba(
            request.scenario,
            variant=request.variant,
            config=request.config,
            guard=request.guard,
            seed=request.seed,
        )
    if request.system == "graph":
        assert isinstance(request.scenario, GraphScenario)
        return run_graph(
            request.scenario, seed=request.seed, config=request.config, guard=request.guard
        )
    assert isinstance(request.scenario, Scenario)
    if request.system == "nameko":
        return run_nameko(request.scenario, seed=request.seed)
    return run_openwhisk(request.scenario, seed=request.seed, config=request.serverless_config)


# -- process-wide defaults (set by the CLI / bench harness) -----------------

_DEFAULT_WORKERS: Optional[int] = None
_DEFAULT_CACHE: Optional[RunCache] = None
_UNSET = object()


def configure(workers: object = _UNSET, cache: object = _UNSET) -> None:
    """Set process-wide executor defaults (CLI / bench harness hook).

    ``configure(workers=None, cache=None)`` resets to the environment-
    driven defaults.  Arguments not passed are left unchanged.
    """
    global _DEFAULT_WORKERS, _DEFAULT_CACHE
    if workers is not _UNSET:
        _DEFAULT_WORKERS = None if workers is None else int(workers)  # type: ignore[arg-type]
    if cache is not _UNSET:
        if cache is not None and not isinstance(cache, RunCache):
            raise TypeError(f"cache must be a RunCache or None, got {type(cache).__name__}")
        _DEFAULT_CACHE = cache


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: argument > configure() > env > 1 (serial)."""
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers is None:
        raw = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError as exc:
                raise ValueError(f"{WORKERS_ENV_VAR}={raw!r} is not an integer") from exc
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_cache(cache: Union[RunCache, None, bool] = None) -> Optional[RunCache]:
    """Effective cache: argument (``False`` = off) > configure() > env > off."""
    if cache is False:
        return None
    if isinstance(cache, RunCache):
        return cache
    if _DEFAULT_CACHE is not None:
        return _DEFAULT_CACHE
    return RunCache.from_env()


def run_many(
    requests: Iterable[RunRequest],
    workers: Optional[int] = None,
    cache: Union[RunCache, None, bool] = None,
) -> List[RunResult]:
    """Run a batch of requests; results in submission order, bit-deterministic.

    Duplicate requests (same content fingerprint) execute once; cached
    results are served without executing anything.  With ``workers > 1``
    the misses fan out over a process pool, and results are still merged
    in submission order — ``workers=4`` output is ``float.hex``-identical
    to ``workers=1`` output.
    """
    requests = list(requests)
    workers = resolve_workers(workers)
    live_cache = resolve_cache(cache)
    salt = live_cache.salt if live_cache is not None else ""
    keys = [fingerprint(request, salt=salt) for request in requests]

    unique: Dict[str, RunRequest] = {}
    for key, request in zip(keys, requests):
        unique.setdefault(key, request)

    results: Dict[str, RunResult] = {}
    if live_cache is not None:
        for key, request in unique.items():
            hit = live_cache.get(request, key=key)
            if hit is not None:
                results[key] = hit

    misses = [(key, request) for key, request in unique.items() if key not in results]
    if workers <= 1 or len(misses) <= 1:
        for key, request in misses:
            try:
                results[key] = execute_request(request)
            except InvariantViolation as exc:
                raise _attributed(exc, key, request) from exc
            if live_cache is not None:
                live_cache.put(request, results[key], key=key)
    else:
        _run_parallel(misses, workers, results, live_cache)
    return [results[key] for key in keys]


def _scenario_label(request: RunRequest) -> str:
    """Human-readable scenario identity for error messages."""
    label = getattr(request.scenario, "name", None)
    if label is None:
        label = getattr(getattr(request.scenario, "foreground", None), "name", "?")
    return str(label)


def _attributed(exc: InvariantViolation, key: str, request: RunRequest) -> InvariantViolation:
    """Rebuild a violation with the failing run's identity attached.

    A bare worker traceback says which invariant broke but not *which
    run of the sweep* broke it; prefixing the system/scenario/seed and
    the content fingerprint pins the exact request, so
    ``execute_request`` on the same request replays the failure
    bit-for-bit outside the pool.
    """
    note = (
        f"invariant {exc.invariant or '?'} failed in run "
        f"{request.system}/{_scenario_label(request)} "
        f"(seed {request.seed}, fingerprint {key[:12]}): {exc.args[0]}"
    )
    return InvariantViolation(note, invariant=exc.invariant, service=exc.service)


#: pool rebuilds tolerated before the remaining misses run inline — a
#: worker that keeps dying (OOM-killed, segfault in a native lib) must
#: not wedge the sweep, and the inline fallback cannot be killed by the
#: pure-Python workloads themselves
_MAX_POOL_REBUILDS = 3


def _run_parallel(
    misses: List[Tuple[str, RunRequest]],
    workers: int,
    results: Dict[str, RunResult],
    live_cache: Optional[RunCache],
) -> None:
    """Fan the misses over a process pool, surviving dead workers.

    A worker killed mid-run (OOM killer, hard crash) breaks the whole
    ``ProcessPoolExecutor`` — every uncollected future raises
    :class:`BrokenProcessPool`, including requests that never ran.
    Collecting per-future instead of failing the batch keeps every
    result that *did* complete, then the uncollected requests are
    resubmitted to a fresh pool (a transient kill just re-runs; runs are
    independent and seeded, so a re-run is bit-identical).  After
    ``_MAX_POOL_REBUILDS`` rebuilds the survivors execute inline so a
    request that reliably kills its worker surfaces its own error —
    attributed to that request — instead of hanging the sweep or
    corrupting the submission-order merge.
    """
    pending = misses
    rebuilds = 0
    while pending:
        uncollected: List[Tuple[str, RunRequest]] = []
        with ProcessPoolExecutor(max_workers=min(workers, len(pending))) as pool:
            futures = [
                (key, request, pool.submit(execute_request, request)) for key, request in pending
            ]
            # submission-order merge: completion order cannot leak into
            # the output, so any worker count reproduces the serial batch
            for key, request, future in futures:
                try:
                    results[key] = future.result()
                except InvariantViolation as exc:
                    raise _attributed(exc, key, request) from exc
                except BrokenProcessPool:
                    uncollected.append((key, request))
                    continue
                if live_cache is not None:
                    live_cache.put(request, results[key], key=key)
        if not uncollected:
            return
        rebuilds += 1
        if rebuilds > _MAX_POOL_REBUILDS:
            break
        pending = uncollected
    # last resort: inline, with per-request error attribution
    errors: List[Tuple[RunRequest, BaseException]] = []
    for key, request in uncollected:
        try:
            results[key] = execute_request(request)
        except InvariantViolation as exc:
            raise _attributed(exc, key, request) from exc
        except Exception as exc:  # noqa: BLE001 - re-raised below with context
            errors.append((request, exc))
            continue
        if live_cache is not None:
            live_cache.put(request, results[key], key=key)
    if errors:
        detail = "; ".join(
            f"{req.system}/{_scenario_label(req)} (seed {req.seed}): {exc!r}"
            for req, exc in errors
        )
        raise RuntimeError(
            f"{len(errors)} request(s) kept killing pool workers and failed inline: {detail}"
        ) from errors[0][1]


def run_systems(
    scenario: Scenario,
    systems: Sequence[str],
    workers: Optional[int] = None,
    cache: Union[RunCache, None, bool] = None,
) -> Dict[str, RunResult]:
    """The named systems run on one scenario (``nom``/``nop`` = variants)."""
    requests = []
    for system in systems:
        if system in ("nom", "nop"):
            requests.append(RunRequest(system="amoeba", scenario=scenario, variant=system))
        elif system in _SYSTEMS:
            requests.append(RunRequest(system=system, scenario=scenario))
        else:
            raise ValueError(f"unknown system {system!r}")
    results = run_many(requests, workers=workers, cache=cache)
    return dict(zip(systems, results))
