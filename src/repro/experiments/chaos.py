"""The chaos scenario: fault-rate sweep and QoS-violation deltas.

Runs the standard §VII scenario with the :data:`DEFAULT_CHAOS_PLAN`
scaled across a range of factors (0 = no faults) and reports, per scale:

* how many faults the injector actually fired, per class;
* the runtime's degradation-policy responses (retries, dropped queries,
  aborted switches, force-released drains, safe-mode periods);
* the foreground's QoS violation fraction — plain and counting dropped
  queries — and its *delta* against the zero-fault run of the same seed.

The zero-fault column doubles as the determinism gate: with every rate
at zero the injector makes no RNG draws, so that run is bit-identical to
a run with no fault layer at all (asserted by the chaos tests and the
``scripts/check.sh`` quick tier).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

from repro.experiments.executor import RunRequest, run_many
from repro.experiments.report import FigureResult
from repro.experiments.runner import RunResult
from repro.faults import FaultPlan
from repro.experiments.scenarios import chaos_scenario

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.cache import RunCache

__all__ = ["chaos_sweep"]

#: default fault-scale sweep: off, half, nominal, double
DEFAULT_SCALES: Tuple[float, ...] = (0.0, 0.5, 1.0, 2.0)


def _fg_violations(result: RunResult, name: str) -> Tuple[float, float]:
    metrics = result.services[name].metrics
    return metrics.violation_fraction, metrics.violation_fraction_with_failures


def chaos_sweep(
    name: str = "matmul",
    day: float = 3600.0,
    seed: int = 0,
    scales: Sequence[float] = DEFAULT_SCALES,
    plan: Optional[FaultPlan] = None,
    workers: Optional[int] = None,
    cache: Union["RunCache", None, bool] = None,
) -> FigureResult:
    """Sweep fault-plan scales; report fault counts and QoS deltas.

    The per-scale runs are independent and fully seeded, so they fan out
    through :func:`~repro.experiments.executor.run_many` — ``workers``/
    ``cache`` default to the process-wide executor configuration, and
    the report is ``float.hex``-identical for any worker count.
    """
    if not scales:
        raise ValueError("need at least one fault scale")
    scenarios = [
        chaos_scenario(name, fault_scale=scale, plan=plan, day=day, seed=seed)
        for scale in scales
    ]
    results = run_many(
        [RunRequest(system="amoeba", scenario=scenario) for scenario in scenarios],
        workers=workers,
        cache=cache,
    )
    rows = []
    runs = {}
    baseline: Optional[Tuple[float, float]] = None
    for scale, scenario, result in zip(scales, scenarios, results):
        runs[scale] = result
        viol, viol_with_drops = _fg_violations(result, scenario.foreground.name)
        if baseline is None:
            baseline = (viol, viol_with_drops)
        fs = result.faults
        assert fs is not None  # chaos scenarios always attach a plan
        # the unified dropped{reason} family: chaos runs have no overload
        # layer, so every foreground drop must carry reason "crash"
        fg_drops = result.services[scenario.foreground.name].metrics.drops
        rows.append(
            [
                scale,
                fs.total_injected,
                fs.query_retries,
                fs.queries_dropped,
                fg_drops["crash"],
                len(fs.switch_aborts),
                fs.switches_completed,
                fs.drain_force_releases,
                fs.safe_mode_periods,
                viol,
                viol_with_drops,
                viol_with_drops - baseline[1],
            ]
        )
    return FigureResult(
        figure="chaos",
        title=f"fault sweep on {name!r} (seed {seed}, day {day:g}s)",
        headers=[
            "scale",
            "injected",
            "retries",
            "dropped",
            "fg_crash_drops",
            "aborted_sw",
            "switches",
            "forced_drains",
            "safe_periods",
            "viol_frac",
            "viol_w_drops",
            "delta_vs_0",
        ],
        rows=rows,
        notes=(
            "delta_vs_0 = QoS violation fraction (drops counted as violations) "
            "minus the zero-fault run's; scale 0 is the determinism baseline."
        ),
        extras={"runs": runs},
    )
