"""Command-line figure regeneration.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig11
    python -m repro.experiments fig12 --day 2400 --seed 3
    python -m repro.experiments chaos --workers 4
    python -m repro.experiments fleet --services 100 --workers 4
    python -m repro.experiments all          # everything (slow)

Each target prints the regenerated table; heavy diurnal runs are cached
within one invocation, so ``all`` shares work across figures.  Sweeps
additionally fan out over ``--workers`` processes and memoize finished
runs in the content-addressed cache under ``--cache`` (default
``.repro_cache/``; ``--no-cache`` turns it off), so re-running a target
— or resuming an interrupted ``all`` — replays cached runs instead of
recomputing them.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.experiments import executor
from repro.experiments import figures as F
from repro.experiments import ablations as A
from repro.experiments.cache import CACHE_ENV_VAR, DEFAULT_CACHE_ROOT, RunCache


def _portfolio(**kw):
    from repro.experiments.portfolio import portfolio_figure

    return portfolio_figure(**kw)


def _chaos(**kw):
    from repro.experiments.chaos import chaos_sweep

    return chaos_sweep(**kw)


def _overload(**kw):
    from repro.experiments.overload import overload_sweep

    return overload_sweep(**kw)


def _fleet(**kw):
    from repro.experiments.fleet import fleet_sweep

    return fleet_sweep(**kw)


def _dag(**kw):
    from repro.experiments.dag import dag_sweep

    return dag_sweep(**kw)


def _spot(**kw):
    from repro.experiments.spot import spot_sweep

    return spot_sweep(**kw)

#: target name -> (callable, accepts day/seed kwargs)
TARGETS = {
    "table2": (lambda **kw: F.table2_setup(), False),
    "table3": (lambda **kw: F.table3_benchmarks(), False),
    "fig2": (F.fig2_iaas_utilization, True),
    "fig3": (lambda **kw: F.fig3_peak_loads(seed=kw.get("seed", 0)), False),
    "fig4": (lambda **kw: F.fig4_latency_breakdown(seed=kw.get("seed", 0)), False),
    "fig8": (lambda **kw: F.fig8_meter_curves(seed=kw.get("seed", 7)), False),
    "fig9": (lambda **kw: F.fig9_latency_surfaces(seed=kw.get("seed", 11)), False),
    "fig10": (F.fig10_latency_cdf, True),
    "fig11": (F.fig11_resource_usage, True),
    "fig12": (F.fig12_switch_timeline, True),
    "fig13": (F.fig13_usage_timeline, True),
    "fig14": (F.fig14_nom_ablation, True),
    "fig15": (F.fig15_discriminant_error, True),
    "fig16": (F.fig16_nop_violations, True),
    "sec7e": (F.sec7e_meter_overhead, True),
    "cost": (F.cost_comparison, True),
    "portfolio": (_portfolio, True),
    "abl-guard": (A.ablate_guard, True),
    "abl-period": (A.ablate_sample_period, True),
    "abl-discriminant": (A.ablate_discriminant, True),
    "abl-keepalive": (A.ablate_keep_alive, True),
    "chaos": (_chaos, True),
    "overload": (_overload, True),
    "fleet": (_fleet, True),
    "dag": (_dag, True),
    "spot": (_spot, True),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="regenerate the paper's tables and figures",
    )
    parser.add_argument("target", help="figure id, 'list', or 'all'")
    parser.add_argument("--day", type=float, default=None,
                        help="compressed-day length in simulated seconds "
                        f"(default {F.FIG_DAY:g}; fleet defaults to its own "
                        "shorter day)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--services", type=int, default=100,
                        help="fleet size (fleet target only)")
    parser.add_argument("--depth", type=int, default=None,
                        help="single chain depth instead of the default "
                        "ablation depths (dag target only)")
    parser.add_argument("--daily-queries", type=float, default=5_000_000.0,
                        help="aggregate fleet volume, queries/day (fleet "
                        "target only)")
    parser.add_argument("--export", metavar="DIR", default=None,
                        help="also write <target>.csv and <target>.json to DIR")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width for sweep fan-out "
                        "(default: $REPRO_WORKERS, else serial)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help=f"run-cache directory (default {DEFAULT_CACHE_ROOT}/)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the on-disk run cache")
    args = parser.parse_args(argv)

    if args.no_cache:
        cache = None
    elif args.cache is not None:
        cache = RunCache(Path(args.cache))
    elif CACHE_ENV_VAR in os.environ:
        cache = RunCache.from_env()  # the env can also turn the cache off
    else:
        cache = RunCache()
    executor.configure(workers=args.workers, cache=cache)

    if args.target == "list":
        for name in TARGETS:
            print(name)
        return 0

    names = list(TARGETS) if args.target == "all" else [args.target]
    unknown = [n for n in names if n not in TARGETS]
    if unknown:
        print(f"unknown target(s) {unknown}; try 'list'", file=sys.stderr)
        return 2

    for name in names:
        fn, takes_day = TARGETS[name]
        t0 = time.time()
        kwargs = {"seed": args.seed}
        if takes_day:
            if args.day is not None:
                kwargs["day"] = args.day
            elif name not in ("fleet", "dag", "spot"):
                kwargs["day"] = F.FIG_DAY
            # fleet/dag/spot without --day use their own shorter defaults
        if name == "fleet":
            kwargs["services"] = args.services
            kwargs["daily_queries"] = args.daily_queries
        if name == "dag" and args.depth is not None:
            kwargs["depths"] = (args.depth,)
        result = fn(**kwargs)
        print(result.text())
        if args.export:
            from repro.experiments.export import figure_to_csv, figure_to_json

            out = Path(args.export)
            out.mkdir(parents=True, exist_ok=True)
            figure_to_csv(result, out / f"{name}.csv")
            figure_to_json(result, out / f"{name}.json")
            print(f"[exported to {out / name}.{{csv,json}}]")
        print(f"[{name}: {time.time() - t0:.1f}s]\n")
    if cache is not None:
        print(f"[run cache {cache.root}: {cache.hits} hits, {cache.stores} stores]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
