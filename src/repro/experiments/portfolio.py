"""Vendor-scale portfolio runs: many managed services on one platform.

The paper evaluates one managed benchmark at a time, but Amoeba "is a
system designed for Cloud vendors" (§III) — in production many managed
microservices share the serverless node, interact through its pressure,
and guard each other's QoS on switch-ins.  This extension runs the whole
Table III suite under one Amoeba runtime with phase-staggered diurnal
days and reports per-service QoS and savings.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.core import AmoebaConfig, AmoebaRuntime
from repro.experiments.executor import RunRequest, run_many
from repro.experiments.report import FigureResult
from repro.experiments.scenarios import (
    PEAK_RATES,
    SERVERLESS_FRACTIONS,
    ambient_pressure_traces,
    concurrency_threshold,
)
from repro.experiments.scenarios import Scenario
from repro.workloads import AmbientTenants, DiurnalTrace, benchmark, benchmark_names

__all__ = ["portfolio_figure", "run_portfolio"]


def run_portfolio(
    day: float = 3600.0,
    seed: int = 0,
    config: Optional[AmoebaConfig] = None,
    names: Tuple[str, ...] = (),
    ambient: bool = True,
) -> Tuple[AmoebaRuntime, Dict[str, DiurnalTrace]]:
    """All (or the named) Table III services under one Amoeba runtime.

    Services' diurnal days are phase-staggered so their peaks do not
    coincide — each one's low window falls while others are busy, which
    is when the co-tenant guard earns its keep.  Returns the runtime
    (already run to ``day``) and each service's trace.
    """
    names = names if names else benchmark_names()
    rt = AmoebaRuntime(seed=seed, config=config)
    if ambient:
        # milder ambient pressure than the single-service scenarios: the
        # managed portfolio itself already populates the platform
        traces = {
            axis: replace_peak(trace, 0.6)
            for axis, trace in ambient_pressure_traces(day=day, seed=seed + 300)
        }
        AmbientTenants(rt.env, rt.serverless.machine, traces, rt.rng)
    out_traces: Dict[str, DiurnalTrace] = {}
    for i, name in enumerate(names):
        spec = benchmark(name)
        trace = DiurnalTrace(
            peak_rate=PEAK_RATES[name],
            seed=seed + 7 + i,
            phase=(i / len(names)) * day,
            day=day,
            noise_sigma=0.05,
        )
        limit = concurrency_threshold(spec, PEAK_RATES[name], SERVERLESS_FRACTIONS[name])
        rt.add_service(spec, trace, limit=limit)
        out_traces[name] = trace
    rt.run(until=day)
    return rt, out_traces


def replace_peak(trace: DiurnalTrace, factor: float) -> DiurnalTrace:
    """A copy of a diurnal trace with its peak scaled by ``factor``."""
    return DiurnalTrace(
        peak_rate=trace.peak_rate * factor,
        low_fraction=trace.low_fraction,
        morning_fraction=trace.morning_fraction,
        noise_sigma=trace.noise_sigma,
        seed=0,
        phase=trace.phase,
        day=trace.day,
    )


def portfolio_figure(day: float = 3600.0, seed: int = 0) -> FigureResult:
    """Portfolio run summarized against per-service Nameko baselines.

    The per-service baselines are independent seeded runs, so they fan
    out through :func:`~repro.experiments.executor.run_many` (and share
    the run cache with any other figure that needs them).
    """
    rt, traces = run_portfolio(day=day, seed=seed)
    # per-service Nameko baselines: the same trace, held rental
    scenarios = {
        name: Scenario(
            foreground=rt.services[name].spec,
            trace=traces[name],
            limit=8,
            background=(),
            duration=day,
            seed=seed,
        )
        for name in traces
    }
    baselines = run_many(
        [RunRequest(system="nameko", scenario=scenarios[name]) for name in traces]
    )
    rows = []
    extras = {}
    for name, baseline_run in zip(traces, baselines):
        svc = rt.services[name]
        usage = rt.service_usage(name)
        scenario = scenarios[name]
        baseline = baseline_run.foreground(scenario).usage
        cpu_ratio, mem_ratio = usage.normalized_to(baseline)
        p95_ratio = svc.metrics.latency_percentile(95) / svc.spec.qos_target
        extras[name] = {
            "cpu_ratio": cpu_ratio,
            "mem_ratio": mem_ratio,
            "switches": list(svc.engine.switch_events),
        }
        rows.append(
            [
                name,
                p95_ratio,
                svc.metrics.violation_fraction,
                cpu_ratio,
                mem_ratio,
                len(svc.engine.switch_events),
            ]
        )
    return FigureResult(
        figure="Portfolio",
        title="all Table III services managed concurrently by one Amoeba",
        headers=["service", "p95 / QoS", "violations", "cpu vs nameko", "mem vs nameko", "switches"],
        rows=rows,
        notes="extension beyond the paper's one-service-at-a-time evaluation",
        extras=extras,
    )
