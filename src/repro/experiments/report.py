"""Plain-text table rendering shared by the figure regenerators.

Every figure/table regenerator returns a :class:`FigureResult`; its
``text()`` is what the benches print, giving "the same rows/series the
paper reports" in a terminal-friendly form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

__all__ = ["FigureResult", "render_table"]


def _fmt(value: Any, floatfmt: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, floatfmt)
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str = "",
    floatfmt: str = ".3f",
) -> str:
    """Render an aligned monospace table."""
    str_rows = [[_fmt(v, floatfmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(f"row has {len(row)} cells, expected {len(headers)}")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(h for h in headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


@dataclass
class FigureResult:
    """One regenerated paper figure/table: rows plus raw extras."""

    figure: str
    title: str
    headers: List[str]
    rows: List[List[Any]]
    notes: str = ""
    #: raw arrays/series for callers that want more than the table
    extras: Dict[str, Any] = field(default_factory=dict)

    def text(self, floatfmt: str = ".3f") -> str:
        """The rendered table (plus notes)."""
        out = render_table(self.headers, self.rows, title=f"{self.figure}: {self.title}", floatfmt=floatfmt)
        if self.notes:
            out += f"\n{self.notes}"
        return out
