"""Derived measurements used by the figure regenerators.

* peak-load search (Fig. 3): the largest constant arrival rate a
  deployment sustains while keeping its r-ile latency within QoS, by
  bisection over short constant-rate simulations;
* real switch-point enumeration (Fig. 15): the same search run on the
  *shared* serverless platform with the scenario's background services
  held at a fixed load — the paper's λ_real;
* CDF extraction helpers for Fig. 10.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.cluster import ContentionConfig, DemandVector, NodeSpec
from repro.iaas import IaaSPlatform
from repro.serverless import ServerlessConfig, ServerlessPlatform
from repro.sim import Environment, RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads import ConstantTrace, LoadGenerator, MicroserviceSpec

__all__ = [
    "FaultSummary",
    "OverloadSummary",
    "latency_cdf",
    "peak_load_iaas",
    "peak_load_search",
    "peak_load_serverless",
    "resample_zoh",
]


def resample_zoh(
    timelines: Sequence[Tuple[np.ndarray, np.ndarray]], grid: np.ndarray
) -> np.ndarray:
    """Sum of step timelines resampled (zero-order hold) onto ``grid``.

    Each timeline is a ``(times, values)`` pair recording a step function
    (the decimated :class:`~repro.sim.stats.TimeSeries` ledgers); the
    value at grid point ``g`` is the last recorded value at or before
    ``g``, or 0 before the first sample.  Shared by the
    :class:`~repro.experiments.runner.ServiceResult` usage accessors and
    any figure that projects occupation timelines onto a common grid.
    """
    total = np.zeros(len(grid))
    for t, v in timelines:
        if len(t) == 0:
            continue
        idx = np.searchsorted(t, grid, side="right") - 1
        total += np.where(idx >= 0, v[np.clip(idx, 0, len(v) - 1)], 0.0)
    return total


@dataclass(frozen=True)
class FaultSummary:
    """Fault-layer outcome of one run (all zero on a fault-free run).

    ``injected`` is the raw :class:`~repro.faults.injector.FaultStats`
    counter dict; the rest are the degradation-policy responses the
    chaos report reads: how often the runtime retried, aborted, force-
    released or fell back to safe mode instead of wedging.
    """

    #: raw injection counters (FaultStats.as_dict())
    injected: Dict[str, int] = field(default_factory=dict)
    #: every primary injection (retries/drops are consequences)
    total_injected: int = 0
    #: crash-retry resubmissions across all services
    query_retries: int = 0
    #: queries dropped after exhausting their retry budget
    queries_dropped: int = 0
    #: (time, target mode value, reason) for every aborted switch
    switch_aborts: Tuple[Tuple[float, str, str], ...] = ()
    #: switches that actually flipped the route
    switches_completed: int = 0
    #: stuck drains the engine watchdog force-released
    drain_force_releases: int = 0
    #: controller periods spent in stale-telemetry safe mode
    safe_mode_periods: int = 0
    #: foreground ``preemptions{kind}`` family (noticed / drained /
    #: killed_inflight / replaced) — spot reclamation outcomes
    preemptions: Dict[str, int] = field(default_factory=dict)
    #: emergency switch-ins taken in reaction to a preemption notice
    preemption_switches: int = 0


@dataclass(frozen=True)
class OverloadSummary:
    """Overload-layer outcome of one run (foreground service).

    Present on a :class:`~repro.experiments.runner.RunResult` whenever a
    policy — even a disabled one — was attached to the scenario.  The
    ``drops`` dict is the unified ``dropped{reason}`` counter family from
    :class:`~repro.telemetry.ServiceMetrics`; the breaker fields expose
    the trip/half-open/close lifecycle for the telemetry-visibility
    acceptance check.
    """

    #: whether the attached policy was actually enabled
    policy_enabled: bool = False
    #: foreground drops by reason (crash/admission/shed/breaker)
    drops: Dict[str, int] = field(default_factory=dict)
    #: governor-side rejections by reason, both platforms combined
    rejections: Dict[str, int] = field(default_factory=dict)
    #: foreground retries by kind — the unified ``retries{kind}`` family
    #: (attempted/exhausted/deadline_abandoned) from ServiceMetrics
    retries: Dict[str, int] = field(default_factory=dict)
    #: queries the frontend/dispatch rejected + queues shed (foreground)
    total_rejections: int = 0
    #: breaker lifecycle counters
    breaker_trips: int = 0
    breaker_reopens: int = 0
    breaker_half_opens: int = 0
    breaker_closes: int = 0
    #: terminal breaker state value ("closed"/"open"/"half_open"/"disabled")
    breaker_state: str = "disabled"
    #: every breaker edge as (time, new state value)
    breaker_transitions: Tuple[Tuple[float, str], ...] = ()
    #: exact queue-depth high-water marks (foreground, per platform)
    peak_queue_depth_serverless: int = 0
    peak_queue_depth_iaas: int = 0
    #: controller periods spent under brownout (foreground)
    brownout_periods: int = 0
    #: foreground ``preemptions{kind}`` family (spot reclamation events
    #: seen while the overload layer was attached)
    preemptions: Dict[str, int] = field(default_factory=dict)
    #: controller periods on which the flash-crowd detector tripped
    surge_periods: int = 0


def latency_cdf(
    latencies: np.ndarray, qos_target: float, grid_points: int = 200, x_max: float = 2.5
) -> Tuple[np.ndarray, np.ndarray]:
    """(x, F(x)) with x = latency normalized to the QoS target (Fig. 10)."""
    if qos_target <= 0:
        raise ValueError("qos_target must be positive")
    lat = np.sort(np.asarray(latencies, dtype=float)) / qos_target
    x = np.linspace(0.0, x_max, grid_points)
    f = np.searchsorted(lat, x, side="right") / max(lat.size, 1)
    return x, f


def _probe_ok(
    build_and_run: Callable[[float], ServiceMetrics],
    rate: float,
    qos_target: float,
    r_ile: float,
) -> bool:
    metrics = build_and_run(rate)
    if metrics.completed < 50:
        return False
    if not metrics.latency_sample_exact:
        # the gate treats this percentile as exact; a silently-degraded
        # reservoir estimate here would make the search irreproducible
        # across reservoir sizes
        raise ValueError(
            f"{metrics.service}: QoS gate needs the exact percentile but the "
            f"latency reservoir overflowed ({metrics.latency_sample_coverage[0]} "
            f"completions > capacity {metrics.latency_sample_coverage[1]}); "
            "size the scenario reservoir above the expected completion count"
        )
    return metrics.latency_percentile(100 * r_ile) <= qos_target


def peak_load_search(
    build_and_run: Callable[[float], ServiceMetrics],
    qos_target: float,
    lo: float = 0.5,
    hi: float = 512.0,
    r_ile: float = 0.95,
    iterations: int = 9,
) -> float:
    """Largest sustained rate meeting the QoS, by geometric + binary search.

    ``build_and_run(rate)`` must run a fresh deployment at constant
    ``rate`` and return its metrics.
    """
    if not 0 < lo < hi:
        raise ValueError("need 0 < lo < hi")
    # grow lo to a failing hi
    if not _probe_ok(build_and_run, lo, qos_target, r_ile):
        return 0.0
    rate = lo
    while rate < hi and _probe_ok(build_and_run, rate * 2, qos_target, r_ile):
        rate *= 2
    good, bad = rate, min(rate * 2, hi)
    for _ in range(iterations):
        mid = 0.5 * (good + bad)
        if _probe_ok(build_and_run, mid, qos_target, r_ile):
            good = mid
        else:
            bad = mid
    return good


def _probe_reservoir(rate: float, duration: float) -> int:
    """Reservoir capacity guaranteed to hold every probe completion.

    The peak-load gate reads an *exact* percentile (``_probe_ok`` raises
    otherwise), so probes size the reservoir from the offered work with
    double headroom over the Poisson mean rather than trusting the 20k
    default.
    """
    return max(20_000, int(2.0 * rate * duration) + 1000)


def peak_load_iaas(
    spec: MicroserviceSpec,
    sized_for: float,
    duration: float = 400.0,
    seed: int = 5,
    contention: Optional[ContentionConfig] = None,
) -> float:
    """Peak sustainable load of a just-enough IaaS rental sized for ``sized_for``."""

    def build_and_run(rate: float) -> ServiceMetrics:
        env = Environment()
        rng = RngRegistry(seed=seed)
        platform = IaaSPlatform(env, rng, contention=contention)
        metrics = ServiceMetrics(spec.name, spec.qos_target, reservoir=_probe_reservoir(rate, duration))
        platform.deploy(spec, peak_rate=sized_for, metrics=metrics)
        LoadGenerator(env, spec.name, ConstantTrace(rate), platform.invoke, rng)
        env.run(until=duration)
        return metrics

    return peak_load_search(build_and_run, spec.qos_target)


def peak_load_serverless(
    spec: MicroserviceSpec,
    limit: int,
    duration: float = 400.0,
    seed: int = 5,
    cfg: Optional[ServerlessConfig] = None,
    contention: Optional[ContentionConfig] = None,
    background: Sequence[Tuple[MicroserviceSpec, float, int]] = (),
    warmup: float = 60.0,
    node: Optional[NodeSpec] = None,
    ambient_pressures: Optional[Tuple[float, float, float]] = None,
) -> float:
    """Peak sustainable load on the serverless platform with ``limit`` containers.

    ``background`` is a list of (spec, constant rate, limit) co-tenants
    and ``ambient_pressures`` a standing per-axis pressure — both used by
    the Fig. 15 λ_real enumeration; empty/None for Fig. 3's clean
    same-resources comparison.  ``node`` confines the platform to a
    specific hardware slice (Fig. 3's "same amount of resources").
    """
    if node is not None and cfg is None:
        base = ServerlessConfig()
        cfg = replace(base, pool_memory_mb=min(base.pool_memory_mb, node.memory_mb))

    def build_and_run(rate: float) -> ServiceMetrics:
        env = Environment()
        rng = RngRegistry(seed=seed)
        platform = ServerlessPlatform(env, rng, node=node, config=cfg, contention=contention)
        if ambient_pressures is not None:
            caps = platform.machine.capacity
            platform.machine.inject_background(
                DemandVector(
                    cpu=ambient_pressures[0] * caps[0],
                    io_mbps=ambient_pressures[1] * caps[1],
                    net_mbps=ambient_pressures[2] * caps[2],
                )
            )
        for bg_spec, bg_rate, bg_limit in background:
            bg_metrics = ServiceMetrics(bg_spec.name, bg_spec.qos_target)
            platform.register(bg_spec, metrics=bg_metrics, limit=bg_limit)
            LoadGenerator(env, bg_spec.name, ConstantTrace(bg_rate), platform.invoke, rng)
        metrics = ServiceMetrics(
            spec.name, spec.qos_target, reservoir=_probe_reservoir(rate, duration), seed=seed
        )
        platform.register(spec, metrics=metrics, limit=limit)
        # pre-warm the allowance so the probe measures steady state, not
        # the cold-start transient
        platform.prewarm(spec.name, limit)
        LoadGenerator(env, spec.name, ConstantTrace(rate), platform.invoke, rng)
        env.run(until=warmup)
        steady = ServiceMetrics(spec.name, spec.qos_target, seed=seed)
        platform.pool.state(spec.name).metrics = steady
        env.run(until=duration)
        return steady

    return peak_load_search(build_and_run, spec.qos_target)
