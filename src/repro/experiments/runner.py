"""End-to-end scenario runs for the three systems under comparison.

``run_amoeba``     the full runtime (or its NoM / NoP / no-guard variants)
``run_nameko``     pure IaaS: just-enough rental held for the whole run
``run_openwhisk``  pure serverless: everything on the shared pool

All three return a :class:`RunResult` holding, per service, the shared
telemetry plus integrated vendor-side usage and the timelines the figure
regenerators need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.pricing import CostBreakdown, PricingModel
    from repro.graph import GraphSummary
    from repro.serverless import ServerlessConfig

from repro.cluster import UsageSample
from repro.core import AmoebaConfig, AmoebaRuntime
from repro.core.controller import ControllerDecision
from repro.iaas import IaaSPlatform
from repro.serverless import ServerlessPlatform
from repro.sim import Environment, RngRegistry
from repro.telemetry import ServiceMetrics
from repro.workloads import AmbientTenants, LoadGenerator, MicroserviceSpec
from repro.experiments.metrics import FaultSummary, OverloadSummary, resample_zoh
from repro.experiments.scenarios import Scenario

__all__ = ["RunResult", "ServiceResult", "run_amoeba", "run_nameko", "run_openwhisk"]


@dataclass
class ServiceResult:
    """Per-service outcome of one run."""

    spec: MicroserviceSpec
    metrics: ServiceMetrics
    usage: UsageSample
    #: decimated (t, cores) and (t, MB) occupation timelines, one pair per
    #: contributing ledger (IaaS rental and/or serverless containers)
    cpu_timelines: List[Tuple[np.ndarray, np.ndarray]] = field(default_factory=list)
    mem_timelines: List[Tuple[np.ndarray, np.ndarray]] = field(default_factory=list)
    #: deploy-mode history [(t, "iaas"/"serverless")], Amoeba only
    mode_timeline: List[Tuple[float, str]] = field(default_factory=list)
    #: accepted switches [(t, direction, load)], Amoeba only
    switch_events: List[Tuple[float, str, float]] = field(default_factory=list)
    #: controller log, Amoeba only
    decisions: List[ControllerDecision] = field(default_factory=list)
    #: split usage for the maintainer-cost extension (None when that side
    #: was never used by this system)
    usage_iaas: Optional[UsageSample] = None
    usage_serverless: Optional[UsageSample] = None
    #: spot-share rental usage, billed at the discounted spot rate (None
    #: when the scenario rented no spot capacity)
    usage_iaas_spot: Optional[UsageSample] = None
    serverless_invocations: int = 0
    serverless_busy_seconds: float = 0.0
    container_memory_mb: float = 256.0
    #: decimated (t, depth) queue-depth timelines, one pair per platform
    #: that queued this service (pool FIFO and/or IaaS worker queue)
    queue_depth_timelines: List[Tuple[np.ndarray, np.ndarray]] = field(default_factory=list)

    def cost(self, pricing: Optional["PricingModel"] = None) -> "CostBreakdown":
        """Maintainer-side bill for this service under this system."""
        from repro.cluster.pricing import CostBreakdown, PricingModel

        pricing = pricing if pricing is not None else PricingModel()
        iaas = pricing.iaas_cost(self.usage_iaas) if self.usage_iaas is not None else 0.0
        spot = (
            pricing.iaas_spot_cost(self.usage_iaas_spot)
            if self.usage_iaas_spot is not None
            else 0.0
        )
        if self.serverless_invocations > 0:
            mean_duration = self.serverless_busy_seconds / self.serverless_invocations
            sls = pricing.serverless_cost(
                self.serverless_invocations, mean_duration, self.container_memory_mb
            )
        else:
            sls = 0.0
        return CostBreakdown(
            system="", iaas_dollars=iaas, serverless_dollars=sls, iaas_spot_dollars=spot
        )

    def cpu_usage_on_grid(self, grid: np.ndarray) -> np.ndarray:
        """Total cores occupied, resampled (zero-order hold) onto ``grid``."""
        return resample_zoh(self.cpu_timelines, grid)

    def mem_usage_on_grid(self, grid: np.ndarray) -> np.ndarray:
        """Total MB occupied, resampled onto ``grid``."""
        return resample_zoh(self.mem_timelines, grid)


@dataclass
class RunResult:
    """Outcome of one full scenario run."""

    system: str
    duration: float
    services: Dict[str, ServiceResult]
    meter_overhead: float = 0.0
    #: per-meter mean CPU overhead (fraction of the node), Amoeba only
    meter_overheads: Dict[str, float] = field(default_factory=dict)
    #: fault-layer outcome, Amoeba only (None when no plan was attached)
    faults: Optional[FaultSummary] = None
    #: overload-layer outcome, Amoeba only (None when no policy attached)
    overload: Optional[OverloadSummary] = None
    #: end-to-end call-graph outcome (graph runs only)
    graph: Optional["GraphSummary"] = None

    def foreground(self, scenario: Scenario) -> ServiceResult:
        """The scenario's foreground service result."""
        return self.services[scenario.foreground.name]


def _scenario_metrics(spec: MicroserviceSpec, scenario: Scenario) -> ServiceMetrics:
    """Per-service metrics honouring the scenario's reservoir sizing."""
    if scenario.reservoir is not None:
        return ServiceMetrics(spec.name, spec.qos_target, reservoir=scenario.reservoir)
    return ServiceMetrics(spec.name, spec.qos_target)


def _ledger_timeline(ledger) -> Tuple[Tuple[np.ndarray, np.ndarray], Tuple[np.ndarray, np.ndarray]]:
    cpu = (ledger.cpu_timeline.times(), ledger.cpu_timeline.values())
    mem = (ledger.mem_timeline.times(), ledger.mem_timeline.values())
    return cpu, mem


def run_amoeba(
    scenario: Scenario,
    variant: str = "full",
    config: Optional[AmoebaConfig] = None,
    guard: bool = True,
    seed: Optional[int] = None,
) -> RunResult:
    """Run Amoeba (or a variant) on a scenario.

    ``variant``: ``"full"``, ``"nom"`` (no PCA correction, §VII-C) or
    ``"nop"`` (no prewarming, §VII-D).  An explicit ``config`` overrides
    the variant presets.
    """
    if config is None:
        config = AmoebaConfig()
        if variant == "nom":
            config = config.variant_nom()
        elif variant == "nop":
            config = config.variant_nop()
        elif variant != "full":
            raise ValueError(f"unknown variant {variant!r}")
    rt = AmoebaRuntime(
        seed=seed if seed is not None else scenario.seed,
        config=config,
        faults=scenario.faults,
        overload=scenario.overload,
        spot=scenario.spot,
    )
    if scenario.ambient:
        AmbientTenants(rt.env, rt.serverless.machine, dict(scenario.ambient), rt.rng)
    for spec, trace, limit in scenario.background:
        rt.add_background(spec, trace, limit=limit)
    fg = rt.add_service(
        scenario.foreground,
        scenario.trace,
        guard_enabled=guard,
        limit=scenario.limit,
        sizing_rate=scenario.iaas_peak_rate,
        reservoir=scenario.reservoir,
    )
    rt.run(until=scenario.duration)

    services: Dict[str, ServiceResult] = {}
    name = scenario.foreground.name
    iaas_cpu, iaas_mem = _ledger_timeline(fg.iaas.ledger)
    sls_ledger = rt.serverless.function_ledger(name)
    sls_cpu, sls_mem = _ledger_timeline(sls_ledger)
    fg_state = rt.serverless.pool.state(name)
    cpu_timelines = [iaas_cpu, sls_cpu]
    mem_timelines = [iaas_mem, sls_mem]
    spot_ledger = fg.iaas.spot_ledger
    if spot_ledger is not None:
        spot_cpu, spot_mem = _ledger_timeline(spot_ledger)
        cpu_timelines.append(spot_cpu)
        mem_timelines.append(spot_mem)
    services[name] = ServiceResult(
        spec=scenario.foreground,
        metrics=fg.metrics,
        usage=rt.service_usage(name),
        cpu_timelines=cpu_timelines,
        mem_timelines=mem_timelines,
        mode_timeline=[(t, m.value) for t, m in fg.engine.mode_timeline],
        switch_events=[(t, m.value, load) for t, m, load in fg.engine.switch_events],
        decisions=list(fg.controller.decisions),
        usage_iaas=fg.iaas.ledger.snapshot(),
        usage_serverless=sls_ledger.snapshot(),
        usage_iaas_spot=spot_ledger.snapshot() if spot_ledger is not None else None,
        serverless_invocations=fg_state.completions,
        serverless_busy_seconds=fg_state.busy_seconds,
        container_memory_mb=rt.serverless.config.container_memory_mb,
        queue_depth_timelines=[
            (fg_state.queue_depth.times(), fg_state.queue_depth.values()),
            (fg.iaas.queue_depth.times(), fg.iaas.queue_depth.values()),
        ],
    )
    for bg_name, bg in rt.background.items():
        ledger = rt.serverless.function_ledger(bg_name)
        cpu, mem = _ledger_timeline(ledger)
        bg_state = rt.serverless.pool.state(bg_name)
        services[bg_name] = ServiceResult(
            spec=bg.spec,
            metrics=bg.metrics,
            usage=ledger.snapshot(),
            cpu_timelines=[cpu],
            mem_timelines=[mem],
            queue_depth_timelines=[
                (bg_state.queue_depth.times(), bg_state.queue_depth.values())
            ],
        )
    fault_summary: Optional[FaultSummary] = None
    if rt.faults is not None:
        stats = rt.faults.stats
        fault_summary = FaultSummary(
            injected=stats.as_dict(),
            total_injected=stats.total_injected,
            query_retries=stats.query_retries,
            queries_dropped=stats.queries_dropped,
            switch_aborts=tuple(
                (t, m.value, reason) for t, m, reason in fg.engine.switch_aborts
            ),
            switches_completed=len(fg.engine.mode_timeline) - 1,
            drain_force_releases=fg.engine.drain_force_releases,
            safe_mode_periods=fg.controller.safe_mode_periods,
            preemptions=dict(fg.metrics.preemptions),
            preemption_switches=fg.engine.preemption_switches,
        )
    overload_summary: Optional[OverloadSummary] = None
    if fg.overload is not None:
        gov = fg.overload
        breaker = gov.breaker
        overload_summary = OverloadSummary(
            policy_enabled=gov.policy.enabled,
            drops=dict(fg.metrics.drops),
            rejections=dict(gov.rejections),
            retries=dict(fg.metrics.retries),
            total_rejections=gov.total_rejections,
            breaker_trips=breaker.trips if breaker is not None else 0,
            breaker_reopens=breaker.reopens if breaker is not None else 0,
            breaker_half_opens=breaker.half_opens if breaker is not None else 0,
            breaker_closes=breaker.closes if breaker is not None else 0,
            breaker_state=breaker.state.value if breaker is not None else "disabled",
            breaker_transitions=tuple(breaker.transitions) if breaker is not None else (),
            peak_queue_depth_serverless=fg_state.peak_queue_depth,
            peak_queue_depth_iaas=fg.iaas.peak_queue_depth,
            brownout_periods=fg.controller.brownout_periods,
            preemptions=dict(fg.metrics.preemptions),
            surge_periods=fg.controller.surge_periods,
        )
    return RunResult(
        system=f"amoeba-{variant}" if variant != "full" else "amoeba",
        duration=scenario.duration,
        services=services,
        meter_overhead=rt.meter_overhead(),
        meter_overheads=rt.monitor.meter_overheads(),
        faults=fault_summary,
        overload=overload_summary,
    )


def run_nameko(scenario: Scenario, seed: Optional[int] = None) -> RunResult:
    """Pure IaaS baseline: the rental is held for the entire run.

    Background services live on the serverless platform and do not share
    hardware with an IaaS rental, so they are omitted here (they cannot
    affect the foreground's latency or usage).
    """
    env = Environment()
    rng = RngRegistry(seed=seed if seed is not None else scenario.seed)
    platform = IaaSPlatform(env, rng)
    spec = scenario.foreground
    metrics = _scenario_metrics(spec, scenario)
    svc = platform.deploy(spec, peak_rate=scenario.trace.peak_rate, metrics=metrics)
    LoadGenerator(env, spec.name, scenario.trace, platform.invoke, rng)
    env.run(until=scenario.duration)
    cpu, mem = _ledger_timeline(svc.ledger)
    result = ServiceResult(
        spec=spec,
        metrics=metrics,
        usage=svc.ledger.snapshot(),
        cpu_timelines=[cpu],
        mem_timelines=[mem],
        usage_iaas=svc.ledger.snapshot(),
        queue_depth_timelines=[(svc.queue_depth.times(), svc.queue_depth.values())],
    )
    return RunResult(system="nameko", duration=scenario.duration, services={spec.name: result})


def run_openwhisk(
    scenario: Scenario,
    seed: Optional[int] = None,
    config: Optional["ServerlessConfig"] = None,
) -> RunResult:
    """Pure serverless baseline: everything on the shared container pool.

    ``config`` overrides the platform defaults (the keep-alive ablation
    sweeps it); None keeps the standard §VII platform.
    """
    env = Environment()
    rng = RngRegistry(seed=seed if seed is not None else scenario.seed)
    platform = ServerlessPlatform(env, rng, config=config)
    if scenario.ambient:
        AmbientTenants(env, platform.machine, dict(scenario.ambient), rng)
    registry: Dict[str, Tuple[MicroserviceSpec, ServiceMetrics]] = {}

    def add(spec: MicroserviceSpec, trace, limit):
        metrics = _scenario_metrics(spec, scenario)
        platform.register(spec, metrics=metrics, limit=limit)
        LoadGenerator(env, spec.name, trace, platform.invoke, rng)
        registry[spec.name] = (spec, metrics)

    for bg_spec, bg_trace, bg_limit in scenario.background:
        add(bg_spec, bg_trace, bg_limit)
    add(scenario.foreground, scenario.trace, scenario.limit)
    env.run(until=scenario.duration)

    services: Dict[str, ServiceResult] = {}
    for name, (spec, metrics) in registry.items():
        ledger = platform.function_ledger(name)
        cpu, mem = _ledger_timeline(ledger)
        fs = platform.pool.state(name)
        services[name] = ServiceResult(
            spec=spec,
            metrics=metrics,
            usage=ledger.snapshot(),
            cpu_timelines=[cpu],
            mem_timelines=[mem],
            usage_serverless=ledger.snapshot(),
            serverless_invocations=fs.completions,
            serverless_busy_seconds=fs.busy_seconds,
            container_memory_mb=platform.config.container_memory_mb,
            queue_depth_timelines=[(fs.queue_depth.times(), fs.queue_depth.values())],
        )
    return RunResult(system="openwhisk", duration=scenario.duration, services=services)
