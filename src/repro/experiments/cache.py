"""Content-addressed run cache for experiment runs (DESIGN.md §10).

Every evaluation artifact in this repo is assembled from independent,
fully seeded simulation runs; two runs with the same scenario content,
seed, config, and *code* produce bit-identical results.  That makes run
results memoizable by content: this module fingerprints a run request
(every frozen config field, every scenario parameter down to the trace
noise tables, the seed, and a code-version salt derived from the source
tree) and stores the picklable :class:`~repro.experiments.runner.RunResult`
on disk under ``.repro_cache/``.

Fingerprinting rules:

* floats are encoded as ``float.hex()`` — the cache key distinguishes
  exactly the inputs the simulation distinguishes, no more, no less;
* numpy arrays contribute dtype, shape, and raw bytes;
* dataclasses contribute their class name and fields in field order;
* plain objects (the ``Trace`` classes) contribute their class name and
  ``vars()`` sorted by attribute name;
* anything else — functions, environments, open handles — raises
  :class:`FingerprintError`: if a request is not pure data it must not
  be cached (and cannot be shipped to a worker process either).

The code salt folds the full ``repro`` source tree into the key, so any
code change invalidates every prior entry without a manual version bump.
Corrupt or mismatched entries are discarded on read, never trusted.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.executor import RunRequest
    from repro.experiments.runner import RunResult

__all__ = [
    "CACHE_ENV_VAR",
    "DEFAULT_CACHE_ROOT",
    "FingerprintError",
    "RunCache",
    "code_salt",
    "fingerprint",
]

#: environment knob: a directory enables the cache there; "0"/"off"
#: (or unset) leaves it disabled; "1"/"on" uses :data:`DEFAULT_CACHE_ROOT`
CACHE_ENV_VAR = "REPRO_CACHE"

#: default on-disk location (relative to the current working directory)
DEFAULT_CACHE_ROOT = Path(".repro_cache")

#: bump when the on-disk entry layout changes shape
_ENTRY_FORMAT = 1


class FingerprintError(TypeError):
    """A run request contains something that is not pure data."""


def _update(h: "hashlib._Hash", obj: Any) -> None:
    """Feed one object's canonical encoding into the hash, recursively."""
    if obj is None:
        h.update(b"N")
    elif isinstance(obj, bool):
        h.update(b"B1" if obj else b"B0")
    elif isinstance(obj, int):
        h.update(b"I" + str(obj).encode())
    elif isinstance(obj, float):
        h.update(b"F" + obj.hex().encode())
    elif isinstance(obj, str):
        raw = obj.encode()
        h.update(b"S" + str(len(raw)).encode() + b":" + raw)
    elif isinstance(obj, bytes):
        h.update(b"Y" + str(len(obj)).encode() + b":" + obj)
    elif isinstance(obj, (tuple, list)):
        h.update(b"T(" if isinstance(obj, tuple) else b"L(")
        for item in obj:
            _update(h, item)
            h.update(b",")
        h.update(b")")
    elif isinstance(obj, dict):
        try:
            keys = sorted(obj)
        except TypeError as exc:  # unsortable mixed keys: no canonical order
            raise FingerprintError(f"cannot canonically order dict keys: {obj.keys()!r}") from exc
        h.update(b"D{")
        for key in keys:
            _update(h, key)
            h.update(b"=")
            _update(h, obj[key])
            h.update(b",")
        h.update(b"}")
    elif isinstance(obj, np.ndarray):
        arr = np.ascontiguousarray(obj)
        h.update(b"A" + arr.dtype.str.encode() + str(arr.shape).encode())
        h.update(arr.tobytes())
    elif isinstance(obj, (np.floating, np.integer, np.bool_)):
        _update(h, obj.item())
    elif dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        h.update(b"C<" + type(obj).__qualname__.encode() + b">")
        for field in dataclasses.fields(obj):
            h.update(field.name.encode() + b"=")
            _update(h, getattr(obj, field.name))
            h.update(b",")
    elif hasattr(obj, "__dict__") and not callable(obj) and not isinstance(obj, type):
        # plain data holders (the Trace classes): class name + sorted attrs
        h.update(b"O<" + type(obj).__qualname__.encode() + b">")
        for name in sorted(vars(obj)):
            h.update(name.encode() + b"=")
            _update(h, vars(obj)[name])
            h.update(b",")
    else:
        raise FingerprintError(
            f"cannot fingerprint {type(obj).__qualname__!r} ({obj!r}): run requests "
            "must be pure data (numbers, strings, arrays, dataclasses, plain objects)"
        )


def fingerprint(request: "RunRequest", salt: str = "") -> str:
    """Content hash of one run request (plus a code-version ``salt``)."""
    h = hashlib.sha256()
    h.update(b"repro-run-request-v1|" + salt.encode() + b"|")
    _update(h, request)
    return h.hexdigest()


_CODE_SALT: Optional[str] = None


def code_salt() -> str:
    """Digest of the whole ``repro`` source tree (cached per process).

    Any change to any ``src/repro/**.py`` file yields a different salt,
    so stale cache entries from older code can never be served.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        h = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            h.update(str(path.relative_to(root)).encode() + b"\0")
            h.update(path.read_bytes())
            h.update(b"\0")
        _CODE_SALT = h.hexdigest()
    return _CODE_SALT


class RunCache:
    """Disk memo of run results, addressed by request fingerprint.

    Entries live at ``<root>/<key[:2]>/<key>.pkl`` with an atomic
    write-then-replace, so an interrupted sweep leaves either a complete
    entry or none — resuming the sweep recomputes only what is missing.
    Reads are defensive: an unreadable, misformatted, or key-mismatched
    entry is deleted and reported as a miss, never trusted.
    """

    def __init__(self, root: Path | str = DEFAULT_CACHE_ROOT, salt: Optional[str] = None):
        self.root = Path(root)
        self.salt = salt if salt is not None else code_salt()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.discarded = 0

    @classmethod
    def from_env(cls) -> Optional["RunCache"]:
        """The cache the :data:`CACHE_ENV_VAR` environment asks for.

        Unset / ``""`` / ``"0"`` / ``"off"`` → ``None`` (disabled);
        ``"1"`` / ``"on"`` → the default root; anything else is a path.
        """
        raw = os.environ.get(CACHE_ENV_VAR, "").strip()
        if raw.lower() in ("", "0", "off", "no", "false"):
            return None
        if raw.lower() in ("1", "on", "yes", "true"):
            return cls()
        return cls(Path(raw))

    def key(self, request: "RunRequest") -> str:
        """The content address of ``request`` under this cache's salt."""
        return fingerprint(request, salt=self.salt)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, request: "RunRequest", key: Optional[str] = None) -> Optional["RunResult"]:
        """The memoized result, or None on a miss (corrupt entries are dropped)."""
        key = key if key is not None else self.key(request)
        path = self._path(key)
        try:
            payload = pickle.loads(path.read_bytes())
            if (
                not isinstance(payload, dict)
                or payload.get("format") != _ENTRY_FORMAT
                or payload.get("key") != key
            ):
                raise ValueError("cache entry does not match its address")
            result = payload["result"]
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:  # noqa: BLE001 - any unreadable entry is a miss
            self.discarded += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return result

    def put(self, request: "RunRequest", result: "RunResult", key: Optional[str] = None) -> None:
        """Store one result atomically (write to a temp file, then replace)."""
        key = key if key is not None else self.key(request)
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        payload = {"format": _ENTRY_FORMAT, "key": key, "result": result}
        tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)
        self.stores += 1

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.pkl"))
