"""The overload scenario: shed-rate vs. p95 sweep with and without policy.

Runs :func:`~repro.experiments.scenarios.overload_scenario` — the
standard §VII setup driven to ``factor`` times the nominal peak with the
chaos fault mix on — twice per factor: once with the overload layer
disabled (the unprotected baseline) and once with the policy enabled.
Per factor the report shows offered/completed counts, the unified
``dropped{reason}`` split, both runs' admitted-query p95 against the QoS
target, the exact queue-depth high-water marks and the breaker
lifecycle — i.e. everything the overload acceptance criteria ask to see.

CLI: ``python -m repro.experiments overload [--day D --seed S]``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

from repro.experiments.executor import RunRequest, run_many
from repro.experiments.report import FigureResult
from repro.experiments.runner import RunResult
from repro.experiments.scenarios import overload_scenario
from repro.overload import OverloadPolicy

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.cache import RunCache

__all__ = ["overload_sweep"]

#: default offered-load sweep, as multiples of the nominal peak rate:
#: at-capacity, the acceptance point (2x), and a deep overload
DEFAULT_FACTORS: Tuple[float, ...] = (1.0, 2.0, 3.0)


def _fg_p95(result: RunResult, name: str) -> float:
    return result.services[name].metrics.latency_percentile(95)


def overload_sweep(
    name: str = "matmul",
    day: float = 1800.0,
    seed: int = 0,
    factors: Sequence[float] = DEFAULT_FACTORS,
    policy: Optional[OverloadPolicy] = None,
    fault_scale: float = 1.0,
    workers: Optional[int] = None,
    cache: Union["RunCache", None, bool] = None,
) -> FigureResult:
    """Sweep offered-load factors; report shed rate vs. admitted p95.

    Each factor's protected/unprotected pair is an independent seeded
    run, so the whole sweep fans out through
    :func:`~repro.experiments.executor.run_many` (``workers``/``cache``
    default to the process-wide executor configuration) and the report
    is ``float.hex``-identical for any worker count.
    """
    if not factors:
        raise ValueError("need at least one load factor")
    policy = policy if policy is not None else OverloadPolicy()
    requests = []
    for factor in factors:
        for leg_policy in (OverloadPolicy.disabled(), policy):
            requests.append(
                RunRequest(
                    system="amoeba",
                    scenario=overload_scenario(
                        name,
                        lambda_factor=factor,
                        policy=leg_policy,
                        fault_scale=fault_scale,
                        day=day,
                        seed=seed,
                    ),
                )
            )
    results = run_many(requests, workers=workers, cache=cache)
    qos = None
    rows = []
    runs = {}
    for i, factor in enumerate(factors):
        off, on = results[2 * i], results[2 * i + 1]
        runs[factor] = {"off": off, "on": on}
        m_on = on.services[name].metrics
        qos = m_on.qos_target
        ov = on.overload
        assert ov is not None and ov.policy_enabled
        offered = m_on.completed + m_on.failed
        shed_frac = m_on.failed / offered if offered else 0.0
        rows.append(
            [
                factor,
                offered,
                m_on.completed,
                ov.drops.get("crash", 0),
                ov.drops.get("admission", 0),
                ov.drops.get("shed", 0),
                ov.drops.get("breaker", 0),
                ov.retries.get("attempted", 0),
                ov.retries.get("exhausted", 0),
                ov.retries.get("deadline_abandoned", 0),
                shed_frac,
                _fg_p95(off, name),
                _fg_p95(on, name),
                off.services[name].metrics.violation_fraction,
                m_on.violation_fraction,
                ov.peak_queue_depth_serverless,
                ov.peak_queue_depth_iaas,
                ov.breaker_trips + ov.breaker_reopens,
                ov.breaker_state,
            ]
        )
    return FigureResult(
        figure="overload",
        title=(
            f"overload sweep on {name!r} "
            f"(seed {seed}, day {day:g}s, QoS {qos:g}s, faults x{fault_scale:g})"
        ),
        headers=[
            "factor",
            "offered",
            "completed",
            "d_crash",
            "d_admit",
            "d_shed",
            "d_breaker",
            "r_attempted",
            "r_exhausted",
            "r_deadline",
            "shed_frac",
            "p95_off",
            "p95_on",
            "viol_off",
            "viol_on",
            "peakQ_sls",
            "peakQ_iaas",
            "br_opens",
            "br_state",
        ],
        rows=rows,
        notes=(
            "p95/viol are over admitted (completed) queries; *_off is the "
            "disabled-policy baseline at the same factor and seed.  d_* is "
            "the unified dropped{reason} family, r_* the retries{kind} "
            "family; peakQ_* the exact queue-depth high-water mark per "
            "platform."
        ),
        extras={"runs": runs, "policy": policy},
    )
