"""The paper's evaluation setups (§VII-A), in compressed simulated time.

Each benchmark gets its own run: the benchmark as *foreground* with a
diurnal trace whose peak is "high enough to arise transformation in the
execution engine", plus the three *background* services the paper names
(``float``, ``dd``, ``cloud_stor``) at a lower peak, phase-shifted so the
contention the monitor sees keeps changing.

Two modelling choices tie the scenario constants to the paper:

* **Concurrency threshold.**  §I notes serverless platforms cap a
  tenant's concurrent containers ("the concurrent request threshold …
  restrict[s] the max peak load in the serverless platform").
  :func:`concurrency_threshold` sizes that cap so the uncontended
  serverless ceiling sits at a target fraction (default 80 %) of the
  foreground's peak — which is what makes high load genuinely infeasible
  on serverless and forces the engine to switch, as in Fig. 12.
* **Compressed day.**  Traces replay one full diurnal cycle in 7200
  simulated seconds (a 12× compression).  Controller dynamics depend on
  the load shape and on dwell/sample periods, both of which stay well
  below the compressed day's timescale; EXPERIMENTS.md discusses the
  substitution.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.cluster import SpotSpec
from repro.core.meters import expected_platform_overhead
from repro.sim.queueing import max_arrival_rate
from repro.faults import FaultPlan
from repro.overload import OverloadPolicy
from repro.serverless import ServerlessConfig
from repro.workloads import (
    DiurnalTrace,
    FlashCrowdTrace,
    MicroserviceSpec,
    Trace,
    benchmark,
    benchmark_names,
)

__all__ = [
    "AMBIENT_PEAKS",
    "BACKGROUND_PEAKS",
    "DEFAULT_CHAOS_PLAN",
    "DEFAULT_DAY",
    "PEAK_RATES",
    "SERVERLESS_FRACTIONS",
    "Scenario",
    "ambient_pressure_traces",
    "background_services",
    "chaos_scenario",
    "concurrency_threshold",
    "default_scenario",
    "overload_scenario",
    "sized_reservoir",
    "spot_scenario",
]

#: foreground peak rates (queries/s) per benchmark — "high enough to
#: arise transformation in an execution engine" (§VII-A)
PEAK_RATES: Dict[str, float] = {
    "float": 30.0,
    "matmul": 12.0,
    "linpack": 10.0,
    "dd": 14.0,
    "cloud_stor": 12.0,
}

#: background peaks: "a slight pressure with the diurnal pattern" (§VII-A)
BACKGROUND_PEAKS: Dict[str, float] = {"float": 8.0, "dd": 5.0, "cloud_stor": 4.0}

#: per-benchmark serverless ceiling as a fraction of the foreground peak.
#: Fig. 10 shows pure OpenWhisk holding QoS for float/linpack but
#: violating it for matmul/dd/cloud_stor; the concurrency threshold is
#: what decides which side of that line a service falls on.
SERVERLESS_FRACTIONS: Dict[str, float] = {
    "float": 1.00,
    "matmul": 0.85,
    "linpack": 0.95,
    "dd": 0.80,
    "cloud_stor": 0.75,
}

#: compressed day length in simulated seconds
DEFAULT_DAY = 7200.0


def sized_reservoir(trace: Trace, duration: float, safety: float = 2.0) -> int:
    """Latency-reservoir capacity covering a trace's expected completions.

    ``ServiceMetrics.latency_percentile`` is exact only while the
    reservoir holds every completion; scenarios whose traces offer more
    than the 20k default (overload sweeps, the fleet family) size it from
    the expected query count with ``safety``× Poisson headroom so QoS
    gates never silently degrade to a subsample estimate.
    """
    if duration <= 0 or safety < 1.0:
        raise ValueError("duration must be positive and safety >= 1")
    expected = trace.mean_rate(0.0, duration) * duration
    return max(20_000, int(safety * expected) + 1000)


def concurrency_threshold(
    spec: MicroserviceSpec,
    peak_rate: float,
    fraction: float = 0.80,
    cfg: Optional[ServerlessConfig] = None,
    r: float = 0.95,
) -> int:
    """Container cap making the serverless ceiling ≈ ``fraction``·peak.

    Uses the *uncontended* per-container capacity μ₀ = 1/(exec + α);
    the smallest n whose Eq. 5 admissible rate reaches the target.
    """
    if peak_rate <= 0 or not 0.0 < fraction <= 2.0:
        raise ValueError("peak_rate must be positive and fraction in (0, 2]")
    cfg = cfg if cfg is not None else ServerlessConfig()
    mu0 = 1.0 / (spec.exec_time + expected_platform_overhead(spec, cfg))
    target = fraction * peak_rate
    n = 1
    while max_arrival_rate(mu0, n, spec.qos_target, r) < target:
        n += 1
        if n > 4096:
            raise ValueError(f"{spec.name}: threshold search ran away (target {target} qps)")
    return n


def background_services(
    day: float = DEFAULT_DAY, seed: int = 100, cfg: Optional[ServerlessConfig] = None
) -> Tuple[Tuple[MicroserviceSpec, Trace, int], ...]:
    """The three §VII-A background services: (spec, trace, limit) each.

    Renamed ``bg_*`` so a foreground benchmark of the same kind can run
    alongside.  Limits are generous (130 % of their own peak): the paper
    chose background parameters that keep them healthy on serverless.
    """
    cfg = cfg if cfg is not None else ServerlessConfig()
    out = []
    for i, (name, peak) in enumerate(BACKGROUND_PEAKS.items()):
        spec = replace(benchmark(name), name=f"bg_{name}")
        trace = DiurnalTrace(
            peak_rate=peak,
            seed=seed + i,
            phase=(0.15 + 0.3 * i) * day,
            day=day,
            noise_sigma=0.06,
        )
        limit = concurrency_threshold(spec, peak, fraction=1.3, cfg=cfg)
        out.append((spec, trace, limit))
    return tuple(out)


#: peak ambient pressure per axis on the shared node (other tenants)
AMBIENT_PEAKS: Dict[str, float] = {"cpu": 0.70, "io": 0.65, "net": 0.55}


def ambient_pressure_traces(
    day: float = DEFAULT_DAY, seed: int = 300
) -> Tuple[Tuple[str, Trace], ...]:
    """Per-axis diurnal pressure traces for the ambient tenants.

    The ambient tenants' day is *anti-phased* to the foreground's (other
    tenants peak when the benchmark is quiet — the situation that makes
    hybrid deployment worthwhile at all), with the three axes co-peaking
    within a few hours of each other.  Simultaneous multi-axis pressure
    during the foreground's low-load window is exactly where the
    "degradations accumulate" assumption (Amoeba-NoM) overshoots and
    postpones profitable switch-ins (§VII-C / Fig. 14), while the
    per-axis phase spread keeps the dominant contended resource changing
    (§II-D).
    """
    out = []
    for i, (axis, peak) in enumerate(AMBIENT_PEAKS.items()):
        out.append(
            (
                axis,
                DiurnalTrace(
                    peak_rate=peak,
                    low_fraction=0.25,
                    seed=seed + i,
                    phase=(0.52 + 0.1 * i) * day,
                    day=day,
                    noise_sigma=0.08,
                ),
            )
        )
    return tuple(out)


@dataclass(frozen=True)
class Scenario:
    """One §VII run: a foreground benchmark plus the background mix."""

    foreground: MicroserviceSpec
    trace: Trace
    limit: int
    background: Tuple[Tuple[MicroserviceSpec, Trace, int], ...]
    duration: float
    seed: int
    #: per-axis ambient-pressure traces for the shared node's other tenants
    ambient: Tuple[Tuple[str, Trace], ...] = ()
    #: fault-injection plan; None disables the fault layer entirely (a
    #: zero-rate plan is behaviourally identical — see repro.faults)
    faults: Optional[FaultPlan] = None
    #: overload-protection policy; None leaves the layer out entirely (a
    #: disabled policy is behaviourally identical — see repro.overload)
    overload: Optional[OverloadPolicy] = None
    #: rate the IaaS rental is sized for; None = trace.peak_rate.
    #: Overload scenarios pin this to the *nominal* peak while the trace
    #: drives past it, so the excess load is genuinely excess.
    iaas_peak_rate: Optional[float] = None
    #: latency-reservoir capacity per service; None = the ServiceMetrics
    #: default (20000).  QoS gates read exact percentiles only while the
    #: completion count stays within this capacity
    #: (``ServiceMetrics.latency_sample_exact``), so scenarios expecting
    #: more completions — the fleet family sizes this from the trace's
    #: expected query count — must say so here.
    reservoir: Optional[int] = None
    #: spot share of every managed IaaS rental; None keeps the rental
    #: all on-demand (and, with a zero ``vm_preemption_prob``, the run
    #: bit-identical to the pre-spot behaviour)
    spot: Optional[SpotSpec] = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError(f"duration must be positive, got {self.duration}")
        if self.limit < 1:
            raise ValueError(f"limit must be >= 1, got {self.limit}")
        if self.iaas_peak_rate is not None and self.iaas_peak_rate <= 0:
            raise ValueError(f"iaas_peak_rate must be positive, got {self.iaas_peak_rate}")
        if self.reservoir is not None and self.reservoir < 1:
            raise ValueError(f"reservoir must be >= 1, got {self.reservoir}")

    def mean_ambient_pressures(self) -> Tuple[float, float, float]:
        """Time-averaged ambient pressure per axis over the run."""
        out = {"cpu": 0.0, "io": 0.0, "net": 0.0}
        for axis, trace in self.ambient:
            out[axis] = trace.mean_rate(0.0, self.duration)
        return (out["cpu"], out["io"], out["net"])


def default_scenario(
    name: str,
    day: float = DEFAULT_DAY,
    duration: Optional[float] = None,
    seed: int = 0,
    serverless_fraction: Optional[float] = None,
    cfg: Optional[ServerlessConfig] = None,
    with_background: bool = True,
) -> Scenario:
    """The standard §VII scenario for one benchmark."""
    if name not in benchmark_names():
        raise KeyError(f"unknown benchmark {name!r}")
    cfg = cfg if cfg is not None else ServerlessConfig()
    spec = benchmark(name)
    peak = PEAK_RATES[name]
    fraction = (
        serverless_fraction if serverless_fraction is not None else SERVERLESS_FRACTIONS[name]
    )
    trace = DiurnalTrace(peak_rate=peak, seed=seed + 7, day=day, noise_sigma=0.05)
    limit = concurrency_threshold(spec, peak, fraction=fraction, cfg=cfg)
    background = background_services(day=day, seed=seed + 100, cfg=cfg) if with_background else ()
    ambient = ambient_pressure_traces(day=day, seed=seed + 300) if with_background else ()
    return Scenario(
        foreground=spec,
        trace=trace,
        limit=limit,
        background=background,
        duration=duration if duration is not None else day,
        seed=seed,
        ambient=ambient,
    )


#: the reference fault mix of the chaos scenario: every fault class
#: active at a "bad day on the platform" rate.  The chaos sweep scales
#: this whole plan by a factor (0 = the provably-inert zero plan).
DEFAULT_CHAOS_PLAN = FaultPlan(
    cold_start_failure_prob=0.05,
    container_crash_prob=0.01,
    vm_boot_failure_prob=0.10,
    vm_boot_delay_prob=0.10,
    meter_drop_prob=0.02,
    meter_outage_prob=0.002,
    prewarm_ack_loss_prob=0.15,
    prewarm_ack_delay_prob=0.15,
)


def chaos_scenario(
    name: str = "matmul",
    fault_scale: float = 1.0,
    plan: Optional[FaultPlan] = None,
    day: float = DEFAULT_DAY,
    duration: Optional[float] = None,
    seed: int = 0,
    cfg: Optional[ServerlessConfig] = None,
) -> Scenario:
    """The standard scenario with a scaled fault plan attached.

    ``fault_scale=0`` produces the zero plan, which the determinism gate
    asserts is bit-identical to running with no fault layer at all;
    larger scales sweep the fault pressure for the QoS-delta report.
    """
    base = plan if plan is not None else DEFAULT_CHAOS_PLAN
    scenario = default_scenario(name, day=day, duration=duration, seed=seed, cfg=cfg)
    return replace(scenario, faults=base.scaled(fault_scale))


def overload_scenario(
    name: str = "matmul",
    lambda_factor: float = 2.0,
    policy: Optional[OverloadPolicy] = None,
    fault_scale: float = 1.0,
    day: float = DEFAULT_DAY,
    duration: Optional[float] = None,
    seed: int = 0,
    cfg: Optional[ServerlessConfig] = None,
) -> Scenario:
    """The standard scenario driven past capacity, with faults on.

    The foreground trace's peak is scaled to ``lambda_factor`` times the
    nominal :data:`PEAK_RATES` entry while *both* capacity envelopes stay
    nominal: the container limit keeps its Eq. 5-derived value and the
    IaaS rental is sized for the nominal peak (``iaas_peak_rate``).  At
    ``lambda_factor >= 2`` the offered load therefore exceeds either
    platform's QoS-feasible capacity — the acceptance scenario for the
    overload layer.  ``policy=None`` runs the unprotected baseline.
    """
    if lambda_factor <= 0:
        raise ValueError(f"lambda_factor must be positive, got {lambda_factor}")
    base = default_scenario(name, day=day, duration=duration, seed=seed, cfg=cfg)
    nominal_peak = PEAK_RATES[name]
    trace = DiurnalTrace(
        peak_rate=lambda_factor * nominal_peak, seed=seed + 7, day=day, noise_sigma=0.05
    )
    return replace(
        base,
        trace=trace,
        faults=DEFAULT_CHAOS_PLAN.scaled(fault_scale),
        overload=policy,
        iaas_peak_rate=nominal_peak,
        # deep-overload traces offer well past the 20k default; keep the
        # sweep's reported p95 an exact order statistic
        reservoir=sized_reservoir(trace, duration if duration is not None else day),
    )


def spot_scenario(
    name: str = "matmul",
    spot_fraction: float = 0.5,
    preemption_prob: float = 0.5,
    graceful: bool = True,
    notice_s: float = 120.0,
    spike_magnitude: float = 0.0,
    spike_gap_s: float = 900.0,
    policy: Optional[OverloadPolicy] = None,
    day: float = DEFAULT_DAY,
    duration: Optional[float] = None,
    seed: int = 0,
    cfg: Optional[ServerlessConfig] = None,
) -> Scenario:
    """The standard scenario on a spot-backed rental, optionally spiked.

    ``spot_fraction`` of every managed rental is reclaimable;
    ``preemption_prob`` is the per-check-interval reclamation probability
    (0 is the provably-inert zero plan).  ``graceful=False`` models a
    cloud that reclaims with no notice — the degraded path the drain
    protocol exists to avoid.  ``spike_magnitude`` > 0 layers a seeded
    flash-crowd spike train on the diurnal trace (median extra rate =
    ``spike_magnitude`` × the nominal peak), the stress the controller's
    surge mode absorbs.
    """
    if not 0.0 <= preemption_prob <= 1.0:
        raise ValueError(f"preemption_prob must be in [0, 1], got {preemption_prob}")
    if spike_magnitude < 0:
        raise ValueError(f"spike_magnitude must be >= 0, got {spike_magnitude}")
    base = default_scenario(name, day=day, duration=duration, seed=seed, cfg=cfg)
    span = duration if duration is not None else day
    trace: Trace = base.trace
    if spike_magnitude > 0:
        trace = FlashCrowdTrace(
            base.trace,
            horizon=span,
            mean_gap_s=spike_gap_s,
            magnitude=spike_magnitude * PEAK_RATES[name],
            seed=seed + 900,
        )
    plan = FaultPlan(
        vm_preemption_prob=preemption_prob, preemption_check_interval_s=30.0
    )
    return replace(
        base,
        trace=trace,
        spot=SpotSpec(fraction=spot_fraction, notice_s=notice_s, graceful=graceful),
        faults=plan,
        overload=policy,
        reservoir=sized_reservoir(trace, span),
    )
