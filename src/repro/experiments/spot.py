"""The ``spot`` sweep: preemption rate x flash-crowd intensity frontier.

Spot-backed rentals buy the discounted :class:`~repro.cluster.SpotSpec`
share of every managed IaaS rental at the risk of reclamation; flash
crowds stack seeded spike trains on the diurnal trace.  This sweep scans
both axes through the standard :func:`~repro.experiments.executor.run_many`
pool/cache machinery and reports the QoS/cost frontier: how much of the
on-demand bill the spot share saves, and what the preemption and surge
machinery pay (or avoid paying) for it in QoS violations.

The acceptance claim (check.sh preemption-storm gate): with half the
rental on spot capacity and a guaranteed reclamation, the graceful
drain protocol keeps the QoS-violation fraction (drops counted as
violations) at or under :data:`GRACEFUL_VIOLATION_BOUND` while the
no-notice hard-kill baseline exceeds :data:`HARDKILL_VIOLATION_FLOOR`
on the same scenario — and both legs are ``float.hex``-deterministic
across reruns and worker counts.

CLI: ``python -m repro.experiments spot [--seed S --day D]``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

from repro.cluster.pricing import PricingModel
from repro.experiments.executor import RunRequest, run_many
from repro.experiments.report import FigureResult
from repro.experiments.runner import RunResult
from repro.experiments.scenarios import (
    PEAK_RATES,
    Scenario,
    concurrency_threshold,
    sized_reservoir,
    spot_scenario,
)
from repro.overload import OverloadPolicy
from repro.workloads import ConstantTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.cache import RunCache

__all__ = ["preemption_comparison", "spot_comparison_scenario", "spot_sweep"]

#: default simulated duration of one spot-sweep run, seconds
SPOT_DAY = 600.0
#: duration of the storm-gate comparison pair, seconds — short enough
#: that the reclamation window dominates the run
COMPARISON_DAY = 240.0
#: acceptance bound on the graceful-drain leg's violation fraction
#: (with drops counted as violations) at spot fraction 0.5
GRACEFUL_VIOLATION_BOUND = 0.10
#: floor the no-notice hard-kill baseline must exceed on the same
#: scenario for the drain protocol's value to be demonstrated
HARDKILL_VIOLATION_FLOOR = 0.25
#: preemption-probability axis of the sweep (per check interval)
PREEMPTION_GRID = (0.0, 0.5, 1.0)
#: flash-crowd magnitude axis, as a fraction of the nominal peak rate
SPIKE_GRID = (0.0, 0.5)
#: spot share of the rental used across the sweep and the gate
SPOT_FRACTION = 0.5


def spot_comparison_scenario(
    graceful: bool,
    name: str = "matmul",
    spot_fraction: float = SPOT_FRACTION,
    seed: int = 0,
    day: float = COMPARISON_DAY,
) -> Scenario:
    """One leg of the storm-gate pair: peak load pinned to the IaaS path.

    The foreground runs at its full nominal peak on a constant trace
    with the serverless concurrency threshold squeezed far below what
    that load needs, so neither the controller nor the emergency
    preemption hook can move the service off the doomed rental — the
    reclamation must be absorbed by the drain protocol (or not, on the
    hard-kill leg).  Reclamation is guaranteed at the first preemption
    check, so the damaged window is a fixed share of the short run.
    """
    peak = PEAK_RATES[name]
    base = spot_scenario(
        name,
        spot_fraction=spot_fraction,
        preemption_prob=1.0,
        graceful=graceful,
        day=day,
        seed=seed,
    )
    trace = ConstantTrace(peak)
    # a ceiling sized for ~30% of peak: serverless is never QoS-feasible
    # at this load, which pins the run to the spot-backed rental
    limit = concurrency_threshold(base.foreground, peak, fraction=0.3)
    return replace(
        base,
        trace=trace,
        limit=limit,
        background=(),
        ambient=(),
        reservoir=sized_reservoir(trace, day),
    )


def preemption_comparison(
    name: str = "matmul",
    spot_fraction: float = SPOT_FRACTION,
    seed: int = 0,
    day: float = COMPARISON_DAY,
    workers: Optional[int] = None,
    cache: Union["RunCache", None, bool] = None,
) -> Dict[str, RunResult]:
    """The graceful-vs-hard-kill pair behind the preemption-storm gate."""
    requests = [
        RunRequest(
            system="amoeba",
            scenario=spot_comparison_scenario(
                graceful, name=name, spot_fraction=spot_fraction, seed=seed, day=day
            ),
        )
        for graceful in (True, False)
    ]
    graceful_run, hardkill_run = run_many(requests, workers=workers, cache=cache)
    return {"graceful": graceful_run, "hardkill": hardkill_run}


def spot_sweep(
    day: float = SPOT_DAY,
    seed: int = 0,
    name: str = "matmul",
    probs: Sequence[float] = PREEMPTION_GRID,
    spikes: Sequence[float] = SPIKE_GRID,
    workers: Optional[int] = None,
    cache: Union["RunCache", None, bool] = None,
) -> FigureResult:
    """Preemption rate x spike intensity: the QoS/cost frontier table.

    Every (probability, spike, reclamation mode) cell is one seeded run
    fanned out through :func:`~repro.experiments.executor.run_many`
    (worker-count ``float.hex``-invariant, cache-eligible), plus one
    all-on-demand baseline per spike level for cost normalization.  All
    cells carry an enabled :class:`~repro.overload.OverloadPolicy`, so
    the surge detector and the preemption counters surface through the
    :class:`~repro.experiments.metrics.OverloadSummary`.
    """
    if not probs or not spikes:
        raise ValueError("need at least one preemption probability and one spike level")
    requests: List[RunRequest] = []
    cells: List[tuple] = []
    for spike in spikes:
        baseline = replace(
            spot_scenario(
                name, spot_fraction=SPOT_FRACTION, preemption_prob=0.0,
                spike_magnitude=spike, policy=OverloadPolicy(), day=day, seed=seed,
            ),
            spot=None,
            faults=None,
        )
        requests.append(RunRequest(system="amoeba", scenario=baseline))
        cells.append((0.0, spike, "ondemand"))
        for prob in probs:
            for graceful in (True, False):
                requests.append(
                    RunRequest(
                        system="amoeba",
                        scenario=spot_scenario(
                            name,
                            spot_fraction=SPOT_FRACTION,
                            preemption_prob=prob,
                            graceful=graceful,
                            spike_magnitude=spike,
                            policy=OverloadPolicy(),
                            day=day,
                            seed=seed,
                        ),
                    )
                )
                cells.append((prob, spike, "graceful" if graceful else "hardkill"))
    results = run_many(requests, workers=workers, cache=cache)

    pricing = PricingModel()
    baseline_cost: Dict[float, float] = {}
    for (prob, spike, mode), result in zip(cells, results):
        if mode == "ondemand":
            baseline_cost[spike] = result.services[name].cost(pricing).total

    rows: List[list] = []
    for (prob, spike, mode), result in zip(cells, results):
        fg = result.services[name]
        cost = fg.cost(pricing).total
        base = baseline_cost[spike]
        savings = 1.0 - cost / base if base > 0 else 0.0
        overload = result.overload
        assert overload is not None
        preempt = overload.preemptions
        faults = result.faults
        rows.append(
            [
                prob,
                spike,
                mode,
                fg.metrics.violation_fraction,
                fg.metrics.violation_fraction_with_failures,
                preempt.get("noticed", 0),
                preempt.get("drained", 0),
                preempt.get("killed_inflight", 0),
                preempt.get("replaced", 0),
                faults.preemption_switches if faults is not None else 0,
                overload.surge_periods,
                cost,
                savings,
            ]
        )
    return FigureResult(
        figure="spot",
        title=(
            f"spot preemption x flash crowds at spot fraction {SPOT_FRACTION:g} "
            f"(seed {seed}, day {day:g}s, {name})"
        ),
        headers=[
            "preempt_p",
            "spike",
            "mode",
            "viol_frac",
            "viol_w_fail",
            "noticed",
            "drained",
            "killed",
            "replaced",
            "em_switches",
            "surge_periods",
            "cost_usd",
            "savings",
        ],
        rows=rows,
        notes=(
            "preempt_p is the per-check reclamation probability of the spot "
            "share; spike the flash-crowd magnitude as a fraction of the "
            "nominal peak.  mode ondemand = all-on-demand baseline (the cost "
            "denominator per spike level); graceful = 120s-notice drain "
            "protocol; hardkill = no-notice reclamation.  viol_w_fail counts "
            "dropped queries as violations; savings is the cost reduction "
            "vs the same-spike on-demand baseline.  em_switches counts "
            "emergency serverless switch-ins taken on a preemption notice; "
            "surge_periods the controller periods with the flash-crowd "
            "detector tripped."
        ),
    )
