"""Ablation studies beyond the paper's own NoM/NoP (DESIGN.md §5).

* :func:`ablate_guard` — the §III co-tenant QoS guard: what happens to
  the background tenants when a switch-in no longer checks them.
* :func:`ablate_sample_period` — the Eq. 8 sample-period bound: decision
  quality when the controller samples faster than one cold start can be
  absorbed.
* :func:`ablate_discriminant` — the M/M/N discriminant (Eq. 5) against a
  naive "keep utilization under ρ_max" rule.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.core import AmoebaConfig
from repro.experiments.executor import RunRequest, run_many
from repro.experiments.report import FigureResult
from repro.experiments.scenarios import Scenario, default_scenario

__all__ = [
    "ablate_discriminant",
    "ablate_guard",
    "ablate_keep_alive",
    "ablate_sample_period",
]


def _fg_stats(result, scenario: Scenario) -> Tuple[float, float, int]:
    fg = result.foreground(scenario)
    return (
        fg.metrics.violation_fraction,
        fg.usage.mean_cores,
        len(fg.switch_events),
    )


def ablate_guard(name: str = "matmul", day: float = 3600.0, seed: int = 0) -> FigureResult:
    """Co-tenant guard on vs. off: background-tenant QoS under switch-ins.

    The default §VII background mix is deliberately healthy, so the guard
    rarely binds there.  To expose it, this ablation adds a *vulnerable*
    tenant: a CPU-bound service already running close to its serverless
    ceiling.  With the guard off, the foreground switches in on top of it
    regardless of what that does to its latency.
    """
    import dataclasses

    from repro.workloads.functionbench import benchmark
    from repro.workloads.traces import ConstantTrace

    base = default_scenario(name, day=day, seed=seed)
    # marginal tenant: meets QoS alone at this load/limit, but with no
    # headroom — the foreground's added pressure tips its queueing over
    vulnerable_spec = dataclasses.replace(
        benchmark("matmul"), name="bg_vulnerable", qos_target=2.6
    )
    vulnerable = (vulnerable_spec, ConstantTrace(8.0), 4)
    scenario = dataclasses.replace(base, background=base.background + (vulnerable,))

    legs = (("guard on", True), ("guard off", False))
    results = run_many(
        [RunRequest(system="amoeba", scenario=scenario, guard=guard) for _, guard in legs]
    )
    rows = []
    for (label, _guard), run in zip(legs, results):
        fg = run.foreground(scenario)
        vuln = run.services["bg_vulnerable"].metrics
        rows.append(
            [
                label,
                fg.metrics.violation_fraction,
                vuln.violation_fraction,
                vuln.latency_percentile(95) / vulnerable_spec.qos_target,
                len(fg.switch_events),
            ]
        )
    return FigureResult(
        figure="Ablation: co-tenant guard",
        title="paper SIII: a switch-in must not break existing tenants",
        headers=["variant", "fg violations", "vulnerable bg violations", "bg p95/QoS", "switches"],
        rows=rows,
        notes="without the guard, switch-ins ignore co-tenant QoS predictions",
    )


def ablate_sample_period(
    name: str = "float", day: float = 3600.0, seed: int = 0
) -> FigureResult:
    """Eq. 8-respecting period vs. an aggressive 3 s sampler."""
    scenario = default_scenario(name, day=day, seed=seed)
    base = AmoebaConfig()
    fast = replace(base, min_sample_period=3.0, max_sample_period=3.0, min_dwell=30.0)
    legs = (("Eq. 8 period", base), ("3 s period", fast))
    results = run_many(
        [RunRequest(system="amoeba", scenario=scenario, config=cfg) for _, cfg in legs]
    )
    rows = []
    for (label, _cfg), run in zip(legs, results):
        viol, cores, switches = _fg_stats(run, scenario)
        rows.append([label, viol, cores, switches])
    return FigureResult(
        figure="Ablation: sample period",
        title="paper Eq. 8: the feedback window must absorb a cold start",
        headers=["variant", "fg violations", "mean cores", "switches"],
        rows=rows,
        notes="an over-eager sampler reacts to transients and flaps between modes",
    )


def ablate_keep_alive(
    name: str = "float", day: float = 3600.0, seed: int = 0
) -> FigureResult:
    """Warm-container keep-alive sweep: memory cost vs. cold-start risk.

    Between the paper's NoP extreme (no warm reuse at all) and an
    OpenWhisk-style long keep-alive lies a trade-off: short keep-alives
    return container memory quickly but re-pay cold starts whenever the
    inter-arrival gap exceeds the window.
    """
    from repro.serverless.config import ServerlessConfig

    scenario = default_scenario(name, day=day, seed=seed, with_background=False)
    # the same scenario under each platform config (thresholds depend
    # only on overheads, which keep-alive does not touch)
    keep_alives = (5.0, 30.0, 60.0, 300.0)
    results = run_many(
        [
            RunRequest(
                system="openwhisk",
                scenario=scenario,
                serverless_config=ServerlessConfig(keep_alive=keep_alive),
            )
            for keep_alive in keep_alives
        ]
    )
    rows = []
    for keep_alive, run in zip(keep_alives, results):
        fg = run.foreground(scenario)
        rows.append(
            [
                keep_alive,
                fg.metrics.violation_fraction,
                fg.usage.mean_memory_mb,
                fg.metrics.breakdown_sums["cold"] / max(fg.metrics.completed, 1),
            ]
        )
    return FigureResult(
        figure="Ablation: keep-alive",
        title="warm-container lifetime vs. memory footprint and cold starts",
        headers=["keep_alive (s)", "violations", "mean mem (MB)", "cold s/query"],
        rows=rows,
        notes="longer keep-alive holds more memory but re-pays fewer cold starts",
    )


def ablate_discriminant(
    name: str = "matmul", day: float = 3600.0, seed: int = 0
) -> FigureResult:
    """Eq. 5 M/M/N discriminant vs. naive utilization thresholds."""
    scenario = default_scenario(name, day=day, seed=seed)
    configs = [
        ("Eq. 5 (M/M/N)", AmoebaConfig()),
        ("rho < 0.5", AmoebaConfig(discriminant="utilization", naive_rho_max=0.5)),
        ("rho < 0.9", AmoebaConfig(discriminant="utilization", naive_rho_max=0.9)),
    ]
    results = run_many(
        [RunRequest(system="amoeba", scenario=scenario, config=cfg) for _, cfg in configs]
    )
    rows = []
    for (label, _cfg), run in zip(configs, results):
        viol, cores, switches = _fg_stats(run, scenario)
        rows.append([label, viol, cores, switches])
    return FigureResult(
        figure="Ablation: discriminant function",
        title="Eq. 5 vs. naive utilization rules",
        headers=["variant", "fg violations", "mean cores", "switches"],
        rows=rows,
        notes="a loose rho rule risks QoS; a tight one wastes IaaS time — Eq. 5 "
        "adapts to the QoS target and the calibrated mu",
    )
